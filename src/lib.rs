//! # dram-thermal
//!
//! Facade crate for the reproduction of *Thermal modeling and management of
//! DRAM memory systems* (ISCA 2007). It re-exports the workspace crates so
//! downstream users can depend on a single crate:
//!
//! * [`fbdimm`] (`fbdimm-sim`) — the FBDIMM memory-system simulator;
//! * [`cpu`] (`cpu-model`) — the multicore processor model and power models;
//! * [`workloads`] — synthetic SPEC workload models and mixes;
//! * [`memtherm`] — the paper's power/thermal models, DTM schemes, PID
//!   controller and two-level thermal simulator;
//! * [`platform`] (`platform-emu`) — the Chapter 5 server-platform
//!   emulation.
//!
//! ## Architecture: trait + scene
//!
//! The thermal stack is organized around two abstractions. The
//! `ThermalModel` trait unifies the paper's isolated (Section 3.4) and
//! integrated (Section 3.5) single-DIMM models behind one interface. On top
//! of it, a `DimmThermalScene` resolves the whole subsystem: one RC node
//! **stack** per DIMM position (logical channels × DIMMs per channel),
//! described by a `StackTopology` — the paper's AMB+DRAM FBDIMM pair, a
//! DDR4/5-style rank pair, or a CoMeT-style 3D stack whose dies heat each
//! other through vertical TSV resistances — and stepped from the
//! per-position power that `FbdimmPowerModel::scene_power` computes out of
//! the memory simulator's per-DIMM traffic split (split over the stack's
//! layers by the topology). The hottest device — the only thing the
//! paper's simulator tracked — is *derived* by arg-max over positions and
//! layers at observation time, and DTM policies receive the full
//! `ThermalObservation` (NaN-safe maxima + per-position, per-layer field)
//! instead of two bare floats. Policies answer with an `ActuationPlan`:
//! the global running mode (scalar plans reproduce the paper's schemes
//! bit-identically) optionally extended with per-channel service fractions
//! (DTM-CBW) and per-position traffic-steering weights (DTM-MIG page
//! migration), which the engine folds back into per-position heat and
//! per-channel throttle residency. The `SimEngine` window loop drives the
//! scene inside `MemSpot` allocation-free (precomputed per-layer RC step
//! coefficients, reused observation buffer), and the `experiments` crate's
//! `SweepRunner` fans grids of {cooling × stack × workload × policy} cells
//! across cores through a chunked work queue, deduplicating the expensive
//! level-1 characterizations in a shared, thread-safe `CharStore` whose
//! disk cache is safe to share between concurrent processes (advisory
//! lock-file protocol around appends).
//!
//! ## Quick start
//!
//! ```
//! use dram_thermal::prelude::*;
//!
//! // Simulate W1 under DTM-ACG on the paper's FBDIMM configuration.
//! let mut spot = MemSpot::new(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()));
//! let mut policy = DtmAcg::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
//! let result = spot.run(&mixes::w1(), &mut policy);
//! assert!(result.completed);
//! assert!(result.max_amb_c <= 110.5);
//! // The result resolves the thermal field per DIMM position; the hottest
//! // DIMM is derived from it, not assumed.
//! assert_eq!(result.position_peaks.len(), 8);
//! assert_eq!(result.hottest_position().unwrap().dimm, 0);
//! ```

#![warn(missing_docs)]

pub use cpu_model as cpu;
pub use fbdimm_sim as fbdimm;
pub use memtherm;
pub use platform_emu as platform;
pub use workloads;

/// Convenient re-exports of the most commonly used types across all crates.
pub mod prelude {
    pub use cpu_model::{CpuConfig, DvfsLadder, OperatingPoint, PaperCpuPower, ProcessorPowerModel, RunningMode};
    pub use fbdimm_sim::{FbdimmConfig, MemRequest, MemorySystem, RequestKind};
    pub use memtherm::prelude::*;
    pub use platform_emu::{PlatformExperiment, PolicyKind, Server, ServerKind};
    pub use workloads::{mixes, AppBehavior, BatchJob, WorkloadMix};
}
