//! Time representation used throughout the simulator.
//!
//! All simulated time is kept in integer **picoseconds** (`u64`) so that
//! DRAM timing arithmetic is exact and deterministic across platforms. A few
//! convenience conversions to/from nanoseconds and seconds are provided.

/// Simulated time in picoseconds.
pub type Picos = u64;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: Picos = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: Picos = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: Picos = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: Picos = 1_000_000_000_000;

/// Converts a duration in nanoseconds (possibly fractional) to picoseconds.
///
/// ```
/// use fbdimm_sim::time::ps_from_ns;
/// assert_eq!(ps_from_ns(15.0), 15_000);
/// assert_eq!(ps_from_ns(1.5), 1_500);
/// ```
pub fn ps_from_ns(ns: f64) -> Picos {
    (ns * PS_PER_NS as f64).round() as Picos
}

/// Converts a duration in microseconds to picoseconds.
///
/// ```
/// use fbdimm_sim::time::ps_from_us;
/// assert_eq!(ps_from_us(25.0), 25_000_000);
/// ```
pub fn ps_from_us(us: f64) -> Picos {
    (us * PS_PER_US as f64).round() as Picos
}

/// Converts a picosecond duration to fractional nanoseconds.
///
/// ```
/// use fbdimm_sim::time::ps_to_ns;
/// assert!((ps_to_ns(15_000) - 15.0).abs() < 1e-12);
/// ```
pub fn ps_to_ns(ps: Picos) -> f64 {
    ps as f64 / PS_PER_NS as f64
}

/// Converts a picosecond duration to fractional seconds.
///
/// ```
/// use fbdimm_sim::time::ps_to_secs;
/// assert!((ps_to_secs(2_000_000_000_000) - 2.0).abs() < 1e-12);
/// ```
pub fn ps_to_secs(ps: Picos) -> f64 {
    ps as f64 / PS_PER_SEC as f64
}

/// Computes achieved bandwidth in GB/s given bytes transferred over a
/// picosecond interval. Returns 0.0 for an empty interval.
///
/// ```
/// use fbdimm_sim::time::{bandwidth_gbps, PS_PER_SEC};
/// // 8 GB in one second is 8 GB/s.
/// assert!((bandwidth_gbps(8_000_000_000, PS_PER_SEC) - 8.0).abs() < 1e-9);
/// ```
pub fn bandwidth_gbps(bytes: u64, interval_ps: Picos) -> f64 {
    if interval_ps == 0 {
        return 0.0;
    }
    let secs = ps_to_secs(interval_ps);
    bytes as f64 / 1e9 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        for ns in [0.0, 1.0, 3.75, 15.0, 54.0, 10_000.0] {
            let ps = ps_from_ns(ns);
            assert!((ps_to_ns(ps) - ns).abs() < 1e-9, "round trip failed for {ns}");
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PS_PER_NS * 1_000, PS_PER_US);
        assert_eq!(PS_PER_US * 1_000, PS_PER_MS);
        assert_eq!(PS_PER_MS * 1_000, PS_PER_SEC);
    }

    #[test]
    fn bandwidth_of_zero_interval_is_zero() {
        assert_eq!(bandwidth_gbps(1024, 0), 0.0);
    }

    #[test]
    fn bandwidth_scales_linearly_with_bytes() {
        let one = bandwidth_gbps(1_000_000, PS_PER_MS);
        let two = bandwidth_gbps(2_000_000, PS_PER_MS);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }
}
