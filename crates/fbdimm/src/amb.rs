//! Advanced Memory Buffer (AMB) model.
//!
//! The AMB power model of the paper (Equation 3.2) distinguishes between
//! *local* traffic — requests served by the DIMM the AMB belongs to — and
//! *bypass* traffic — requests the AMB merely forwards along the daisy
//! chain. This module tracks that split per DIMM position, and computes the
//! AMB transport latency contribution to a memory transaction (the source of
//! variable read latency in FBDIMM).

use crate::config::FbdimmConfig;
use crate::time::Picos;
use crate::types::RequestKind;

/// Traffic accumulated by a single AMB (one DIMM position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmbCounters {
    /// Bytes of requests whose destination is this DIMM.
    pub local_bytes: u64,
    /// Bytes of requests this AMB forwarded to DIMMs farther down the chain.
    pub bypass_bytes: u64,
    /// Local read transactions.
    pub local_reads: u64,
    /// Local write transactions.
    pub local_writes: u64,
}

impl AmbCounters {
    /// Adds a local transaction of `bytes` bytes.
    pub fn record_local(&mut self, kind: RequestKind, bytes: u64) {
        self.local_bytes += bytes;
        match kind {
            RequestKind::Read => self.local_reads += 1,
            RequestKind::Write => self.local_writes += 1,
        }
    }

    /// Adds a bypassed transaction of `bytes` bytes.
    pub fn record_bypass(&mut self, bytes: u64) {
        self.bypass_bytes += bytes;
    }
}

/// Per-position AMB traffic accounting for the whole memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbNetwork {
    counters: Vec<AmbCounters>,
    dimms_per_channel: usize,
}

impl AmbNetwork {
    /// Creates accounting state for the given configuration.
    pub fn new(cfg: &FbdimmConfig) -> Self {
        AmbNetwork {
            counters: vec![AmbCounters::default(); cfg.dimm_positions()],
            dimms_per_channel: cfg.dimms_per_channel,
        }
    }

    /// Flat position index of (channel, dimm).
    pub fn position(&self, channel: usize, dimm: usize) -> usize {
        channel * self.dimms_per_channel + dimm
    }

    /// Records a transaction destined for `(channel, dimm)`. All AMBs between
    /// the controller and the destination record it as bypass traffic; the
    /// destination AMB records it as local traffic.
    ///
    /// Bypass traffic is counted for both reads and writes: a read's return
    /// data traverses the same intermediate AMBs northbound as its command
    /// did southbound, and the paper's model charges each bypassed request
    /// once (Section 3.3).
    pub fn record_transaction(&mut self, channel: usize, dimm: usize, kind: RequestKind, bytes: u64) {
        for upstream in 0..dimm {
            let idx = self.position(channel, upstream);
            self.counters[idx].record_bypass(bytes);
        }
        let idx = self.position(channel, dimm);
        self.counters[idx].record_local(kind, bytes);
    }

    /// Counters for a position.
    pub fn counters(&self, channel: usize, dimm: usize) -> &AmbCounters {
        &self.counters[self.position(channel, dimm)]
    }

    /// Iterates over all positions as `(channel, dimm, counters)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &AmbCounters)> + '_ {
        let dpc = self.dimms_per_channel;
        self.counters.iter().enumerate().map(move |(i, c)| (i / dpc, i % dpc, c))
    }

    /// Resets all counters (used when taking a traffic window snapshot).
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            *c = AmbCounters::default();
        }
    }

    /// Number of positions tracked.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the network tracks no positions.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// Southbound transport latency from the controller to DIMM position `dimm`
/// (0-indexed): one AMB hop per DIMM traversed plus the destination AMB's
/// translation latency.
pub fn southbound_latency(cfg: &FbdimmConfig, dimm: usize) -> Picos {
    cfg.amb_hop_latency * (dimm as u64 + 1) + cfg.amb_local_latency
}

/// Northbound transport latency from DIMM position `dimm` back to the
/// controller. When variable read latency is disabled, every DIMM pays the
/// latency of the farthest DIMM in the chain.
pub fn northbound_latency(cfg: &FbdimmConfig, dimm: usize) -> Picos {
    let effective = if cfg.variable_read_latency { dimm } else { cfg.dimms_per_channel - 1 };
    cfg.amb_hop_latency * (effective as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FbdimmConfig;

    fn cfg() -> FbdimmConfig {
        FbdimmConfig::ddr2_667_paper()
    }

    #[test]
    fn local_and_bypass_split() {
        let cfg = cfg();
        let mut net = AmbNetwork::new(&cfg);
        // A read to DIMM 2 on channel 0 bypasses DIMMs 0 and 1.
        net.record_transaction(0, 2, RequestKind::Read, 64);
        assert_eq!(net.counters(0, 2).local_bytes, 64);
        assert_eq!(net.counters(0, 2).local_reads, 1);
        assert_eq!(net.counters(0, 0).bypass_bytes, 64);
        assert_eq!(net.counters(0, 1).bypass_bytes, 64);
        assert_eq!(net.counters(0, 3).bypass_bytes, 0);
        // Other channel unaffected.
        assert_eq!(net.counters(1, 0).bypass_bytes, 0);
    }

    #[test]
    fn first_dimm_never_sees_bypass_from_itself() {
        let cfg = cfg();
        let mut net = AmbNetwork::new(&cfg);
        net.record_transaction(0, 0, RequestKind::Write, 64);
        assert_eq!(net.counters(0, 0).local_bytes, 64);
        assert_eq!(net.counters(0, 0).bypass_bytes, 0);
        assert_eq!(net.counters(0, 0).local_writes, 1);
    }

    #[test]
    fn closest_dimm_carries_most_bypass_under_uniform_traffic() {
        let cfg = cfg();
        let mut net = AmbNetwork::new(&cfg);
        for dimm in 0..cfg.dimms_per_channel {
            net.record_transaction(0, dimm, RequestKind::Read, 64);
        }
        let b0 = net.counters(0, 0).bypass_bytes;
        let b_last = net.counters(0, cfg.dimms_per_channel - 1).bypass_bytes;
        assert!(b0 > b_last);
        assert_eq!(b_last, 0);
    }

    #[test]
    fn reset_clears_all_counters() {
        let cfg = cfg();
        let mut net = AmbNetwork::new(&cfg);
        net.record_transaction(1, 3, RequestKind::Read, 64);
        net.reset();
        assert!(net.iter().all(|(_, _, c)| c.local_bytes == 0 && c.bypass_bytes == 0));
        assert_eq!(net.len(), cfg.dimm_positions());
        assert!(!net.is_empty());
    }

    #[test]
    fn variable_read_latency_grows_with_distance() {
        let cfg = cfg();
        assert!(northbound_latency(&cfg, 3) > northbound_latency(&cfg, 0));
        assert!(southbound_latency(&cfg, 3) > southbound_latency(&cfg, 0));
    }

    #[test]
    fn fixed_read_latency_equals_farthest_dimm() {
        let mut cfg = cfg();
        cfg.variable_read_latency = false;
        let far = northbound_latency(&cfg, cfg.dimms_per_channel - 1);
        for dimm in 0..cfg.dimms_per_channel {
            assert_eq!(northbound_latency(&cfg, dimm), far);
        }
    }
}
