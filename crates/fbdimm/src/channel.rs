//! Southbound / northbound channel link model.
//!
//! Each logical FBDIMM channel has two unidirectional links: the southbound
//! link carries commands and write data away from the controller, and the
//! northbound link returns read data. Both are modelled as serially-reusable
//! bandwidth resources: a transfer occupies the link for
//! `bytes / bandwidth` and transfers are serviced in reservation order.

use crate::time::Picos;

/// A unidirectional link modelled as a serially reusable resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Link {
    free_at: Picos,
    busy_ps: Picos,
    transfers: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new() -> Self {
        Link::default()
    }

    /// Earliest time a new transfer may start.
    pub fn free_at(&self) -> Picos {
        self.free_at
    }

    /// Reserves the link for a transfer of duration `occupancy`, starting no
    /// earlier than `earliest`. Returns the actual start time.
    pub fn reserve(&mut self, earliest: Picos, occupancy: Picos) -> Picos {
        let start = earliest.max(self.free_at);
        self.free_at = start + occupancy;
        self.busy_ps += occupancy;
        self.transfers += 1;
        start
    }

    /// Total time the link has been busy.
    pub fn busy_ps(&self) -> Picos {
        self.busy_ps
    }

    /// Number of transfers carried.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Utilization of the link over the interval `[0, horizon_ps]`.
    /// Returns a value in `[0, 1]` (clamped) or 0 for an empty horizon.
    pub fn utilization(&self, horizon_ps: Picos) -> f64 {
        if horizon_ps == 0 {
            return 0.0;
        }
        (self.busy_ps as f64 / horizon_ps as f64).min(1.0)
    }
}

/// The pair of links belonging to one logical channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelLinks {
    /// Southbound link (commands and write data).
    pub southbound: Link,
    /// Northbound link (read return data).
    pub northbound: Link,
}

impl ChannelLinks {
    /// Creates a channel with both links idle.
    pub fn new() -> Self {
        ChannelLinks::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_are_serialized() {
        let mut link = Link::new();
        let a = link.reserve(0, 100);
        let b = link.reserve(0, 100);
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(link.free_at(), 200);
    }

    #[test]
    fn reservation_respects_earliest() {
        let mut link = Link::new();
        let start = link.reserve(5_000, 10);
        assert_eq!(start, 5_000);
    }

    #[test]
    fn busy_time_and_transfer_count_accumulate() {
        let mut link = Link::new();
        link.reserve(0, 50);
        link.reserve(0, 70);
        assert_eq!(link.busy_ps(), 120);
        assert_eq!(link.transfers(), 2);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut link = Link::new();
        link.reserve(0, 500);
        assert_eq!(link.utilization(0), 0.0);
        assert!((link.utilization(1_000) - 0.5).abs() < 1e-12);
        assert_eq!(link.utilization(100), 1.0);
    }

    #[test]
    fn channel_links_start_idle() {
        let ch = ChannelLinks::new();
        assert_eq!(ch.southbound.free_at(), 0);
        assert_eq!(ch.northbound.free_at(), 0);
    }
}
