//! Memory controller model.
//!
//! The controller accepts memory transactions (in non-decreasing arrival
//! order), schedules them onto the FBDIMM channels under the close-page
//! auto-precharge policy and reports their completion times. Scheduling is
//! resource-reservation based: the transaction queue, the per-channel
//! southbound/northbound links, the per-bank timing state and the
//! row-activation throttle are all serially-reusable resources whose next
//! free times determine when each transaction proceeds.
//!
//! This is the same level of abstraction the paper's first-level simulator
//! needs: sustained throughput, per-DIMM traffic splits and queueing-induced
//! latency all emerge from contention on these resources.

use crate::amb::{northbound_latency, southbound_latency};
use crate::bank::BankGroup;
use crate::channel::ChannelLinks;
use crate::config::FbdimmConfig;
use crate::stats::{MemoryStats, TrafficWindow};
use crate::throttle::ActivationThrottle;
use crate::time::{Picos, PS_PER_US};
use crate::types::{map_address, MemRequest, RequestId, RequestKind};

/// Completion record of a memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Identifier assigned at enqueue time.
    pub id: RequestId,
    /// Requesting core (propagated from the request).
    pub core: usize,
    /// Read or write.
    pub kind: RequestKind,
    /// Arrival time of the request at the controller.
    pub arrival_ps: Picos,
    /// Time the transaction finished (last read data beat delivered to the
    /// controller, or write data absorbed by the DRAM).
    pub finish_ps: Picos,
}

impl Completion {
    /// End-to-end latency of the transaction.
    pub fn latency_ps(&self) -> Picos {
        self.finish_ps.saturating_sub(self.arrival_ps)
    }
}

/// Error returned when the controller cannot accept a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The memory subsystem is fully shut off (highest thermal emergency
    /// level); no transaction can be scheduled until it is re-enabled.
    MemoryShutOff,
    /// Requests must be presented in non-decreasing arrival order.
    OutOfOrderArrival {
        /// Arrival time of the most recently accepted request.
        last_arrival_ps: Picos,
        /// Arrival time of the rejected request.
        offending_arrival_ps: Picos,
    },
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::MemoryShutOff => write!(f, "memory subsystem is shut off by thermal management"),
            EnqueueError::OutOfOrderArrival { last_arrival_ps, offending_arrival_ps } => write!(
                f,
                "request arrival {offending_arrival_ps} ps precedes already-accepted arrival {last_arrival_ps} ps"
            ),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// Fixed-capacity ring of queue-slot release times, kept sorted ascending.
///
/// The controller's transaction queue holds at most `queue_entries` slots,
/// so the ring is allocated once at construction and never grows: freeing
/// expired slots advances the head pointer, and back-pressure pops the
/// earliest release time in O(1). Insertion keeps the ring sorted with a
/// binary search plus an in-ring shift — bounded by the (small, fixed)
/// queue capacity, with no per-transaction allocation.
#[derive(Debug, Clone)]
struct SlotRing {
    /// Release (finish) times, sorted ascending from `head`. The backing
    /// array is sized to the next power of two so ring indices wrap with a
    /// mask instead of a division.
    slots: Box<[Picos]>,
    /// `slots.len() - 1` (power-of-two capacity).
    mask: usize,
    /// Capacity limit actually honoured (`queue_entries`).
    capacity: usize,
    head: usize,
    len: usize,
}

impl SlotRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let storage = capacity.next_power_of_two();
        SlotRing { slots: vec![0; storage].into_boxed_slice(), mask: storage - 1, capacity, head: 0, len: 0 }
    }

    #[inline]
    fn at(&self, logical: usize) -> Picos {
        self.slots[(self.head + logical) & self.mask]
    }

    /// Frees every slot whose release time is at or before `now`.
    #[inline]
    fn release_until(&mut self, now: Picos) {
        while self.len > 0 && self.at(0) <= now {
            self.head = (self.head + 1) & self.mask;
            self.len -= 1;
        }
    }

    /// Removes and returns the earliest release time.
    fn pop_earliest(&mut self) -> Option<Picos> {
        if self.len == 0 {
            return None;
        }
        let t = self.at(0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(t)
    }

    /// Inserts a release time, keeping the ring sorted.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full (the controller pops a slot before pushing
    /// whenever the queue is at capacity, so this cannot happen in use).
    fn push(&mut self, t: Picos) {
        assert!(self.len < self.capacity, "slot ring overflow");
        // Binary search for the first element greater than `t`.
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.at(mid) <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Shift the tail right by one (within the ring) and place `t`.
        let mut i = self.len;
        while i > lo {
            self.slots[(self.head + i) & self.mask] = self.slots[(self.head + i - 1) & self.mask];
            i -= 1;
        }
        self.slots[(self.head + lo) & self.mask] = t;
        self.len += 1;
    }

    /// Number of slots still held strictly after `now` — a binary search
    /// over the sorted ring, constant-bounded by the fixed queue capacity.
    fn occupied_after(&self, now: Picos) -> usize {
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.at(mid) <= now {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.len - lo
    }
}

/// The FBDIMM memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: FbdimmConfig,
    channels: Vec<ChannelLinks>,
    banks: Vec<BankGroup>,
    throttle: ActivationThrottle,
    stats: MemoryStats,
    /// Release times of transactions still occupying a queue slot.
    queue_slots: SlotRing,
    /// Retained completion records ([`Self::drain_completions`]); not
    /// populated in stats-only mode.
    completions: Vec<Completion>,
    /// Whether completion records are retained. Closed-loop callers that
    /// consume each completion inline (the level-1 characterization runs)
    /// disable this so the record buffer does not grow unboundedly.
    record_completions: bool,
    next_id: u64,
    last_arrival: Picos,
    last_finish: Picos,
}

impl MemoryController {
    /// Creates a controller for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FbdimmConfig::validate`].
    pub fn new(cfg: FbdimmConfig) -> Self {
        cfg.validate().expect("invalid FBDIMM configuration");
        let positions = cfg.dimm_positions();
        MemoryController {
            channels: vec![ChannelLinks::new(); cfg.logical_channels],
            banks: (0..positions).map(|_| BankGroup::new(cfg.banks_per_dimm)).collect(),
            // A fine-grained (10 us) accounting window makes the activation
            // cap behave as a sustained-rate limit, which is how the DTM-BW
            // bandwidth limits of Table 4.3 are meant to act.
            throttle: ActivationThrottle::unlimited(10 * PS_PER_US),
            stats: MemoryStats::new(&cfg),
            queue_slots: SlotRing::new(cfg.queue_entries),
            completions: Vec::new(),
            record_completions: true,
            next_id: 0,
            last_arrival: 0,
            last_finish: 0,
            cfg,
        }
    }

    /// Enables or disables completion-record retention (on by default).
    ///
    /// With recording off the controller runs in *stats-only* mode:
    /// [`Self::enqueue_returning`] still hands each completion back to the
    /// caller, but nothing is retained for [`Self::drain_completions`] — the
    /// right mode for closed-loop characterization runs, which consume every
    /// completion inline and would otherwise grow the record buffer by one
    /// entry per transaction for the whole run.
    pub fn set_record_completions(&mut self, record: bool) {
        self.record_completions = record;
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &FbdimmConfig {
        &self.cfg
    }

    /// Sets the bandwidth throttle to an absolute byte-per-second cap, or
    /// removes the cap with `None`. A cap of `Some(0.0)` shuts the memory
    /// subsystem off entirely.
    pub fn set_bandwidth_cap(&mut self, cap_bytes_per_sec: Option<f64>) {
        match cap_bytes_per_sec {
            None => self.throttle.set_limit(None),
            Some(cap) if cap <= 0.0 => self.throttle.set_limit(Some(0)),
            Some(cap) => {
                let replacement =
                    ActivationThrottle::from_bandwidth_cap(self.throttle.window_ps(), cap, self.cfg.line_bytes);
                self.throttle.set_limit(replacement.limit());
            }
        }
    }

    /// Returns `true` if the subsystem is currently shut off.
    pub fn is_shut_off(&self) -> bool {
        self.throttle.is_shut_off()
    }

    /// Number of transactions whose queue slot is still held at time `now`.
    /// Derived from the sorted slot ring by binary search, so the cost is
    /// bounded by `log2(queue_entries)` — effectively constant — rather than
    /// a scan of the whole queue.
    pub fn occupancy_at(&self, now: Picos) -> usize {
        self.queue_slots.occupied_after(now)
    }

    /// Finish time of the most recently scheduled transaction.
    pub fn last_finish_ps(&self) -> Picos {
        self.last_finish
    }

    /// Enqueues (and schedules) one memory transaction.
    ///
    /// Requests must be presented in non-decreasing `arrival_ps` order; the
    /// controller models queue-full back-pressure by delaying the effective
    /// start of a request until a queue slot frees.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError::MemoryShutOff`] while the subsystem is shut
    /// off and [`EnqueueError::OutOfOrderArrival`] if arrival order is
    /// violated.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<RequestId, EnqueueError> {
        self.schedule(req).map(|c| c.id)
    }

    fn schedule(&mut self, req: MemRequest) -> Result<Completion, EnqueueError> {
        if self.is_shut_off() {
            return Err(EnqueueError::MemoryShutOff);
        }
        if req.arrival_ps < self.last_arrival {
            return Err(EnqueueError::OutOfOrderArrival {
                last_arrival_ps: self.last_arrival,
                offending_arrival_ps: req.arrival_ps,
            });
        }
        self.last_arrival = req.arrival_ps;

        let id = RequestId(self.next_id);
        self.next_id += 1;

        // Queue back-pressure: free slots whose transactions completed before
        // this request arrived, then wait for a slot if still full.
        self.queue_slots.release_until(req.arrival_ps);
        let mut start = req.arrival_ps;
        if self.queue_slots.len >= self.cfg.queue_entries {
            if let Some(slot_free) = self.queue_slots.pop_earliest() {
                start = start.max(slot_free);
            }
        }

        let loc = map_address(&self.cfg, req.line);
        let position = loc.channel * self.cfg.dimms_per_channel + loc.dimm;

        // Controller overhead, then the activation throttle.
        let start = start + self.cfg.controller_overhead;
        let start = self.throttle.reserve(start);

        // Southbound link: command frame (and write data, if any).
        let sb_occupancy = match req.kind {
            RequestKind::Read => self.cfg.southbound_command_occupancy(),
            RequestKind::Write => self.cfg.southbound_write_occupancy(),
        };
        let sb_start = self.channels[loc.channel].southbound.reserve(start, sb_occupancy);
        let cmd_at_dimm = sb_start + sb_occupancy + southbound_latency(&self.cfg, loc.dimm);

        // DRAM bank access (close page with auto-precharge).
        let issue = self.banks[position].issue(loc.bank, req.kind, cmd_at_dimm, &self.cfg.timings);

        let finish = match req.kind {
            RequestKind::Read => {
                // Read data returns over the northbound link and passes back
                // through the upstream AMBs.
                let nb_occupancy = self.cfg.northbound_occupancy();
                let nb_start = self.channels[loc.channel].northbound.reserve(issue.data_done_at, nb_occupancy);
                nb_start + nb_occupancy + northbound_latency(&self.cfg, loc.dimm)
            }
            RequestKind::Write => issue.data_done_at,
        };

        self.last_finish = self.last_finish.max(finish);
        self.queue_slots.push(finish);
        self.stats.record(loc.channel, loc.dimm, req.kind, self.cfg.line_bytes, finish.saturating_sub(req.arrival_ps));
        let completion =
            Completion { id, core: req.core, kind: req.kind, arrival_ps: req.arrival_ps, finish_ps: finish };
        if self.record_completions {
            self.completions.push(completion);
        }
        Ok(completion)
    }

    /// Enqueues a transaction and returns its completion record directly
    /// (the completion is *also* retained for [`Self::drain_completions`]
    /// unless stats-only mode is active; see
    /// [`Self::set_record_completions`]). This is the interface the
    /// closed-loop CPU model uses.
    ///
    /// # Errors
    ///
    /// Same as [`Self::enqueue`].
    pub fn enqueue_returning(&mut self, req: MemRequest) -> Result<Completion, EnqueueError> {
        self.schedule(req)
    }

    /// Removes and returns all completions recorded so far, sorted by finish
    /// time.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut out = std::mem::take(&mut self.completions);
        out.sort_by_key(|c| (c.finish_ps, c.id));
        out
    }

    /// Takes a traffic window snapshot ending at `now_ps`.
    pub fn take_window(&mut self, now_ps: Picos) -> TrafficWindow {
        self.stats.take_window(now_ps)
    }

    /// Immutable access to accumulated statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ps_from_ns, PS_PER_SEC};

    fn controller() -> MemoryController {
        MemoryController::new(FbdimmConfig::ddr2_667_paper())
    }

    #[test]
    fn single_read_latency_is_plausible() {
        let mut mc = controller();
        mc.enqueue(MemRequest::new(0, RequestKind::Read, 0)).unwrap();
        let done = mc.drain_completions();
        assert_eq!(done.len(), 1);
        let lat = done[0].latency_ps();
        // Must be at least the DRAM core latency plus controller overhead,
        // and comfortably under a microsecond for an unloaded system.
        let t = FbdimmConfig::ddr2_667_paper().timings;
        assert!(lat >= t.read_core_latency() + ps_from_ns(12.0), "latency {lat}");
        assert!(lat < ps_from_ns(1_000.0), "latency {lat}");
    }

    #[test]
    fn write_completes_without_northbound_traffic() {
        let mut mc = controller();
        mc.enqueue(MemRequest::new(1, RequestKind::Write, 0)).unwrap();
        let done = mc.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].kind.is_write());
        assert!(done[0].finish_ps > 0);
    }

    #[test]
    fn farther_dimm_has_longer_read_latency() {
        // With variable read latency, a DIMM deeper in the chain takes longer.
        let cfg = FbdimmConfig::ddr2_667_paper();
        let mut mc = MemoryController::new(cfg);
        // Find two lines mapping to the same channel/bank but different DIMMs.
        let near = (0..10_000u64)
            .find(|&l| {
                let loc = map_address(&cfg, l);
                loc.channel == 0 && loc.dimm == 0 && loc.bank == 0
            })
            .unwrap();
        let far = (0..10_000u64)
            .find(|&l| {
                let loc = map_address(&cfg, l);
                loc.channel == 0 && loc.dimm == cfg.dimms_per_channel - 1 && loc.bank == 1
            })
            .unwrap();
        mc.enqueue(MemRequest::new(near, RequestKind::Read, 0)).unwrap();
        mc.enqueue(MemRequest::new(far, RequestKind::Read, 0)).unwrap();
        let done = mc.drain_completions();
        let near_lat = done.iter().find(|c| c.id == RequestId(0)).unwrap().latency_ps();
        let far_lat = done.iter().find(|c| c.id == RequestId(1)).unwrap().latency_ps();
        assert!(far_lat > near_lat, "far {far_lat} near {near_lat}");
    }

    #[test]
    fn sustained_read_throughput_approaches_channel_peak() {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let mut mc = MemoryController::new(cfg);
        // Saturate with reads spread over all channels/banks.
        let n = 200_000u64;
        for line in 0..n {
            mc.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
        }
        let finish = mc.last_finish_ps();
        let bytes = n * cfg.line_bytes;
        let gbps = bytes as f64 / 1e9 / (finish as f64 / PS_PER_SEC as f64);
        let peak = cfg.peak_read_bandwidth_gbps();
        assert!(gbps > 0.6 * peak, "sustained {gbps:.2} GB/s vs peak {peak:.2} GB/s");
        assert!(gbps <= peak * 1.01, "sustained {gbps:.2} GB/s exceeds peak {peak:.2} GB/s");
    }

    #[test]
    fn bandwidth_cap_limits_sustained_throughput() {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let mut mc = MemoryController::new(cfg);
        mc.set_bandwidth_cap(Some(6.4e9));
        let n = 100_000u64;
        for line in 0..n {
            mc.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
        }
        let finish = mc.last_finish_ps();
        let gbps = (n * cfg.line_bytes) as f64 / 1e9 / (finish as f64 / PS_PER_SEC as f64);
        assert!(gbps <= 6.5, "capped throughput {gbps:.2} GB/s");
        assert!(gbps > 5.0, "capped throughput {gbps:.2} GB/s suspiciously low");
    }

    #[test]
    fn shut_off_memory_rejects_requests() {
        let mut mc = controller();
        mc.set_bandwidth_cap(Some(0.0));
        assert!(mc.is_shut_off());
        let err = mc.enqueue(MemRequest::new(0, RequestKind::Read, 0)).unwrap_err();
        assert_eq!(err, EnqueueError::MemoryShutOff);
        // Re-enabling restores service.
        mc.set_bandwidth_cap(None);
        assert!(mc.enqueue(MemRequest::new(0, RequestKind::Read, 0)).is_ok());
    }

    #[test]
    fn out_of_order_arrivals_are_rejected() {
        let mut mc = controller();
        mc.enqueue(MemRequest::at(0, RequestKind::Read, 0, 1_000)).unwrap();
        let err = mc.enqueue(MemRequest::at(1, RequestKind::Read, 0, 500)).unwrap_err();
        assert!(matches!(err, EnqueueError::OutOfOrderArrival { .. }));
        assert!(err.to_string().contains("500"));
    }

    #[test]
    fn queue_backpressure_delays_bursts() {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let mut open = MemoryController::new(cfg);
        let mut tiny = {
            let mut c = cfg;
            c.queue_entries = 2;
            MemoryController::new(c)
        };
        // Same burst to the same bank at time 0: the 2-entry queue must take
        // at least as long as the 64-entry queue and its early requests see
        // extra queueing delay for later ones.
        for line in (0..64u64).map(|i| i * 16) {
            open.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
            tiny.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
        }
        assert!(tiny.last_finish_ps() >= open.last_finish_ps());
    }

    #[test]
    fn window_snapshot_reports_read_and_write_split() {
        let mut mc = controller();
        for line in 0..1_000u64 {
            let kind = if line % 4 == 0 { RequestKind::Write } else { RequestKind::Read };
            mc.enqueue(MemRequest::new(line, kind, 0)).unwrap();
        }
        let end = mc.last_finish_ps();
        let w = mc.take_window(end);
        assert_eq!(w.reads + w.writes, 1_000);
        assert!(w.read_gbps > w.write_gbps);
        assert!(w.mean_read_latency_ns > 0.0);
        assert_eq!(w.activations, 1_000);
    }

    #[test]
    fn occupancy_reflects_outstanding_transactions() {
        let mut mc = controller();
        for line in 0..32u64 {
            mc.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
        }
        assert!(mc.occupancy_at(0) > 0);
        assert_eq!(mc.occupancy_at(mc.last_finish_ps()), 0);
    }

    #[test]
    fn occupancy_matches_explicit_count_at_every_probe_time() {
        // The ring-derived occupancy must agree with a brute-force count of
        // completions still in flight, at arbitrary probe times.
        let mut mc = controller();
        for line in 0..200u64 {
            mc.enqueue(MemRequest::new(line * 7, RequestKind::Read, 0)).unwrap();
        }
        let horizon = mc.last_finish_ps();
        let done = mc.drain_completions();
        for probe in (0..=10).map(|i| horizon * i / 10) {
            // Slots freed lazily on enqueue never exceed the in-flight count,
            // and at/after the horizon both must be zero.
            let in_flight = done.iter().filter(|c| c.finish_ps > probe).count();
            assert!(
                mc.occupancy_at(probe) <= in_flight.min(mc.config().queue_entries),
                "probe {probe}: occupancy {} vs in-flight {in_flight}",
                mc.occupancy_at(probe)
            );
        }
        assert_eq!(mc.occupancy_at(horizon), 0);
    }

    #[test]
    fn stats_only_mode_matches_recording_mode_exactly() {
        // Same request stream through a recording and a stats-only
        // controller: every completion handed back and every statistic must
        // be identical — only the retained record buffer differs.
        let mut recording = controller();
        let mut stats_only = controller();
        stats_only.set_record_completions(false);
        for line in 0..5_000u64 {
            let kind = if line % 5 == 0 { RequestKind::Write } else { RequestKind::Read };
            let a = recording.enqueue_returning(MemRequest::new(line, kind, 0)).unwrap();
            let b = stats_only.enqueue_returning(MemRequest::new(line, kind, 0)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(recording.last_finish_ps(), stats_only.last_finish_ps());
        let horizon = recording.last_finish_ps();
        assert_eq!(recording.take_window(horizon), stats_only.take_window(horizon));
        assert_eq!(recording.drain_completions().len(), 5_000);
        assert!(stats_only.drain_completions().is_empty(), "stats-only mode must not retain records");
    }

    #[test]
    fn slot_ring_stays_sorted_under_mixed_traffic() {
        let mut ring = SlotRing::new(8);
        for t in [50, 10, 30, 70, 20, 60, 40, 80] {
            ring.push(t);
        }
        assert_eq!(ring.occupied_after(0), 8);
        assert_eq!(ring.occupied_after(45), 4);
        assert_eq!(ring.pop_earliest(), Some(10));
        ring.release_until(40);
        assert_eq!(ring.pop_earliest(), Some(50));
        // Refill across the wrapped head to exercise modular shifting.
        ring.push(55);
        ring.push(5);
        assert_eq!(ring.pop_earliest(), Some(5));
        assert_eq!(ring.occupied_after(54), 4);
        assert_eq!(ring.occupied_after(55), 3);
        assert_eq!(ring.occupied_after(100), 0);
    }
}
