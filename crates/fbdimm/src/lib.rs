//! # fbdimm-sim
//!
//! A transaction-level simulator of a Fully Buffered DIMM (FBDIMM) memory
//! subsystem, as used by the ISCA 2007 paper *Thermal modeling and management
//! of DRAM memory systems*.
//!
//! The simulator models:
//!
//! * DDR2 DRAM bank timing (`tRCD`, `tCL`, `tRP`, `tRAS`, `tRC`, `tWL`,
//!   `tWTR`, `tRRD`, burst transfers) under the close-page, auto-precharge
//!   policy used throughout the paper,
//! * the Advanced Memory Buffer (AMB) on every DIMM, including the split of
//!   traffic into *local* requests (served by the DIMM's own DRAM devices)
//!   and *bypass* requests (forwarded along the daisy chain), which is the
//!   quantity the AMB power model of the paper consumes,
//! * the narrow southbound (commands + write data) and northbound (read
//!   data) channel links with their respective peak bandwidths,
//! * a memory controller with a bounded transaction queue, variable read
//!   latency along the daisy chain, and the row-activation-window bandwidth
//!   throttling mechanism used by the DTM-BW scheme.
//!
//! The model operates at memory-transaction granularity (one event per
//! 64-byte cache-line transfer) rather than per DRAM command cycle; bank and
//! link occupancy are tracked with next-free timestamps so that sustained
//! throughput, queueing delay and per-DIMM traffic splits come out of the
//! simulation rather than being assumed.
//!
//! ## Quick example
//!
//! ```
//! use fbdimm_sim::{FbdimmConfig, MemorySystem, MemRequest, RequestKind};
//!
//! let mut mem = MemorySystem::new(FbdimmConfig::ddr2_667_paper());
//! // Issue a read to line address 0 and advance time until it completes.
//! let id = mem.enqueue(MemRequest::new(0, RequestKind::Read, 0)).unwrap();
//! let done = mem.run_until_idle();
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].id, id);
//! assert!(done[0].finish_ps > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amb;
pub mod bank;
pub mod channel;
pub mod config;
pub mod controller;
pub mod stats;
pub mod system;
pub mod throttle;
pub mod time;
pub mod types;

pub use config::{DramTimings, FbdimmConfig};
pub use controller::{EnqueueError, MemoryController};
pub use stats::{ChannelTraffic, DimmTraffic, MemoryStats, TrafficWindow};
pub use system::{Completion, MemorySystem};
pub use throttle::ActivationThrottle;
pub use time::{ps_from_ns, ps_from_us, ps_to_ns, ps_to_secs, Picos, PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};
pub use types::{DimmLocation, LineAddr, MemRequest, RequestId, RequestKind};
