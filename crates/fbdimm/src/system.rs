//! Top-level memory-system façade.
//!
//! [`MemorySystem`] wraps the [`MemoryController`] with the small amount of
//! bookkeeping the CPU model and the two-level thermal simulator need: a
//! notion of "run until everything issued so far has completed", traffic
//! window snapshots and bandwidth-cap control.

use crate::config::FbdimmConfig;
use crate::controller::{EnqueueError, MemoryController};
use crate::stats::TrafficWindow;
use crate::time::Picos;
use crate::types::{MemRequest, RequestId};

pub use crate::controller::Completion;

/// Summary of a completed batch of transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSummary {
    /// Number of transactions in the batch.
    pub transactions: u64,
    /// Time the last transaction finished.
    pub finish_ps: Picos,
    /// Mean latency over the batch in nanoseconds.
    pub mean_latency_ns: f64,
    /// Achieved throughput over the batch in GB/s.
    pub throughput_gbps: f64,
}

/// The FBDIMM memory subsystem.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    controller: MemoryController,
}

impl MemorySystem {
    /// Creates a memory system from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FbdimmConfig::validate`]).
    pub fn new(cfg: FbdimmConfig) -> Self {
        MemorySystem { controller: MemoryController::new(cfg) }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FbdimmConfig {
        self.controller.config()
    }

    /// Enqueues a transaction; see [`MemoryController::enqueue`].
    ///
    /// # Errors
    ///
    /// Propagates [`EnqueueError`] from the controller.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<RequestId, EnqueueError> {
        self.controller.enqueue(req)
    }

    /// Enqueues a transaction and returns its completion record directly;
    /// see [`MemoryController::enqueue_returning`].
    ///
    /// # Errors
    ///
    /// Propagates [`EnqueueError`] from the controller.
    pub fn enqueue_returning(&mut self, req: MemRequest) -> Result<Completion, EnqueueError> {
        self.controller.enqueue_returning(req)
    }

    /// Enables or disables completion-record retention (stats-only mode when
    /// disabled); see [`MemoryController::set_record_completions`].
    pub fn set_record_completions(&mut self, record: bool) {
        self.controller.set_record_completions(record);
    }

    /// Returns all completions recorded so far (sorted by finish time) and
    /// clears the internal completion buffer.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        self.controller.drain_completions()
    }

    /// Finish time of the latest transaction scheduled so far.
    pub fn horizon_ps(&self) -> Picos {
        self.controller.last_finish_ps()
    }

    /// Sets (or clears) the bandwidth cap used by DTM-BW style throttling.
    pub fn set_bandwidth_cap(&mut self, cap_bytes_per_sec: Option<f64>) {
        self.controller.set_bandwidth_cap(cap_bytes_per_sec);
    }

    /// Whether the memory subsystem is currently shut off.
    pub fn is_shut_off(&self) -> bool {
        self.controller.is_shut_off()
    }

    /// Takes a traffic window snapshot ending at `now_ps`.
    pub fn take_window(&mut self, now_ps: Picos) -> TrafficWindow {
        self.controller.take_window(now_ps)
    }

    /// Issues a whole batch of requests (in order) and summarises the result.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EnqueueError`] encountered.
    pub fn run_batch<I>(&mut self, requests: I) -> Result<BatchSummary, EnqueueError>
    where
        I: IntoIterator<Item = MemRequest>,
    {
        let mut n = 0u64;
        let mut bytes = 0u64;
        for req in requests {
            self.enqueue(req)?;
            n += 1;
            bytes += self.config().line_bytes;
        }
        let completions = self.run_until_idle();
        let finish = completions.iter().map(|c| c.finish_ps).max().unwrap_or(0);
        let mean_latency_ns = if completions.is_empty() {
            0.0
        } else {
            completions.iter().map(|c| c.latency_ps() as f64).sum::<f64>() / completions.len() as f64 / 1_000.0
        };
        let throughput_gbps =
            if finish == 0 { 0.0 } else { bytes as f64 / 1e9 / (finish as f64 / crate::time::PS_PER_SEC as f64) };
        Ok(BatchSummary { transactions: n, finish_ps: finish, mean_latency_ns, throughput_gbps })
    }

    /// Immutable access to the underlying controller (for advanced callers).
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// Mutable access to the underlying controller (for advanced callers).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RequestKind;

    #[test]
    fn batch_of_reads_reports_sane_summary() {
        let mut mem = MemorySystem::new(FbdimmConfig::ddr2_667_paper());
        let reqs = (0..10_000u64).map(|l| MemRequest::new(l, RequestKind::Read, 0));
        let summary = mem.run_batch(reqs).unwrap();
        assert_eq!(summary.transactions, 10_000);
        assert!(summary.throughput_gbps > 1.0);
        assert!(summary.mean_latency_ns > 30.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut mem = MemorySystem::new(FbdimmConfig::ddr2_667_paper());
        let summary = mem.run_batch(std::iter::empty()).unwrap();
        assert_eq!(summary.transactions, 0);
        assert_eq!(summary.finish_ps, 0);
        assert_eq!(summary.throughput_gbps, 0.0);
    }

    #[test]
    fn window_after_batch_contains_all_traffic() {
        let mut mem = MemorySystem::new(FbdimmConfig::ddr2_667_paper());
        for l in 0..5_000u64 {
            mem.enqueue(MemRequest::new(l, RequestKind::Read, 0)).unwrap();
        }
        let horizon = mem.horizon_ps();
        let w = mem.take_window(horizon);
        assert_eq!(w.reads, 5_000);
    }

    #[test]
    fn bandwidth_cap_round_trips_through_system_facade() {
        let mut mem = MemorySystem::new(FbdimmConfig::ddr2_667_paper());
        mem.set_bandwidth_cap(Some(0.0));
        assert!(mem.is_shut_off());
        mem.set_bandwidth_cap(None);
        assert!(!mem.is_shut_off());
    }
}
