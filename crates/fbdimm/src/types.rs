//! Request, address and identifier types shared across the simulator.

use crate::config::FbdimmConfig;
use crate::time::Picos;

/// A 64-byte-line address (i.e. the physical address divided by the line
/// size). Address mapping into channel / DIMM / bank / row is derived from
/// this value.
pub type LineAddr = u64;

/// Unique identifier of an in-flight memory request, assigned by the
/// controller at enqueue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Kind of a memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A read (cache-line fill).
    Read,
    /// A write (dirty line write-back).
    Write,
}

impl RequestKind {
    /// Returns `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, RequestKind::Read)
    }

    /// Returns `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, RequestKind::Write)
    }
}

/// A memory request presented to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Line address of the access.
    pub line: LineAddr,
    /// Read or write.
    pub kind: RequestKind,
    /// Identifier of the requesting core (used only for statistics).
    pub core: usize,
    /// Time at which the request arrived at the controller.
    pub arrival_ps: Picos,
}

impl MemRequest {
    /// Creates a request arriving at time zero.
    ///
    /// ```
    /// use fbdimm_sim::{MemRequest, RequestKind};
    /// let r = MemRequest::new(0x40, RequestKind::Write, 2);
    /// assert!(r.kind.is_write());
    /// assert_eq!(r.core, 2);
    /// ```
    pub fn new(line: LineAddr, kind: RequestKind, core: usize) -> Self {
        MemRequest { line, kind, core, arrival_ps: 0 }
    }

    /// Creates a request with an explicit arrival time.
    pub fn at(line: LineAddr, kind: RequestKind, core: usize, arrival_ps: Picos) -> Self {
        MemRequest { line, kind, core, arrival_ps }
    }
}

/// Location of a line in the memory subsystem: logical channel, DIMM
/// position along the daisy chain (0 = closest to the controller) and bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimmLocation {
    /// Logical channel index.
    pub channel: usize,
    /// DIMM position along the daisy chain; 0 is closest to the controller.
    pub dimm: usize,
    /// Bank index within the DIMM.
    pub bank: usize,
    /// DRAM row (used only to detect row-buffer locality in open-page mode).
    pub row: u64,
}

/// Maps a line address to its location using the paper's interleaving:
/// consecutive lines rotate across logical channels first (to spread
/// bandwidth), then across DIMMs, then across banks; the remaining bits form
/// the row.
///
/// ```
/// use fbdimm_sim::types::map_address;
/// use fbdimm_sim::FbdimmConfig;
/// let cfg = FbdimmConfig::ddr2_667_paper();
/// let a = map_address(&cfg, 0);
/// let b = map_address(&cfg, 1);
/// assert_ne!((a.channel, a.dimm, a.bank), (b.channel, b.dimm, b.bank));
/// ```
pub fn map_address(cfg: &FbdimmConfig, line: LineAddr) -> DimmLocation {
    // One division pair per level, replaced by mask/shift for the (usual)
    // power-of-two counts: this runs once per memory transaction of the
    // closed-loop level-1 simulation.
    #[inline]
    fn split(value: u64, count: u64) -> (u64, u64) {
        if count.is_power_of_two() {
            (value & (count - 1), value >> count.trailing_zeros())
        } else {
            (value % count, value / count)
        }
    }

    let (channel, rest) = split(line, cfg.logical_channels as u64);
    let (bank, rest) = split(rest, cfg.banks_per_dimm as u64);
    let (dimm, row) = split(rest, cfg.dimms_per_channel as u64);

    DimmLocation { channel: channel as usize, dimm: dimm as usize, bank: bank as usize, row }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FbdimmConfig {
        FbdimmConfig::ddr2_667_paper()
    }

    #[test]
    fn request_kind_predicates() {
        assert!(RequestKind::Read.is_read());
        assert!(!RequestKind::Read.is_write());
        assert!(RequestKind::Write.is_write());
    }

    #[test]
    fn mapping_is_within_bounds() {
        let cfg = cfg();
        for line in 0..10_000u64 {
            let loc = map_address(&cfg, line);
            assert!(loc.channel < cfg.logical_channels);
            assert!(loc.dimm < cfg.dimms_per_channel);
            assert!(loc.bank < cfg.banks_per_dimm);
        }
    }

    #[test]
    fn consecutive_lines_alternate_channels() {
        let cfg = cfg();
        let a = map_address(&cfg, 100);
        let b = map_address(&cfg, 101);
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn mapping_is_deterministic_and_injective_over_small_range() {
        let cfg = cfg();
        let total_slots = (cfg.logical_channels * cfg.dimms_per_channel * cfg.banks_per_dimm) as u64;
        let mut seen = std::collections::HashSet::new();
        for line in 0..total_slots {
            let loc = map_address(&cfg, line);
            assert_eq!(loc.row, 0, "first rotation stays in row 0");
            assert!(seen.insert((loc.channel, loc.dimm, loc.bank)), "collision at line {line}");
        }
        assert_eq!(seen.len() as u64, total_slots);
    }

    #[test]
    fn display_of_request_id() {
        assert_eq!(RequestId(7).to_string(), "req#7");
    }
}
