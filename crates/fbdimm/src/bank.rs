//! DRAM bank timing model.
//!
//! Under the close-page policy with auto-precharge every transaction is an
//! activate / column access / precharge triplet, so the bank model reduces to
//! tracking when the bank may accept its next activation and when the data
//! phase of the current access completes. The model still distinguishes
//! reads from writes because their bank-occupancy and data timing differ
//! (`tCL` vs `tWL`, read-to-precharge vs write-to-precharge recovery).

use crate::config::DramTimings;
use crate::time::Picos;
use crate::types::RequestKind;

/// Timing outcome of issuing one close-page transaction to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankIssue {
    /// Time the activate command was accepted by the bank.
    pub activate_at: Picos,
    /// Time the last beat of data is available at the DRAM pins (reads) or
    /// has been absorbed by the DRAM (writes).
    pub data_done_at: Picos,
    /// Time the bank becomes available for the next activation.
    pub ready_again_at: Picos,
}

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    /// Earliest time the bank can accept a new activation.
    ready_at: Picos,
    /// Number of activations issued to this bank.
    activations: u64,
    /// Number of reads issued to this bank.
    reads: u64,
    /// Number of writes issued to this bank.
    writes: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// Creates an idle, precharged bank.
    pub fn new() -> Self {
        Bank { ready_at: 0, activations: 0, reads: 0, writes: 0 }
    }

    /// Earliest time the bank can accept a new activation.
    pub fn ready_at(&self) -> Picos {
        self.ready_at
    }

    /// Total activations issued so far (equals reads + writes under
    /// close-page auto-precharge).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes issued so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Issues a close-page transaction at or after `earliest`, returning its
    /// timing. The activate is delayed until the bank is ready.
    pub fn issue(&mut self, kind: RequestKind, earliest: Picos, t: &DramTimings) -> BankIssue {
        let activate_at = earliest.max(self.ready_at);
        let (data_done_at, ready_again_at) = match kind {
            RequestKind::Read => (activate_at + t.t_rcd + t.t_cl + t.t_burst, activate_at + t.read_bank_occupancy()),
            RequestKind::Write => (activate_at + t.t_rcd + t.t_wl + t.t_burst, activate_at + t.write_bank_occupancy()),
        };
        self.ready_at = ready_again_at;
        self.activations += 1;
        match kind {
            RequestKind::Read => self.reads += 1,
            RequestKind::Write => self.writes += 1,
        }
        BankIssue { activate_at, data_done_at, ready_again_at }
    }
}

/// A group of banks belonging to one DIMM position, enforcing the
/// activate-to-activate spacing (`tRRD`) between different banks of the same
/// DIMM in addition to per-bank timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankGroup {
    banks: Vec<Bank>,
    last_activate: Picos,
}

impl BankGroup {
    /// Creates `n` idle banks.
    pub fn new(n: usize) -> Self {
        BankGroup { banks: vec![Bank::new(); n.max(1)], last_activate: 0 }
    }

    /// Number of banks in the group.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Returns `true` if the group holds no banks (never the case for groups
    /// built through [`BankGroup::new`]).
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// Earliest time bank `bank` could accept an activation, accounting for
    /// both the bank's own occupancy and the DIMM-wide `tRRD` spacing.
    pub fn earliest_activate(&self, bank: usize, t: &DramTimings) -> Picos {
        let bank_ready = self.banks[bank].ready_at();
        let rrd_ready = self.last_activate + t.t_rrd;
        bank_ready.max(rrd_ready)
    }

    /// Issues a transaction to bank `bank` at or after `earliest`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn issue(&mut self, bank: usize, kind: RequestKind, earliest: Picos, t: &DramTimings) -> BankIssue {
        let start = earliest.max(self.earliest_activate(bank, t));
        let issue = self.banks[bank].issue(kind, start, t);
        self.last_activate = issue.activate_at;
        issue
    }

    /// Total activations over all banks in the group.
    pub fn activations(&self) -> u64 {
        self.banks.iter().map(Bank::activations).sum()
    }

    /// Per-bank immutable access (for statistics).
    pub fn bank(&self, idx: usize) -> &Bank {
        &self.banks[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramTimings;
    use crate::time::ps_from_ns;

    fn t() -> DramTimings {
        DramTimings::ddr2_667()
    }

    #[test]
    fn read_latency_matches_timing_sum() {
        let mut bank = Bank::new();
        let issue = bank.issue(RequestKind::Read, 0, &t());
        assert_eq!(issue.activate_at, 0);
        assert_eq!(issue.data_done_at, t().t_rcd + t().t_cl + t().t_burst);
        assert_eq!(issue.ready_again_at, t().read_bank_occupancy());
    }

    #[test]
    fn back_to_back_reads_are_separated_by_trc() {
        let mut bank = Bank::new();
        let first = bank.issue(RequestKind::Read, 0, &t());
        let second = bank.issue(RequestKind::Read, 0, &t());
        assert_eq!(second.activate_at, first.ready_again_at);
        assert!(second.activate_at >= t().t_rc);
    }

    #[test]
    fn write_occupies_bank_longer_than_read() {
        let mut r = Bank::new();
        let mut w = Bank::new();
        let read = r.issue(RequestKind::Read, 0, &t());
        let write = w.issue(RequestKind::Write, 0, &t());
        assert!(write.ready_again_at > read.ready_again_at);
    }

    #[test]
    fn issue_respects_earliest_start() {
        let mut bank = Bank::new();
        let later = ps_from_ns(500.0);
        let issue = bank.issue(RequestKind::Read, later, &t());
        assert_eq!(issue.activate_at, later);
    }

    #[test]
    fn counters_track_reads_and_writes() {
        let mut bank = Bank::new();
        bank.issue(RequestKind::Read, 0, &t());
        bank.issue(RequestKind::Write, 0, &t());
        bank.issue(RequestKind::Write, 0, &t());
        assert_eq!(bank.reads(), 1);
        assert_eq!(bank.writes(), 2);
        assert_eq!(bank.activations(), 3);
    }

    #[test]
    fn group_enforces_trrd_between_different_banks() {
        let mut group = BankGroup::new(8);
        let a = group.issue(0, RequestKind::Read, 0, &t());
        let b = group.issue(1, RequestKind::Read, 0, &t());
        assert!(b.activate_at >= a.activate_at + t().t_rrd);
    }

    #[test]
    fn group_different_banks_overlap_more_than_same_bank() {
        let timings = t();
        let mut group = BankGroup::new(8);
        group.issue(0, RequestKind::Read, 0, &timings);
        let other_bank = group.earliest_activate(1, &timings);
        let same_bank = group.earliest_activate(0, &timings);
        assert!(other_bank < same_bank, "bank-level parallelism must exist");
    }

    #[test]
    fn group_activation_total_accumulates() {
        let mut group = BankGroup::new(4);
        for i in 0..12 {
            group.issue(i % 4, RequestKind::Read, 0, &t());
        }
        assert_eq!(group.activations(), 12);
        assert_eq!(group.len(), 4);
        assert!(!group.is_empty());
    }
}
