//! Traffic and latency statistics.
//!
//! The second-level thermal simulator consumes memory traffic in fixed
//! windows (10 ms in the paper). [`MemoryStats`] accumulates raw byte and
//! latency counters and can be snapshotted into a [`TrafficWindow`], which
//! reports the throughput quantities the power model needs: read/write
//! throughput of the subsystem and, per DIMM, the local/bypass split seen by
//! each AMB.

use crate::amb::AmbNetwork;
use crate::config::FbdimmConfig;
use crate::time::{bandwidth_gbps, Picos};
use crate::types::RequestKind;

/// Per-DIMM-position traffic over a window, in GB/s, normalized to one
/// *physical* DIMM (the simulator models ganged physical channels as one
/// logical position; the power model wants per-physical-DIMM numbers).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DimmTraffic {
    /// Logical channel index.
    pub channel: usize,
    /// DIMM position along the chain (0 = closest to controller).
    pub dimm: usize,
    /// Local (served-here) throughput in GB/s per physical DIMM.
    pub local_gbps: f64,
    /// Bypass (forwarded) throughput in GB/s per physical DIMM.
    pub bypass_gbps: f64,
    /// Read throughput fraction of the local traffic (0..=1).
    pub read_fraction: f64,
}

/// Per-logical-channel aggregate traffic over a window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelTraffic {
    /// Logical channel index.
    pub channel: usize,
    /// Read throughput in GB/s.
    pub read_gbps: f64,
    /// Write throughput in GB/s.
    pub write_gbps: f64,
}

/// A snapshot of memory traffic over one accounting window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficWindow {
    /// Window length in picoseconds.
    pub window_ps: Picos,
    /// Subsystem-wide read throughput, GB/s.
    pub read_gbps: f64,
    /// Subsystem-wide write throughput, GB/s.
    pub write_gbps: f64,
    /// Number of read transactions completed in the window.
    pub reads: u64,
    /// Number of write transactions completed in the window.
    pub writes: u64,
    /// Row activations performed in the window.
    pub activations: u64,
    /// Mean read latency (arrival to last data beat) in nanoseconds, or 0 if
    /// no reads completed.
    pub mean_read_latency_ns: f64,
    /// Per-channel traffic.
    pub channels: Vec<ChannelTraffic>,
    /// Per-DIMM-position traffic (local/bypass split for the AMB power
    /// model).
    pub dimms: Vec<DimmTraffic>,
}

impl TrafficWindow {
    /// Total throughput (read + write) in GB/s.
    pub fn total_gbps(&self) -> f64 {
        self.read_gbps + self.write_gbps
    }

    /// Traffic of the hottest DIMM position — the one with the highest
    /// local + bypass throughput — which the thermal model uses as the
    /// representative (worst-case) DIMM.
    pub fn hottest_dimm(&self) -> Option<&DimmTraffic> {
        self.dimms.iter().max_by(|a, b| {
            (a.local_gbps + a.bypass_gbps)
                .partial_cmp(&(b.local_gbps + b.bypass_gbps))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Accumulating statistics for the memory subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStats {
    cfg: FbdimmConfig,
    window_start: Picos,
    read_bytes: u64,
    write_bytes: u64,
    reads: u64,
    writes: u64,
    activations: u64,
    read_latency_sum_ps: u128,
    read_latency_count: u64,
    per_channel_read_bytes: Vec<u64>,
    per_channel_write_bytes: Vec<u64>,
    amb: AmbNetwork,
    // Lifetime totals (not reset by window snapshots).
    total_read_bytes: u64,
    total_write_bytes: u64,
    total_activations: u64,
}

impl MemoryStats {
    /// Creates empty statistics for a configuration.
    pub fn new(cfg: &FbdimmConfig) -> Self {
        MemoryStats {
            cfg: *cfg,
            window_start: 0,
            read_bytes: 0,
            write_bytes: 0,
            reads: 0,
            writes: 0,
            activations: 0,
            read_latency_sum_ps: 0,
            read_latency_count: 0,
            per_channel_read_bytes: vec![0; cfg.logical_channels],
            per_channel_write_bytes: vec![0; cfg.logical_channels],
            amb: AmbNetwork::new(cfg),
            total_read_bytes: 0,
            total_write_bytes: 0,
            total_activations: 0,
        }
    }

    /// Records one completed transaction.
    pub fn record(&mut self, channel: usize, dimm: usize, kind: RequestKind, bytes: u64, latency_ps: Picos) {
        self.activations += 1;
        self.total_activations += 1;
        match kind {
            RequestKind::Read => {
                self.read_bytes += bytes;
                self.total_read_bytes += bytes;
                self.reads += 1;
                self.per_channel_read_bytes[channel] += bytes;
                self.read_latency_sum_ps += latency_ps as u128;
                self.read_latency_count += 1;
            }
            RequestKind::Write => {
                self.write_bytes += bytes;
                self.total_write_bytes += bytes;
                self.writes += 1;
                self.per_channel_write_bytes[channel] += bytes;
            }
        }
        self.amb.record_transaction(channel, dimm, kind, bytes);
    }

    /// Lifetime read bytes (never reset).
    pub fn total_read_bytes(&self) -> u64 {
        self.total_read_bytes
    }

    /// Lifetime write bytes (never reset).
    pub fn total_write_bytes(&self) -> u64 {
        self.total_write_bytes
    }

    /// Lifetime activations (never reset).
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Takes a window snapshot covering `[window_start, now_ps]` and resets
    /// the window accumulators (lifetime totals are preserved).
    pub fn take_window(&mut self, now_ps: Picos) -> TrafficWindow {
        let window_ps = now_ps.saturating_sub(self.window_start).max(1);
        let phys = self.cfg.phys_per_logical.max(1) as f64;

        let channels = (0..self.cfg.logical_channels)
            .map(|c| ChannelTraffic {
                channel: c,
                read_gbps: bandwidth_gbps(self.per_channel_read_bytes[c], window_ps),
                write_gbps: bandwidth_gbps(self.per_channel_write_bytes[c], window_ps),
            })
            .collect();

        let dimms = self
            .amb
            .iter()
            .map(|(channel, dimm, counters)| {
                let local = bandwidth_gbps(counters.local_bytes, window_ps) / phys;
                let bypass = bandwidth_gbps(counters.bypass_bytes, window_ps) / phys;
                let total_local = counters.local_reads + counters.local_writes;
                let read_fraction =
                    if total_local == 0 { 0.0 } else { counters.local_reads as f64 / total_local as f64 };
                DimmTraffic { channel, dimm, local_gbps: local, bypass_gbps: bypass, read_fraction }
            })
            .collect();

        let mean_read_latency_ns = if self.read_latency_count == 0 {
            0.0
        } else {
            self.read_latency_sum_ps as f64 / self.read_latency_count as f64 / 1_000.0
        };

        let window = TrafficWindow {
            window_ps,
            read_gbps: bandwidth_gbps(self.read_bytes, window_ps),
            write_gbps: bandwidth_gbps(self.write_bytes, window_ps),
            reads: self.reads,
            writes: self.writes,
            activations: self.activations,
            mean_read_latency_ns,
            channels,
            dimms,
        };

        // Reset window accumulators.
        self.window_start = now_ps;
        self.read_bytes = 0;
        self.write_bytes = 0;
        self.reads = 0;
        self.writes = 0;
        self.activations = 0;
        self.read_latency_sum_ps = 0;
        self.read_latency_count = 0;
        self.per_channel_read_bytes.iter_mut().for_each(|b| *b = 0);
        self.per_channel_write_bytes.iter_mut().for_each(|b| *b = 0);
        self.amb.reset();

        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::PS_PER_MS;

    fn cfg() -> FbdimmConfig {
        FbdimmConfig::ddr2_667_paper()
    }

    #[test]
    fn throughput_is_bytes_over_window() {
        let cfg = cfg();
        let mut stats = MemoryStats::new(&cfg);
        // 1 MB of reads over 1 ms = 1 GB/s.
        let lines = (1_000_000 / cfg.line_bytes) as usize;
        for i in 0..lines {
            stats.record(i % 2, 0, RequestKind::Read, cfg.line_bytes, 100_000);
        }
        let w = stats.take_window(PS_PER_MS);
        assert!((w.read_gbps - 1.0).abs() < 0.01, "read_gbps = {}", w.read_gbps);
        assert_eq!(w.write_gbps, 0.0);
        assert_eq!(w.reads as usize, lines);
    }

    #[test]
    fn window_reset_preserves_lifetime_totals() {
        let cfg = cfg();
        let mut stats = MemoryStats::new(&cfg);
        stats.record(0, 0, RequestKind::Read, 64, 1_000);
        stats.record(0, 0, RequestKind::Write, 64, 0);
        let _ = stats.take_window(PS_PER_MS);
        let w2 = stats.take_window(2 * PS_PER_MS);
        assert_eq!(w2.reads, 0);
        assert_eq!(w2.writes, 0);
        assert_eq!(stats.total_read_bytes(), 64);
        assert_eq!(stats.total_write_bytes(), 64);
        assert_eq!(stats.total_activations(), 2);
    }

    #[test]
    fn per_dimm_split_reaches_window() {
        let cfg = cfg();
        let mut stats = MemoryStats::new(&cfg);
        // Traffic to the farthest DIMM creates bypass on closer ones.
        for _ in 0..1_000 {
            stats.record(0, 3, RequestKind::Read, 64, 50_000);
        }
        let w = stats.take_window(PS_PER_MS);
        let d0 = w.dimms.iter().find(|d| d.channel == 0 && d.dimm == 0).unwrap();
        let d3 = w.dimms.iter().find(|d| d.channel == 0 && d.dimm == 3).unwrap();
        assert!(d0.bypass_gbps > 0.0);
        assert_eq!(d0.local_gbps, 0.0);
        assert!(d3.local_gbps > 0.0);
        assert_eq!(d3.bypass_gbps, 0.0);
        assert_eq!(d3.read_fraction, 1.0);
        let hottest = w.hottest_dimm().unwrap();
        assert_eq!((hottest.channel, hottest.dimm), (0, 3));
    }

    #[test]
    fn mean_read_latency_is_averaged_in_ns() {
        let cfg = cfg();
        let mut stats = MemoryStats::new(&cfg);
        stats.record(0, 0, RequestKind::Read, 64, 100_000); // 100 ns
        stats.record(0, 0, RequestKind::Read, 64, 300_000); // 300 ns
        let w = stats.take_window(PS_PER_MS);
        assert!((w.mean_read_latency_ns - 200.0).abs() < 1e-9);
    }

    #[test]
    fn total_gbps_sums_read_and_write() {
        let w = TrafficWindow { read_gbps: 3.0, write_gbps: 1.5, ..TrafficWindow::default() };
        assert!((w.total_gbps() - 4.5).abs() < 1e-12);
    }
}
