//! Configuration of the FBDIMM memory subsystem.
//!
//! The default configuration ([`FbdimmConfig::ddr2_667_paper`]) reproduces
//! Table 4.1 of the paper: two logical (four physical) FBDIMM channels, four
//! DIMMs per physical channel, eight banks per DIMM, DDR2-667 devices with
//! 5-5-5 timing and a 64-entry controller queue with 12 ns overhead.

use crate::time::{ps_from_ns, Picos};

/// DDR2 device timing parameters, in picoseconds.
///
/// The names follow the usual JEDEC mnemonics; the values of the default
/// constructor are the DDR2-667 5-5-5 parameters listed in Table 4.1 of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTimings {
    /// Activate-to-read delay (`tRCD`).
    pub t_rcd: Picos,
    /// Read-to-data-valid delay (CAS latency, `tCL`).
    pub t_cl: Picos,
    /// Precharge-to-activate delay (`tRP`).
    pub t_rp: Picos,
    /// Activate-to-precharge minimum (`tRAS`).
    pub t_ras: Picos,
    /// Activate-to-activate minimum for the same bank (`tRC`).
    pub t_rc: Picos,
    /// Write-to-read turnaround (`tWTR`).
    pub t_wtr: Picos,
    /// Write latency (`tWL`).
    pub t_wl: Picos,
    /// Write-to-precharge delay (`tWPD`).
    pub t_wpd: Picos,
    /// Read-to-precharge delay (`tRPD`).
    pub t_rpd: Picos,
    /// Activate-to-activate minimum across banks of a DIMM (`tRRD`).
    pub t_rrd: Picos,
    /// Data burst duration for one 64-byte line transfer on the DDR2 bus.
    pub t_burst: Picos,
}

impl DramTimings {
    /// DDR2-667 (5-5-5) timings from Table 4.1.
    pub fn ddr2_667() -> Self {
        DramTimings {
            t_rcd: ps_from_ns(15.0),
            t_cl: ps_from_ns(15.0),
            t_rp: ps_from_ns(15.0),
            t_ras: ps_from_ns(39.0),
            t_rc: ps_from_ns(54.0),
            t_wtr: ps_from_ns(9.0),
            t_wl: ps_from_ns(12.0),
            t_wpd: ps_from_ns(36.0),
            t_rpd: ps_from_ns(9.0),
            t_rrd: ps_from_ns(9.0),
            // Burst length 4 at 667 MT/s moves 32 bytes per physical channel;
            // the 64-byte line is striped over the two ganged physical
            // channels, so the burst occupies 4 beats = 6 ns of DRAM bus time.
            t_burst: ps_from_ns(6.0),
        }
    }

    /// Read latency from activation to the last data beat at the DRAM pins
    /// (excluding channel/AMB transport): `tRCD + tCL + tBURST`.
    pub fn read_core_latency(&self) -> Picos {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Time a bank remains unavailable after a close-page read with
    /// auto-precharge.
    pub fn read_bank_occupancy(&self) -> Picos {
        // The bank can be activated again after tRC, but the precharge that
        // follows the read must also respect tRAS + tRP.
        self.t_rc.max(self.t_ras + self.t_rp)
    }

    /// Time a bank remains unavailable after a close-page write with
    /// auto-precharge.
    pub fn write_bank_occupancy(&self) -> Picos {
        // Activate -> write command (tRCD) -> data (tWL + burst) -> write
        // recovery to precharge (tWPD) -> precharge (tRP).
        (self.t_rcd + self.t_wl + self.t_burst + self.t_wpd + self.t_rp).max(self.t_rc)
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        Self::ddr2_667()
    }
}

/// Full configuration of the FBDIMM memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FbdimmConfig {
    /// Number of logical channels (each logical channel gangs
    /// `phys_per_logical` physical FBDIMM channels that operate in lockstep).
    pub logical_channels: usize,
    /// Physical channels ganged into one logical channel.
    pub phys_per_logical: usize,
    /// DIMMs per physical channel (daisy-chain depth).
    pub dimms_per_channel: usize,
    /// DRAM banks per DIMM.
    pub banks_per_dimm: usize,
    /// Bytes moved by one memory transaction (an L2 line).
    pub line_bytes: u64,
    /// DDR2 device timings.
    pub timings: DramTimings,
    /// Peak northbound (read-return) bandwidth of one *physical* channel in
    /// bytes per second.
    pub northbound_bw_bytes_per_sec: f64,
    /// Peak southbound (command + write data) bandwidth of one *physical*
    /// channel in bytes per second.
    pub southbound_bw_bytes_per_sec: f64,
    /// AMB pass-through (forwarding) latency per daisy-chain hop.
    pub amb_hop_latency: Picos,
    /// Fixed latency of translating a request inside the destination AMB.
    pub amb_local_latency: Picos,
    /// Memory controller overhead added to every transaction.
    pub controller_overhead: Picos,
    /// Capacity of the controller transaction queue.
    pub queue_entries: usize,
    /// Whether variable read latency (VRL) is enabled. When disabled every
    /// DIMM observes the latency of the farthest DIMM in the chain.
    pub variable_read_latency: bool,
}

impl FbdimmConfig {
    /// The configuration used throughout the paper's simulation study
    /// (Table 4.1): 2 logical / 4 physical channels of DDR2-667 FBDIMM,
    /// 4 DIMMs per physical channel, 8 banks per DIMM, 64-entry controller
    /// queue with 12 ns overhead.
    pub fn ddr2_667_paper() -> Self {
        FbdimmConfig {
            logical_channels: 2,
            phys_per_logical: 2,
            dimms_per_channel: 4,
            banks_per_dimm: 8,
            line_bytes: 64,
            timings: DramTimings::ddr2_667(),
            // DDR2-667: 667 MT/s x 8 bytes = 5.333 GB/s read return per
            // physical channel; the southbound link carries 16 bytes of write
            // data per 3 ns DRAM cycle = 5.333 GB/s as well.
            northbound_bw_bytes_per_sec: 667.0e6 * 8.0,
            southbound_bw_bytes_per_sec: 667.0e6 * 8.0,
            amb_hop_latency: ps_from_ns(3.0),
            amb_local_latency: ps_from_ns(5.0),
            controller_overhead: ps_from_ns(12.0),
            queue_entries: 64,
            variable_read_latency: true,
        }
    }

    /// Configuration matching the Chapter 5 servers: two FBDIMM channels
    /// with `dimms` DIMMs in total (2 on the PE1950, 4 on the SR1500AL).
    pub fn server(dimms: usize) -> Self {
        let mut cfg = Self::ddr2_667_paper();
        cfg.logical_channels = 1;
        cfg.phys_per_logical = 2;
        cfg.dimms_per_channel = dimms.max(1);
        cfg
    }

    /// Total number of DIMM *positions* (logical channels × chain depth).
    /// Each position corresponds to `phys_per_logical` physical DIMMs.
    pub fn dimm_positions(&self) -> usize {
        self.logical_channels * self.dimms_per_channel
    }

    /// One all-zero [`DimmTraffic`](crate::stats::DimmTraffic) entry per
    /// DIMM position, in (channel-major, chain-position) order — the
    /// canonical traffic split of an idle (or shut-off) memory subsystem,
    /// shaped exactly like a live [`TrafficWindow::dimms`]
    /// (crate::stats::TrafficWindow::dimms) so the power model can consume
    /// either without special cases.
    pub fn idle_dimm_traffic(&self) -> Vec<crate::stats::DimmTraffic> {
        (0..self.logical_channels)
            .flat_map(|c| (0..self.dimms_per_channel).map(move |d| (c, d)))
            .map(|(channel, dimm)| crate::stats::DimmTraffic { channel, dimm, ..Default::default() })
            .collect()
    }

    /// Total number of physical DIMMs in the subsystem.
    pub fn physical_dimms(&self) -> usize {
        self.dimm_positions() * self.phys_per_logical
    }

    /// Peak northbound (read) bandwidth of one logical channel, bytes/s.
    pub fn logical_northbound_bw(&self) -> f64 {
        self.northbound_bw_bytes_per_sec * self.phys_per_logical as f64
    }

    /// Peak southbound bandwidth of one logical channel, bytes/s.
    pub fn logical_southbound_bw(&self) -> f64 {
        self.southbound_bw_bytes_per_sec * self.phys_per_logical as f64
    }

    /// Aggregate peak read bandwidth of the whole subsystem in GB/s.
    pub fn peak_read_bandwidth_gbps(&self) -> f64 {
        self.logical_northbound_bw() * self.logical_channels as f64 / 1e9
    }

    /// Time the northbound link of a logical channel is occupied by one
    /// line's read-return data.
    pub fn northbound_occupancy(&self) -> Picos {
        let secs = self.line_bytes as f64 / self.logical_northbound_bw();
        (secs * 1e12).round() as Picos
    }

    /// Time the southbound link of a logical channel is occupied by one
    /// line's write data (plus its command).
    pub fn southbound_write_occupancy(&self) -> Picos {
        let secs = self.line_bytes as f64 / self.logical_southbound_bw();
        (secs * 1e12).round() as Picos
    }

    /// Time the southbound link is occupied by a read command frame.
    pub fn southbound_command_occupancy(&self) -> Picos {
        // Up to three commands share one 3 ns southbound frame.
        ps_from_ns(1.0)
    }

    /// Validates structural parameters, returning a human-readable error for
    /// nonsensical configurations.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any of the structural counts is zero or a bandwidth
    /// is not strictly positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.logical_channels == 0 {
            return Err("logical_channels must be at least 1".into());
        }
        if self.phys_per_logical == 0 {
            return Err("phys_per_logical must be at least 1".into());
        }
        if self.dimms_per_channel == 0 {
            return Err("dimms_per_channel must be at least 1".into());
        }
        if self.banks_per_dimm == 0 {
            return Err("banks_per_dimm must be at least 1".into());
        }
        if self.line_bytes == 0 {
            return Err("line_bytes must be at least 1".into());
        }
        if self.queue_entries == 0 {
            return Err("queue_entries must be at least 1".into());
        }
        if self.northbound_bw_bytes_per_sec <= 0.0 || self.southbound_bw_bytes_per_sec <= 0.0 {
            return Err("link bandwidths must be positive".into());
        }
        Ok(())
    }
}

impl Default for FbdimmConfig {
    fn default() -> Self {
        Self::ddr2_667_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let cfg = FbdimmConfig::ddr2_667_paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.dimm_positions(), 8);
        assert_eq!(cfg.physical_dimms(), 16);
    }

    #[test]
    fn peak_read_bandwidth_matches_paper_order_of_magnitude() {
        // Table in Section 2.2 quotes ~21 GB/s peak for the two-way server.
        let cfg = FbdimmConfig::ddr2_667_paper();
        let peak = cfg.peak_read_bandwidth_gbps();
        assert!(peak > 20.0 && peak < 22.5, "peak read bandwidth {peak} GB/s");
    }

    #[test]
    fn ddr2_timing_relationships_hold() {
        let t = DramTimings::ddr2_667();
        assert!(t.t_rc >= t.t_ras, "tRC must cover tRAS");
        assert!(t.read_core_latency() >= t.t_rcd + t.t_cl);
        assert!(t.write_bank_occupancy() >= t.read_bank_occupancy());
    }

    #[test]
    fn occupancies_are_positive_and_sane() {
        let cfg = FbdimmConfig::ddr2_667_paper();
        // 64 bytes at ~10.7 GB/s is ~6 ns.
        let nb = cfg.northbound_occupancy();
        assert!(nb > ps_from_ns(4.0) && nb < ps_from_ns(8.0), "nb occupancy {nb}");
        assert!(cfg.southbound_write_occupancy() > 0);
        assert!(cfg.southbound_command_occupancy() > 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FbdimmConfig::ddr2_667_paper();
        cfg.banks_per_dimm = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = FbdimmConfig::ddr2_667_paper();
        cfg.northbound_bw_bytes_per_sec = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = FbdimmConfig::ddr2_667_paper();
        cfg.queue_entries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn idle_dimm_traffic_covers_every_position_with_zeroes() {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let idle = cfg.idle_dimm_traffic();
        assert_eq!(idle.len(), cfg.dimm_positions());
        for (i, d) in idle.iter().enumerate() {
            assert_eq!((d.channel, d.dimm), (i / cfg.dimms_per_channel, i % cfg.dimms_per_channel));
            assert_eq!((d.local_gbps, d.bypass_gbps, d.read_fraction), (0.0, 0.0, 0.0));
        }
    }

    #[test]
    fn server_config_reflects_dimm_count() {
        let cfg = FbdimmConfig::server(4);
        cfg.validate().unwrap();
        assert_eq!(cfg.dimms_per_channel, 4);
        assert_eq!(cfg.logical_channels, 1);
    }
}
