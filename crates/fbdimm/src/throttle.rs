//! Row-activation-window bandwidth throttling.
//!
//! The Intel 5000-series chipset (and the DTM-BW scheme built on it) limits
//! memory throughput by capping the number of row activations permitted in a
//! fixed time window. Under the close-page policy every transaction performs
//! exactly one activation, so an activation cap is equivalent to a byte
//! bandwidth cap, which is how the DTM schemes express their limits
//! (Table 4.3: "no limit", 19.2 GB/s, 12.8 GB/s, 6.4 GB/s, off).

use crate::time::{Picos, PS_PER_SEC};

/// Window-based activation throttle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationThrottle {
    /// Length of the accounting window.
    window_ps: Picos,
    /// Maximum activations per window; `None` means unlimited and
    /// `Some(0)` means the memory system is fully shut off.
    max_per_window: Option<u64>,
    /// Start of the current window.
    window_start: Picos,
    /// Activations granted in the current window.
    used: u64,
}

impl ActivationThrottle {
    /// Creates an unlimited throttle with the given accounting window.
    pub fn unlimited(window_ps: Picos) -> Self {
        ActivationThrottle { window_ps: window_ps.max(1), max_per_window: None, window_start: 0, used: 0 }
    }

    /// Creates a throttle that permits `max_per_window` activations per
    /// window.
    pub fn with_limit(window_ps: Picos, max_per_window: u64) -> Self {
        ActivationThrottle {
            window_ps: window_ps.max(1),
            max_per_window: Some(max_per_window),
            window_start: 0,
            used: 0,
        }
    }

    /// Creates a throttle expressed as a byte-bandwidth cap, converting it to
    /// an activation cap assuming `bytes_per_activation` bytes move per
    /// activation (64 under the paper's close-page configuration).
    pub fn from_bandwidth_cap(window_ps: Picos, cap_bytes_per_sec: f64, bytes_per_activation: u64) -> Self {
        let window_secs = window_ps as f64 / PS_PER_SEC as f64;
        let max = (cap_bytes_per_sec * window_secs / bytes_per_activation as f64).floor() as u64;
        Self::with_limit(window_ps, max)
    }

    /// Replaces the limit while keeping window accounting state.
    pub fn set_limit(&mut self, max_per_window: Option<u64>) {
        self.max_per_window = max_per_window;
    }

    /// Returns the configured per-window limit.
    pub fn limit(&self) -> Option<u64> {
        self.max_per_window
    }

    /// Returns the accounting window length.
    pub fn window_ps(&self) -> Picos {
        self.window_ps
    }

    /// Returns `true` if the throttle currently blocks all traffic.
    pub fn is_shut_off(&self) -> bool {
        self.max_per_window == Some(0)
    }

    /// Reserves one activation at or after `earliest`, returning the time at
    /// which the activation is allowed to proceed.
    ///
    /// # Panics
    ///
    /// Panics if the throttle is fully shut off (`Some(0)`); callers must
    /// check [`ActivationThrottle::is_shut_off`] first, because a shut-off
    /// memory system has no meaningful "next allowed" time.
    pub fn reserve(&mut self, earliest: Picos) -> Picos {
        let Some(max) = self.max_per_window else {
            return earliest;
        };
        assert!(max > 0, "reserve() called on a fully shut-off throttle");

        // Advance the window so that `earliest` falls inside it.
        self.roll_to(earliest);
        if self.used < max {
            self.used += 1;
            return earliest;
        }
        // Window exhausted: the activation slides to the start of the next
        // window (and consumes a slot there).
        let next_window = self.window_start + self.window_ps;
        self.window_start = next_window;
        self.used = 1;
        next_window
    }

    fn roll_to(&mut self, t: Picos) {
        if t >= self.window_start + self.window_ps {
            let windows_ahead = (t - self.window_start) / self.window_ps;
            self.window_start += windows_ahead * self.window_ps;
            self.used = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::PS_PER_MS;

    #[test]
    fn unlimited_never_delays() {
        let mut th = ActivationThrottle::unlimited(PS_PER_MS);
        for i in 0..1_000u64 {
            assert_eq!(th.reserve(i * 10), i * 10);
        }
    }

    #[test]
    fn limit_delays_to_next_window() {
        let mut th = ActivationThrottle::with_limit(1_000, 2);
        assert_eq!(th.reserve(0), 0);
        assert_eq!(th.reserve(0), 0);
        // Third activation in the same window slides to the next window.
        assert_eq!(th.reserve(0), 1_000);
        // And it consumed a slot there: one more fits, then the next slides.
        assert_eq!(th.reserve(1_000), 1_000);
        assert_eq!(th.reserve(1_000), 2_000);
    }

    #[test]
    fn windows_roll_forward_with_time() {
        let mut th = ActivationThrottle::with_limit(1_000, 1);
        assert_eq!(th.reserve(0), 0);
        // A much later request lands in its own window with a fresh budget.
        assert_eq!(th.reserve(10_500), 10_500);
    }

    #[test]
    fn bandwidth_cap_translates_to_activations() {
        // 6.4 GB/s with a 10 ms window and 64-byte lines: 6.4e9 * 0.01 / 64 = 1e6.
        let th = ActivationThrottle::from_bandwidth_cap(10 * PS_PER_MS, 6.4e9, 64);
        assert_eq!(th.limit(), Some(1_000_000));
    }

    #[test]
    fn sustained_rate_respects_cap() {
        // 100 activations per 1 us window -> 1e8 activations/s -> with 64 B
        // lines that is 6.4 GB/s.
        let window = 1_000_000; // 1 us in ps
        let mut th = ActivationThrottle::with_limit(window, 100);
        let mut t = 0;
        let n = 10_000u64;
        for _ in 0..n {
            t = th.reserve(t);
        }
        // Completing n activations must take at least (n / 100 - 1) windows.
        assert!(t >= (n / 100 - 1) * window);
    }

    #[test]
    fn shut_off_is_detectable() {
        let th = ActivationThrottle::with_limit(1_000, 0);
        assert!(th.is_shut_off());
        let th = ActivationThrottle::unlimited(1_000);
        assert!(!th.is_shut_off());
    }

    #[test]
    #[should_panic(expected = "shut-off")]
    fn reserving_on_shut_off_panics() {
        let mut th = ActivationThrottle::with_limit(1_000, 0);
        th.reserve(0);
    }

    #[test]
    fn set_limit_switches_behaviour() {
        let mut th = ActivationThrottle::unlimited(1_000);
        th.set_limit(Some(1));
        assert_eq!(th.reserve(0), 0);
        assert!(th.reserve(0) >= 1_000);
        th.set_limit(None);
        assert_eq!(th.reserve(5_000), 5_000);
    }
}
