//! DTM-BW: memory bandwidth throttling (Section 4.2.1).
//!
//! The memory controller limits throughput according to the thermal
//! emergency level (Table 4.3: no limit / 19.2 / 12.8 / 6.4 GB/s / off).

use cpu_model::CpuConfig;

use crate::dtm::emergency::EmergencyLevel;
use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::dtm::selector::LevelSelector;
use crate::sim::modes::scheme_mode;
use crate::thermal::params::ThermalLimits;
use crate::thermal::scene::ThermalObservation;

/// The bandwidth-throttling policy.
#[derive(Debug, Clone)]
pub struct DtmBw {
    cpu: CpuConfig,
    selector: LevelSelector,
}

impl DtmBw {
    /// Threshold-driven DTM-BW.
    pub fn new(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmBw { cpu, selector: LevelSelector::threshold(limits) }
    }

    /// PID-driven DTM-BW.
    pub fn with_pid(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmBw { cpu, selector: LevelSelector::pid(limits) }
    }
}

impl DtmPolicy for DtmBw {
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> ActuationPlan {
        let level = self.selector.select(observation.max_amb_c, observation.max_dram_c, dt_s);
        scheme_mode(DtmScheme::Bw, level, &self.cpu).into()
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::Bw
    }

    fn uses_pid(&self) -> bool {
        self.selector.uses_pid()
    }

    fn reset(&mut self) {
        self.selector.reset();
    }

    fn observes_field(&self) -> bool {
        // Decisions read only the scalar device maxima.
        false
    }

    fn is_steady(&self, observation: &ThermalObservation, _plan: &ActuationPlan, drift_c: f64) -> bool {
        // The plan is a pure function of the emergency level, so the policy
        // is steady exactly when threshold level selection is (PID variants
        // carry integral state and are never steady).
        self.selector.is_steady(observation.max_amb_c, observation.max_dram_c, drift_c)
    }

    fn is_steady_band(
        &self,
        observation: &ThermalObservation,
        _plan: &ActuationPlan,
        below_c: f64,
        above_c: f64,
    ) -> bool {
        self.selector.is_steady_band(observation.max_amb_c, observation.max_dram_c, below_c, above_c)
    }

    fn plan_decided_by_region(
        &self,
        observation: &ThermalObservation,
        amb_span_c: f64,
        dram_span_c: f64,
    ) -> Option<ActuationPlan> {
        // The plan is a pure function of the emergency level, so the unique
        // level of the rectangle (if any) names the unique plan.
        self.selector
            .region_level_rect(
                observation.max_amb_c,
                observation.max_dram_c,
                observation.max_amb_c + amb_span_c,
                observation.max_dram_c + dram_span_c,
            )
            .map(|level| scheme_mode(DtmScheme::Bw, level, &self.cpu).into())
    }

    fn decision_key(&self, max_amb_c: f64, max_dram_c: f64) -> Option<u8> {
        // The plan is a pure function of the emergency level, so the level
        // index keys the decision (PID variants are stateful and refuse).
        self.selector.pure_level(max_amb_c, max_dram_c).map(|level| level.index() as u8)
    }

    fn plan_for_key(&self, key: u8) -> Option<ActuationPlan> {
        if self.selector.uses_pid() {
            return None;
        }
        Some(scheme_mode(DtmScheme::Bw, EmergencyLevel::from_index(key as usize), &self.cpu).into())
    }

    fn decide_is_pure(&self) -> bool {
        // Threshold selection is a pure function of the observed maxima;
        // the PID variant integrates and is never pure.
        !self.selector.uses_pid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DtmBw {
        DtmBw::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm())
    }

    #[test]
    fn no_limit_when_cool() {
        let mut p = policy();
        assert_eq!(p.decide_temps(100.0, 70.0, 1.0).bandwidth_cap, None);
    }

    #[test]
    fn caps_tighten_as_temperature_rises() {
        let mut p = policy();
        let caps: Vec<_> =
            [108.5, 109.2, 109.7].iter().map(|&t| p.decide_temps(t, 70.0, 1.0).bandwidth_cap.unwrap()).collect();
        assert!(caps[0] > caps[1] && caps[1] > caps[2]);
        assert!((caps[2] - 6.4e9).abs() < 1.0);
    }

    #[test]
    fn cores_are_never_gated_by_bandwidth_throttling() {
        let mut p = policy();
        for t in [100.0, 108.5, 109.2, 109.7] {
            assert_eq!(p.decide_temps(t, 70.0, 1.0).active_cores, 4);
        }
    }

    #[test]
    fn tdp_shuts_memory_off() {
        let mut p = policy();
        assert!(!p.decide_temps(110.5, 70.0, 1.0).makes_progress());
    }

    #[test]
    fn pid_variant_reports_itself() {
        let p = DtmBw::with_pid(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        assert!(p.uses_pid());
        assert_eq!(p.name(), "DTM-BW+PID");
    }
}
