//! Thermal emergency levels (Table 4.3 / Table 5.1).
//!
//! The DTM policies quantize the sensed AMB and DRAM temperatures into a
//! small number of *thermal emergency levels*; each level maps to one
//! control decision of the scheme (bandwidth limit, number of active cores,
//! DVFS point). Level 1 means "no emergency", the highest level means the
//! thermal design point has been reached and the memory must be shut off.

use crate::thermal::params::ThermalLimits;

/// A thermal emergency level. `L1` is the coolest (no action), `L5` the
/// hottest (memory shut off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EmergencyLevel {
    /// No thermal emergency.
    L1,
    /// Mild emergency.
    L2,
    /// Moderate emergency.
    L3,
    /// Severe emergency.
    L4,
    /// At or above the thermal design point.
    L5,
}

impl EmergencyLevel {
    /// All levels in increasing severity.
    pub const ALL: [EmergencyLevel; 5] =
        [EmergencyLevel::L1, EmergencyLevel::L2, EmergencyLevel::L3, EmergencyLevel::L4, EmergencyLevel::L5];

    /// Zero-based index (L1 = 0).
    pub fn index(self) -> usize {
        match self {
            EmergencyLevel::L1 => 0,
            EmergencyLevel::L2 => 1,
            EmergencyLevel::L3 => 2,
            EmergencyLevel::L4 => 3,
            EmergencyLevel::L5 => 4,
        }
    }

    /// Level from a zero-based index, clamped to `L5`.
    pub fn from_index(index: usize) -> Self {
        *Self::ALL.get(index).unwrap_or(&EmergencyLevel::L5)
    }

    /// The more severe of two levels.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The fraction of a channel's traffic a per-channel throttling policy
    /// serves at this level: the Table 4.3 DTM-BW caps
    /// ([`BW_LIMITS_GBPS`](crate::sim::modes::BW_LIMITS_GBPS) — no limit /
    /// 19.2 / 12.8 / 6.4 GB/s / off) normalized to the subsystem's
    /// [`PEAK_BANDWIDTH_GBPS`](crate::sim::modes::PEAK_BANDWIDTH_GBPS)
    /// (25.6 GB/s), i.e. 1.0 / 0.75 / 0.5 / 0.25 / 0.0 — derived from the
    /// same constants DTM-BW's global caps use, so retuning the caps
    /// retunes the fractions with them. Applying the fraction per channel
    /// instead of capping the whole subsystem is what lets
    /// [`DtmCbw`](crate::dtm::cbw::DtmCbw) throttle only the channels that
    /// are actually hot.
    pub fn service_fraction(self) -> f64 {
        use crate::sim::modes::{BW_LIMITS_GBPS, PEAK_BANDWIDTH_GBPS};
        match self {
            EmergencyLevel::L1 => 1.0,
            EmergencyLevel::L5 => 0.0,
            level => BW_LIMITS_GBPS[level.index() - 1] / PEAK_BANDWIDTH_GBPS,
        }
    }
}

impl std::fmt::Display for EmergencyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.index() + 1)
    }
}

/// Temperature boundaries defining the emergency levels for one pair of
/// sensed temperatures (AMB and DRAM).
///
/// `amb_bounds[i]` is the temperature at which level `i + 2` begins; a
/// temperature below `amb_bounds[0]` is level 1. The two devices may define
/// a different number of levels on the two servers, but within one table the
/// AMB and DRAM boundary lists have the same length.
#[derive(Debug, Clone, PartialEq)]
pub struct EmergencyThresholds {
    amb_bounds: Vec<f64>,
    dram_bounds: Vec<f64>,
}

impl EmergencyThresholds {
    /// Builds thresholds from explicit boundary lists (must be strictly
    /// increasing and of equal, non-zero length).
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty, of different lengths, or not strictly
    /// increasing.
    pub fn new(amb_bounds: Vec<f64>, dram_bounds: Vec<f64>) -> Self {
        assert!(!amb_bounds.is_empty(), "at least one boundary is required");
        assert_eq!(amb_bounds.len(), dram_bounds.len(), "boundary lists must have equal length");
        for b in [&amb_bounds, &dram_bounds] {
            assert!(b.windows(2).all(|w| w[0] < w[1]), "boundaries must be strictly increasing");
        }
        EmergencyThresholds { amb_bounds, dram_bounds }
    }

    /// The Table 4.3 thresholds, expressed relative to the thermal design
    /// points so that a TDP sweep (Figure 5.14) shifts all levels together:
    /// boundaries at TDP − 2, TDP − 1, TDP − 0.5 and TDP.
    pub fn table_4_3(limits: &ThermalLimits) -> Self {
        let offsets = [2.0, 1.0, 0.5, 0.0];
        EmergencyThresholds::new(
            offsets.iter().map(|o| limits.amb_tdp_c - o).collect(),
            offsets.iter().map(|o| limits.dram_tdp_c - o).collect(),
        )
    }

    /// Number of levels this table defines (boundaries + 1).
    pub fn levels(&self) -> usize {
        self.amb_bounds.len() + 1
    }

    fn level_of(bounds: &[f64], temp: f64) -> EmergencyLevel {
        let idx = bounds.iter().filter(|&&b| temp >= b).count();
        EmergencyLevel::from_index(idx)
    }

    /// Emergency level implied by the AMB temperature alone.
    pub fn amb_level(&self, amb_temp_c: f64) -> EmergencyLevel {
        Self::level_of(&self.amb_bounds, amb_temp_c)
    }

    /// Emergency level implied by the DRAM temperature alone.
    pub fn dram_level(&self, dram_temp_c: f64) -> EmergencyLevel {
        Self::level_of(&self.dram_bounds, dram_temp_c)
    }

    /// Overall emergency level: the more severe of the two devices' levels.
    pub fn level(&self, amb_temp_c: f64, dram_temp_c: f64) -> EmergencyLevel {
        self.amb_level(amb_temp_c).max(self.dram_level(dram_temp_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EmergencyThresholds {
        EmergencyThresholds::table_4_3(&ThermalLimits::paper_fbdimm())
    }

    #[test]
    fn table_4_3_boundaries_match_the_paper() {
        let t = table();
        assert_eq!(t.levels(), 5);
        // AMB ranges: (-,108) [108,109) [109,109.5) [109.5,110) [110,-)
        assert_eq!(t.amb_level(107.9), EmergencyLevel::L1);
        assert_eq!(t.amb_level(108.0), EmergencyLevel::L2);
        assert_eq!(t.amb_level(108.9), EmergencyLevel::L2);
        assert_eq!(t.amb_level(109.0), EmergencyLevel::L3);
        assert_eq!(t.amb_level(109.5), EmergencyLevel::L4);
        assert_eq!(t.amb_level(110.0), EmergencyLevel::L5);
        // DRAM ranges: (-,83) [83,84) [84,84.5) [84.5,85) [85,-)
        assert_eq!(t.dram_level(82.9), EmergencyLevel::L1);
        assert_eq!(t.dram_level(83.0), EmergencyLevel::L2);
        assert_eq!(t.dram_level(84.2), EmergencyLevel::L3);
        assert_eq!(t.dram_level(84.7), EmergencyLevel::L4);
        assert_eq!(t.dram_level(85.5), EmergencyLevel::L5);
    }

    #[test]
    fn combined_level_is_the_worse_of_the_two() {
        let t = table();
        assert_eq!(t.level(107.0, 84.6), EmergencyLevel::L4);
        assert_eq!(t.level(109.6, 80.0), EmergencyLevel::L4);
        assert_eq!(t.level(100.0, 70.0), EmergencyLevel::L1);
        assert_eq!(t.level(111.0, 86.0), EmergencyLevel::L5);
    }

    #[test]
    fn levels_order_and_index_round_trip() {
        for (i, l) in EmergencyLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(EmergencyLevel::from_index(i), *l);
        }
        assert_eq!(EmergencyLevel::from_index(42), EmergencyLevel::L5);
        assert!(EmergencyLevel::L4 > EmergencyLevel::L2);
        assert_eq!(EmergencyLevel::L2.max(EmergencyLevel::L3), EmergencyLevel::L3);
        assert_eq!(EmergencyLevel::L5.to_string(), "L5");
    }

    #[test]
    fn service_fractions_mirror_the_table_4_3_caps() {
        let fractions: Vec<f64> = EmergencyLevel::ALL.iter().map(|l| l.service_fraction()).collect();
        // The caps over the 25.6 GB/s peak: 1.0 / 0.75 / 0.5 / 0.25 / 0.0
        // (compared with tolerance — the fractions are *derived* from
        // BW_LIMITS_GBPS / PEAK_BANDWIDTH_GBPS, not restated literals).
        for (got, want) in fractions.iter().zip([1.0, 0.75, 0.5, 0.25, 0.0]) {
            assert!((got - want).abs() < 1e-12, "fraction {got} vs {want}");
        }
        assert_eq!(fractions[0], 1.0);
        assert_eq!(fractions[4], 0.0);
        // Strictly decreasing: a hotter channel is always served less.
        assert!(fractions.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn tdp_sweep_shifts_all_boundaries() {
        let lower = EmergencyThresholds::table_4_3(&ThermalLimits::paper_fbdimm().with_amb_tdp(100.0));
        assert_eq!(lower.amb_level(98.2), EmergencyLevel::L2);
        assert_eq!(lower.amb_level(100.0), EmergencyLevel::L5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_are_rejected() {
        let _ = EmergencyThresholds::new(vec![108.0, 107.0], vec![83.0, 84.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lists_are_rejected() {
        let _ = EmergencyThresholds::new(vec![108.0], vec![83.0, 84.0]);
    }
}
