//! PID formal controller (Section 4.2.3, Equation 4.1).
//!
//! `m(t) = Kc · ( e(t) + KI·∫e dt + KD·de/dt )`
//!
//! where `e(t)` is the difference between the target temperature and the
//! measured temperature. Two refinements from the paper are implemented:
//! *conditional integration* (the integral term only accumulates once the
//! temperature exceeds an enable threshold) and *anti-windup* (the integral
//! is frozen while the controller output saturates the actuator).

/// A single-input PID controller producing a throttling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidController {
    /// Proportional gain `Kc`.
    pub kc: f64,
    /// Integral gain `KI` (1/s).
    pub ki: f64,
    /// Differential gain `KD` (s).
    pub kd: f64,
    /// Target temperature in °C.
    pub target_c: f64,
    /// Temperature above which the integral term accumulates.
    pub integral_enable_c: f64,
    /// Output saturation bounds (anti-windup).
    pub output_min: f64,
    /// Upper output saturation bound.
    pub output_max: f64,
    integral: f64,
    prev_error: Option<f64>,
    last_output: f64,
}

impl PidController {
    /// Creates a controller with the given gains and target.
    pub fn new(kc: f64, ki: f64, kd: f64, target_c: f64, integral_enable_c: f64) -> Self {
        PidController {
            kc,
            ki,
            kd,
            target_c,
            integral_enable_c,
            output_min: -150.0,
            output_max: 150.0,
            integral: 0.0,
            prev_error: None,
            last_output: 0.0,
        }
    }

    /// The AMB controller of Section 4.3.4: `Kc = 10.4`, `KI = 180.24`,
    /// `KD = 0.001`, target 109.8 °C, integral enabled above 109.0 °C.
    pub fn paper_amb() -> Self {
        Self::new(10.4, 180.24, 0.001, 109.8, 109.0)
    }

    /// The DRAM controller of Section 4.3.4: `Kc = 12.4`, `KI = 155.12`,
    /// `KD = 0.001`, target 84.8 °C, integral enabled above 84.0 °C.
    pub fn paper_dram() -> Self {
        Self::new(12.4, 155.12, 0.001, 84.8, 84.0)
    }

    /// Resets the controller state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
        self.last_output = 0.0;
    }

    /// The most recent controller output.
    pub fn last_output(&self) -> f64 {
        self.last_output
    }

    /// Updates the controller with a new temperature sample taken `dt_s`
    /// seconds after the previous one and returns the controller output
    /// `m(t)`. Larger outputs mean "run faster"; strongly negative outputs
    /// mean "throttle hard".
    pub fn update(&mut self, measured_c: f64, dt_s: f64) -> f64 {
        let error = self.target_c - measured_c;
        let derivative = match self.prev_error {
            Some(prev) if dt_s > 0.0 => (error - prev) / dt_s,
            _ => 0.0,
        };
        self.prev_error = Some(error);

        // Conditional integration: only accumulate near/above the threshold,
        // and freeze while the output saturates in the direction the error
        // would push it further (anti-windup). Once the temperature falls
        // back below the enable threshold the integral state is discarded so
        // the controller does not stay wound up after an emergency ends.
        let saturated_high = self.last_output >= self.output_max && error > 0.0;
        let saturated_low = self.last_output <= self.output_min && error < 0.0;
        if measured_c < self.integral_enable_c {
            self.integral = 0.0;
        } else if !saturated_high && !saturated_low && dt_s > 0.0 {
            self.integral += error * dt_s;
        }

        let raw = self.kc * (error + self.ki * self.integral + self.kd * derivative);
        self.last_output = raw.clamp(self.output_min, self.output_max);
        self.last_output
    }

    /// Maps the controller output to a discrete actuator position among
    /// `levels` positions (0 = full performance, `levels - 1` = most severe
    /// throttling). The bands are uniform in the output range, which is all
    /// the mapping needs to be: the integral term settles wherever the
    /// thermal equilibrium requires.
    pub fn output_to_level(&self, output: f64, levels: usize) -> usize {
        debug_assert!(levels >= 2);
        // Outputs >= 20 mean "no throttling" (roughly: more than ~2 degC of
        // proportional headroom below the target); below that, each band of
        // 10 steps one actuator position down. The exact scale is not
        // critical — the integral term settles wherever the thermal
        // equilibrium requires — but the full-speed band must not start
        // throttling far below the temperatures at which the plain
        // threshold scheme would.
        let full_speed_threshold = 20.0;
        if output >= full_speed_threshold {
            return 0;
        }
        let band = 10.0;
        let steps = ((full_speed_threshold - output) / band).ceil() as usize;
        steps.min(levels - 1)
    }

    /// Convenience: update then map to a level.
    pub fn decide_level(&mut self, measured_c: f64, dt_s: f64, levels: usize) -> usize {
        let out = self.update(measured_c, dt_s);
        self.output_to_level(out, levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_reproduced() {
        let amb = PidController::paper_amb();
        assert_eq!((amb.kc, amb.ki, amb.kd), (10.4, 180.24, 0.001));
        assert_eq!(amb.target_c, 109.8);
        let dram = PidController::paper_dram();
        assert_eq!((dram.kc, dram.ki, dram.kd), (12.4, 155.12, 0.001));
        assert_eq!(dram.target_c, 84.8);
    }

    #[test]
    fn cool_temperatures_select_full_performance() {
        let mut pid = PidController::paper_amb();
        let level = pid.decide_level(95.0, 0.01, 5);
        assert_eq!(level, 0);
    }

    #[test]
    fn temperatures_above_target_throttle() {
        let mut pid = PidController::paper_amb();
        let mut level = 0;
        // Hold the temperature well above target; the integral term must wind
        // the output down into the throttling bands.
        for _ in 0..200 {
            level = pid.decide_level(110.5, 0.01, 5);
        }
        assert!(level >= 3, "level {level}");
    }

    #[test]
    fn output_is_clamped_and_integral_does_not_wind_up() {
        let mut pid = PidController::paper_amb();
        for _ in 0..10_000 {
            pid.update(112.0, 0.01);
        }
        assert!(pid.last_output() >= pid.output_min);
        // After the hot episode ends the controller must recover quickly
        // (within a few hundred control periods) rather than staying wound up.
        let mut recovered = false;
        for _ in 0..500 {
            let out = pid.update(105.0, 0.01);
            if pid.output_to_level(out, 5) == 0 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "controller failed to recover from windup");
    }

    #[test]
    fn integral_only_accumulates_above_the_enable_threshold() {
        let mut pid = PidController::paper_amb();
        for _ in 0..1_000 {
            pid.update(108.0, 0.01); // below 109.0: no integration
        }
        let below = pid.last_output();
        // Proportional-only output for e = 1.8 °C.
        assert!((below - 10.4 * 1.8).abs() < 1.0, "output {below}");
    }

    #[test]
    fn level_mapping_is_monotone() {
        let pid = PidController::paper_amb();
        let mut prev = 0;
        for output in [100.0, 49.0, 20.0, -10.0, -40.0, -120.0] {
            let level = pid.output_to_level(output, 5);
            assert!(level >= prev, "levels must not decrease as output falls");
            prev = level;
        }
        assert_eq!(pid.output_to_level(-1_000.0, 5), 4);
    }

    #[test]
    fn reset_clears_history() {
        let mut pid = PidController::paper_dram();
        for _ in 0..100 {
            pid.update(86.0, 0.01);
        }
        pid.reset();
        assert_eq!(pid.last_output(), 0.0);
        // After a reset, a cool reading immediately selects full speed.
        assert_eq!(pid.decide_level(80.0, 0.01, 5), 0);
    }

    #[test]
    fn controller_converges_on_a_simple_thermal_plant() {
        // Close the loop around a first-order plant whose stable temperature
        // depends on the chosen level, and confirm the temperature settles
        // close to (and not above) the target.
        let mut pid = PidController::paper_amb();
        let stable_for_level = [116.0, 112.0, 109.5, 106.0, 101.0];
        let mut temp: f64 = 100.0;
        let tau = 50.0;
        let dt = 0.01;
        let mut max_after_settle: f64 = 0.0;
        for step in 0..200_000 {
            let level = pid.decide_level(temp, dt, 5);
            let stable = stable_for_level[level];
            temp += (stable - temp) * (1.0 - (-dt / tau).exp());
            if step > 150_000 {
                max_after_settle = max_after_settle.max(temp);
            }
        }
        assert!(temp > 108.0, "converged too cold: {temp}");
        assert!(max_after_settle < 110.0 + 0.2, "overshoot to {max_after_settle}");
    }
}
