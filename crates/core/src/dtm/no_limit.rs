//! The thermally unconstrained baseline ("no thermal limit").

use cpu_model::{CpuConfig, RunningMode};

use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::thermal::scene::ThermalObservation;

/// A policy that never throttles, used as the normalization baseline of
/// Figures 4.2–4.4 and 4.12 ("No-limit").
#[derive(Debug, Clone)]
pub struct NoLimit {
    mode: RunningMode,
}

impl NoLimit {
    /// Creates the baseline policy for a processor configuration.
    pub fn new(cpu: &CpuConfig) -> Self {
        NoLimit { mode: RunningMode::full_speed(cpu) }
    }
}

impl DtmPolicy for NoLimit {
    fn decide(&mut self, _observation: &ThermalObservation, _dt_s: f64) -> ActuationPlan {
        self.mode.into()
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::NoLimit
    }

    fn observes_field(&self) -> bool {
        // Decisions read only the scalar device maxima.
        false
    }

    fn is_steady(&self, _observation: &ThermalObservation, _plan: &ActuationPlan, _drift_c: f64) -> bool {
        // Stateless and constant: the full-speed plan is returned for every
        // observation, so the fast-forward contract holds unconditionally.
        true
    }

    fn decision_key(&self, _max_amb_c: f64, _max_dram_c: f64) -> Option<u8> {
        // Constant plan: one key covers every observation.
        Some(0)
    }

    fn plan_for_key(&self, _key: u8) -> Option<ActuationPlan> {
        Some(self.mode.into())
    }

    fn decide_is_pure(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_throttles_even_when_scorching() {
        let mut p = NoLimit::new(&CpuConfig::paper_quad_core());
        let mode = p.decide_temps(150.0, 120.0, 0.01);
        assert_eq!(mode.active_cores, 4);
        assert_eq!(mode.bandwidth_cap, None);
        assert_eq!(p.scheme(), DtmScheme::NoLimit);
        assert_eq!(p.name(), "No-limit");
        assert!(!p.uses_pid());
    }
}
