//! Dynamic thermal management (DTM) schemes (Section 4.2).

pub mod acg;
pub mod bw;
pub mod cdvfs;
pub mod comb;
pub mod emergency;
pub mod no_limit;
pub mod pid;
pub mod policy;
pub mod selector;
pub mod ts;

pub use acg::DtmAcg;
pub use bw::DtmBw;
pub use cdvfs::DtmCdvfs;
pub use comb::DtmComb;
pub use emergency::{EmergencyLevel, EmergencyThresholds};
pub use no_limit::NoLimit;
pub use pid::PidController;
pub use policy::{DtmPolicy, DtmScheme};
pub use ts::DtmTs;
