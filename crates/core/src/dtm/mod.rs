//! Dynamic thermal management (DTM) schemes (Section 4.2), actuating
//! through spatially resolved **actuation plans**.
//!
//! ## Decision model
//!
//! Every DTM interval the simulator hands the active [`DtmPolicy`] a
//! [`ThermalObservation`](crate::thermal::scene::ThermalObservation) — the
//! full per-position, per-layer temperature field — and the policy answers
//! with an [`ActuationPlan`](crate::dtm::plan::ActuationPlan). A plan
//! layers up to three actuators:
//!
//! * **Global running mode** — active cores, DVFS operating point and the
//!   subsystem-wide bandwidth cap: everything the paper's Table 4.3 running
//!   levels control. A plan carrying only a global mode is *scalar* and
//!   reproduces the pre-plan policies bit-identically (pinned by
//!   `tests/policy_plan_regression.rs`); `From<RunningMode>` is the shim
//!   that keeps scalar policies one-liners (`mode.into()`).
//! * **Per-channel service fractions** — the share of each logical
//!   channel's traffic the memory controller serves next interval, so one
//!   hot channel no longer throttles its cool neighbors.
//! * **Per-position steering weights** — how the served traffic is spread
//!   over the DIMM positions (channel-major, summing to 1), emulating page
//!   migration away from hot DIMMs at the traffic level.
//!
//! ## Schemes
//!
//! The paper's global schemes all quantize the *hottest* device into a
//! thermal emergency level ([`emergency`], [`selector`]) and map it to a
//! running mode ([`crate::sim::modes::scheme_mode`]): thermal shutdown
//! ([`DtmTs`]), bandwidth throttling ([`DtmBw`]), adaptive core gating
//! ([`DtmAcg`]), coordinated DVFS ([`DtmCdvfs`]) and the combined Chapter 5
//! policy ([`DtmComb`]), each optionally driven by the PID formal
//! controller ([`pid`], Equation 4.1). [`NoLimit`] is the thermally
//! unconstrained baseline.
//!
//! Two schemes exploit the resolved field that the scene provides and the
//! global schemes ignore:
//!
//! * [`DtmCbw`] — per-**c**hannel **b**and**w**idth throttling: one
//!   [`LevelSelector`](crate::dtm::selector::LevelSelector) per logical
//!   channel, keyed NaN-safely to that channel's hottest buffer/DRAM
//!   layers (bufferless rank pairs and 3D stacks report `NaN` buffers),
//!   emitting per-channel service fractions.
//! * [`DtmMig`] — **mig**ration-aware steering: shifts steering weight
//!   from the position whose hottest layer leads the field toward the
//!   coldest one inside a hysteresis band, flattening the thermal field so
//!   the global fail-safe (the same ladder as DTM-BW) engages later.
//!
//! CoMeT (arXiv:2109.12405) motivates the per-layer sensing for
//! processor-memory stacks; AL-DRAM (arXiv:1603.08454) motivates per-DIMM
//! actuation from the strong position dependence of thermal headroom.

pub mod acg;
pub mod bw;
pub mod cbw;
pub mod cdvfs;
pub mod comb;
pub mod emergency;
pub mod mig;
pub mod no_limit;
pub mod pid;
pub mod plan;
pub mod policy;
pub mod selector;
pub mod ts;

pub use acg::DtmAcg;
pub use bw::DtmBw;
pub use cbw::DtmCbw;
pub use cdvfs::DtmCdvfs;
pub use comb::DtmComb;
pub use emergency::{EmergencyLevel, EmergencyThresholds};
pub use mig::DtmMig;
pub use no_limit::NoLimit;
pub use pid::PidController;
pub use plan::{ActuationPlan, PlanTrafficStats};
pub use policy::{DtmPolicy, DtmScheme};
pub use ts::DtmTs;
