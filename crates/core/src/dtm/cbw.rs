//! DTM-CBW: per-channel bandwidth throttling.
//!
//! DTM-BW (Section 4.2.1) caps the throughput of the *whole* memory
//! subsystem from the hottest device anywhere — one cool channel pays for
//! one hot one. DTM-CBW runs one [`LevelSelector`] per logical channel,
//! keyed to **that channel's** hottest buffer and DRAM layers (NaN-safe for
//! bufferless rank pairs and 3D stacks, whose observations report a `NaN`
//! buffer maximum: the selector keeps `NaN` out of its PID integrals, so
//! the per-channel decision rests on the layers that exist). Each channel's
//! emergency level maps to a service fraction
//! ([`EmergencyLevel::service_fraction`], the Table 4.3 caps normalized to
//! the subsystem peak), and the resulting [`ActuationPlan`] throttles only
//! the channels that are actually hot.
//!
//! With no per-position field (scalar sensors), the policy degrades to
//! global DTM-BW behavior through a fallback selector on the observation's
//! maxima — the plan is scalar and bit-compatible with DTM-BW.

use cpu_model::{CpuConfig, RunningMode};

use crate::dtm::emergency::EmergencyLevel;
use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::dtm::selector::LevelSelector;
use crate::sim::modes::scheme_mode;
use crate::thermal::params::ThermalLimits;
use crate::thermal::scene::ThermalObservation;

/// The per-channel bandwidth-throttling policy.
#[derive(Debug, Clone)]
pub struct DtmCbw {
    cpu: CpuConfig,
    limits: ThermalLimits,
    pid: bool,
    /// One selector per observed logical channel, grown lazily to the
    /// field's channel count.
    channels: Vec<LevelSelector>,
    /// Fallback selector for observations without a per-position field.
    global: LevelSelector,
}

impl DtmCbw {
    /// Threshold-driven DTM-CBW.
    pub fn new(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmCbw { cpu, limits, pid: false, channels: Vec::new(), global: LevelSelector::threshold(limits) }
    }

    /// PID-driven DTM-CBW: every channel runs its own pair of Section 4.2.3
    /// controllers.
    pub fn with_pid(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmCbw { cpu, limits, pid: true, channels: Vec::new(), global: LevelSelector::pid(limits) }
    }

    fn make_selector(&self) -> LevelSelector {
        if self.pid {
            LevelSelector::pid(self.limits)
        } else {
            LevelSelector::threshold(self.limits)
        }
    }
}

impl DtmPolicy for DtmCbw {
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> ActuationPlan {
        let channels = observation.channels();
        if channels == 0 {
            // Scalar sensors: behave exactly like global DTM-BW.
            let level = self.global.select(observation.max_amb_c, observation.max_dram_c, dt_s);
            return scheme_mode(DtmScheme::Bw, level, &self.cpu).into();
        }
        while self.channels.len() < channels {
            self.channels.push(self.make_selector());
        }
        let mut service = Vec::with_capacity(channels);
        let mut worst = EmergencyLevel::L1;
        let mut best = EmergencyLevel::L5;
        for (channel, selector) in self.channels.iter_mut().enumerate().take(channels) {
            let (amb_c, dram_c) = observation.channel_max_temps(channel);
            let level = selector.select(amb_c, dram_c, dt_s);
            worst = worst.max(level);
            best = if level <= best { level } else { best };
            service.push(level.service_fraction());
        }
        // Every channel at the TDP: the fail-safe is a global shutdown, the
        // same mode DTM-BW's highest level selects. Otherwise the cores run
        // at full speed and the per-channel fractions do the throttling.
        let mode = if best == EmergencyLevel::L5 {
            scheme_mode(DtmScheme::Bw, EmergencyLevel::L5, &self.cpu)
        } else {
            RunningMode::full_speed(&self.cpu)
        };
        if worst == EmergencyLevel::L1 {
            // Nothing throttles: keep the plan scalar so the engine stays on
            // the legacy fast path.
            return mode.into();
        }
        ActuationPlan::global(mode).with_channel_service(service)
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::Cbw
    }

    fn uses_pid(&self) -> bool {
        self.pid
    }

    fn reset(&mut self) {
        self.channels.clear();
        self.global.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::scene::PositionTemp;

    fn policy() -> DtmCbw {
        DtmCbw::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm())
    }

    /// An observation with one position per channel at the given
    /// (buffer, DRAM) temperatures.
    fn field(temps: &[(f64, f64)]) -> ThermalObservation {
        let mut obs = ThermalObservation::from_hottest(f64::NEG_INFINITY, f64::NEG_INFINITY);
        obs.layer_depth = 2;
        for (channel, &(amb_c, dram_c)) in temps.iter().enumerate() {
            let hottest = if amb_c.is_nan() || dram_c > amb_c { (1, dram_c) } else { (0, amb_c) };
            obs.positions.push(PositionTemp {
                channel,
                dimm: 0,
                amb_c,
                dram_c,
                hottest_layer: hottest.0,
                hottest_layer_c: hottest.1,
            });
            obs.layer_temps_c.extend([amb_c, dram_c]);
            if !amb_c.is_nan() && amb_c > obs.max_amb_c {
                obs.max_amb_c = amb_c;
                obs.hottest_amb = Some((channel, 0));
            }
            if dram_c > obs.max_dram_c {
                obs.max_dram_c = dram_c;
                obs.hottest_dram = Some((channel, 0));
            }
        }
        obs
    }

    #[test]
    fn only_the_hot_channel_is_throttled() {
        let mut p = policy();
        let plan = p.decide(&field(&[(109.2, 70.0), (100.0, 70.0)]), 0.01);
        assert!(!plan.is_scalar());
        assert_eq!(plan.mode, RunningMode::full_speed(&CpuConfig::paper_quad_core()));
        assert!(plan.service_for(0) < 1.0, "hot channel throttled: {}", plan.service_for(0));
        assert_eq!(plan.service_for(1), 1.0, "cool channel untouched");
        assert!(plan.throttles_channel(0) && !plan.throttles_channel(1));
    }

    #[test]
    fn cool_fields_produce_scalar_full_speed_plans() {
        let mut p = policy();
        let plan = p.decide(&field(&[(100.0, 70.0), (101.0, 71.0)]), 0.01);
        assert!(plan.is_scalar(), "no emergency -> legacy fast path");
        assert_eq!(plan.mode, RunningMode::full_speed(&CpuConfig::paper_quad_core()));
    }

    #[test]
    fn service_tightens_with_per_channel_severity() {
        let mut p = policy();
        let plan = p.decide(&field(&[(108.2, 70.0), (109.2, 70.0), (109.7, 70.0), (110.5, 70.0)]), 0.01);
        let s: Vec<f64> = (0..4).map(|c| plan.service_for(c)).collect();
        for (got, want) in s.iter().zip([0.75, 0.5, 0.25, 0.0]) {
            assert!((got - want).abs() < 1e-12, "Table 4.3 fraction {got} vs {want}");
        }
        // One live channel keeps the machine running.
        assert!(plan.mode.makes_progress());
    }

    #[test]
    fn all_channels_at_tdp_shut_the_memory_off() {
        let mut p = policy();
        let plan = p.decide(&field(&[(110.2, 70.0), (111.0, 70.0)]), 0.01);
        assert!(!plan.mode.makes_progress());
    }

    #[test]
    fn bufferless_channels_key_off_their_dram_layers() {
        // Rank pairs report NaN buffers: channel 1's hot DRAM must throttle
        // channel 1 alone, through the NaN-safe selector path.
        let mut p = DtmCbw::with_pid(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        let mut throttled_hot = false;
        let mut throttled_cold = false;
        for _ in 0..100 {
            let plan = p.decide(&field(&[(f64::NAN, 70.0), (f64::NAN, 84.9)]), 0.01);
            throttled_hot |= plan.service_for(1) < 1.0;
            throttled_cold |= plan.service_for(0) < 1.0;
        }
        assert!(throttled_hot, "hot bufferless channel must be throttled");
        assert!(!throttled_cold, "cool bufferless channel must never be");
    }

    #[test]
    fn scalar_sensors_degrade_to_global_bw_behavior() {
        let mut cbw = policy();
        let mut bw = crate::dtm::bw::DtmBw::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        for temps in [(100.0, 70.0), (108.5, 70.0), (109.7, 70.0), (110.5, 70.0)] {
            assert_eq!(cbw.decide_temps(temps.0, temps.1, 0.01), bw.decide_temps(temps.0, temps.1, 0.01));
        }
    }

    #[test]
    fn naming_and_reset_follow_the_scheme_conventions() {
        let p = policy();
        assert_eq!(p.name(), "DTM-CBW");
        assert_eq!(p.scheme(), DtmScheme::Cbw);
        assert!(!p.uses_pid());
        let mut pid = DtmCbw::with_pid(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        assert_eq!(pid.name(), "DTM-CBW+PID");
        assert!(pid.uses_pid());
        pid.decide(&field(&[(109.9, 70.0)]), 0.01);
        pid.reset();
        assert!(pid.channels.is_empty(), "reset drops the per-channel controller state");
    }
}
