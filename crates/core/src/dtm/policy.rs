//! The DTM policy interface.

use cpu_model::RunningMode;

use crate::dtm::plan::ActuationPlan;
use crate::thermal::scene::ThermalObservation;

/// Identifier of a DTM scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtmScheme {
    /// No thermal management at all (the ideal, thermally unconstrained
    /// baseline the paper normalizes against).
    NoLimit,
    /// Thermal shutdown (DTM-TS).
    Ts,
    /// Memory bandwidth throttling (DTM-BW).
    Bw,
    /// Adaptive core gating (DTM-ACG).
    Acg,
    /// Coordinated DVFS (DTM-CDVFS).
    Cdvfs,
    /// Combined core gating + DVFS (DTM-COMB, Chapter 5).
    Comb,
    /// Per-channel bandwidth throttling (DTM-CBW): every logical channel is
    /// capped from its own hottest layer instead of the global maximum.
    Cbw,
    /// Migration-aware steering (DTM-MIG): traffic is shifted away from the
    /// hottest DIMM position toward the coldest.
    Mig,
}

impl std::fmt::Display for DtmScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DtmScheme::NoLimit => "No-limit",
            DtmScheme::Ts => "DTM-TS",
            DtmScheme::Bw => "DTM-BW",
            DtmScheme::Acg => "DTM-ACG",
            DtmScheme::Cdvfs => "DTM-CDVFS",
            DtmScheme::Comb => "DTM-COMB",
            DtmScheme::Cbw => "DTM-CBW",
            DtmScheme::Mig => "DTM-MIG",
        };
        write!(f, "{s}")
    }
}

/// A dynamic thermal management policy.
///
/// The second-level simulator calls [`DtmPolicy::decide`] once per DTM
/// interval with a [`ThermalObservation`] — the sensed temperature field of
/// the memory subsystem, including the per-position, per-layer temperatures
/// and the derived hottest devices — and the policy returns an
/// [`ActuationPlan`] for the next interval. The paper's schemes actuate
/// globally and return scalar plans (`mode.into()`, one line per policy);
/// spatially aware policies attach per-channel service fractions or
/// steering weights on top of the global mode.
/// (`Send` is a supertrait so batched cells — which own their policy — can
/// migrate between the lane-parallel workers of the batched engine.)
pub trait DtmPolicy: std::fmt::Debug + Send {
    /// Chooses the actuation plan for the next interval. `dt_s` is the time
    /// since the previous decision in seconds. Scalar policies return
    /// `mode.into()`.
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> ActuationPlan;

    /// Convenience for sensor-style callers and tests: the plan's global
    /// running mode, decided from scalar hottest-device temperatures (an
    /// observation with no per-position field — spatial policies degrade to
    /// their global behavior).
    fn decide_temps(&mut self, amb_temp_c: f64, dram_temp_c: f64, dt_s: f64) -> RunningMode {
        self.decide(&ThermalObservation::from_hottest(amb_temp_c, dram_temp_c), dt_s).mode
    }

    /// The scheme this policy implements.
    fn scheme(&self) -> DtmScheme;

    /// Whether the policy is driven by the PID formal controller.
    fn uses_pid(&self) -> bool {
        false
    }

    /// Human-readable name (e.g. `"DTM-ACG+PID"`).
    fn name(&self) -> String {
        if self.uses_pid() {
            format!("{}+PID", self.scheme())
        } else {
            self.scheme().to_string()
        }
    }

    /// Resets any internal controller state.
    fn reset(&mut self) {}

    /// Whether [`DtmPolicy::decide`] / [`DtmPolicy::is_steady`] read the
    /// observation's spatial field (`positions`, per-layer temperatures,
    /// hottest coordinates) rather than only the scalar device maxima and
    /// the ambient. The batched engine ([`crate::sim::batch`]) skips
    /// synthesizing the per-position field for policies that answer
    /// `false` — the scalar maxima come straight from the lane's RC sweep.
    /// The conservative default keeps unknown policies fully observed.
    fn observes_field(&self) -> bool {
        true
    }

    /// Whether the policy has reached a *steady decision state*: given any
    /// future observation whose temperatures differ from `observation` by at
    /// most `drift_c` degrees (per field), every future [`DtmPolicy::decide`]
    /// call is guaranteed to return `plan` again **and** leave the policy's
    /// internal state unchanged, forever.
    ///
    /// This is the policy-side contract of the batched engine's steady-state
    /// fast-forward ([`crate::sim::batch`]): once a cell's temperatures sit
    /// within ε of their RC fixed point, future temperatures stay within 2ε
    /// of the current ones, so a policy that answers `true` here (with
    /// `drift_c = 2ε`) can be skipped analytically without consulting it
    /// again. `plan` is the plan the policy just returned for `observation`.
    ///
    /// The default is `false` — stateful controllers (PID integrals, spatial
    /// steering) are never fast-forwarded. Implementations must only answer
    /// `true` when the contract provably holds under the drift bound; a
    /// wrong `true` silently changes simulation results.
    fn is_steady(&self, observation: &ThermalObservation, plan: &ActuationPlan, drift_c: f64) -> bool {
        let _ = (observation, plan, drift_c);
        false
    }

    /// Asymmetric variant of [`DtmPolicy::is_steady`]: the same guarantee,
    /// but over the band `[t − below_c, t + above_c]` around the observed
    /// temperatures instead of a symmetric ball.
    ///
    /// This is the policy-side contract of the batched engine's *envelope*
    /// fast-forward ([`crate::sim::batch`]): a trajectory sliding
    /// monotonically toward its fixed point, or a slipping orbit hugging a
    /// threshold from one side, traverses a directed temperature range — the
    /// replayer knows exactly how far the temperatures can move in each
    /// direction and asks for steadiness over that range only. A symmetric
    /// `is_steady` query with `drift_c = max(below, above)` would refuse
    /// precisely the near-boundary cells the envelope tier targets.
    ///
    /// The default delegates to the symmetric form with the larger arm
    /// (always sound: the symmetric ball contains the band); threshold
    /// policies override it with a genuinely directional check.
    fn is_steady_band(
        &self,
        observation: &ThermalObservation,
        plan: &ActuationPlan,
        below_c: f64,
        above_c: f64,
    ) -> bool {
        self.is_steady(observation, plan, below_c.max(above_c))
    }

    /// Decision-region certificate: the unique plan [`DtmPolicy::decide`]
    /// would return for *every* observation whose temperatures lie in the
    /// rectangle `[amb, amb + amb_span_c] × [dram, dram + dram_span_c]`
    /// anchored at `observation`'s maxima (its lower corner), or `None` if
    /// the rectangle straddles a decision boundary (or the policy cannot
    /// certify regions at all — the conservative default). The spans are
    /// per-axis: the device axes trace independent ranges, and inflating
    /// the narrow one by the wide one would refuse certifiable rectangles.
    ///
    /// This generalizes [`DtmPolicy::is_steady_band`] from attesting a
    /// single frozen plan to attesting a whole *plan sequence*: the batched
    /// engine's envelope replay ([`crate::sim::batch`]) presents, for each
    /// phase of a sliding-mode orbit, the exact observation rectangle the
    /// λ-powered contraction envelope traces at that phase, and a `Some`
    /// answer equal to the recorded phase plan proves every skipped decision
    /// at that phase re-returns it — licensing closed-form segment jumps
    /// across threshold chatter that no single frozen-plan band could cover.
    ///
    /// Implementations must only answer `Some` when decisions are pure
    /// (memoryless) over the rectangle; a wrong `Some` silently changes
    /// simulation results.
    fn plan_decided_by_region(
        &self,
        observation: &ThermalObservation,
        amb_span_c: f64,
        dram_span_c: f64,
    ) -> Option<ActuationPlan> {
        let _ = (observation, amb_span_c, dram_span_c);
        None
    }

    /// Dense pure-decision key: a small discriminant of the plan
    /// [`DtmPolicy::decide`] would return for an observation carrying these
    /// device maxima, with `decide(obs, dt) == plan_for_key(key)` for every
    /// observation and any `dt`. `None` (the conservative default) means
    /// decisions cannot be keyed — stateful controllers, field-observing
    /// policies, or policies whose plans depend on more than the maxima.
    ///
    /// This is the policy-side contract of the batched engine's *exact
    /// decision replay* ([`crate::sim::batch`]): instead of certifying that
    /// a temperature region cannot change the decision, the replayer
    /// re-evaluates the decision per virtual window from the exact device
    /// maxima — sliding-mode chatter whose plan sequence never settles into
    /// an exact period is replayed decision for decision at scalar cost.
    ///
    /// Implementations must answer `Some` either for every input or for
    /// none, keep keys below 16, and only answer at all when
    /// [`DtmPolicy::decide_is_pure`] would be `true`; a wrong key silently
    /// changes simulation results.
    fn decision_key(&self, max_amb_c: f64, max_dram_c: f64) -> Option<u8> {
        let _ = (max_amb_c, max_dram_c);
        None
    }

    /// The plan a [`DtmPolicy::decision_key`] key stands for, or `None` for
    /// policies that cannot key decisions. Must be consistent with
    /// `decision_key`: `decide(obs, dt) == plan_for_key(decision_key(obs))`
    /// bit for bit, for every observation.
    fn plan_for_key(&self, key: u8) -> Option<ActuationPlan> {
        let _ = key;
        None
    }

    /// Whether [`DtmPolicy::decide`] is a *pure, memoryless* function of
    /// its observation: identical observations always yield identical plans
    /// and a decision never mutates internal state.
    ///
    /// This is the policy-side contract of the batched engine's
    /// limit-cycle fast-forward ([`crate::sim::batch`]): a pure policy
    /// caught in a periodic (mode, plan, temperature) cycle will replay the
    /// same decision sequence every period, so whole cycles can be skipped
    /// analytically without consulting it. Latched or integrating
    /// controllers (DTM-TS hysteresis, PID) must answer `false` — their
    /// next decision depends on history, not just the current observation.
    ///
    /// The conservative default is `false`; a wrong `true` silently changes
    /// simulation results.
    fn decide_is_pure(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_the_paper() {
        assert_eq!(DtmScheme::Ts.to_string(), "DTM-TS");
        assert_eq!(DtmScheme::Bw.to_string(), "DTM-BW");
        assert_eq!(DtmScheme::Acg.to_string(), "DTM-ACG");
        assert_eq!(DtmScheme::Cdvfs.to_string(), "DTM-CDVFS");
        assert_eq!(DtmScheme::Comb.to_string(), "DTM-COMB");
        assert_eq!(DtmScheme::NoLimit.to_string(), "No-limit");
        // The spatially aware additions follow the paper's naming pattern.
        assert_eq!(DtmScheme::Cbw.to_string(), "DTM-CBW");
        assert_eq!(DtmScheme::Mig.to_string(), "DTM-MIG");
    }
}
