//! The DTM policy interface.

use cpu_model::RunningMode;
use serde::{Deserialize, Serialize};

/// Identifier of a DTM scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DtmScheme {
    /// No thermal management at all (the ideal, thermally unconstrained
    /// baseline the paper normalizes against).
    NoLimit,
    /// Thermal shutdown (DTM-TS).
    Ts,
    /// Memory bandwidth throttling (DTM-BW).
    Bw,
    /// Adaptive core gating (DTM-ACG).
    Acg,
    /// Coordinated DVFS (DTM-CDVFS).
    Cdvfs,
    /// Combined core gating + DVFS (DTM-COMB, Chapter 5).
    Comb,
}

impl std::fmt::Display for DtmScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DtmScheme::NoLimit => "No-limit",
            DtmScheme::Ts => "DTM-TS",
            DtmScheme::Bw => "DTM-BW",
            DtmScheme::Acg => "DTM-ACG",
            DtmScheme::Cdvfs => "DTM-CDVFS",
            DtmScheme::Comb => "DTM-COMB",
        };
        write!(f, "{s}")
    }
}

/// A dynamic thermal management policy.
///
/// The second-level simulator calls [`DtmPolicy::decide`] once per DTM
/// interval with the sensed AMB and DRAM temperatures; the policy returns
/// the running mode for the next interval.
pub trait DtmPolicy: std::fmt::Debug {
    /// Chooses the running mode for the next interval. `dt_s` is the time
    /// since the previous decision in seconds.
    fn decide(&mut self, amb_temp_c: f64, dram_temp_c: f64, dt_s: f64) -> RunningMode;

    /// The scheme this policy implements.
    fn scheme(&self) -> DtmScheme;

    /// Whether the policy is driven by the PID formal controller.
    fn uses_pid(&self) -> bool {
        false
    }

    /// Human-readable name (e.g. `"DTM-ACG+PID"`).
    fn name(&self) -> String {
        if self.uses_pid() {
            format!("{}+PID", self.scheme())
        } else {
            self.scheme().to_string()
        }
    }

    /// Resets any internal controller state.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_the_paper() {
        assert_eq!(DtmScheme::Ts.to_string(), "DTM-TS");
        assert_eq!(DtmScheme::Bw.to_string(), "DTM-BW");
        assert_eq!(DtmScheme::Acg.to_string(), "DTM-ACG");
        assert_eq!(DtmScheme::Cdvfs.to_string(), "DTM-CDVFS");
        assert_eq!(DtmScheme::Comb.to_string(), "DTM-COMB");
        assert_eq!(DtmScheme::NoLimit.to_string(), "No-limit");
    }
}
