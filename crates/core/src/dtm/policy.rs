//! The DTM policy interface.

use cpu_model::RunningMode;

use crate::thermal::scene::ThermalObservation;

/// Identifier of a DTM scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtmScheme {
    /// No thermal management at all (the ideal, thermally unconstrained
    /// baseline the paper normalizes against).
    NoLimit,
    /// Thermal shutdown (DTM-TS).
    Ts,
    /// Memory bandwidth throttling (DTM-BW).
    Bw,
    /// Adaptive core gating (DTM-ACG).
    Acg,
    /// Coordinated DVFS (DTM-CDVFS).
    Cdvfs,
    /// Combined core gating + DVFS (DTM-COMB, Chapter 5).
    Comb,
}

impl std::fmt::Display for DtmScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DtmScheme::NoLimit => "No-limit",
            DtmScheme::Ts => "DTM-TS",
            DtmScheme::Bw => "DTM-BW",
            DtmScheme::Acg => "DTM-ACG",
            DtmScheme::Cdvfs => "DTM-CDVFS",
            DtmScheme::Comb => "DTM-COMB",
        };
        write!(f, "{s}")
    }
}

/// A dynamic thermal management policy.
///
/// The second-level simulator calls [`DtmPolicy::decide`] once per DTM
/// interval with a [`ThermalObservation`] — the sensed temperature field of
/// the memory subsystem, including the per-position temperatures and the
/// derived hottest DIMM; the policy returns the running mode for the next
/// interval. The paper's schemes act on the observation's maxima; the full
/// field is available for spatially aware policies.
pub trait DtmPolicy: std::fmt::Debug {
    /// Chooses the running mode for the next interval. `dt_s` is the time
    /// since the previous decision in seconds.
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> RunningMode;

    /// Convenience for sensor-style callers and tests: decides from scalar
    /// hottest-device temperatures (an observation with no per-position
    /// field).
    fn decide_temps(&mut self, amb_temp_c: f64, dram_temp_c: f64, dt_s: f64) -> RunningMode {
        self.decide(&ThermalObservation::from_hottest(amb_temp_c, dram_temp_c), dt_s)
    }

    /// The scheme this policy implements.
    fn scheme(&self) -> DtmScheme;

    /// Whether the policy is driven by the PID formal controller.
    fn uses_pid(&self) -> bool {
        false
    }

    /// Human-readable name (e.g. `"DTM-ACG+PID"`).
    fn name(&self) -> String {
        if self.uses_pid() {
            format!("{}+PID", self.scheme())
        } else {
            self.scheme().to_string()
        }
    }

    /// Resets any internal controller state.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_the_paper() {
        assert_eq!(DtmScheme::Ts.to_string(), "DTM-TS");
        assert_eq!(DtmScheme::Bw.to_string(), "DTM-BW");
        assert_eq!(DtmScheme::Acg.to_string(), "DTM-ACG");
        assert_eq!(DtmScheme::Cdvfs.to_string(), "DTM-CDVFS");
        assert_eq!(DtmScheme::Comb.to_string(), "DTM-COMB");
        assert_eq!(DtmScheme::NoLimit.to_string(), "No-limit");
    }
}
