//! DTM-CDVFS: coordinated dynamic voltage and frequency scaling
//! (Section 4.2.2).
//!
//! The policy links the DRAM/AMB thermal emergency level directly to the
//! frequency and voltage of *all* processor cores, proactively putting the
//! processor into a power mode that matches the memory's thermal headroom.

use cpu_model::CpuConfig;

use crate::dtm::emergency::EmergencyLevel;
use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::dtm::selector::LevelSelector;
use crate::sim::modes::scheme_mode;
use crate::thermal::params::ThermalLimits;
use crate::thermal::scene::ThermalObservation;

/// The coordinated DVFS policy.
#[derive(Debug, Clone)]
pub struct DtmCdvfs {
    cpu: CpuConfig,
    selector: LevelSelector,
}

impl DtmCdvfs {
    /// Threshold-driven DTM-CDVFS.
    pub fn new(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmCdvfs { cpu, selector: LevelSelector::threshold(limits) }
    }

    /// PID-driven DTM-CDVFS.
    pub fn with_pid(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmCdvfs { cpu, selector: LevelSelector::pid(limits) }
    }
}

impl DtmPolicy for DtmCdvfs {
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> ActuationPlan {
        let level = self.selector.select(observation.max_amb_c, observation.max_dram_c, dt_s);
        scheme_mode(DtmScheme::Cdvfs, level, &self.cpu).into()
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::Cdvfs
    }

    fn uses_pid(&self) -> bool {
        self.selector.uses_pid()
    }

    fn reset(&mut self) {
        self.selector.reset();
    }

    fn observes_field(&self) -> bool {
        // Decisions read only the scalar device maxima.
        false
    }

    fn is_steady(&self, observation: &ThermalObservation, _plan: &ActuationPlan, drift_c: f64) -> bool {
        // The plan is a pure function of the emergency level, so the policy
        // is steady exactly when threshold level selection is (PID variants
        // carry integral state and are never steady).
        self.selector.is_steady(observation.max_amb_c, observation.max_dram_c, drift_c)
    }

    fn is_steady_band(
        &self,
        observation: &ThermalObservation,
        _plan: &ActuationPlan,
        below_c: f64,
        above_c: f64,
    ) -> bool {
        self.selector.is_steady_band(observation.max_amb_c, observation.max_dram_c, below_c, above_c)
    }

    fn plan_decided_by_region(
        &self,
        observation: &ThermalObservation,
        amb_span_c: f64,
        dram_span_c: f64,
    ) -> Option<ActuationPlan> {
        // The plan is a pure function of the emergency level, so the unique
        // level of the rectangle (if any) names the unique plan.
        self.selector
            .region_level_rect(
                observation.max_amb_c,
                observation.max_dram_c,
                observation.max_amb_c + amb_span_c,
                observation.max_dram_c + dram_span_c,
            )
            .map(|level| scheme_mode(DtmScheme::Cdvfs, level, &self.cpu).into())
    }

    fn decision_key(&self, max_amb_c: f64, max_dram_c: f64) -> Option<u8> {
        // The plan is a pure function of the emergency level, so the level
        // index keys the decision (PID variants are stateful and refuse).
        self.selector.pure_level(max_amb_c, max_dram_c).map(|level| level.index() as u8)
    }

    fn plan_for_key(&self, key: u8) -> Option<ActuationPlan> {
        if self.selector.uses_pid() {
            return None;
        }
        Some(scheme_mode(DtmScheme::Cdvfs, EmergencyLevel::from_index(key as usize), &self.cpu).into())
    }

    fn decide_is_pure(&self) -> bool {
        // Threshold selection is a pure function of the observed maxima;
        // the PID variant integrates and is never pure.
        !self.selector.uses_pid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DtmCdvfs {
        DtmCdvfs::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm())
    }

    #[test]
    fn frequency_descends_with_rising_temperature() {
        let mut p = policy();
        let freqs: Vec<_> =
            [100.0, 108.5, 109.2, 109.7].iter().map(|&t| p.decide_temps(t, 70.0, 1.0).op.freq_ghz).collect();
        assert_eq!(freqs, vec![3.2, 2.8, 1.6, 0.8]);
    }

    #[test]
    fn voltage_descends_together_with_frequency() {
        let mut p = policy();
        let v_hot = p.decide_temps(109.7, 70.0, 1.0).op.voltage;
        let v_cool = p.decide_temps(100.0, 70.0, 1.0).op.voltage;
        assert!(v_hot < v_cool);
    }

    #[test]
    fn all_cores_remain_active_below_the_tdp() {
        let mut p = policy();
        for t in [100.0, 108.5, 109.2, 109.7] {
            assert_eq!(p.decide_temps(t, 70.0, 1.0).active_cores, 4);
        }
    }

    #[test]
    fn tdp_stops_the_memory() {
        let mut p = policy();
        assert!(!p.decide_temps(110.2, 70.0, 1.0).makes_progress());
    }

    #[test]
    fn pid_variant_reports_itself() {
        let p = DtmCdvfs::with_pid(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        assert_eq!(p.name(), "DTM-CDVFS+PID");
    }
}
