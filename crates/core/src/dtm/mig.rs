//! DTM-MIG: migration-aware traffic steering.
//!
//! AL-DRAM-style observations (and the paper's own Figure 3 data) show that
//! thermal headroom varies strongly across DIMM positions: the DIMM closest
//! to the controller carries all the bypass traffic and runs hottest while
//! the far end of the chain idles cool. DTM-MIG exploits that headroom by
//! *moving work* instead of removing it: each interval it shifts a small
//! amount of traffic-steering weight away from the position whose hottest
//! layer is the hottest of the field toward the coldest one (page-migration
//! emulated at the traffic level), flattening the thermal field so the
//! global throttle engages later — or not at all.
//!
//! A hysteresis band keeps the weights from chattering: migration only
//! proceeds while the hottest-vs-coldest spread exceeds `band_on_c`, and
//! the weights relax back toward the uniform distribution once the spread
//! drops below `band_off_c`. In between, the weights hold. Until the first
//! migration triggers, the policy emits **scalar** plans — traffic follows
//! the workload's natural distribution, exactly like DTM-BW — and only
//! once the band is crossed does it take ownership of the distribution
//! (starting from uniform, the flat split migration is driving toward).
//! The global mode is the same fail-safe ladder as DTM-BW (thresholds or
//! PID), so the TDP contract is never weaker than the paper's scheme; with
//! no per-position field the policy degrades to exactly DTM-BW.

use cpu_model::CpuConfig;

use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::dtm::selector::LevelSelector;
use crate::sim::modes::scheme_mode;
use crate::thermal::params::ThermalLimits;
use crate::thermal::scene::ThermalObservation;

/// The migration-aware steering policy.
#[derive(Debug, Clone)]
pub struct DtmMig {
    cpu: CpuConfig,
    selector: LevelSelector,
    /// Per-position steering weights (the policy's persistent state),
    /// lazily sized to the observed field and kept summing to 1.
    weights: Vec<f64>,
    /// Weight moved from the hottest to the coldest position per decision.
    step: f64,
    /// Spread (hottest − coldest hottest-layer temperature) above which
    /// migration proceeds, °C.
    band_on_c: f64,
    /// Spread below which the weights relax back toward uniform, °C.
    band_off_c: f64,
}

impl DtmMig {
    /// Threshold-driven DTM-MIG with the default migration rate (2% of the
    /// traffic per decision) and a 1.5 / 0.5 °C hysteresis band.
    pub fn new(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmMig {
            cpu,
            selector: LevelSelector::threshold(limits),
            weights: Vec::new(),
            step: 0.02,
            band_on_c: 1.5,
            band_off_c: 0.5,
        }
    }

    /// PID-driven DTM-MIG (the global fail-safe ladder runs the Section
    /// 4.2.3 controllers).
    pub fn with_pid(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmMig { selector: LevelSelector::pid(limits), ..Self::new(cpu, limits) }
    }

    /// Overrides the weight moved per decision, clamped to `(0, 1]`;
    /// non-finite values keep the current step (`clamp` would propagate a
    /// `NaN` straight into the steering state).
    pub fn with_step(mut self, step: f64) -> Self {
        if step.is_finite() {
            self.step = step.clamp(f64::MIN_POSITIVE, 1.0);
        }
        self
    }

    /// Overrides the hysteresis band: migrate above `band_on_c` of spread,
    /// relax toward uniform below `band_off_c`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= band_off_c <= band_on_c`.
    pub fn with_band(mut self, band_on_c: f64, band_off_c: f64) -> Self {
        assert!(0.0 <= band_off_c && band_off_c <= band_on_c, "hysteresis band must satisfy 0 <= off <= on");
        self.band_on_c = band_on_c;
        self.band_off_c = band_off_c;
        self
    }

    /// The current steering weights (empty until the first decision over a
    /// resolved field).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn renormalize(&mut self) {
        let sum: f64 = self.weights.iter().sum();
        if sum > 0.0 {
            for w in &mut self.weights {
                *w /= sum;
            }
        }
    }
}

impl DtmPolicy for DtmMig {
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> ActuationPlan {
        // Global fail-safe first: the same ladder as DTM-BW, on the maxima.
        let level = self.selector.select(observation.max_amb_c, observation.max_dram_c, dt_s);
        let mode = scheme_mode(DtmScheme::Bw, level, &self.cpu);

        let n = observation.positions.len();
        if n == 0 {
            return mode.into();
        }
        let (hot, cold) = match (observation.hottest_position_index(), observation.coldest_position_index()) {
            (Some(h), Some(c)) => (h, c),
            _ => return mode.into(),
        };
        let spread = observation.positions[hot].hottest_layer_c - observation.positions[cold].hottest_layer_c;
        if self.weights.len() != n {
            if spread > self.band_on_c && hot != cold {
                // First migration trigger: take ownership of the traffic
                // distribution, starting from the uniform split migration is
                // driving toward.
                self.weights = vec![1.0 / n as f64; n];
            } else {
                // No migration has ever been warranted: stay scalar so the
                // traffic keeps its natural distribution (and the engine its
                // legacy fast path).
                return mode.into();
            }
        }
        if spread > self.band_on_c && hot != cold {
            // Migrate: move up to `step` of the traffic off the hot spot.
            let moved = self.step.min(self.weights[hot]);
            self.weights[hot] -= moved;
            self.weights[cold] += moved;
            self.renormalize();
        } else if spread < self.band_off_c {
            // Relax every weight toward uniform. The exponential tail is
            // snapped to exactly uniform once it gets close: from then on
            // every decision emits a bit-identical plan, so the engine
            // neither charges per-interval mode-switch overhead nor rebuilds
            // the traffic grid for sub-ulp weight changes.
            let uniform = 1.0 / n as f64;
            let mut max_deviation = 0.0f64;
            for w in &mut self.weights {
                *w += (uniform - *w) * self.step;
                max_deviation = max_deviation.max((*w - uniform).abs());
            }
            if max_deviation < 1e-6 {
                self.weights.fill(uniform);
            } else {
                self.renormalize();
            }
        }
        // Inside the hysteresis band the weights hold bit-exactly.
        ActuationPlan::global(mode).with_steering(self.weights.clone())
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::Mig
    }

    fn uses_pid(&self) -> bool {
        self.selector.uses_pid()
    }

    fn reset(&mut self) {
        self.weights.clear();
        self.selector.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::scene::PositionTemp;
    use workloads::rng::SmallRng;

    fn policy() -> DtmMig {
        DtmMig::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm())
    }

    /// A one-channel field whose positions sit at the given hottest-layer
    /// temperatures.
    fn field(temps: &[f64]) -> ThermalObservation {
        let mut obs = ThermalObservation::from_hottest(f64::NEG_INFINITY, f64::NEG_INFINITY);
        obs.layer_depth = 1;
        for (dimm, &t) in temps.iter().enumerate() {
            obs.positions.push(PositionTemp {
                channel: 0,
                dimm,
                amb_c: t,
                dram_c: t - 30.0,
                hottest_layer: 0,
                hottest_layer_c: t,
            });
            obs.layer_temps_c.push(t);
            if t > obs.max_amb_c {
                obs.max_amb_c = t;
                obs.hottest_amb = Some((0, dimm));
            }
            if t - 30.0 > obs.max_dram_c {
                obs.max_dram_c = t - 30.0;
                obs.hottest_dram = Some((0, dimm));
            }
        }
        obs
    }

    #[test]
    fn weight_flows_from_the_hottest_to_the_coldest_position() {
        let mut p = policy();
        let obs = field(&[105.0, 100.0, 98.0, 96.0]);
        let plan = p.decide(&obs, 0.01);
        assert_eq!(plan.steering.len(), 4);
        assert!(plan.steering[0] < 0.25, "hot position sheds weight: {:?}", plan.steering);
        assert!(plan.steering[3] > 0.25, "cold position gains it");
        // Repeated hot intervals keep migrating.
        let plan2 = p.decide(&obs, 0.01);
        assert!(plan2.steering[0] < plan.steering[0]);
        assert!(plan2.steering[3] > plan.steering[3]);
    }

    #[test]
    fn hysteresis_band_holds_and_then_relaxes() {
        let mut p = policy().with_band(2.0, 0.5);
        // Build up some migration first.
        for _ in 0..10 {
            p.decide(&field(&[105.0, 100.0, 98.0, 96.0]), 0.01);
        }
        let migrated = p.weights().to_vec();
        assert!(migrated[0] < 0.25 - 1e-12);
        // Inside the band (0.5 <= spread <= 2.0): hold.
        p.decide(&field(&[100.0, 99.5, 99.2, 99.0]), 0.01);
        assert_eq!(p.weights(), &migrated[..], "spread inside the band holds the weights");
        // Below the band: relax toward uniform.
        for _ in 0..500 {
            p.decide(&field(&[100.0, 100.0, 99.9, 99.8]), 0.01);
        }
        for &w in p.weights() {
            assert!((w - 0.25).abs() < 1e-3, "weights relax to uniform, got {:?}", p.weights());
        }
    }

    #[test]
    fn global_failsafe_matches_dtm_bw() {
        let mut mig = policy();
        let mut bw = crate::dtm::bw::DtmBw::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        for temps in [(100.0, 70.0), (108.5, 70.0), (109.7, 70.0), (110.5, 70.0)] {
            assert_eq!(mig.decide_temps(temps.0, temps.1, 0.01), bw.decide_temps(temps.0, temps.1, 0.01));
        }
        // Over the TDP with a resolved field, the mode still shuts off while
        // the steering keeps flattening for the restart.
        let plan = mig.decide(&field(&[111.0, 100.0, 98.0, 96.0]), 0.01);
        assert!(!plan.mode.makes_progress());
        assert_eq!(plan.steering.len(), 4);
    }

    #[test]
    fn weights_always_sum_to_one_under_random_fields() {
        // Seeded property test: whatever temperature fields arrive (varying
        // sizes force re-initialization; spreads land on every side of the
        // hysteresis band), every emitted plan is either scalar — no
        // migration warranted yet for this field size — or carries weights
        // that stay a distribution.
        let mut rng = SmallRng::seed_from_u64(0x319_2026);
        let mut p = policy();
        let mut spatial_plans = 0u32;
        for case in 0..2_000 {
            let n = 1 + rng.gen_range(0..12u64) as usize;
            let temps: Vec<f64> = (0..n).map(|_| 90.0 + 20.0 * rng.next_f64()).collect();
            let plan = p.decide(&field(&temps), 0.01);
            if plan.is_scalar() {
                continue;
            }
            spatial_plans += 1;
            let sum: f64 = plan.steering.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "case {case}: weights sum to {sum}");
            assert!(plan.steering.iter().all(|&w| (0.0..=1.0).contains(&w)), "case {case}: {:?}", plan.steering);
            assert_eq!(plan.steering.len(), n);
        }
        assert!(spatial_plans > 1_000, "the walk must actually migrate: {spatial_plans} spatial plans");
    }

    #[test]
    fn plans_stay_scalar_until_migration_triggers() {
        // Below the hysteresis band the policy must not touch the traffic
        // distribution at all — scalar plans keep the natural split (and
        // the engine on its legacy fast path).
        let mut p = policy();
        for _ in 0..10 {
            let plan = p.decide(&field(&[100.0, 99.5, 99.2, 99.0]), 0.01);
            assert!(plan.is_scalar(), "spread inside the band must not steer");
            assert!(p.weights().is_empty());
        }
        // Crossing the band takes ownership of the distribution...
        assert!(!p.decide(&field(&[105.0, 100.0, 98.0, 96.0]), 0.01).is_scalar());
        // ...and keeps it through later calm intervals (the migrated state
        // is what keeps the field flat).
        assert!(!p.decide(&field(&[100.0, 99.9, 99.9, 99.8]), 0.01).is_scalar());
    }

    #[test]
    fn converged_relaxation_emits_identical_plans() {
        // Once the relax tail snaps to uniform, every further decision must
        // emit a bit-identical plan — that is what keeps the engine from
        // charging DTM overhead (and rebuilding window power) every
        // interval for sub-ulp weight changes.
        let mut p = policy();
        for _ in 0..5 {
            p.decide(&field(&[105.0, 96.0]), 0.01);
        }
        for _ in 0..2_000 {
            p.decide(&field(&[100.0, 100.0]), 0.01);
        }
        let a = p.decide(&field(&[100.0, 100.0]), 0.01);
        let b = p.decide(&field(&[100.0, 100.0]), 0.01);
        assert_eq!(a, b, "converged plans must compare equal");
        assert_eq!(a.steering, vec![0.5, 0.5], "fully relaxed weights sit exactly at uniform");
    }

    #[test]
    fn step_overrides_are_sanitized() {
        let base = policy();
        assert_eq!(base.clone().with_step(0.1).step, 0.1);
        assert_eq!(base.clone().with_step(7.0).step, 1.0);
        assert_eq!(base.clone().with_step(-1.0).step, f64::MIN_POSITIVE);
        // Non-finite steps must not poison the steering state.
        assert_eq!(base.clone().with_step(f64::NAN).step, base.step);
        assert_eq!(base.clone().with_step(f64::INFINITY).step, base.step);
    }

    #[test]
    fn naming_and_reset_follow_the_scheme_conventions() {
        let mut p = policy();
        assert_eq!(p.name(), "DTM-MIG");
        assert_eq!(p.scheme(), DtmScheme::Mig);
        assert!(!p.uses_pid());
        assert_eq!(DtmMig::with_pid(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm()).name(), "DTM-MIG+PID");
        p.decide(&field(&[105.0, 96.0]), 0.01);
        assert!(!p.weights().is_empty());
        p.reset();
        assert!(p.weights().is_empty(), "reset forgets the migration state");
    }
}
