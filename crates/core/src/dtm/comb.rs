//! DTM-COMB: combined core gating and DVFS (Section 5.2.2).
//!
//! The policy proposed in the Chapter 5 case study: it both gates a subset
//! of cores and scales the frequency/voltage of the remaining ones, reducing
//! memory traffic (like DTM-ACG) and processor heat dissipation to the
//! memory (like DTM-CDVFS).

use cpu_model::CpuConfig;

use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::dtm::selector::LevelSelector;
use crate::sim::modes::scheme_mode;
use crate::thermal::params::ThermalLimits;
use crate::thermal::scene::ThermalObservation;

/// The combined gating + DVFS policy.
#[derive(Debug, Clone)]
pub struct DtmComb {
    cpu: CpuConfig,
    selector: LevelSelector,
}

impl DtmComb {
    /// Threshold-driven DTM-COMB.
    pub fn new(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmComb { cpu, selector: LevelSelector::threshold(limits) }
    }

    /// PID-driven DTM-COMB.
    pub fn with_pid(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmComb { cpu, selector: LevelSelector::pid(limits) }
    }
}

impl DtmPolicy for DtmComb {
    fn decide(&mut self, observation: &ThermalObservation, dt_s: f64) -> ActuationPlan {
        let level = self.selector.select(observation.max_amb_c, observation.max_dram_c, dt_s);
        scheme_mode(DtmScheme::Comb, level, &self.cpu).into()
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::Comb
    }

    fn uses_pid(&self) -> bool {
        self.selector.uses_pid()
    }

    fn reset(&mut self) {
        self.selector.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combines_gating_and_frequency_scaling() {
        let mut p = DtmComb::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        let cool = p.decide_temps(100.0, 70.0, 1.0);
        assert_eq!((cool.active_cores, cool.op.freq_ghz), (4, 3.2));
        let warm = p.decide_temps(108.5, 70.0, 1.0);
        assert_eq!(warm.active_cores, 3);
        assert!(warm.op.freq_ghz < 3.2);
        let hot = p.decide_temps(109.7, 70.0, 1.0);
        assert_eq!(hot.active_cores, 2);
        assert!((hot.op.freq_ghz - 0.8).abs() < 1e-9);
    }

    #[test]
    fn tdp_stops_everything() {
        let mut p = DtmComb::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        assert!(!p.decide_temps(112.0, 70.0, 1.0).makes_progress());
    }

    #[test]
    fn pid_variant_reports_itself() {
        let p = DtmComb::with_pid(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        assert_eq!(p.name(), "DTM-COMB+PID");
        assert_eq!(p.scheme(), DtmScheme::Comb);
    }
}
