//! Spatially resolved DTM actuation plans.
//!
//! The paper's DTM schemes act globally: one [`RunningMode`] throttles the
//! whole machine based on the hottest device. The thermal scene, however,
//! resolves temperatures per DIMM position and per stacked die, and
//! [`ActuationPlan`] is the decision type that lets a policy exploit that
//! field. A plan always carries the global running mode; on top of it a
//! policy may attach
//!
//! * **per-channel service fractions** — the share of a logical channel's
//!   memory traffic the controller serves next interval (`1.0` = no
//!   throttling, `0.0` = channel paused), the actuator of
//!   [`DtmCbw`](crate::dtm::cbw::DtmCbw); and
//! * **per-position steering weights** — how the subsystem's locally served
//!   traffic is distributed over the DIMM positions (channel-major, summing
//!   to 1), the actuator of [`DtmMig`](crate::dtm::mig::DtmMig)-style page
//!   migration away from hot DIMMs.
//!
//! A plan with neither attachment is **scalar** and reproduces the legacy
//! behavior exactly: the simulation engine routes scalar plans through the
//! unchanged global code path (pinned bit-identical by
//! `tests/policy_plan_regression.rs`). `From<RunningMode>` is the shim that
//! keeps scalar policies one-liners — they return `mode.into()`.
//!
//! [`ActuationPlan::apply_traffic_into`] is the single encoding of how a
//! spatial plan transforms a characterized per-DIMM traffic split: steering
//! redistributes the locally served throughput over the position grid,
//! per-channel service fractions scale each channel's share, and the bypass
//! (forwarded) traffic of every FBDIMM chain is rebuilt from the planned
//! local traffic so asymmetric throttling shows up as asymmetric heat.

use cpu_model::RunningMode;
use fbdimm_sim::DimmTraffic;

/// What a DTM policy decides at each interval: the global running mode plus
/// optional per-channel throttling and traffic steering.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuationPlan {
    /// Global running mode (active cores, DVFS point, global bandwidth cap).
    pub mode: RunningMode,
    /// Per-logical-channel service fractions in `[0, 1]`; empty = every
    /// channel fully served (no per-channel throttling).
    pub channel_service: Vec<f64>,
    /// Per-position traffic-steering weights, channel-major (position
    /// `channel × dimms_per_channel + dimm`), summing to 1; empty = traffic
    /// follows the workload's natural distribution.
    pub steering: Vec<f64>,
}

impl From<RunningMode> for ActuationPlan {
    /// The scalar shim: a bare running mode is a plan that actuates
    /// globally, exactly like the pre-plan policies did.
    fn from(mode: RunningMode) -> Self {
        ActuationPlan::global(mode)
    }
}

/// How a plan transformed a traffic split (progress and accounting inputs
/// for the window loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanTrafficStats {
    /// Fraction of the natural locally-served throughput still served after
    /// per-channel throttling (1.0 for plans without service fractions);
    /// scales batch progress the way a global bandwidth cap would.
    pub service_scale: f64,
    /// Locally served throughput moved off its natural position by steering,
    /// GB/s (0.0 for plans without steering weights).
    pub migrated_gbps: f64,
}

impl PlanTrafficStats {
    /// The stats of a plan that changes nothing.
    pub fn identity() -> Self {
        PlanTrafficStats { service_scale: 1.0, migrated_gbps: 0.0 }
    }
}

impl ActuationPlan {
    /// A plan that only sets the global running mode (scalar plan).
    pub fn global(mode: RunningMode) -> Self {
        ActuationPlan { mode, channel_service: Vec::new(), steering: Vec::new() }
    }

    /// Whether the plan actuates globally only — no per-channel service
    /// fractions and no steering weights. Scalar plans take the legacy
    /// (bit-identical) path through the simulation engine.
    pub fn is_scalar(&self) -> bool {
        self.channel_service.is_empty() && self.steering.is_empty()
    }

    /// Attaches per-channel service fractions, clamped into `[0, 1]`
    /// (non-finite entries become 1.0 — a broken sensor must not stall a
    /// channel forever).
    pub fn with_channel_service(mut self, mut service: Vec<f64>) -> Self {
        for s in &mut service {
            *s = if s.is_finite() { s.clamp(0.0, 1.0) } else { 1.0 };
        }
        self.channel_service = service;
        self
    }

    /// Attaches per-position steering weights. Negative and non-finite
    /// entries are floored to 0 and the vector is normalized to sum to 1;
    /// an all-zero vector is treated as "no steering".
    pub fn with_steering(mut self, mut weights: Vec<f64>) -> Self {
        for w in &mut weights {
            if !w.is_finite() || *w < 0.0 {
                *w = 0.0;
            }
        }
        let sum: f64 = weights.iter().sum();
        if sum > 0.0 {
            for w in &mut weights {
                *w /= sum;
            }
            self.steering = weights;
        } else {
            self.steering = Vec::new();
        }
        self
    }

    /// The service fraction of a logical channel (1.0 when the plan carries
    /// no per-channel fractions or the channel is out of range).
    pub fn service_for(&self, channel: usize) -> f64 {
        self.channel_service.get(channel).copied().unwrap_or(1.0)
    }

    /// Whether the plan throttles a given channel — through a per-channel
    /// service fraction below 1 or through the global bandwidth cap (which
    /// caps every channel at once).
    pub fn throttles_channel(&self, channel: usize) -> bool {
        self.mode.bandwidth_cap.is_some() || self.service_for(channel) < 1.0
    }

    /// Applies the plan's spatial fields to a characterized per-DIMM traffic
    /// split, writing one [`DimmTraffic`] per position (channel-major grid)
    /// into `out` — the scratch buffer is reused across calls, so the window
    /// loop allocates nothing at steady state.
    ///
    /// Steps, in order:
    ///
    /// 1. The natural split is scattered onto the full position grid
    ///    (positions without characterized traffic idle at zero).
    /// 2. If the plan carries steering weights of matching length, the total
    ///    locally served throughput is redistributed as `total × weight[i]`
    ///    (total conserved; a position that had no traffic inherits the
    ///    aggregate read fraction).
    /// 3. Per-channel service fractions scale each position's local traffic.
    /// 4. Bypass (forwarded) traffic is rebuilt per channel from the planned
    ///    local traffic: a DIMM forwards everything served behind it.
    ///
    /// Returns the [`PlanTrafficStats`] the engine needs to scale batch
    /// progress and account migrated traffic.
    ///
    /// Geometry mismatches are debug-asserted: steering weights whose length
    /// is not `channels × dimms_per_channel` are ignored in release builds
    /// (the plan was built against a different grid), and natural traffic
    /// entries outside the grid are dropped. Both indicate a caller mixing
    /// plans or design points across memory configurations.
    pub fn apply_traffic_into(
        &self,
        natural: &[DimmTraffic],
        channels: usize,
        dimms_per_channel: usize,
        out: &mut Vec<DimmTraffic>,
    ) -> PlanTrafficStats {
        let positions = channels * dimms_per_channel;
        debug_assert!(
            self.steering.is_empty() || self.steering.len() == positions,
            "steering weights ({}) do not match the {channels}x{dimms_per_channel} position grid",
            self.steering.len(),
        );
        debug_assert!(
            natural.iter().all(|d| d.channel < channels && d.dimm < dimms_per_channel),
            "natural traffic split carries positions outside the {channels}x{dimms_per_channel} grid",
        );
        out.clear();
        out.extend((0..channels).flat_map(|channel| {
            (0..dimms_per_channel).map(move |dimm| DimmTraffic { channel, dimm, ..DimmTraffic::default() })
        }));
        let mut total_local = 0.0;
        let mut total_read = 0.0;
        for d in natural {
            if d.channel < channels && d.dimm < dimms_per_channel {
                let slot = &mut out[d.channel * dimms_per_channel + d.dimm];
                slot.local_gbps = d.local_gbps;
                slot.read_fraction = d.read_fraction;
                total_local += d.local_gbps;
                total_read += d.local_gbps * d.read_fraction;
            }
        }
        let aggregate_read_fraction = if total_local > 0.0 { total_read / total_local } else { 0.0 };

        // 2. Steering: redistribute the (conserved) total over the grid.
        let mut migrated_gbps = 0.0;
        if self.steering.len() == positions && total_local > 0.0 {
            for (slot, &w) in out.iter_mut().zip(&self.steering) {
                let steered = total_local * w;
                migrated_gbps += (steered - slot.local_gbps).abs();
                if slot.local_gbps == 0.0 {
                    slot.read_fraction = aggregate_read_fraction;
                }
                slot.local_gbps = steered;
            }
            migrated_gbps *= 0.5; // every moved GB/s leaves one slot and enters another
        }

        // 3. Per-channel service fractions throttle each channel's share.
        let steered_total: f64 = out.iter().map(|d| d.local_gbps).sum();
        if !self.channel_service.is_empty() {
            for slot in out.iter_mut() {
                slot.local_gbps *= self.service_for(slot.channel);
            }
        }
        let served_total: f64 = out.iter().map(|d| d.local_gbps).sum();
        let service_scale = if steered_total > 0.0 { served_total / steered_total } else { 1.0 };

        // 4. Rebuild the FBDIMM chain bypass from the planned local traffic.
        for channel in 0..channels {
            let base = channel * dimms_per_channel;
            let mut behind = 0.0;
            for dimm in (0..dimms_per_channel).rev() {
                out[base + dimm].bypass_gbps = behind;
                behind += out[base + dimm].local_gbps;
            }
        }

        PlanTrafficStats { service_scale, migrated_gbps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::CpuConfig;
    use workloads::rng::SmallRng;

    fn full_mode() -> RunningMode {
        RunningMode::full_speed(&CpuConfig::paper_quad_core())
    }

    fn natural() -> Vec<DimmTraffic> {
        vec![
            DimmTraffic { channel: 0, dimm: 0, local_gbps: 2.0, bypass_gbps: 3.0, read_fraction: 0.8 },
            DimmTraffic { channel: 0, dimm: 1, local_gbps: 1.5, bypass_gbps: 1.5, read_fraction: 0.6 },
            DimmTraffic { channel: 0, dimm: 2, local_gbps: 1.5, bypass_gbps: 0.0, read_fraction: 0.5 },
            DimmTraffic { channel: 1, dimm: 0, local_gbps: 1.0, bypass_gbps: 0.0, read_fraction: 0.7 },
        ]
    }

    #[test]
    fn scalar_shim_round_trips_the_mode() {
        let mode = full_mode();
        let plan: ActuationPlan = mode.into();
        assert!(plan.is_scalar());
        assert_eq!(plan.mode, mode);
        assert_eq!(plan.service_for(0), 1.0);
        assert!(!plan.throttles_channel(0));
        assert_eq!(plan, ActuationPlan::global(mode));
    }

    #[test]
    fn channel_service_is_clamped_and_reported() {
        let plan = ActuationPlan::global(full_mode()).with_channel_service(vec![1.5, 0.5, -0.25, f64::NAN]);
        assert_eq!(plan.channel_service, vec![1.0, 0.5, 0.0, 1.0]);
        assert!(!plan.is_scalar());
        assert!(!plan.throttles_channel(0), "clamped to full service");
        assert!(plan.throttles_channel(1) && plan.throttles_channel(2));
        assert_eq!(plan.service_for(9), 1.0, "out-of-range channels are unthrottled");
    }

    #[test]
    fn global_cap_counts_as_throttling_every_channel() {
        let plan = ActuationPlan::global(full_mode().with_bandwidth_cap_gbps(6.4));
        assert!(plan.throttles_channel(0) && plan.throttles_channel(7));
        assert!(plan.is_scalar(), "a global cap alone is still a scalar plan");
    }

    #[test]
    fn steering_is_sanitized_and_normalized() {
        let plan = ActuationPlan::global(full_mode()).with_steering(vec![3.0, 1.0, -2.0, f64::INFINITY]);
        assert_eq!(plan.steering, vec![0.75, 0.25, 0.0, 0.0]);
        let none = ActuationPlan::global(full_mode()).with_steering(vec![0.0, -1.0]);
        assert!(none.is_scalar(), "an all-zero weight vector means no steering");
    }

    #[test]
    fn identity_plan_scatters_traffic_onto_the_grid_and_rebuilds_bypass() {
        let plan = ActuationPlan::global(full_mode());
        let mut out = Vec::new();
        let stats = plan.apply_traffic_into(&natural(), 2, 4, &mut out);
        assert_eq!(stats, PlanTrafficStats::identity());
        assert_eq!(out.len(), 8);
        // Locals land on their positions; uncharacterized positions idle.
        assert_eq!(out[0].local_gbps, 2.0);
        assert_eq!(out[3].local_gbps, 0.0);
        // Bypass is the suffix sum of the locals behind each DIMM — which for
        // this chain-consistent split reproduces the natural bypass.
        assert_eq!(out[0].bypass_gbps, 3.0);
        assert_eq!(out[1].bypass_gbps, 1.5);
        assert_eq!(out[2].bypass_gbps, 0.0);
        assert_eq!(out[4].bypass_gbps, 0.0);
    }

    #[test]
    fn service_fractions_scale_channels_and_progress() {
        let plan = ActuationPlan::global(full_mode()).with_channel_service(vec![0.5, 1.0]);
        let mut out = Vec::new();
        let stats = plan.apply_traffic_into(&natural(), 2, 4, &mut out);
        // Channel 0 halves (5.0 -> 2.5 GB/s), channel 1 untouched (1.0).
        assert!((out[0].local_gbps - 1.0).abs() < 1e-12);
        assert!((out[4].local_gbps - 1.0).abs() < 1e-12);
        // Progress scales by served/natural = 3.5/6.0.
        assert!((stats.service_scale - 3.5 / 6.0).abs() < 1e-12);
        assert_eq!(stats.migrated_gbps, 0.0);
        // The throttled channel's bypass shrank with its locals.
        assert!((out[0].bypass_gbps - 1.5).abs() < 1e-12);
    }

    #[test]
    fn steering_conserves_total_traffic_and_counts_migration() {
        // All weight onto channel 1: every locally served GB/s moves.
        let mut w = vec![0.0; 8];
        w[4] = 1.0;
        let plan = ActuationPlan::global(full_mode()).with_steering(w);
        let mut out = Vec::new();
        let stats = plan.apply_traffic_into(&natural(), 2, 4, &mut out);
        let total: f64 = out.iter().map(|d| d.local_gbps).sum();
        assert!((total - 6.0).abs() < 1e-12, "steering conserves the total");
        assert!((out[4].local_gbps - 6.0).abs() < 1e-12);
        assert_eq!(stats.service_scale, 1.0, "steering alone never throttles");
        // 5.0 GB/s left channel 0; position (1,0) gained 5.0 of its 6.0.
        assert!((stats.migrated_gbps - 5.0).abs() < 1e-12);
        // Positions that had no characterized traffic inherit the aggregate
        // read fraction.
        let aggregate = (2.0 * 0.8 + 1.5 * 0.6 + 1.5 * 0.5 + 1.0 * 0.7) / 6.0;
        assert!((out[3].read_fraction - aggregate).abs() < 1e-12);
    }

    #[test]
    fn seeded_plans_conserve_traffic_and_keep_weights_normalized() {
        // Property test: for random weights and service fractions, the
        // steered total equals the natural total, the served total matches
        // service_scale, and sanitized weights always sum to 1.
        let mut rng = SmallRng::seed_from_u64(0x091a_2026);
        for case in 0..300 {
            let channels = 1 + rng.gen_range(0..4u64) as usize;
            let dpc = 1 + rng.gen_range(0..4u64) as usize;
            let natural: Vec<DimmTraffic> = (0..channels)
                .flat_map(|channel| (0..dpc).map(move |dimm| (channel, dimm)))
                .map(|(channel, dimm)| DimmTraffic {
                    channel,
                    dimm,
                    local_gbps: 2.0 * rng.next_f64(),
                    bypass_gbps: 0.0,
                    read_fraction: rng.next_f64(),
                })
                .collect();
            let weights: Vec<f64> = (0..channels * dpc).map(|_| rng.next_f64()).collect();
            let service: Vec<f64> = (0..channels).map(|_| rng.next_f64()).collect();
            let plan = ActuationPlan::global(full_mode()).with_steering(weights).with_channel_service(service.clone());
            let sum: f64 = plan.steering.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "case {case}: weights sum to {sum}");
            assert!(plan.steering.iter().all(|&w| w >= 0.0));

            let natural_total: f64 = natural.iter().map(|d| d.local_gbps).sum();
            let mut out = Vec::new();
            let stats = plan.apply_traffic_into(&natural, channels, dpc, &mut out);
            let served: f64 = out.iter().map(|d| d.local_gbps).sum();
            let expected_served: f64 =
                plan.steering.iter().enumerate().map(|(i, &w)| natural_total * w * service[i / dpc]).sum();
            assert!((served - expected_served).abs() < 1e-9, "case {case}");
            let scale = if natural_total > 0.0 { served / natural_total } else { 1.0 };
            assert!((stats.service_scale - scale).abs() < 1e-9, "case {case}");
            // Bypass consistency: every DIMM forwards exactly what is served
            // behind it.
            for channel in 0..channels {
                let base = channel * dpc;
                for dimm in 0..dpc {
                    let behind: f64 = (dimm + 1..dpc).map(|d| out[base + d].local_gbps).sum();
                    assert!((out[base + dimm].bypass_gbps - behind).abs() < 1e-12, "case {case}");
                }
            }
        }
    }
}
