//! DTM-TS: thermal shutdown (Section 4.2.1).
//!
//! When either device reaches its thermal design point the memory subsystem
//! is shut off completely; it is re-enabled once the temperature has dropped
//! below the thermal release point (TRP). The TRP is the knob Figure 4.2
//! sweeps.

use cpu_model::{CpuConfig, RunningMode};

use crate::dtm::plan::ActuationPlan;
use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::thermal::params::ThermalLimits;
use crate::thermal::scene::ThermalObservation;

/// The thermal-shutdown policy.
#[derive(Debug, Clone)]
pub struct DtmTs {
    cpu: CpuConfig,
    limits: ThermalLimits,
    shut_down: bool,
}

impl DtmTs {
    /// Creates the policy with the given thermal limits (TDP and TRP).
    pub fn new(cpu: CpuConfig, limits: ThermalLimits) -> Self {
        DtmTs { cpu, limits, shut_down: false }
    }

    /// Whether the memory is currently shut down.
    pub fn is_shut_down(&self) -> bool {
        self.shut_down
    }

    /// The thermal limits in use.
    pub fn limits(&self) -> &ThermalLimits {
        &self.limits
    }
}

impl DtmPolicy for DtmTs {
    fn decide(&mut self, observation: &ThermalObservation, _dt_s: f64) -> ActuationPlan {
        if observation.over_tdp(&self.limits) {
            self.shut_down = true;
        } else if self.shut_down && observation.released(&self.limits) {
            // `released` is NaN-safe: a stack with no buffer die (DDR4/5
            // rank pairs report `max_amb_c = NaN`) releases on the DRAM
            // condition alone instead of latching shut forever.
            self.shut_down = false;
        }
        if self.shut_down {
            RunningMode { active_cores: 0, op: self.cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) }.into()
        } else {
            RunningMode::full_speed(&self.cpu).into()
        }
    }

    fn scheme(&self) -> DtmScheme {
        DtmScheme::Ts
    }

    fn reset(&mut self) {
        self.shut_down = false;
    }

    fn observes_field(&self) -> bool {
        // Decisions read only the scalar device maxima.
        false
    }

    fn is_steady(&self, observation: &ThermalObservation, _plan: &ActuationPlan, drift_c: f64) -> bool {
        // The only state is the shutdown latch; the decision is steady iff
        // no observation within the drift band can flip it. Comparisons are
        // NaN-safe: an absent device (`NaN`) trips nothing and is written so
        // a NaN temperature answers `false` on the "stays above" side.
        let stays_below = |temp: f64, limit: f64| {
            let reaches = temp + drift_c >= limit;
            !reaches
        };
        let stays_above = |temp: f64, limit: f64| temp - drift_c > limit;
        if self.shut_down {
            // Stays latched only while some present device holds clear of
            // its release point even after drifting down.
            stays_above(observation.max_amb_c, self.limits.amb_trp_c)
                || stays_above(observation.max_dram_c, self.limits.dram_trp_c)
        } else {
            stays_below(observation.max_amb_c, self.limits.amb_tdp_c)
                && stays_below(observation.max_dram_c, self.limits.dram_tdp_c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DtmTs {
        DtmTs::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm())
    }

    #[test]
    fn stays_on_below_the_tdp() {
        let mut p = policy();
        assert!(p.decide_temps(109.9, 84.9, 1.0).makes_progress());
        assert!(!p.is_shut_down());
    }

    #[test]
    fn shuts_down_at_the_tdp_and_stays_down_until_the_trp() {
        let mut p = policy();
        assert!(!p.decide_temps(110.0, 80.0, 1.0).makes_progress());
        // Still above the TRP: remains off (hysteresis).
        assert!(!p.decide_temps(109.5, 80.0, 1.0).makes_progress());
        // At or below the TRP: back on.
        assert!(p.decide_temps(109.0, 80.0, 1.0).makes_progress());
        assert!(!p.is_shut_down());
    }

    #[test]
    fn dram_overheating_also_triggers_shutdown() {
        let mut p = policy();
        assert!(!p.decide_temps(100.0, 85.2, 1.0).makes_progress());
        // AMB is cool but DRAM has not released yet.
        assert!(!p.decide_temps(100.0, 84.5, 1.0).makes_progress());
        assert!(p.decide_temps(100.0, 83.9, 1.0).makes_progress());
    }

    #[test]
    fn higher_trp_releases_earlier() {
        let limits = ThermalLimits::paper_fbdimm().with_amb_trp(109.5);
        let mut p = DtmTs::new(CpuConfig::paper_quad_core(), limits);
        p.decide_temps(110.0, 80.0, 1.0);
        assert!(!p.decide_temps(109.6, 80.0, 1.0).makes_progress());
        assert!(p.decide_temps(109.5, 80.0, 1.0).makes_progress());
    }

    #[test]
    fn steadiness_tracks_the_latch_and_its_margins() {
        use crate::thermal::scene::ThermalObservation;
        let mut p = policy();
        let cool = ThermalObservation::from_hottest(100.0, 70.0);
        let plan = p.decide(&cool, 1.0);
        assert!(p.is_steady(&cool, &plan, 1.0));
        // TDP within the drift band: the latch could set.
        assert!(!p.is_steady(&ThermalObservation::from_hottest(109.5, 70.0), &plan, 1.0));
        // Latched shut and holding clear above the release point: steady.
        let hot = ThermalObservation::from_hottest(120.0, 70.0);
        let shut_plan = p.decide(&hot, 1.0);
        assert!(p.is_shut_down());
        assert!(p.is_steady(&hot, &shut_plan, 1.0));
        // Near the release point the latch could clear: not steady.
        assert!(!p.is_steady(&ThermalObservation::from_hottest(109.3, 70.0), &shut_plan, 1.0));
    }

    #[test]
    fn reset_clears_the_latch() {
        let mut p = policy();
        p.decide_temps(111.0, 80.0, 1.0);
        assert!(p.is_shut_down());
        p.reset();
        assert!(!p.is_shut_down());
        assert_eq!(p.scheme(), DtmScheme::Ts);
        assert_eq!(p.name(), "DTM-TS");
    }
}
