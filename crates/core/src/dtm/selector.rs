//! Shared emergency-level selection logic for the multi-level DTM schemes.
//!
//! DTM-BW, DTM-ACG, DTM-CDVFS and DTM-COMB all quantize temperature into a
//! thermal emergency level and map the level to a control decision. The
//! quantization can be done either with the fixed thresholds of Table 4.3 or
//! with the PID formal controller of Section 4.2.3; [`LevelSelector`]
//! implements both so the policy types stay small.

use crate::dtm::emergency::{EmergencyLevel, EmergencyThresholds};
use crate::dtm::pid::PidController;
use crate::thermal::params::ThermalLimits;

/// Selects a thermal emergency level from sensed temperatures.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSelector {
    thresholds: EmergencyThresholds,
    limits: ThermalLimits,
    pid: Option<(PidController, PidController)>,
}

impl LevelSelector {
    /// Threshold-based selection using Table 4.3 boundaries derived from the
    /// given limits.
    pub fn threshold(limits: ThermalLimits) -> Self {
        LevelSelector { thresholds: EmergencyThresholds::table_4_3(&limits), limits, pid: None }
    }

    /// PID-based selection using the paper's AMB and DRAM controllers.
    pub fn pid(limits: ThermalLimits) -> Self {
        LevelSelector {
            thresholds: EmergencyThresholds::table_4_3(&limits),
            limits,
            pid: Some((PidController::paper_amb(), PidController::paper_dram())),
        }
    }

    /// PID-based selection with explicit controllers (used by the ablation
    /// benches that sweep the gains).
    pub fn pid_with(limits: ThermalLimits, amb: PidController, dram: PidController) -> Self {
        LevelSelector { thresholds: EmergencyThresholds::table_4_3(&limits), limits, pid: Some((amb, dram)) }
    }

    /// Whether the selector uses the PID controllers.
    pub fn uses_pid(&self) -> bool {
        self.pid.is_some()
    }

    /// The thermal limits the selector enforces.
    pub fn limits(&self) -> &ThermalLimits {
        &self.limits
    }

    /// Resets controller state.
    pub fn reset(&mut self) {
        if let Some((amb, dram)) = &mut self.pid {
            amb.reset();
            dram.reset();
        }
    }

    /// Whether level selection is *steady* under a temperature drift bound:
    /// every pair of temperatures within `drift_c` of the given ones maps to
    /// the same emergency level. Only threshold selection can promise this —
    /// it is a pure function of the temperatures (the Table 4.3 quantizer,
    /// whose top boundary *is* the TDP fail-safe), so steadiness reduces to
    /// both temperatures sitting clear of every boundary. PID selection
    /// carries integral state that moves on every call and is never steady.
    ///
    /// `NaN` temperatures (absent devices) quantize to the lowest level on
    /// both sides of the band and are therefore steady.
    pub fn is_steady(&self, amb_temp_c: f64, dram_temp_c: f64, drift_c: f64) -> bool {
        self.is_steady_band(amb_temp_c, dram_temp_c, drift_c, drift_c)
    }

    /// Asymmetric variant of [`LevelSelector::is_steady`]: steadiness over
    /// the band `[t − below_c, t + above_c]` around each temperature rather
    /// than a symmetric ball. A trajectory approaching its fixed point from
    /// one side — or a slipping orbit hugging a threshold — traverses a
    /// *directed* range, and demanding symmetric clearance would refuse
    /// exactly the near-boundary cells the envelope fast-forward exists
    /// for. Same contract otherwise: only threshold selection can promise
    /// it, and `NaN` temperatures quantize to the lowest level on both
    /// sides of the band.
    pub fn is_steady_band(&self, amb_temp_c: f64, dram_temp_c: f64, below_c: f64, above_c: f64) -> bool {
        self.region_level(amb_temp_c, dram_temp_c, below_c, above_c).is_some()
    }

    /// Decision-region certificate: the unique emergency level every
    /// temperature pair in the rectangle
    /// `[amb − below, amb + above] × [dram − below, dram + above]` selects,
    /// or `None` if the rectangle straddles a boundary (or the selector is
    /// PID-driven and therefore stateful). The Table 4.3 quantizer is
    /// monotone in both temperatures and its top boundary *is* the TDP
    /// fail-safe, so checking the two extreme corners decides the whole
    /// rectangle. This is what lets the envelope replay attest an entire
    /// *plan sequence*: each phase of a sliding-mode orbit presents the
    /// rectangle its observations trace and gets back the one level — hence
    /// the one plan — those observations can produce.
    ///
    /// `NaN` temperatures (absent devices) quantize to the lowest level at
    /// both corners and never block the certificate.
    pub fn region_level(
        &self,
        amb_temp_c: f64,
        dram_temp_c: f64,
        below_c: f64,
        above_c: f64,
    ) -> Option<EmergencyLevel> {
        self.region_level_rect(amb_temp_c - below_c, dram_temp_c - below_c, amb_temp_c + above_c, dram_temp_c + above_c)
    }

    /// Corner form of [`LevelSelector::region_level`]: the unique level of
    /// the explicit rectangle `[amb_lo, amb_hi] × [dram_lo, dram_hi]`, with
    /// independent per-axis extents. The envelope replay traces each device
    /// axis separately, and inflating the narrow axis by the wide axis's
    /// span would push an otherwise-certifiable rectangle across a
    /// boundary.
    pub fn region_level_rect(
        &self,
        amb_lo_c: f64,
        dram_lo_c: f64,
        amb_hi_c: f64,
        dram_hi_c: f64,
    ) -> Option<EmergencyLevel> {
        if self.uses_pid() {
            return None;
        }
        let lo = self.thresholds.level(amb_lo_c, dram_lo_c);
        let hi = self.thresholds.level(amb_hi_c, dram_hi_c);
        if lo == hi {
            Some(lo)
        } else {
            None
        }
    }

    /// The emergency level [`LevelSelector::select`] would return for these
    /// temperatures, as a pure function — or `None` when selection is
    /// PID-driven and therefore stateful. Bit-for-bit the threshold path of
    /// `select`, including the TDP fail-safe, without mutating the
    /// selector: this is what lets the batched engine's exact decision
    /// replay ([`crate::sim::batch`]) re-evaluate a decision per virtual
    /// window without consulting (or perturbing) the policy object's state.
    pub fn pure_level(&self, amb_temp_c: f64, dram_temp_c: f64) -> Option<EmergencyLevel> {
        if self.uses_pid() {
            return None;
        }
        if amb_temp_c >= self.limits.amb_tdp_c || dram_temp_c >= self.limits.dram_tdp_c {
            return Some(EmergencyLevel::L5);
        }
        Some(self.thresholds.level(amb_temp_c, dram_temp_c))
    }

    /// Selects the emergency level for the next interval. An absent device
    /// is signalled with a `NaN` temperature (a DDR4/5 rank pair has no
    /// AMB): it never trips a threshold and is kept out of its PID
    /// controller, so the decision rests on the devices that exist.
    pub fn select(&mut self, amb_temp_c: f64, dram_temp_c: f64, dt_s: f64) -> EmergencyLevel {
        // Reaching a TDP always forces the highest emergency level, PID or
        // not: the chipset's fail-safe throttling stays in charge. (`NaN >=
        // tdp` is false, so absent devices cannot force it.)
        if amb_temp_c >= self.limits.amb_tdp_c || dram_temp_c >= self.limits.dram_tdp_c {
            if let Some((amb, dram)) = &mut self.pid {
                if !amb_temp_c.is_nan() {
                    amb.update(amb_temp_c, dt_s);
                }
                if !dram_temp_c.is_nan() {
                    dram.update(dram_temp_c, dt_s);
                }
            }
            return EmergencyLevel::L5;
        }
        match &mut self.pid {
            None => self.thresholds.level(amb_temp_c, dram_temp_c),
            Some((amb_pid, dram_pid)) => {
                // A NaN fed into a PID would poison its integral state for
                // the rest of the run; an absent device contributes the
                // lowest level instead.
                let la = if amb_temp_c.is_nan() {
                    0
                } else {
                    amb_pid.decide_level(amb_temp_c, dt_s, EmergencyLevel::ALL.len())
                };
                let ld = if dram_temp_c.is_nan() {
                    0
                } else {
                    dram_pid.decide_level(dram_temp_c, dt_s, EmergencyLevel::ALL.len())
                };
                EmergencyLevel::from_index(la.max(ld))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_selector_matches_table_4_3() {
        let mut s = LevelSelector::threshold(ThermalLimits::paper_fbdimm());
        assert_eq!(s.select(100.0, 70.0, 0.01), EmergencyLevel::L1);
        assert_eq!(s.select(108.2, 70.0, 0.01), EmergencyLevel::L2);
        assert_eq!(s.select(109.7, 70.0, 0.01), EmergencyLevel::L4);
        assert_eq!(s.select(100.0, 84.6, 0.01), EmergencyLevel::L4);
        assert!(!s.uses_pid());
    }

    #[test]
    fn tdp_forces_the_highest_level_even_with_pid() {
        let mut s = LevelSelector::pid(ThermalLimits::paper_fbdimm());
        assert_eq!(s.select(110.0, 70.0, 0.01), EmergencyLevel::L5);
        assert_eq!(s.select(100.0, 85.0, 0.01), EmergencyLevel::L5);
        assert!(s.uses_pid());
    }

    #[test]
    fn pid_selector_allows_full_speed_when_cool() {
        let mut s = LevelSelector::pid(ThermalLimits::paper_fbdimm());
        assert_eq!(s.select(95.0, 70.0, 0.01), EmergencyLevel::L1);
    }

    #[test]
    fn pid_selector_throttles_when_held_above_target() {
        let mut s = LevelSelector::pid(ThermalLimits::paper_fbdimm());
        let mut level = EmergencyLevel::L1;
        for _ in 0..300 {
            level = s.select(109.95, 70.0, 0.01);
        }
        assert!(level >= EmergencyLevel::L3, "level {level}");
        s.reset();
        assert_eq!(s.select(95.0, 60.0, 0.01), EmergencyLevel::L1);
    }

    #[test]
    fn threshold_steadiness_requires_margin_from_every_boundary() {
        let s = LevelSelector::threshold(ThermalLimits::paper_fbdimm());
        // Deep inside L1 / L2 with margin: steady.
        assert!(s.is_steady(100.0, 70.0, 0.5));
        assert!(s.is_steady(108.4, 70.0, 0.3));
        // A boundary inside the drift band: not steady.
        assert!(!s.is_steady(107.9, 70.0, 0.2)); // AMB L1→L2 at 108.0
        assert!(!s.is_steady(100.0, 84.9, 0.2)); // DRAM L4→L5 at 85.0
                                                 // Absent devices (NaN) quantize to L1 on both sides of the band.
        assert!(s.is_steady(f64::NAN, 70.0, 0.5));
        // PID selection is never steady — its integral state moves.
        assert!(!LevelSelector::pid(ThermalLimits::paper_fbdimm()).is_steady(100.0, 70.0, 0.5));
    }

    #[test]
    fn band_steadiness_is_directional() {
        let s = LevelSelector::threshold(ThermalLimits::paper_fbdimm());
        // 107.9 °C with the AMB L1→L2 boundary at 108.0: a symmetric 0.2°
        // ball crosses it, but a downward band of the same reach does not.
        assert!(!s.is_steady(107.9, 70.0, 0.2));
        assert!(s.is_steady_band(107.9, 70.0, 0.2, 0.05));
        assert!(!s.is_steady_band(107.9, 70.0, 0.05, 0.2));
        // The symmetric form is the band with equal arms.
        assert_eq!(s.is_steady(107.9, 70.0, 0.2), s.is_steady_band(107.9, 70.0, 0.2, 0.2));
        assert!(s.is_steady_band(f64::NAN, 70.0, 0.5, 0.5));
        assert!(!LevelSelector::pid(ThermalLimits::paper_fbdimm()).is_steady_band(100.0, 70.0, 0.1, 0.1));
    }

    #[test]
    fn region_level_returns_the_unique_level_of_the_rectangle() {
        let s = LevelSelector::threshold(ThermalLimits::paper_fbdimm());
        // Deep inside L1: the rectangle decides L1.
        assert_eq!(s.region_level(100.0, 70.0, 0.5, 0.5), Some(EmergencyLevel::L1));
        // Hugging the AMB L1→L2 boundary (108.0) from below: directional.
        assert_eq!(s.region_level(107.9, 70.0, 0.2, 0.05), Some(EmergencyLevel::L1));
        assert_eq!(s.region_level(107.9, 70.0, 0.05, 0.2), None);
        // Just above it: L2 on both corners.
        assert_eq!(s.region_level(108.3, 70.0, 0.2, 0.2), Some(EmergencyLevel::L2));
        // Absent AMB device (NaN) rests the certificate on the DRAM arm.
        assert_eq!(s.region_level(f64::NAN, 70.0, 0.5, 0.5), Some(EmergencyLevel::L1));
        // PID selection is stateful and never certifies a region.
        assert_eq!(LevelSelector::pid(ThermalLimits::paper_fbdimm()).region_level(100.0, 70.0, 0.1, 0.1), None);
    }

    #[test]
    fn region_level_rect_keeps_the_axes_independent() {
        let s = LevelSelector::threshold(ThermalLimits::paper_fbdimm());
        // A wide AMB extent with a hair-thin DRAM extent right below its
        // boundary: per-axis corners certify where a shared span would not.
        assert_eq!(s.region_level_rect(100.0, 84.49, 107.0, 84.499), Some(EmergencyLevel::L3));
        // The same rectangle nudged across the DRAM L3→L4 boundary fails.
        assert_eq!(s.region_level_rect(100.0, 84.49, 107.0, 84.6), None);
        assert_eq!(s.region_level_rect(f64::NAN, 70.0, f64::NAN, 70.5), Some(EmergencyLevel::L1));
    }

    #[test]
    fn limits_accessor_exposes_the_configured_limits() {
        let s = LevelSelector::threshold(ThermalLimits::paper_fbdimm());
        assert_eq!(s.limits().amb_tdp_c, 110.0);
    }
}
