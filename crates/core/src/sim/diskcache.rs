//! Disk persistence for the level-1 characterization store.
//!
//! [`DiskCache`] backs a [`CharStore`](crate::sim::characterize::CharStore)
//! with append-only, line-delimited JSON files so characterizations
//! survive the process: repeated sweeps, examples and CI runs skip level-1
//! entirely on a warm cache. The container builds offline (no serde), so
//! both the writer and the reader are hand-rolled:
//!
//! * **File layout** — the cache is sharded across [`DISK_SHARDS`] files so
//!   concurrent writers (threads *and* processes) persisting different keys
//!   never contend on one lock. A cache opened at `cache.jsonl` owns:
//!
//!   ```text
//!   cache.0.jsonl   cache.1.jsonl   cache.2.jsonl   cache.3.jsonl
//!   cache.0.jsonl.lock  …                     (advisory lock siblings)
//!   ```
//!
//!   A key's shard file is the low bits of the same process-stable
//!   [`key_hash`](crate::sim::characterize::key_hash) that selects its
//!   in-memory store shard ([`shard_index`]); each shard file has its own
//!   header, advisory lock, compaction and entry cap. The base path itself
//!   holds no data — it only names the family (and [`DiskCache::path`]
//!   still reports it).
//! * **Legacy migration** — caches written before the sharded layout were a
//!   single file at the base path. Opening such a cache migrates it once:
//!   under the base path's advisory lock, every valid entry is routed to
//!   its shard file (appended after any entries already there) and the
//!   legacy file is removed. A crash mid-migration at worst leaves
//!   duplicates for the next load's dedup; a second process opening
//!   concurrently finds the legacy file gone and skips the migration.
//! * **Format** — line 1 of each shard file is a header `{"format":
//!   "memtherm-char-cache", "version": N}`; every further line is one
//!   `{"key": {...}, "point": {...}}` entry. Appending an entry is a single
//!   `write` of one line, which keeps concurrent writers from different
//!   threads safe behind the shard's mutex and makes a torn tail line
//!   recoverable (it is simply skipped on the next load).
//! * **Cross-process locking** — every append additionally takes the shard
//!   file's advisory lock (a `<path>.lock` sibling created with
//!   `O_CREAT|O_EXCL` semantics via `create_new`, retried in a bounded
//!   sleep loop), so multiple *processes* sharing one cache serialize
//!   their appends and their lazy header initialization per shard instead
//!   of racing — and processes writing different shards proceed fully in
//!   parallel. Stale locks left by a crashed holder are broken after 10 s;
//!   if the lock cannot be acquired within the 2 s retry budget the append
//!   proceeds unlocked — the cache is an accelerator and a wedged lock
//!   file must not stall the simulation (the worst case is a torn line,
//!   which the loader already skips).
//! * **Compaction and capping** — concurrent writers legitimately append
//!   duplicate keys (each process computes and persists the point it was
//!   missing), so a shard file accumulates dead lines across warm runs. A
//!   load deduplicates (first occurrence wins, mirroring the in-memory
//!   store's first-write-wins insert) and rewrites the shard file
//!   atomically (temporary sibling + rename) under its advisory lock when
//!   either at least [`COMPACT_MIN_DEAD`] dead lines make up a quarter of
//!   its entries, or the shard exceeds its entry cap
//!   ([`SHARD_ENTRY_CAP`] by default, [`DiskCache::open_with_cap`] to
//!   override) — capping evicts the oldest lines first, so a shard file
//!   can no longer grow without bound.
//! * **Versioning** — a header whose format name or version does not match
//!   [`FORMAT_VERSION`] invalidates that shard file: the load returns no
//!   entries from it and the next append rewrites it from scratch. Entries
//!   whose `hw_fingerprint` belongs to a different hardware configuration
//!   are *not* special-cased — the fingerprint is part of the key, so they
//!   coexist harmlessly and simply never match.
//! * **Exactness** — floating-point fields are written with Rust's shortest
//!   round-trip formatting (`{:?}`), so a reloaded [`CharPoint`] is
//!   bit-identical to the computed one; malformed or truncated lines are
//!   skipped rather than failing the load.

use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cpu_model::{OperatingPoint, RunningMode};
use fbdimm_sim::DimmTraffic;

use crate::sim::characterize::{key_hash, CharPoint, CharStoreKey, ModeKey};

/// Version of the on-disk format; bump on any incompatible layout change.
pub const FORMAT_VERSION: u64 = 1;

/// Format name written into (and required of) the header line.
const FORMAT_NAME: &str = "memtherm-char-cache";

/// Number of shard files a cache is split across. A power of two so the
/// shard index is a mask of the key hash's low bits.
pub const DISK_SHARDS: usize = 4;

/// Default per-shard entry cap: a load that finds more unique entries
/// evicts the oldest lines down to this bound and rewrites the shard file.
pub const SHARD_ENTRY_CAP: usize = 65_536;

/// Index of the shard file holding `key` — the low bits of the same
/// process-stable [`key_hash`] that selects the key's in-memory
/// [`CharStore`](crate::sim::characterize::CharStore) shard.
pub fn shard_index(key: &CharStoreKey) -> usize {
    key_hash(key) as usize & (DISK_SHARDS - 1)
}

/// Path of one shard's file: the base path with `.<shard>` inserted before
/// the extension (`cache.jsonl` → `cache.2.jsonl`).
pub fn shard_path(base: &Path, shard: usize) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("cache");
    match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => base.with_file_name(format!("{stem}.{shard}.{ext}")),
        None => base.with_file_name(format!("{stem}.{shard}")),
    }
}

/// The header line every shard file starts with.
fn header_line() -> String {
    format!("{{\"format\": \"{FORMAT_NAME}\", \"version\": {FORMAT_VERSION}}}\n")
}

/// One shard file of the cache: its own path, advisory lock and lazily
/// opened append handle, so appends to different shards never serialize.
#[derive(Debug)]
struct DiskShard {
    path: PathBuf,
    /// Sibling lock file serializing appends across processes.
    lock_path: PathBuf,
    /// Open append handle; `None` until the first append. The flag records
    /// whether the existing file must be rewritten (missing or invalidated).
    writer: Mutex<(Option<File>, bool)>,
}

/// Append-only, sharded disk backing of a characterization store.
#[derive(Debug)]
pub struct DiskCache {
    /// Base path the shard files derive from (see [`shard_path`]); holds no
    /// data itself.
    path: PathBuf,
    shards: Vec<DiskShard>,
}

/// Held advisory lock: the `.lock` file exists while the guard lives and is
/// removed on drop (including unwinds).
#[derive(Debug)]
struct PathLock {
    path: PathBuf,
}

impl Drop for PathLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// How long a lock file may sit unmodified before it is considered
/// abandoned by a crashed holder and broken.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(10);

/// Retry budget for acquiring the lock before proceeding unlocked.
const LOCK_RETRY_BUDGET: Duration = Duration::from_secs(2);

/// Acquires an advisory cross-process lock at `path` via `create_new`
/// (`O_EXCL`): only one process can create the file, everyone else retries
/// in a short sleep loop. Returns `None` when the budget runs out or the
/// filesystem rejects lock files entirely — callers degrade to unlocked
/// operation rather than failing.
fn acquire_path_lock(path: &Path) -> Option<PathLock> {
    let deadline = Instant::now() + LOCK_RETRY_BUDGET;
    loop {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut file) => {
                // Best effort breadcrumb for humans inspecting a stuck lock.
                let _ = writeln!(file, "{}", std::process::id());
                return Some(PathLock { path: path.to_path_buf() });
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                let stale = std::fs::metadata(path)
                    .ok()
                    .and_then(|m| m.modified().ok())
                    .and_then(|m| m.elapsed().ok())
                    .is_some_and(|age| age > LOCK_STALE_AFTER);
                if stale {
                    // The holder died. Only one breaker may win: atomically
                    // rename the stale lock aside before deleting it, so a
                    // second breaker cannot remove the lock a successful
                    // breaker has already re-created (which would let two
                    // processes hold it at once). Losers fall through and
                    // re-enter the `create_new` race.
                    let aside = path.with_extension(format!("stale.{}", std::process::id()));
                    if std::fs::rename(path, &aside).is_ok() {
                        let _ = std::fs::remove_file(&aside);
                    }
                    continue;
                }
                if Instant::now() >= deadline {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return None,
        }
    }
}

impl DiskCache {
    /// Opens a disk cache rooted at `path` and loads every valid entry from
    /// its shard files, with the default per-shard entry cap
    /// ([`SHARD_ENTRY_CAP`]).
    ///
    /// A legacy single-file cache at `path` itself is migrated into the
    /// sharded layout first (see the module docs). Missing shard files
    /// yield no entries; a shard whose header mismatches (older or newer
    /// format version) discards that shard's contents and schedules the
    /// file to be rewritten on the first append to it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than files not existing.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Self, Vec<(CharStoreKey, CharPoint)>)> {
        Self::open_with_cap(path, SHARD_ENTRY_CAP)
    }

    /// [`DiskCache::open`] with an explicit per-shard entry cap: a shard
    /// file holding more than `cap` unique entries after dedup is rewritten
    /// with only the newest `cap` lines kept (oldest evicted first).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than files not existing.
    pub fn open_with_cap(
        path: impl AsRef<Path>,
        cap: usize,
    ) -> std::io::Result<(Self, Vec<(CharStoreKey, CharPoint)>)> {
        let base = path.as_ref().to_path_buf();
        migrate_legacy(&base)?;
        let mut shards = Vec::with_capacity(DISK_SHARDS);
        let mut entries = Vec::new();
        for i in 0..DISK_SHARDS {
            let spath = shard_path(&base, i);
            let lock_path = lock_path_for(&spath);
            let (shard_entries, must_reset) = match std::fs::read_to_string(&spath) {
                Ok(body) => {
                    let mut lines = body.lines();
                    if lines.next().map(header_is_current) == Some(true) {
                        let raw: Vec<(CharStoreKey, CharPoint)> = lines.filter_map(parse_entry).collect();
                        (compact_on_load(&spath, &lock_path, raw, cap), false)
                    } else {
                        (Vec::new(), true)
                    }
                }
                Err(e) if e.kind() == ErrorKind::NotFound => (Vec::new(), true),
                Err(e) => return Err(e),
            };
            entries.extend(shard_entries);
            shards.push(DiskShard { path: spath, lock_path, writer: Mutex::new((None, must_reset)) });
        }
        Ok((DiskCache { path: base, shards }, entries))
    }

    /// The base path the cache's shard files derive from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one computed entry to its shard file (see [`shard_index`]).
    /// I/O failures are swallowed: the disk cache is an accelerator, and a
    /// read-only or full filesystem must not break the simulation that
    /// produced the point.
    pub fn append(&self, key: &CharStoreKey, point: &CharPoint) {
        self.shards[shard_index(key)].append(key, point);
    }
}

/// One-time migration of a legacy single-file cache at `base` into the
/// sharded layout: under the base path's advisory lock, every valid entry
/// is appended to its shard file and the legacy file is removed. An invalid
/// legacy file (foreign header) is simply removed — the legacy semantics
/// already discarded it wholesale.
fn migrate_legacy(base: &Path) -> std::io::Result<()> {
    if !base.exists() {
        return Ok(());
    }
    let _lock = acquire_path_lock(&lock_path_for(base));
    let body = match std::fs::read_to_string(base) {
        Ok(body) => body,
        // Another process migrated between our existence check and the lock.
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut lines = body.lines();
    if lines.next().map(header_is_current) == Some(true) {
        let mut routed: Vec<Vec<(CharStoreKey, CharPoint)>> = (0..DISK_SHARDS).map(|_| Vec::new()).collect();
        for (key, point) in lines.filter_map(parse_entry) {
            let shard = shard_index(&key);
            routed[shard].push((key, point));
        }
        for (shard, batch) in routed.iter().enumerate() {
            if !batch.is_empty() {
                migrate_batch_into(&shard_path(base, shard), batch)?;
            }
        }
    }
    std::fs::remove_file(base)
}

/// Appends a migration batch to the shard file at `path` under its advisory
/// lock, creating the file with a header when it is missing or invalid. The
/// whole file is rewritten through a temporary sibling + rename so a crash
/// never leaves a half-written shard, and any existing entries keep their
/// position (first-occurrence-wins dedup thus prefers them over migrated
/// duplicates).
fn migrate_batch_into(path: &Path, batch: &[(CharStoreKey, CharPoint)]) -> std::io::Result<()> {
    let _lock = acquire_path_lock(&lock_path_for(path));
    let mut body = match std::fs::read_to_string(path) {
        Ok(existing) if existing.lines().next().map(header_is_current) == Some(true) => {
            let mut existing = existing;
            // A torn tail becomes a complete (malformed, skipped-on-load)
            // line instead of merging with the first migrated entry.
            if !existing.ends_with('\n') {
                existing.push('\n');
            }
            existing
        }
        _ => header_line(),
    };
    for (key, point) in batch {
        body.push_str(&serialize_entry(key, point));
    }
    let tmp = path.with_extension(format!("migrate.{}", std::process::id()));
    let written = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, path));
    if written.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    written
}

impl DiskShard {
    /// Appends one entry, holding the shard's cross-process advisory lock
    /// around the write (and around the lazy header initialization, so two
    /// processes racing to create the shard file cannot clobber each
    /// other's entries).
    fn append(&self, key: &CharStoreKey, point: &CharPoint) {
        let line = serialize_entry(key, point);
        let mut writer = self.writer.lock().expect("disk cache writer poisoned");
        // Degrading to an unlocked append on timeout is deliberate (see the
        // module docs): a wedged lock must not stall the simulation.
        let _lock = acquire_path_lock(&self.lock_path);
        if writer.0.is_none() {
            let mut truncate = writer.1;
            if truncate {
                // The file was missing or invalid when *we* loaded, but
                // another process may have created a valid cache since;
                // re-check under the lock instead of truncating its entries.
                if let Ok(body) = std::fs::read_to_string(&self.path) {
                    if body.lines().next().map(header_is_current) == Some(true) {
                        truncate = false;
                    }
                }
            }
            if truncate {
                // Rewrite the header through a scoped handle; the persistent
                // handle below is opened in append mode so a concurrent
                // process's lines can never be overwritten at a stale offset.
                let rewritten = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&self.path)
                    .and_then(|mut f| f.write_all(header_line().as_bytes()));
                if rewritten.is_err() {
                    // The reset stays scheduled: a later append retries.
                    return;
                }
            }
            let file = OpenOptions::new().create(true).read(true).append(true).open(&self.path);
            let mut file = match file {
                Ok(f) => f,
                // The reset stays scheduled: a later append retries the open.
                Err(_) => return,
            };
            let len = file.metadata().map(|m| m.len()).unwrap_or(0);
            if len == 0 {
                if file.write_all(header_line().as_bytes()).is_err() {
                    return;
                }
            } else if !truncate {
                // A previous process may have died mid-append, leaving a torn
                // tail without a newline; terminate it so the next entry
                // starts on its own line (the torn line alone is skipped on
                // load, as documented).
                let mut tail = [0u8; 1];
                let ends_with_newline = std::io::Seek::seek(&mut file, std::io::SeekFrom::End(-1))
                    .and_then(|_| std::io::Read::read_exact(&mut file, &mut tail))
                    .map(|()| tail[0] == b'\n')
                    .unwrap_or(true);
                if std::io::Seek::seek(&mut file, std::io::SeekFrom::End(0)).is_err() {
                    return;
                }
                if !ends_with_newline && file.write_all(b"\n").is_err() {
                    return;
                }
            }
            writer.1 = false;
            writer.0 = Some(file);
        }
        if let Some(file) = writer.0.as_mut() {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Minimum number of dead (superseded-duplicate) lines before a load
/// rewrites the file, and the dead fraction (dead ≥ total/4) that must be
/// reached alongside it. Concurrent appenders from different processes
/// routinely persist the same key twice; compaction keeps the file from
/// growing without bound across warm-cache runs.
const COMPACT_MIN_DEAD: usize = 8;

/// Deduplicates one shard's loaded entries (first occurrence wins, matching
/// the in-memory store's first-write-wins semantics), evicts the oldest
/// lines beyond the shard's entry cap, and — when enough dead lines have
/// accumulated or an eviction happened — rewrites the shard file through a
/// temporary sibling renamed into place under its cross-process advisory
/// lock.
///
/// The rewrite is best-effort on two counts: failing to take the lock (or
/// any I/O error) simply skips compaction until a later load, and a
/// concurrent process holding an already-open append handle keeps writing
/// to the replaced inode — those appends are lost, which the cache
/// tolerates by construction (the points are recomputed and re-appended on
/// the next cold hit).
fn compact_on_load(
    path: &Path,
    lock_path: &Path,
    raw: Vec<(CharStoreKey, CharPoint)>,
    cap: usize,
) -> Vec<(CharStoreKey, CharPoint)> {
    let total = raw.len();
    let mut seen = std::collections::HashSet::with_capacity(total);
    let mut entries: Vec<(CharStoreKey, CharPoint)> = Vec::with_capacity(total);
    for (key, point) in raw {
        if seen.insert(key.clone()) {
            entries.push((key, point));
        }
    }
    let dead = total - entries.len();
    // Cap eviction drops the oldest surviving lines first: `entries` is in
    // file order, so the front is the oldest.
    let evicted = entries.len().saturating_sub(cap.max(1));
    if evicted > 0 {
        entries.drain(..evicted);
    }
    if evicted > 0 || (dead >= COMPACT_MIN_DEAD && dead * 4 >= total) {
        if let Some(_lock) = acquire_path_lock(lock_path) {
            let tmp = path.with_extension(format!("compact.{}", std::process::id()));
            let mut body = header_line();
            for (key, point) in &entries {
                body.push_str(&serialize_entry(key, point));
            }
            let rewritten = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, path));
            if rewritten.is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
    entries
}

/// The sibling lock-file path of a cache file (`<path>.lock`).
fn lock_path_for(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".lock");
    path.with_file_name(name)
}

fn header_is_current(line: &str) -> bool {
    let Some(header) = Json::parse(line) else { return false };
    header.get("format").and_then(Json::as_str) == Some(FORMAT_NAME)
        && header.get("version").and_then(Json::as_u64) == Some(FORMAT_VERSION)
}

/// Formats an `f64` so that parsing the text reproduces the exact bits
/// (Rust's `{:?}` emits the shortest round-trip decimal form).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn serialize_entry(key: &CharStoreKey, point: &CharPoint) -> String {
    let core_share: Vec<String> = point.core_share.iter().map(|&s| fmt_f64(s)).collect();
    let dimms: Vec<String> = point
        .dimm_traffic
        .iter()
        .map(|d| {
            format!(
                "[{}, {}, {}, {}, {}]",
                d.channel,
                d.dimm,
                fmt_f64(d.local_gbps),
                fmt_f64(d.bypass_gbps),
                fmt_f64(d.read_fraction)
            )
        })
        .collect();
    let cap = match point.mode.bandwidth_cap {
        None => "null".to_string(),
        Some(c) => fmt_f64(c),
    };
    format!(
        concat!(
            "{{\"key\": {{\"mix\": \"{}\", \"cores\": {}, \"freq_mhz\": {}, \"cap_mbps\": {}, \"budget\": {}, ",
            "\"channels\": {}, \"dimms_per_channel\": {}, \"hw\": {}}}, ",
            "\"point\": {{\"active_cores\": {}, \"freq_ghz\": {}, \"voltage\": {}, \"cap\": {}, ",
            "\"instr_rate\": {}, \"core_share\": [{}], \"read_gbps\": {}, \"write_gbps\": {}, ",
            "\"dimms\": [{}], \"ipc_ref_sum\": {}, \"l2_miss_rate\": {}, \"l2_mpi\": {}, \"bpi\": {}}}}}\n"
        ),
        esc(&key.mix_id),
        key.mode.active_cores,
        key.mode.freq_mhz,
        key.mode.cap_mbps,
        key.budget,
        key.channels,
        key.dimms_per_channel,
        key.hw_fingerprint,
        point.mode.active_cores,
        fmt_f64(point.mode.op.freq_ghz),
        fmt_f64(point.mode.op.voltage),
        cap,
        fmt_f64(point.instr_rate_total),
        core_share.join(", "),
        fmt_f64(point.read_gbps),
        fmt_f64(point.write_gbps),
        dimms.join(", "),
        fmt_f64(point.ipc_ref_sum),
        fmt_f64(point.l2_miss_rate),
        fmt_f64(point.l2_misses_per_instr),
        fmt_f64(point.bytes_per_instr),
    )
}

fn parse_entry(line: &str) -> Option<(CharStoreKey, CharPoint)> {
    let entry = Json::parse(line)?;
    let key = entry.get("key")?;
    let point = key_sibling_point(&entry)?;
    let key = CharStoreKey {
        mix_id: key.get("mix")?.as_str()?.to_string(),
        mode: ModeKey {
            active_cores: key.get("cores")?.as_u64()? as usize,
            freq_mhz: key.get("freq_mhz")?.as_u64()? as u32,
            cap_mbps: key.get("cap_mbps")?.as_u64()? as u32,
        },
        budget: key.get("budget")?.as_u64()?,
        channels: key.get("channels")?.as_u64()? as usize,
        dimms_per_channel: key.get("dimms_per_channel")?.as_u64()? as usize,
        hw_fingerprint: key.get("hw")?.as_u64()?,
    };
    Some((key, point))
}

fn key_sibling_point(entry: &Json) -> Option<CharPoint> {
    let p = entry.get("point")?;
    let cap = match p.get("cap")? {
        Json::Null => None,
        other => Some(other.as_f64()?),
    };
    let core_share = p.get("core_share")?.as_arr()?.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>()?;
    let mut dimm_traffic = Vec::new();
    for d in p.get("dimms")?.as_arr()? {
        let d = d.as_arr()?;
        if d.len() != 5 {
            return None;
        }
        dimm_traffic.push(DimmTraffic {
            channel: d[0].as_u64()? as usize,
            dimm: d[1].as_u64()? as usize,
            local_gbps: d[2].as_f64()?,
            bypass_gbps: d[3].as_f64()?,
            read_fraction: d[4].as_f64()?,
        });
    }
    Some(CharPoint {
        mode: RunningMode {
            active_cores: p.get("active_cores")?.as_u64()? as usize,
            op: OperatingPoint::new(p.get("freq_ghz")?.as_f64()?, p.get("voltage")?.as_f64()?),
            bandwidth_cap: cap,
        },
        instr_rate_total: p.get("instr_rate")?.as_f64()?,
        core_share,
        read_gbps: p.get("read_gbps")?.as_f64()?,
        write_gbps: p.get("write_gbps")?.as_f64()?,
        dimm_traffic,
        ipc_ref_sum: p.get("ipc_ref_sum")?.as_f64()?,
        l2_miss_rate: p.get("l2_miss_rate")?.as_f64()?,
        l2_misses_per_instr: p.get("l2_mpi")?.as_f64()?,
        bytes_per_instr: p.get("bpi")?.as_f64()?,
    })
}

/// Minimal JSON value: numbers keep their raw text so integers round-trip at
/// full `u64` precision and floats at full bit precision.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(input: &str) -> Option<Json> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    // Accept the JSON number grammar plus the non-standard NaN/inf forms the
    // writer may emit; `f64::from_str` understands all of them.
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' | b'N' | b'a' | b'i' | b'n' | b'f')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    Some(Json::Num(std::str::from_utf8(&bytes[start..*pos]).ok()?.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos)? == &b']' {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos)? == &b'}' {
        *pos += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos)? != &b'"' {
            return None;
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos)? != &b':' {
            return None;
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> CharPoint {
        CharPoint {
            mode: RunningMode {
                active_cores: 4,
                op: OperatingPoint::new(3.2, 1.55),
                bandwidth_cap: Some(6.4e9 + 0.123456789),
            },
            instr_rate_total: 1.234567890123e9,
            core_share: vec![0.25, 0.3, 0.0, 0.45],
            read_gbps: 11.31177245,
            write_gbps: 0.0,
            dimm_traffic: vec![
                DimmTraffic { channel: 0, dimm: 0, local_gbps: 0.71, bypass_gbps: 2.13, read_fraction: 1.0 },
                DimmTraffic { channel: 1, dimm: 3, local_gbps: 0.69, bypass_gbps: 0.0, read_fraction: 0.875 },
            ],
            ipc_ref_sum: 0.3333333333333333,
            l2_miss_rate: 0.7182818284590452,
            l2_misses_per_instr: 0.0141421356,
            bytes_per_instr: 9.869604401,
        }
    }

    fn sample_key() -> CharStoreKey {
        CharStoreKey {
            mix_id: "W1 \"quoted\"\n".to_string(),
            mode: ModeKey { active_cores: 4, freq_mhz: 3200, cap_mbps: u32::MAX },
            budget: 120_000,
            channels: 2,
            dimms_per_channel: 4,
            hw_fingerprint: u64::MAX - 12345,
        }
    }

    #[test]
    fn entry_round_trips_bit_exactly() {
        let (key, point) = (sample_key(), sample_point());
        let line = serialize_entry(&key, &point);
        let (k2, p2) = parse_entry(line.trim_end()).expect("entry parses");
        assert_eq!(key, k2, "key round-trip (incl. full-precision u64 fingerprint)");
        assert_eq!(point, p2, "point round-trip must be bit-identical");
    }

    #[test]
    fn nan_and_infinity_round_trip() {
        let mut point = sample_point();
        point.bytes_per_instr = f64::INFINITY;
        point.ipc_ref_sum = f64::NEG_INFINITY;
        let line = serialize_entry(&sample_key(), &point);
        let (_, p2) = parse_entry(line.trim_end()).expect("entry parses");
        assert!(p2.bytes_per_instr.is_infinite() && p2.bytes_per_instr > 0.0);
        assert!(p2.ipc_ref_sum.is_infinite() && p2.ipc_ref_sum < 0.0);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(parse_entry("").is_none());
        assert!(parse_entry("{\"key\": {}}").is_none());
        assert!(parse_entry("{\"key\": {\"mix\": \"W1\"}, \"point\": 3}").is_none());
        assert!(parse_entry("{ truncated").is_none());
    }

    /// A key distinct from `of` (larger budget) that routes to the same
    /// shard file, for tests exercising per-shard append behavior.
    fn same_shard_key(of: &CharStoreKey) -> CharStoreKey {
        let mut key = of.clone();
        loop {
            key.budget += 1;
            if shard_index(&key) == shard_index(of) {
                return key;
            }
        }
    }

    /// Removes a test cache's base file, shard files and lock siblings.
    fn cleanup(base: &Path) {
        let _ = std::fs::remove_file(lock_path_for(base));
        let _ = std::fs::remove_file(base);
        for shard in 0..DISK_SHARDS {
            let path = shard_path(base, shard);
            let _ = std::fs::remove_file(lock_path_for(&path));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn append_after_torn_tail_starts_a_fresh_line() {
        let base = temp_path("torn_tail");
        // One shard file with a valid header + one valid entry + a torn
        // (newline-less) tail.
        let key = sample_key();
        let spath = shard_path(&base, shard_index(&key));
        let valid = serialize_entry(&key, &sample_point());
        std::fs::write(&spath, format!("{}{valid}{{\"key\": {{\"mix", header_line())).unwrap();
        let (cache, entries) = DiskCache::open(&base).unwrap();
        assert_eq!(entries.len(), 1, "torn tail is skipped, valid entry loads");
        // Append to the SAME shard so the new line lands after the torn one.
        cache.append(&same_shard_key(&key), &sample_point());
        drop(cache);
        // The appended entry must not have merged into the torn line.
        let (_, entries) = DiskCache::open(&base).unwrap();
        assert_eq!(entries.len(), 2, "appended entry survives a torn predecessor");
        cleanup(&base);
    }

    #[test]
    fn path_lock_excludes_while_held_and_releases_on_drop() {
        let path = std::env::temp_dir().join(format!("diskcache_lock_{}.lock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let guard = acquire_path_lock(&path).expect("first acquire succeeds");
        // `create_new` semantics: nobody else can create the file while the
        // guard lives (this is what a second process's acquire loop hits).
        assert!(OpenOptions::new().write(true).create_new(true).open(&path).is_err());
        drop(guard);
        assert!(!path.exists(), "the lock file is removed on release");
        let guard = acquire_path_lock(&path).expect("re-acquire after release");
        drop(guard);
    }

    #[test]
    fn lock_path_is_a_sibling_of_the_cache_file() {
        assert_eq!(lock_path_for(Path::new("/tmp/cache.jsonl")), Path::new("/tmp/cache.jsonl.lock"));
        assert_eq!(lock_path_for(Path::new("cache.jsonl")), Path::new("cache.jsonl.lock"));
    }

    #[test]
    fn shard_paths_insert_the_shard_index_before_the_extension() {
        assert_eq!(shard_path(Path::new("/tmp/cache.jsonl"), 2), Path::new("/tmp/cache.2.jsonl"));
        assert_eq!(shard_path(Path::new("cache.jsonl"), 0), Path::new("cache.0.jsonl"));
        assert_eq!(shard_path(Path::new("/tmp/cache"), 3), Path::new("/tmp/cache.3"));
    }

    #[test]
    fn racing_header_initialization_does_not_clobber_a_foreign_writers_entries() {
        // The cross-process init race: two caches open the same missing
        // shard file, the second to append must detect the now-valid header
        // under the lock and append instead of truncating the first's
        // entries. Both keys route to one shard so the race is on one file.
        let path = temp_path("init_race");
        let (a, entries) = DiskCache::open(&path).unwrap();
        assert!(entries.is_empty());
        let (b, _) = DiskCache::open(&path).unwrap();
        let key = sample_key();
        b.append(&key, &sample_point());
        a.append(&same_shard_key(&key), &sample_point());
        let (_, entries) = DiskCache::open(&path).unwrap();
        assert_eq!(entries.len(), 2, "both writers' entries survive the init race");
        cleanup(&path);
    }

    fn temp_path(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("diskcache_{}_{}.jsonl", tag, std::process::id()));
        cleanup(&path);
        path
    }

    #[test]
    fn load_compacts_duplicate_riddled_files_keeping_the_first_write() {
        let base = temp_path("compact");
        let spath = shard_path(&base, shard_index(&sample_key()));
        let mut body = header_line();
        // Nine duplicates of one key (the first carries a distinguishable
        // point) plus three unique keys: 12 entries, 9 dead — over the
        // threshold.
        let mut first = sample_point();
        first.read_gbps = 42.0;
        body.push_str(&serialize_entry(&sample_key(), &first));
        for _ in 0..8 {
            body.push_str(&serialize_entry(&sample_key(), &sample_point()));
        }
        let mut key = sample_key();
        for _ in 1..=3u64 {
            key = same_shard_key(&key);
            body.push_str(&serialize_entry(&key, &sample_point()));
        }
        std::fs::write(&spath, body).unwrap();

        let (_, entries) = DiskCache::open(&base).unwrap();
        assert_eq!(entries.len(), 4, "duplicates are dropped from the loaded set");
        assert_eq!(entries[0].1.read_gbps, 42.0, "the FIRST write of a duplicated key wins");

        let rewritten = std::fs::read_to_string(&spath).unwrap();
        assert_eq!(rewritten.lines().count(), 5, "the shard is rewritten as header + 4 unique entries");
        let (_, reloaded) = DiskCache::open(&base).unwrap();
        assert_eq!(reloaded, entries, "the compacted shard round-trips");
        cleanup(&base);
    }

    #[test]
    fn load_leaves_files_below_the_dead_line_threshold_untouched() {
        let base = temp_path("no_compact");
        let spath = shard_path(&base, shard_index(&sample_key()));
        let mut body = header_line();
        // Two duplicates only: deduplicated in memory, but far below the
        // rewrite threshold.
        for _ in 0..3 {
            body.push_str(&serialize_entry(&sample_key(), &sample_point()));
        }
        std::fs::write(&spath, &body).unwrap();
        let (_, entries) = DiskCache::open(&base).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(std::fs::read_to_string(&spath).unwrap(), body, "no rewrite below the threshold");
        cleanup(&base);
    }

    #[test]
    fn legacy_single_file_cache_migrates_into_shards_once() {
        let base = temp_path("migrate");
        let mut body = header_line();
        let mut keys = Vec::new();
        let mut key = sample_key();
        for i in 0..12u64 {
            key.budget = 1000 + i;
            keys.push(key.clone());
            body.push_str(&serialize_entry(&key, &sample_point()));
        }
        std::fs::write(&base, body).unwrap();

        let (_, entries) = DiskCache::open(&base).unwrap();
        assert_eq!(entries.len(), 12, "every legacy entry survives the migration");
        assert!(!base.exists(), "the legacy single file is consumed");
        for key in &keys {
            let spath = shard_path(&base, shard_index(key));
            let shard_body = std::fs::read_to_string(&spath).expect("the key's shard file exists");
            assert!(header_is_current(shard_body.lines().next().unwrap()), "migrated shards carry a header");
            assert!(
                shard_body.lines().skip(1).filter_map(parse_entry).any(|(k, _)| &k == key),
                "each entry lands in its hash-routed shard file"
            );
        }
        let populated = (0..DISK_SHARDS).filter(|&s| shard_path(&base, s).exists()).count();
        assert!(populated >= 2, "12 keys spread over more than one shard (got {populated})");

        // Reopening after the migration is a plain sharded load.
        let (_, reloaded) = DiskCache::open(&base).unwrap();
        assert_eq!(reloaded.len(), entries.len(), "the migrated cache round-trips");
        for (key, point) in &entries {
            assert!(reloaded.iter().any(|(k, p)| k == key && p == point), "entry preserved bit-exactly");
        }
        cleanup(&base);
    }

    #[test]
    fn invalid_legacy_file_is_discarded_by_migration() {
        let base = temp_path("migrate_invalid");
        std::fs::write(&base, "{\"format\": \"something-else\", \"version\": 1}\njunk\n").unwrap();
        let (_, entries) = DiskCache::open(&base).unwrap();
        assert!(entries.is_empty(), "a foreign-format legacy file contributes nothing");
        assert!(!base.exists(), "and is removed rather than re-inspected forever");
        cleanup(&base);
    }

    #[test]
    fn a_capped_shard_stays_capped_across_reloads() {
        let base = temp_path("capped");
        const CAP: usize = 3;
        let (cache, _) = DiskCache::open_with_cap(&base, CAP).unwrap();
        let mut key = sample_key();
        for i in 0..40u64 {
            key.budget = i;
            cache.append(&key, &sample_point());
        }
        drop(cache);

        let (_, entries) = DiskCache::open_with_cap(&base, CAP).unwrap();
        assert!(
            entries.len() <= CAP * DISK_SHARDS,
            "every shard is capped on load ({} entries survive)",
            entries.len()
        );
        assert_eq!(
            entries.iter().map(|(k, _)| k.budget).max(),
            Some(39),
            "eviction drops the OLDEST lines — the newest entry of its shard survives"
        );
        for shard in 0..DISK_SHARDS {
            let spath = shard_path(&base, shard);
            if let Ok(body) = std::fs::read_to_string(&spath) {
                let lines = body.lines().count();
                assert!(lines <= CAP + 1, "shard {shard} rewritten to header + ≤{CAP} entries (got {lines} lines)");
            }
        }
        // A further reload finds the shards already within cap and keeps
        // them byte-identical.
        let (_, reloaded) = DiskCache::open_with_cap(&base, CAP).unwrap();
        assert_eq!(reloaded, entries, "a capped cache is stable across reloads");
        cleanup(&base);
    }

    #[test]
    fn header_detection_requires_exact_format_and_version() {
        assert!(header_is_current(&format!("{{\"format\": \"{FORMAT_NAME}\", \"version\": {FORMAT_VERSION}}}")));
        assert!(!header_is_current(&format!("{{\"format\": \"{FORMAT_NAME}\", \"version\": {}}}", FORMAT_VERSION + 1)));
        assert!(!header_is_current("{\"format\": \"something-else\", \"version\": 1}"));
        assert!(!header_is_current("not json"));
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = Json::parse(r#"{"a": [1, 2.5, null, true, false], "b": {"c": "x\tyA"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\tyA"));
        assert!(Json::parse("[1, 2").is_none(), "unterminated array");
        assert!(Json::parse("{\"a\" 1}").is_none(), "missing colon");
        assert!(Json::parse("[] trailing").is_none(), "trailing garbage");
    }
}
