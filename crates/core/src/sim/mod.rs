//! The two-level thermal simulator (Section 4.3.1).

pub mod batch;
pub mod characterize;
pub mod diskcache;
pub mod energy;
pub mod engine;
pub mod memspot;
pub mod modes;

pub use batch::{BatchCell, BatchOptions, BatchedSimEngine, CellRunStats};
pub use characterize::{key_hash, CharPoint, CharStore, CharStoreKey, CharacterizationTable, ModeKey, STORE_SHARDS};
pub use diskcache::{shard_index, shard_path, DiskCache, DISK_SHARDS};
pub use energy::EnergyAccumulator;
pub use engine::SimEngine;
pub use memspot::{MemSpot, MemSpotConfig, MemSpotResult, PositionPeak, TempSample};
pub use modes::{scheme_mode, ThermalRunningLevel};
