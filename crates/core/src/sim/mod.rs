//! The two-level thermal simulator (Section 4.3.1).

pub mod batch;
pub mod characterize;
pub mod diskcache;
pub mod energy;
pub mod engine;
pub mod memspot;
pub mod modes;

pub use batch::{BatchCell, BatchOptions, BatchedSimEngine, CellRunStats};
pub use characterize::{CharPoint, CharStore, CharStoreKey, CharacterizationTable, ModeKey};
pub use diskcache::DiskCache;
pub use energy::EnergyAccumulator;
pub use engine::SimEngine;
pub use memspot::{MemSpot, MemSpotConfig, MemSpotResult, PositionPeak, TempSample};
pub use modes::{scheme_mode, ThermalRunningLevel};
