//! The two-level thermal simulator (Section 4.3.1).

pub mod characterize;
pub mod energy;
pub mod memspot;
pub mod modes;

pub use characterize::{CharPoint, CharacterizationTable};
pub use energy::EnergyAccumulator;
pub use memspot::{MemSpot, MemSpotConfig, MemSpotResult};
pub use modes::{scheme_mode, ThermalRunningLevel};
