//! MEMSpot: the second-level power/thermal simulator (Section 4.3.1).
//!
//! MEMSpot replays a workload mix as a batch job over thousands of simulated
//! seconds in small windows (10 ms by default). The window loop itself lives
//! in [`SimEngine`](crate::sim::engine::SimEngine): every window it looks up
//! the level-1 characterization of the current running mode, advances batch
//! progress, converts the per-DIMM memory traffic to per-position DRAM/AMB
//! power (Eqs. 3.1–3.2), steps the stack-resolved
//! [`DimmThermalScene`](crate::thermal::scene::DimmThermalScene)
//! (Eqs. 3.3–3.6; the configured
//! [`StackKind`](crate::thermal::params::StackKind) decides whether each
//! position is an FBDIMM pair, a DDR4/5 rank pair or a 3D stack) and
//! integrates energy. Every DTM interval the active policy reads a
//! [`ThermalObservation`](crate::thermal::scene::ThermalObservation) of the
//! whole per-position, per-layer temperature field and chooses the running
//! mode for the next interval.
//!
//! [`MemSpot`] is the public facade: it owns the hardware models, backs its
//! level-1 characterizations with a [`CharStore`] — private by default,
//! injectable via [`MemSpot::with_store`] so a whole sweep shares one — and
//! delegates each run to the engine.
//!
//! `MemSpot` is also the entry to the slowest of three execution tiers:
//! per-cell stepping here, lockstep batching of many cells in
//! [`BatchedSimEngine`](crate::sim::batch::BatchedSimEngine) (bit-identical,
//! faster), and the batched tier's opt-in steady-state fast-forward (within
//! 1e-9, fastest). Use `MemSpot` for one run; hand a whole grid of cells to
//! the batched engine.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cpu_model::{CpuConfig, PaperCpuPower};
use fbdimm_sim::FbdimmConfig;
use workloads::WorkloadMix;

use crate::dtm::policy::{DtmPolicy, DtmScheme};
use crate::power::fbdimm::FbdimmPowerModel;
use crate::sim::characterize::{CharStore, CharacterizationTable};
use crate::sim::engine::SimEngine;
use crate::thermal::params::{CoolingConfig, StackKind, ThermalLimits};
use crate::thermal::scene::f64_eq_nan;

/// Configuration of a MEMSpot run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSpotConfig {
    /// Cooling configuration (heat spreader + air velocity).
    pub cooling: CoolingConfig,
    /// Thermal design/release points.
    pub limits: ThermalLimits,
    /// Use the integrated thermal model (Section 3.5) instead of the
    /// isolated one.
    pub integrated: bool,
    /// Override of the thermal-interaction degree Ψ_CPU_MEM×ξ (Section
    /// 4.5.2); `None` keeps the Table 3.3 default.
    pub interaction_degree: Option<f64>,
    /// Simulation window length in seconds (paper: 10 ms).
    pub window_s: f64,
    /// DTM interval in seconds (paper default: 10 ms; Figure 4.11 sweeps it).
    pub dtm_interval_s: f64,
    /// Overhead charged against progress for every DTM decision (25 µs).
    pub dtm_overhead_s: f64,
    /// Copies of every application in the batch job (paper: 50).
    pub copies_per_app: usize,
    /// Uniform scale applied to application instruction counts; < 1 shortens
    /// runs while preserving ratios between schemes and workloads.
    pub instruction_scale: f64,
    /// Demand L2 accesses simulated per level-1 design point.
    pub characterization_budget: u64,
    /// Safety stop for the simulated time, seconds.
    pub max_sim_time_s: f64,
    /// Interval between recorded temperature samples, seconds.
    pub temp_trace_interval_s: f64,
    /// Whether to record the temperature trace at all.
    pub record_temp_trace: bool,
    /// Override of the memory ambient / system inlet temperature in °C
    /// (`None` keeps the Table 3.3 default for the cooling configuration).
    /// The Chapter 5 server emulation uses this to apply the measured room /
    /// hot-box ambient temperatures.
    pub ambient_override_c: Option<f64>,
    /// The device stack each DIMM position holds: the paper's AMB+DRAM
    /// FBDIMM pair (default), a DDR4/5-style rank pair, or a 3D stack.
    pub stack: StackKind,
}

impl MemSpotConfig {
    /// The paper's configuration for a cooling setup, at full batch size.
    /// (The experiment harness typically shrinks `copies_per_app` /
    /// `instruction_scale` to keep wall-clock time reasonable; normalized
    /// results are ratios and are preserved.)
    pub fn paper(cooling: CoolingConfig) -> Self {
        MemSpotConfig {
            cooling,
            limits: ThermalLimits::paper_fbdimm(),
            integrated: false,
            interaction_degree: None,
            window_s: 0.010,
            dtm_interval_s: 0.010,
            dtm_overhead_s: 25e-6,
            copies_per_app: 50,
            instruction_scale: 1.0,
            characterization_budget: 120_000,
            max_sim_time_s: 50_000.0,
            temp_trace_interval_s: 1.0,
            record_temp_trace: false,
            ambient_override_c: None,
            stack: StackKind::Fbdimm,
        }
    }

    /// A reduced-size configuration suitable for experiments that must run
    /// in minutes rather than hours: ten copies per application and a 1/4
    /// instruction scale, which keeps the batch long enough (hundreds to a
    /// couple of thousand simulated seconds) for the steady-state throttling
    /// behaviour to dominate the initial thermal transient. Relative
    /// (normalized) results are preserved.
    pub fn reduced(cooling: CoolingConfig) -> Self {
        MemSpotConfig {
            copies_per_app: 10,
            instruction_scale: 0.25,
            characterization_budget: 60_000,
            ..Self::paper(cooling)
        }
    }

    /// A tiny configuration for unit tests: batches of a few hundred
    /// simulated seconds, enough for thermal emergencies to appear.
    pub fn tiny(cooling: CoolingConfig) -> Self {
        MemSpotConfig {
            copies_per_app: 3,
            instruction_scale: 0.6,
            characterization_budget: 12_000,
            max_sim_time_s: 8_000.0,
            ..Self::paper(cooling)
        }
    }

    /// Returns a copy using the integrated thermal model.
    pub fn with_integrated(mut self, degree: Option<f64>) -> Self {
        self.integrated = true;
        self.interaction_degree = degree;
        self
    }

    /// Returns a copy whose DIMM positions hold the given device stack.
    pub fn with_stack(mut self, stack: StackKind) -> Self {
        self.stack = stack;
        self
    }

    /// Checks the configuration for values the window loop cannot honour.
    ///
    /// The engine steps at `min(window_s, dtm_interval_s)`; both cadences
    /// must be at least [`MemSpotConfig::MIN_STEP_S`] (100 µs). A shorter
    /// DTM interval used to be clamped silently, which decoupled the actual
    /// stepping rate from the requested DTM cadence — it is rejected here
    /// instead, at configuration time.
    pub fn validate(&self) -> Result<(), String> {
        // `!(x >= min)` deliberately rejects NaN along with short cadences.
        let window_ok = self.window_s >= Self::MIN_STEP_S;
        if !window_ok {
            return Err(format!("window_s = {} s is below the minimum step of {} s", self.window_s, Self::MIN_STEP_S));
        }
        let dtm_ok = self.dtm_interval_s >= Self::MIN_STEP_S;
        if !dtm_ok {
            return Err(format!(
                "dtm_interval_s = {} s is below the minimum step of {} s",
                self.dtm_interval_s,
                Self::MIN_STEP_S
            ));
        }
        Ok(())
    }

    /// Smallest window / DTM cadence the engine steps at, seconds.
    pub const MIN_STEP_S: f64 = 1e-4;
}

/// One sample of the recorded temperature trace. Equality is NaN-aware on
/// `amb_c` (bufferless stacks sample `NaN`).
#[derive(Debug, Clone, Copy)]
pub struct TempSample {
    /// Simulated time in seconds.
    pub time_s: f64,
    /// Hottest buffer (AMB / base-die) temperature across the DIMM
    /// positions, °C. `NaN` when the stack has no buffer layer.
    pub amb_c: f64,
    /// Hottest DRAM temperature across the DIMM positions, °C.
    pub dram_c: f64,
    /// Memory ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Number of active cores selected by the DTM policy.
    pub active_cores: usize,
    /// Core frequency selected by the DTM policy, GHz.
    pub freq_ghz: f64,
}

impl PartialEq for TempSample {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s
            && f64_eq_nan(self.amb_c, other.amb_c)
            && self.dram_c == other.dram_c
            && self.ambient_c == other.ambient_c
            && self.active_cores == other.active_cores
            && self.freq_ghz == other.freq_ghz
    }
}

/// Peak temperatures of one DIMM position's device stack over a run.
/// Equality is NaN-aware on `max_amb_c` (bufferless stacks).
#[derive(Debug, Clone)]
pub struct PositionPeak {
    /// Logical channel index.
    pub channel: usize,
    /// DIMM position along the chain (0 = closest to the controller).
    pub dimm: usize,
    /// Maximum buffer (AMB / base-die) temperature observed at this
    /// position, °C. `NaN` when the stack has no buffer layer.
    pub max_amb_c: f64,
    /// Maximum DRAM-layer temperature observed at this position, °C.
    pub max_dram_c: f64,
    /// Index of the layer whose peak was the hottest of the stack.
    pub hottest_layer: usize,
    /// Per-layer peak temperatures, in stack order (bottom to top).
    pub layers_c: Vec<f64>,
}

impl PartialEq for PositionPeak {
    fn eq(&self, other: &Self) -> bool {
        self.channel == other.channel
            && self.dimm == other.dimm
            && f64_eq_nan(self.max_amb_c, other.max_amb_c)
            && self.max_dram_c == other.max_dram_c
            && self.hottest_layer == other.hottest_layer
            && self.layers_c == other.layers_c
    }
}

/// Result of one MEMSpot run. Equality is NaN-aware on `max_amb_c` (and on
/// the NaN-able fields of the nested peak/trace types), so bit-identical
/// bufferless-stack runs compare equal.
#[derive(Debug, Clone)]
pub struct MemSpotResult {
    /// Workload mix identifier.
    pub workload: String,
    /// Device-stack topology label ("fbdimm", "rank-pair", "3d-4h", ...).
    pub stack: String,
    /// Policy name (e.g. `"DTM-ACG+PID"`).
    pub policy: String,
    /// Scheme of the policy.
    pub scheme: DtmScheme,
    /// Whether the batch completed before the safety stop.
    pub completed: bool,
    /// Batch running time in simulated seconds.
    pub running_time_s: f64,
    /// Total committed instructions.
    pub total_instructions: f64,
    /// Total memory traffic in bytes.
    pub total_memory_bytes: f64,
    /// Total L2 cache misses.
    pub total_l2_misses: f64,
    /// Memory subsystem energy in joules.
    pub memory_energy_j: f64,
    /// Processor energy in joules.
    pub cpu_energy_j: f64,
    /// Average memory power, watts.
    pub avg_memory_power_w: f64,
    /// Average processor power, watts.
    pub avg_cpu_power_w: f64,
    /// Average memory ambient (inlet) temperature, °C.
    pub avg_ambient_c: f64,
    /// Maximum buffer (AMB / base-die) temperature observed anywhere, °C.
    /// `NaN` for stacks with no buffer layer.
    pub max_amb_c: f64,
    /// Maximum DRAM temperature observed anywhere, °C.
    pub max_dram_c: f64,
    /// Fraction of time spent at each (active cores, frequency) setting.
    pub mode_residency: BTreeMap<String, f64>,
    /// Optional temperature trace.
    pub temp_trace: Vec<TempSample>,
    /// Per-DIMM-position peak temperatures (channel-resolved thermal
    /// field); `max_amb_c` / `max_dram_c` are the maxima over this list.
    pub position_peaks: Vec<PositionPeak>,
    /// Fraction of the run each logical channel spent throttled — by a
    /// per-channel service fraction below 1
    /// ([`ActuationPlan`](crate::dtm::plan::ActuationPlan) spatial plans)
    /// or by a global bandwidth cap, which throttles every channel at once.
    /// One entry per logical channel; all zero for policies that never
    /// capped anything.
    pub channel_throttle_residency: Vec<f64>,
    /// Total traffic moved off its natural DIMM position by steering
    /// weights (DTM-MIG-style migration), bytes. Zero for plans without
    /// steering.
    pub migrated_traffic_bytes: f64,
}

impl PartialEq for MemSpotResult {
    fn eq(&self, other: &Self) -> bool {
        self.workload == other.workload
            && self.stack == other.stack
            && self.policy == other.policy
            && self.scheme == other.scheme
            && self.completed == other.completed
            && self.running_time_s == other.running_time_s
            && self.total_instructions == other.total_instructions
            && self.total_memory_bytes == other.total_memory_bytes
            && self.total_l2_misses == other.total_l2_misses
            && self.memory_energy_j == other.memory_energy_j
            && self.cpu_energy_j == other.cpu_energy_j
            && self.avg_memory_power_w == other.avg_memory_power_w
            && self.avg_cpu_power_w == other.avg_cpu_power_w
            && self.avg_ambient_c == other.avg_ambient_c
            && f64_eq_nan(self.max_amb_c, other.max_amb_c)
            && self.max_dram_c == other.max_dram_c
            && self.mode_residency == other.mode_residency
            && self.temp_trace == other.temp_trace
            && self.position_peaks == other.position_peaks
            && self.channel_throttle_residency == other.channel_throttle_residency
            && self.migrated_traffic_bytes == other.migrated_traffic_bytes
    }
}

impl MemSpotResult {
    /// Running time normalized to a baseline result (typically the
    /// `No-limit` run of the same workload).
    pub fn normalized_time(&self, baseline: &MemSpotResult) -> f64 {
        if baseline.running_time_s <= 0.0 {
            return f64::NAN;
        }
        self.running_time_s / baseline.running_time_s
    }

    /// Memory traffic normalized to a baseline result.
    pub fn normalized_traffic(&self, baseline: &MemSpotResult) -> f64 {
        if baseline.total_memory_bytes <= 0.0 {
            return f64::NAN;
        }
        self.total_memory_bytes / baseline.total_memory_bytes
    }

    /// Memory energy normalized to a baseline result.
    pub fn normalized_memory_energy(&self, baseline: &MemSpotResult) -> f64 {
        if baseline.memory_energy_j <= 0.0 {
            return f64::NAN;
        }
        self.memory_energy_j / baseline.memory_energy_j
    }

    /// Processor energy normalized to a baseline result.
    pub fn normalized_cpu_energy(&self, baseline: &MemSpotResult) -> f64 {
        if baseline.cpu_energy_j <= 0.0 {
            return f64::NAN;
        }
        self.cpu_energy_j / baseline.cpu_energy_j
    }

    /// The peak entry of the hottest DIMM position — by buffer temperature
    /// when the stack has one, by the hottest layer peak otherwise
    /// (NaN-safe for bufferless rank pairs).
    pub fn hottest_position(&self) -> Option<&PositionPeak> {
        let rank = |p: &PositionPeak| if p.max_amb_c.is_nan() { p.layers_c[p.hottest_layer] } else { p.max_amb_c };
        self.position_peaks.iter().max_by(|a, b| rank(a).partial_cmp(&rank(b)).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The hottest-layer peak of the hottest DIMM position, °C — the
    /// spatial hot spot of the run, whatever device kind it is (base die,
    /// AMB or a DRAM layer).
    pub fn hottest_layer_peak_c(&self) -> f64 {
        self.position_peaks.iter().map(|p| p.layers_c[p.hottest_layer]).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Hottest-vs-coldest position peak spread, °C: the hottest-layer peak
    /// of the hottest position minus that of the coldest. This is the
    /// flatness metric spatial DTM policies (DTM-MIG) optimize — a
    /// perfectly balanced field has zero spread.
    pub fn position_peak_spread_c(&self) -> f64 {
        let coldest = self.position_peaks.iter().map(|p| p.layers_c[p.hottest_layer]).fold(f64::INFINITY, f64::min);
        self.hottest_layer_peak_c() - coldest
    }
}

/// The second-level thermal simulator.
#[derive(Debug)]
pub struct MemSpot {
    cpu: CpuConfig,
    mem: FbdimmConfig,
    power: FbdimmPowerModel,
    cpu_power: PaperCpuPower,
    config: MemSpotConfig,
    /// Shared home of level-1 design points (private unless injected).
    store: Arc<CharStore>,
    /// Per-mix table views over the store, kept across policy runs so their
    /// local caches stay warm (keyed by mix identifier).
    tables: HashMap<String, CharacterizationTable>,
    /// Rotation-averaging thread count handed to new tables (`None` = all
    /// cores). Sweep engines that parallelize at cell granularity set 1.
    level1_rotation_threads: Option<usize>,
}

impl MemSpot {
    /// Creates a simulator for the paper's processor and memory
    /// configuration under the given MEMSpot configuration.
    pub fn new(config: MemSpotConfig) -> Self {
        Self::with_hardware(CpuConfig::paper_quad_core(), FbdimmConfig::ddr2_667_paper(), config)
    }

    /// Creates a simulator with explicit hardware configurations and a
    /// private characterization store.
    pub fn with_hardware(cpu: CpuConfig, mem: FbdimmConfig, config: MemSpotConfig) -> Self {
        Self::with_store(cpu, mem, config, Arc::new(CharStore::new()))
    }

    /// Creates a simulator whose level-1 characterizations live in (and are
    /// shared through) an external [`CharStore`]. Sweep engines pass one
    /// store to every cell so each design point is characterized once per
    /// process.
    ///
    /// # Panics
    ///
    /// Panics if [`MemSpotConfig::validate`] rejects the configuration.
    pub fn with_store(cpu: CpuConfig, mem: FbdimmConfig, config: MemSpotConfig, store: Arc<CharStore>) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid MemSpotConfig: {e}"));
        MemSpot {
            cpu,
            mem,
            power: FbdimmPowerModel::paper_defaults(),
            cpu_power: PaperCpuPower::new(),
            config,
            store,
            tables: HashMap::new(),
            level1_rotation_threads: None,
        }
    }

    /// Limits the thread count used for rotation-averaged level-1 points
    /// (results are bit-identical for any value). Engines that already run
    /// one simulator per core — e.g. cell-granular sweeps — pass 1.
    pub fn set_level1_rotation_threads(&mut self, threads: usize) {
        self.level1_rotation_threads = Some(threads.max(1));
    }

    /// The MEMSpot configuration.
    pub fn config(&self) -> &MemSpotConfig {
        &self.config
    }

    /// The processor configuration.
    pub fn cpu_config(&self) -> &CpuConfig {
        &self.cpu
    }

    /// The characterization store backing this simulator.
    pub fn char_store(&self) -> &Arc<CharStore> {
        &self.store
    }

    /// Runs one workload mix under one DTM policy to batch completion (or
    /// the safety stop) and returns the aggregate result.
    ///
    /// Level-1 characterizations are cached in the backing [`CharStore`] and
    /// shared across policy runs of the same mix (and, with
    /// [`MemSpot::with_store`], across simulators), which is why this method
    /// takes `&mut self`.
    pub fn run(&mut self, mix: &WorkloadMix, policy: &mut dyn DtmPolicy) -> MemSpotResult {
        let mut table = self.tables.remove(&mix.id).unwrap_or_else(|| {
            let table = CharacterizationTable::with_store(
                self.cpu.clone(),
                self.mem,
                mix.id.clone(),
                mix.apps.clone(),
                self.config.characterization_budget,
                Arc::clone(&self.store),
            );
            match self.level1_rotation_threads {
                Some(threads) => table.with_rotation_threads(threads),
                None => table,
            }
        });
        let engine = SimEngine::new(&self.cpu, &self.mem, &self.power, &self.cpu_power, &self.config);
        let result = engine.run(&mut table, mix, policy);
        self.tables.insert(mix.id.clone(), table);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtm::{DtmAcg, DtmBw, DtmCdvfs, DtmTs, NoLimit};
    use workloads::mixes;

    fn spot() -> MemSpot {
        MemSpot::new(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()))
    }

    #[test]
    fn no_limit_run_completes_and_violates_the_tdp() {
        let mut spot = spot();
        let mut baseline = NoLimit::new(spot.cpu_config());
        let r = spot.run(&mixes::w1(), &mut baseline);
        assert!(r.completed, "baseline batch must complete");
        assert!(r.running_time_s > 1.0);
        // Without DTM the W1 mix overheats the AMB under AOHS_1.5.
        assert!(r.max_amb_c > 110.0, "max AMB {:.1}", r.max_amb_c);
        assert!(r.total_memory_bytes > 0.0);
        assert!(r.memory_energy_j > 0.0 && r.cpu_energy_j > 0.0);
    }

    #[test]
    fn position_peaks_resolve_the_thermal_field() {
        let mut spot = spot();
        let mut baseline = NoLimit::new(spot.cpu_config());
        let r = spot.run(&mixes::w1(), &mut baseline);
        // One peak per DIMM position, and the result maxima are derived from
        // the field rather than assumed.
        assert_eq!(r.position_peaks.len(), 8);
        let field_max_amb = r.position_peaks.iter().map(|p| p.max_amb_c).fold(f64::MIN, f64::max);
        let field_max_dram = r.position_peaks.iter().map(|p| p.max_dram_c).fold(f64::MIN, f64::max);
        assert!((field_max_amb - r.max_amb_c).abs() < 1e-9);
        assert!((field_max_dram - r.max_dram_c).abs() < 1e-9);
        // The hottest DIMM is the one closest to the controller (it carries
        // all the bypass traffic), and the far end of the chain runs cooler.
        let hottest = r.hottest_position().unwrap();
        assert_eq!(hottest.dimm, 0, "hottest position {hottest:?}");
        let far = r.position_peaks.iter().find(|p| p.channel == hottest.channel && p.dimm == 3).unwrap();
        assert!(hottest.max_amb_c > far.max_amb_c + 1.0, "field is not spatially resolved");
    }

    #[test]
    fn dtm_ts_respects_the_thermal_limit_and_runs_longer() {
        let mut spot = spot();
        let cpu = spot.cpu_config().clone();
        let mut baseline = NoLimit::new(&cpu);
        let base = spot.run(&mixes::w1(), &mut baseline);
        let mut ts = DtmTs::new(cpu, ThermalLimits::paper_fbdimm());
        let r = spot.run(&mixes::w1(), &mut ts);
        assert!(r.completed);
        // The TDP may be grazed by at most the heating within one DTM interval.
        assert!(r.max_amb_c < 110.5, "max AMB {:.2}", r.max_amb_c);
        // The tiny test batch is dominated by the initial heating transient,
        // so the penalty here is smaller than the paper's steady-state 1.8x;
        // the direction (clearly slower than the no-limit baseline) is what
        // this test checks.
        let norm = r.normalized_time(&base);
        assert!(norm > 1.08 && norm < 4.0, "normalized running time {norm:.2}");
    }

    #[test]
    fn dtm_acg_outperforms_dtm_ts_on_w1() {
        let mut spot = spot();
        let cpu = spot.cpu_config().clone();
        let limits = ThermalLimits::paper_fbdimm();
        let mut ts = DtmTs::new(cpu.clone(), limits);
        let mut acg = DtmAcg::new(cpu, limits);
        let rt = spot.run(&mixes::w1(), &mut ts);
        let ra = spot.run(&mixes::w1(), &mut acg);
        assert!(ra.completed && rt.completed);
        assert!(
            ra.running_time_s < rt.running_time_s,
            "ACG {:.1}s should beat TS {:.1}s",
            ra.running_time_s,
            rt.running_time_s
        );
        // ACG also reduces total memory traffic (fewer L2 conflict misses).
        assert!(ra.total_memory_bytes < rt.total_memory_bytes * 1.02);
    }

    #[test]
    fn dtm_bw_keeps_temperature_stable_near_the_limit() {
        let mut spot = spot();
        let cpu = spot.cpu_config().clone();
        let mut bw = DtmBw::new(cpu, ThermalLimits::paper_fbdimm());
        let r = spot.run(&mixes::w1(), &mut bw);
        assert!(r.completed);
        assert!(r.max_amb_c < 110.5);
        assert!(r.max_amb_c > 105.0, "BW should operate close to the limit, got {:.1}", r.max_amb_c);
    }

    #[test]
    fn cdvfs_saves_processor_energy_compared_with_ts() {
        let mut spot = spot();
        let cpu = spot.cpu_config().clone();
        let limits = ThermalLimits::paper_fbdimm();
        let mut ts = DtmTs::new(cpu.clone(), limits);
        let mut cdvfs = DtmCdvfs::new(cpu, limits);
        let rt = spot.run(&mixes::w1(), &mut ts);
        let rc = spot.run(&mixes::w1(), &mut cdvfs);
        assert!(rc.completed);
        assert!(
            rc.cpu_energy_j < rt.cpu_energy_j,
            "CDVFS CPU energy {:.0} J should undercut TS {:.0} J",
            rc.cpu_energy_j,
            rt.cpu_energy_j
        );
    }

    #[test]
    fn integrated_model_reports_cpu_heated_ambient() {
        let cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_integrated(None);
        let mut spot = MemSpot::new(cfg);
        let mut baseline = NoLimit::new(spot.cpu_config());
        let r = spot.run(&mixes::w1(), &mut baseline);
        assert!(r.avg_ambient_c > 45.0, "ambient {:.1} should exceed the 45 °C inlet", r.avg_ambient_c);
    }

    #[test]
    fn temperature_trace_is_recorded_when_requested() {
        let mut cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5());
        cfg.record_temp_trace = true;
        let mut spot = MemSpot::new(cfg);
        let cpu = spot.cpu_config().clone();
        let mut bw = DtmBw::new(cpu, ThermalLimits::paper_fbdimm());
        let r = spot.run(&mixes::w1(), &mut bw);
        assert!(r.temp_trace.len() as f64 >= r.running_time_s.floor() - 1.0);
        assert!(r.temp_trace.windows(2).all(|w| w[0].time_s < w[1].time_s));
    }

    #[test]
    fn simulators_sharing_a_store_characterize_each_design_point_once() {
        let store = Arc::new(CharStore::new());
        let cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5());
        let make = || {
            MemSpot::with_store(CpuConfig::paper_quad_core(), FbdimmConfig::ddr2_667_paper(), cfg, Arc::clone(&store))
        };
        let mut first = make();
        let mut p1 = NoLimit::new(first.cpu_config());
        let a = first.run(&mixes::w1(), &mut p1);
        let misses_after_first = store.misses();
        assert!(misses_after_first > 0);
        assert_eq!(store.hits(), 0);

        // A second simulator (e.g. another sweep cell with a different
        // cooling config) reuses every point instead of re-simulating.
        let mut second = make();
        let mut p2 = NoLimit::new(second.cpu_config());
        let b = second.run(&mixes::w1(), &mut p2);
        assert_eq!(store.misses(), misses_after_first, "no new level-1 work");
        assert!(store.hits() > 0);
        assert_eq!(a, b, "shared points must not change results");
    }

    #[test]
    fn sub_minimum_cadences_are_rejected_at_config_time() {
        let good = MemSpotConfig::tiny(CoolingConfig::aohs_1_5());
        assert!(good.validate().is_ok());

        let mut short_dtm = good;
        short_dtm.dtm_interval_s = 5e-5;
        let err = short_dtm.validate().unwrap_err();
        assert!(err.contains("dtm_interval_s"), "unexpected error: {err}");

        let mut short_window = good;
        short_window.window_s = 9.9e-5;
        assert!(short_window.validate().unwrap_err().contains("window_s"));

        let mut nan_window = good;
        nan_window.window_s = f64::NAN;
        assert!(nan_window.validate().is_err(), "NaN cadence must not validate");

        // The boundary itself is accepted.
        let mut at_min = good;
        at_min.window_s = MemSpotConfig::MIN_STEP_S;
        at_min.dtm_interval_s = MemSpotConfig::MIN_STEP_S;
        assert!(at_min.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid MemSpotConfig")]
    fn building_a_simulator_with_a_sub_minimum_dtm_interval_panics() {
        let mut cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5());
        cfg.dtm_interval_s = 1e-5;
        let _ = MemSpot::new(cfg);
    }

    #[test]
    fn mode_residency_sums_to_about_one() {
        let mut spot = spot();
        let cpu = spot.cpu_config().clone();
        let mut acg = DtmAcg::new(cpu, ThermalLimits::paper_fbdimm());
        let r = spot.run(&mixes::w1(), &mut acg);
        let sum: f64 = r.mode_residency.values().sum();
        assert!((sum - 1.0).abs() < 0.01, "residency sum {sum}");
    }
}
