//! Batched execution of many level-2 runs: lockstep lanes, lane-parallel
//! stepping, and analytic fast-forward (steady-state, limit-cycle and
//! envelope).
//!
//! The sweep stack is a five-tier execution ladder. Each tier reproduces
//! the one below it under a stated guarantee — bit-for-bit for the layout
//! tiers, a pinned relative tolerance for the analytic ones:
//!
//! 1. **Per-cell (literal)** — [`SimEngine`](crate::sim::SimEngine)
//!    advances one (mix, policy, cooling) cell at a time; the reference
//!    semantics everything else is measured against.
//! 2. **Batched lockstep** — [`BatchedSimEngine::run`] groups cells into
//!    lanes and steps each lane over a shared matrix; *bit-identical* to
//!    tier 1 (a pure memory-layout transformation).
//! 3. **Lane-parallel** — [`BatchedSimEngine::run_with_workers`] fans the
//!    lanes of tier 2 across OS threads, column-chunking dominant lanes so
//!    every worker has work; still *bit-identical* (lanes are independent
//!    and chunking only reorders independent per-cell operations). The
//!    per-window DTM/accounting pass uses the column-split traversal by
//!    default ([`DecisionPass::ColumnSplit`]): post-step bookkeeping,
//!    decisions, and deferred column removals run as separate
//!    column-disjoint phases, so a chunked lane's decision pass
//!    parallelizes exactly like its RC sweep — nothing in the window loop
//!    is serial within a lane chunk anymore.
//! 4. **Steady / periodic fast-forward** — on top of any of the above, the
//!    steady-state and periodic (limit-cycle) detectors replay
//!    provably-predictable window spans analytically, keeping every
//!    reported quantity within relative 1e-9 of literal stepping. Window
//!    counts, simulated time and job-completion windows stay *exact*.
//! 5. **Contraction-certified envelope** — orbits that are confined but
//!    not exactly predictable (slipping limit cycles whose duty ratio is
//!    irrational at the paper's 10 ms cadence, sliding-mode threshold
//!    chatter, and long monotone approaches to a distant fixed point) are
//!    replayed under certificates built on the RC map's contraction:
//!    frozen-plan segments licensed by [`DtmPolicy::is_steady_band`] /
//!    [`DtmPolicy::plan_decided_by_region`] over the exact traversed
//!    temperature range collapse to closed form through λ-powered lo/hi
//!    maps of the exact two-exponential row response, and chattering
//!    segments whose decisions cannot be frozen are *replayed decision for
//!    decision* at scalar cost from the policy's pure decision key
//!    ([`DtmPolicy::decision_key`]) with a dominance certificate covering
//!    the non-binding rows. Every reported quantity stays within relative
//!    1e-9 of literal stepping; window counts, simulated time and
//!    completion windows stay *exact*, and a drift audit against the band
//!    falls the cell back to literal stepping the moment confinement
//!    fails. Tolerance and opt-out via
//!    [`BatchOptions::envelope_tolerance`].
//!
//! Opt out of every analytic tier at once with [`BatchOptions::literal`].
//!
//! A design-space sweep runs hundreds of cells whose window loops are
//! completely independent yet structurally identical. The
//! [`BatchedSimEngine`] exploits that: cells whose scenes share a device
//! stack, a step length and an ambient time constant are grouped into
//! **lanes**, and each lane steps all of its cells in lockstep over one
//! shared cell-major temperature/peak matrix (row = `position × depth +
//! layer`, column = cell). The per-window RC update then becomes a tight
//! inner loop over the cells of a row — contiguous, branch-free and
//! auto-vectorizable — instead of a pointer-chasing scene walk per cell.
//! Non-identity stacks (rank pairs, 3D stacks) keep their per-lane Ψ
//! superposition matrices cached per cell column, rewritten only on plan
//! change, so the lockstep sweep never re-derives the stack coupling per
//! window.
//!
//! Everything that is *per-cell logic* (DTM decisions, actuation plans,
//! window-power rebuilds, batch progress, energy accounting) stays exactly
//! the per-cell code path, executed cell-by-cell in the same order as
//! [`SimEngine::run`], so every cell's trajectory is **bit-identical** to a
//! per-cell run: the lane only restructures the memory layout of the RC
//! arithmetic, not its operations or their order. Cells that finish (batch
//! complete or safety stop) drop out of the hot lane by a column
//! swap-remove, which moves no arithmetic and therefore cannot perturb the
//! remaining cells.
//!
//! Two further layout moves keep the per-window overhead below the
//! per-cell engine's. Window powers are constant between plan changes, so
//! each lane keeps its members' per-position powers in a
//! `positions × cells` matrix rewritten per column on plan change — the RC
//! sweep reads power rows contiguously instead of chasing each cell's
//! window struct. And policies that declare they read only the scalar
//! device maxima ([`DtmPolicy::observes_field`]) are observed straight
//! from the sweep's running per-cell maxima (`f64::max` over a fixed node
//! set is order-independent, so the bits match a full scene fold) instead
//! of re-synthesizing the per-position field at every DTM interval.
//!
//! # Steady-state fast-forward
//!
//! Long runs spend most of their windows in a fixed point: the actuation
//! plan stops changing and every RC node sits within ε of the temperature
//! it would converge to under the frozen window power. From there the
//! remaining trajectory is closed-form. At each DTM decision the batched
//! engine checks (all opt-in via [`BatchOptions::fast_forward`]):
//!
//! 1. the plan has been unchanged for [`BatchOptions::steady_decisions`]
//!    consecutive decisions,
//! 2. the policy itself guarantees steadiness under a 2ε temperature drift
//!    ([`DtmPolicy::is_steady`]) — stateful controllers (PID) answer
//!    `false` and are never fast-forwarded,
//! 3. the shared ambient node is (bitwise, for isolated scenes) at its own
//!    fixed point, and
//! 4. every layer temperature is within [`BatchOptions::steady_epsilon_c`]
//!    of its RC fixed point ([`DimmThermalScene::fixed_point_into`]).
//!
//! When all four hold, the cell leaves the lane and its remaining windows
//! are replayed analytically: time still advances by the literal repeated
//! float additions (so `running_time_s` and the window **count** are
//! bit-identical to the stepped run), batch completion events are resolved
//! by bulk-retiring whole spans of windows in which no job can finish plus
//! one literal window at each completion boundary (preserving the
//! round-robin refill interleaving exactly), and the final temperatures
//! follow `t_end = t* + (t0 − t*)·(1 − α)^W`. Accumulated quantities
//! (energy, instructions, residency) use `rate × W` instead of `W` repeated
//! additions and therefore agree with the literal run to relative 1e-9
//! rather than bitwise; the golden suite pins both contracts.
//!
//! # Periodic (limit-cycle) fast-forward
//!
//! Threshold-driven policies (DTM-ACG, DTM-CDVFS, DTM-BW) never reach a
//! fixed plan: they relax into a **limit cycle**, alternating between
//! adjacent emergency levels forever. The steady-state detector can't
//! touch those runs, so a second detector handles them. At every DTM
//! decision of an eligible cell (fast-forward on, no temperature trace, a
//! pure memoryless policy, and a step equal to the DTM interval) the
//! engine fingerprints the decision (plan + layer temperatures); when the
//! recent history is periodic with some period `k ≤ 16` and the
//! temperatures recur within ε, it records one full cycle — plans,
//! observations, per-window stable points, powers and retire amounts —
//! and then **verifies** the cycle is a genuine attractor: the recorded
//! temperatures must sit within ε of the cycle's closed-form fixed point
//! (per layer, contraction `a = λᵏ`), and the policy must reproduce every
//! recorded plan from anywhere inside the contraction ball
//! ([`DtmPolicy::is_steady`] against each phase's fixed-point
//! observation). Verified cycles are replayed analytically: whole cycles
//! advance by closed-form temperature decay toward the cycle attractor
//! with `rate × cycles` accounting, job completions are resolved by
//! replaying the completion cycle literally (retire amounts are exact
//! integers, so completions land on identical windows), and time advances
//! by the literal repeated additions — window counts are conserved
//! exactly and every reported quantity stays within 1e-9 of literal
//! stepping. Quasiperiodic orbits (the common case at the paper's 10 ms
//! cadence, where the duty cycle between levels is irrational) fail
//! verification and keep stepping literally — the detector engages only
//! when the replay is provably exact.
//!
//! # Contraction-certified envelope fast-forward
//!
//! The envelope tier picks up the orbits both detectors refuse: confined
//! but never exactly periodic. A cell that failed cycle verification
//! enters a private **burst** loop (decisions and the RC sweep bit-exact
//! per window, lane overhead gone), and inside the burst two analytic
//! mechanisms fire, both derived from the same fact — each RC row relaxes
//! through an exact two-exponential response `t(k) = S + a·λ_l^k +
//! c·λ_amb^k` whose λ-powers are contractions:
//!
//! - **Frozen segment jumps.** While the plan holds still, the closed-form
//!   lo/hi maps of every row's response bound the exact traversed
//!   temperature range, and [`DtmPolicy::is_steady_band`] (single frozen
//!   plan) or [`DtmPolicy::plan_decided_by_region`] (a decision-region
//!   certificate attesting a whole plan *sequence* is invariant over the
//!   traced observation rectangle) licenses collapsing the segment to its
//!   endpoint with `rate × W` accounting. In-segment extremes come from
//!   the closed-form interior extremum of the two-exponential (the two
//!   modes pulling in opposite directions), so reported peaks are exact to
//!   the same tolerance.
//! - **Exact decision replay.** Sliding-mode chatter (DTM-BW hugging its
//!   throttle threshold at 10 ms) flips plans every couple of windows, so
//!   no frozen certificate can hold. For policies whose decisions are a
//!   pure function of the device maxima ([`DtmPolicy::decision_key`] /
//!   [`DtmPolicy::plan_for_key`]), the replayer iterates only the
//!   *binding* (hottest) row per device layer plus the ambient with
//!   bitwise-literal recurrences, re-evaluates the decision key per
//!   virtual window, and proves every other row stays dominated via a
//!   per-entry forcing-gap certificate (convex-combination dominance with
//!   a strict gap, bitwise twins folded into their binding row). Plan
//!   run-length-encoded occupancy counts give closed-form accounting over
//!   the whole replayed span, and dominated rows are closed per plan-run
//!   with the same two-exponential maps — decisions exact, windows and
//!   completion boundaries conserved bit for bit, scalars within 1e-9.
//!
//! A drift audit guards both mechanisms: every commit re-checks the
//! reconstructed rows against the confinement band, and any violation
//! falls the cell back to literal stepping at the next decision boundary
//! with nothing lost — the envelope tier only ever trades wall clock, not
//! soundness.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use cpu_model::{CpuConfig, PaperCpuPower, RunningMode};
use fbdimm_sim::{DimmTraffic, FbdimmConfig};
use workloads::{BatchJob, WorkloadMix};

use crate::dtm::plan::{ActuationPlan, PlanTrafficStats};
use crate::dtm::policy::DtmPolicy;
use crate::power::fbdimm::{FbdimmPowerBreakdown, FbdimmPowerModel};
use crate::sim::characterize::{CharPoint, CharStore, CharacterizationTable, ModeKey};
use crate::sim::energy::EnergyAccumulator;
use crate::sim::engine::{assemble_result, RunTotals, SimEngine, WindowPower};
use crate::sim::memspot::{MemSpotConfig, MemSpotResult, TempSample};
use crate::thermal::params::{DeviceLayerKind, StackTopology};
use crate::thermal::rc::ThermalNode;
use crate::thermal::scene::{DimmThermalScene, ThermalObservation};

/// How close the shared ambient node must sit to its own fixed point before
/// a cell may fast-forward. Isolated scenes hold the inlet temperature
/// bitwise, so this is only a gate for integrated (processor-heated)
/// ambients; it is an order of magnitude tighter than the 1e-9 agreement
/// the fast-forward promises so the frozen-ambient approximation cannot
/// consume the error budget.
const AMBIENT_FF_EPS_C: f64 = 1e-10;

/// Once a cell's plan streak reaches the steadiness threshold, the (fairly
/// expensive) fixed-point convergence test runs only every this many further
/// decisions. Engaging the fast-forward a few windows late merely steps a
/// handful of extra literal windows — strictly *more* accurate — while the
/// transient dies out, instead of recomputing the fixed point every window.
const FF_CHECK_PERIOD: u32 = 8;

/// Longest decision-sequence period the limit-cycle detector searches for.
/// The paper's threshold policies oscillate between two adjacent emergency
/// levels (period 2–4 at the DTM cadence); anything longer is almost
/// certainly not a cycle worth the verification cost.
const MAX_CYCLE_DECISIONS: usize = 16;

/// After a failed cycle verification (the recorded windows turned out not
/// to replay), how many further decisions the detector waits before it may
/// start recording again — verification is much more expensive than
/// tracking, so hopeless cells must not re-verify every window. Each
/// further failure doubles the wait (capped by
/// [`CYCLE_BACKOFF_DOUBLINGS`]): quasiperiodic orbits pinned at a threshold
/// recur in ambient and plans at every lag and pass the candidate checks
/// forever, and only the doubling keeps their recording + verification
/// cost amortized to nothing over a long run.
const CYCLE_RETRY_BACKOFF: u32 = 64;

/// Cap on the backoff doublings: the wait saturates at
/// `CYCLE_RETRY_BACKOFF << CYCLE_BACKOFF_DOUBLINGS` (4096) decisions, so a
/// cell whose orbit genuinely locks late is still retried every few
/// thousand windows rather than written off.
const CYCLE_BACKOFF_DOUBLINGS: u32 = 6;

/// Shortest frozen-plan run (in envelope-burst windows) before the burst
/// probes for a closed-form segment jump. Shorter runs are cheaper to step
/// than to license.
const ENV_JUMP_MIN: u64 = 16;

/// Key space of [`DtmPolicy::decision_key`]: the dense pure-decision keys
/// the exact decision replay indexes its key → plan-entry table with.
const REPLAY_KEYS: usize = 16;

/// Frozen-plan run length at which the exact decision replay hands the
/// segment back to the closed-form probe: a run this long is no longer
/// sliding-mode chatter but a monotone approach, which the frozen-plan
/// contraction jump advances in O(1) instead of O(windows). Also bounds
/// every in-replay run length, so the per-layer λ-power tables cover every
/// run the plan-occupancy accounting has to close.
const REPLAY_RUN_EXIT: usize = 256;

/// Dominance margin (°C) of the exact decision replay: every non-binding
/// row must provably stay at least this far below its device's binding
/// (hottest) row over the whole replayed segment, so the binding scalar the
/// replay iterates *is* the device maximum every virtual window. The
/// convex-combination bound the audit uses is exact in real arithmetic;
/// the margin only has to dominate the ~1e-13 °C accumulated rounding of
/// the literal recurrences it stands in for.
const REPLAY_GAP_C: f64 = 1e-9;

/// Floating-point shadowing guard (°C) every contraction certificate keeps
/// between its traced rectangle and the nearest decision boundary. The
/// closed-form segment endpoint differs from literally iterated stepping by
/// rounding (~1e-12 °C), and a jump that lands *on* a boundary hands that
/// perturbation to a decision whose margin is even smaller — on a
/// near-tangential approach a 1e-12 °C shift moves the crossing by hundreds
/// of windows. With the guard, every boundary approach ends in literal
/// windows; the row maps contract (λ < 1), so by the time the trajectory
/// has drifted a guard's width the state has collapsed bit-exactly onto the
/// literal orbit, and crossings land on the same window literal stepping
/// puts them. Contraction is exponential in the window count while the
/// crossing margin is linear, so the guard is sound at every approach rate:
/// fast chatter arms give up ~1 window per jump, slow tangential approaches
/// give up thousands — exactly the windows whose decisions are fragile.
const ENV_FP_GUARD_C: f64 = 1e-7;

/// How many consecutive unchanged decisions arm the frozen-approach
/// envelope trigger: long enough that the steady-state fast-forward has had
/// several engagement checks and keeps refusing (the temperatures are still
/// far from their fixed point), short relative to the tens of thousands of
/// windows a slow thermal transient spans at the paper's 10 ms cadence.
const ENV_FROZEN_STREAK: u32 = 64;

/// How the per-window DTM/accounting pass traverses a lane's members.
///
/// Both traversals run the identical per-cell operations in the identical
/// per-cell order (each cell's window-`k` bookkeeping before its
/// window-`k+1` decision), so they are **bit-identical** — cells are
/// mutually independent and every lane-level write of the pass
/// (`write_power_column`, the ambient scratch, the removal swap) touches
/// only the acting member's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionPass {
    /// Phase-separated traversal: every member's post-step bookkeeping,
    /// then every member's decision (observation synthesis +
    /// [`DtmPolicy::decide`] + plan application), then the deferred
    /// column removals in descending slot order. Each phase is
    /// column-disjoint by construction, which is what lets
    /// [`BatchedSimEngine::run_with_workers`]'s column chunks of a split
    /// lane run their decision passes concurrently — no step of the pass
    /// is serialized on lane-global state.
    #[default]
    ColumnSplit,
    /// The historical fused traversal: one pass interleaving each member's
    /// post-step and next-window decision, with removals applied inline.
    /// Kept as the serial reference the column-split pass is asserted
    /// bit-identical against.
    Fused,
}

/// Tuning knobs of the batched execution tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOptions {
    /// Enables steady-state fast-forward. When `false` the batched engine
    /// is purely a memory-layout transformation and every result is
    /// bit-identical to [`SimEngine::run`].
    pub fast_forward: bool,
    /// Convergence radius ε: every layer must be within this many degrees
    /// of its RC fixed point before a cell may fast-forward. Policies are
    /// consulted with a `2ε` drift bound.
    pub steady_epsilon_c: f64,
    /// Number of consecutive DTM decisions that must return an unchanged
    /// plan before a cell is considered for fast-forward.
    pub steady_decisions: u32,
    /// How the per-window DTM/accounting pass traverses a lane (the two
    /// variants are bit-identical; see [`DecisionPass`]).
    pub decision_pass: DecisionPass,
    /// Envelope fast-forward tolerance ε_env: the widest per-layer
    /// temperature band (in degrees) a slipping orbit may span and still be
    /// taken over by the envelope replayer. `0.0` (or any non-positive
    /// value) disables the envelope tier entirely; it is also disabled by
    /// [`BatchOptions::literal`] and anywhere the limit-cycle detector is
    /// ineligible (traced cells, impure policies, `step ≠ dtm_interval`).
    pub envelope_tolerance: f64,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            fast_forward: true,
            steady_epsilon_c: 0.05,
            steady_decisions: 3,
            decision_pass: DecisionPass::default(),
            envelope_tolerance: 0.05,
        }
    }
}

impl BatchOptions {
    /// Literal batched execution: lockstep lanes, no fast-forward (steady,
    /// periodic or envelope). Every cell's result carries identical bits to
    /// a per-cell run.
    pub fn literal() -> Self {
        BatchOptions { fast_forward: false, envelope_tolerance: 0.0, ..Default::default() }
    }
}

/// Per-cell execution counters returned alongside each [`MemSpotResult`].
/// Kept outside the result so golden suites can keep comparing results with
/// `==` while still asserting how each cell was executed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellRunStats {
    /// Windows executed literally (stepped through the lane RC loop).
    pub stepped_windows: u64,
    /// Windows replayed analytically by a fast-forward (steady-state,
    /// periodic or envelope), counted toward the same conservation identity
    /// as stepped windows: `stepped + fast_forwarded` equals the literal
    /// window count.
    pub fast_forwarded_windows: u64,
    /// Whole limit cycles replayed by the periodic fast-forward. The
    /// windows inside them are already counted in `fast_forwarded_windows`;
    /// this only records that the cell left via the cycle detector (zero
    /// for steady-state fast-forwards).
    pub periodic_cycles: u64,
    /// Pseudo-cycles replayed by the envelope tier: closed-form segment
    /// jumps plus (for slipping orbits) the replayed windows divided by the
    /// orbit's detected period. Zero whenever the envelope never engaged.
    pub envelope_cycles: u64,
    /// Envelope bursts abandoned by the drift audit: the trajectory left
    /// its certified band and the cell fell back to literal lane stepping
    /// (with the replayed windows kept — they were themselves literal).
    pub envelope_fallbacks: u64,
    /// Estimated wall-clock nanoseconds spent in the cycle/envelope
    /// detectors (sampled 1-in-64 and extrapolated; excluded from `==`).
    pub detector_ns: u64,
    /// Wall-clock nanoseconds spent verifying candidate cycles and building
    /// envelope certificates (excluded from `==`).
    pub verify_ns: u64,
    /// Wall-clock nanoseconds spent inside analytic replays (steady,
    /// periodic and envelope fast-forwards; excluded from `==`).
    pub replay_ns: u64,
}

/// Equality deliberately ignores the wall-clock phase counters: golden
/// suites compare stats across runs whose timings can never match.
impl PartialEq for CellRunStats {
    fn eq(&self, other: &Self) -> bool {
        self.stepped_windows == other.stepped_windows
            && self.fast_forwarded_windows == other.fast_forwarded_windows
            && self.periodic_cycles == other.periodic_cycles
            && self.envelope_cycles == other.envelope_cycles
            && self.envelope_fallbacks == other.envelope_fallbacks
    }
}

impl Eq for CellRunStats {}

/// One sweep cell: a run configuration, a workload mix, a policy and the
/// mix's level-1 characterization table.
#[derive(Debug)]
pub struct BatchCell {
    /// The run configuration (cooling, stack, cadences, …).
    pub config: MemSpotConfig,
    /// The workload mix to run.
    pub mix: WorkloadMix,
    /// The DTM policy deciding each interval.
    pub policy: Box<dyn DtmPolicy>,
    /// Level-1 characterization table for `mix` (backed by a shared
    /// [`CharStore`] when built via [`BatchCell::new`]).
    pub table: CharacterizationTable,
}

impl BatchCell {
    /// Builds a cell whose characterization table shares `store`, so level-1
    /// results are computed once per distinct (mix, mode, budget, geometry)
    /// across the whole batch.
    pub fn new(
        cpu: &CpuConfig,
        mem: &FbdimmConfig,
        config: MemSpotConfig,
        mix: WorkloadMix,
        policy: Box<dyn DtmPolicy>,
        store: Arc<CharStore>,
    ) -> Self {
        let table = CharacterizationTable::with_store(
            cpu.clone(),
            *mem,
            mix.id.clone(),
            mix.apps.clone(),
            config.characterization_budget,
            store,
        );
        BatchCell { config, mix, policy, table }
    }

    /// Caps the level-1 rotation-averaging thread count (sweep engines pass
    /// 1 so cell-level parallelism composes deterministically).
    pub fn with_rotation_threads(mut self, threads: usize) -> Self {
        self.table = self.table.with_rotation_threads(threads);
        self
    }
}

/// The batched lockstep simulation engine. See the module docs for the
/// execution model and its bit-identity contract.
#[derive(Debug)]
pub struct BatchedSimEngine<'a> {
    cpu: &'a CpuConfig,
    mem: &'a FbdimmConfig,
    power: &'a FbdimmPowerModel,
    cpu_power: &'a PaperCpuPower,
}

impl<'a> BatchedSimEngine<'a> {
    /// Borrows the hardware models shared by every cell of the batch.
    pub fn new(
        cpu: &'a CpuConfig,
        mem: &'a FbdimmConfig,
        power: &'a FbdimmPowerModel,
        cpu_power: &'a PaperCpuPower,
    ) -> Self {
        BatchedSimEngine { cpu, mem, power, cpu_power }
    }

    /// Runs every cell to completion on the calling thread and returns one
    /// `(result, stats)` pair per cell, in input order. With
    /// [`BatchOptions::literal`] each result is bit-identical to
    /// [`SimEngine::run`] on the same cell.
    ///
    /// # Panics
    ///
    /// Panics if any cell's configuration fails [`MemSpotConfig::validate`].
    pub fn run(&self, cells: Vec<BatchCell>, options: &BatchOptions) -> Vec<(MemSpotResult, CellRunStats)> {
        self.run_with_workers(cells, options, 1)
    }

    /// Like [`BatchedSimEngine::run`], but fans the lanes across up to
    /// `workers` OS threads. Lanes are independent by construction (cells
    /// never interact), so lane-parallel execution is **bit-identical** to
    /// the single-threaded run: each cell's trajectory depends only on its
    /// own column, never on which lane hosts it or which thread steps it.
    /// When the batch degenerates to fewer lanes than workers, the largest
    /// lanes are split column-wise into chunks until every worker has a
    /// lane to step (splitting a lane changes only the interleaving of
    /// per-cell operations, not any cell's operation sequence).
    ///
    /// # Panics
    ///
    /// Panics if any cell's configuration fails [`MemSpotConfig::validate`].
    pub fn run_with_workers(
        &self,
        cells: Vec<BatchCell>,
        options: &BatchOptions,
        workers: usize,
    ) -> Vec<(MemSpotResult, CellRunStats)> {
        let workers = workers.max(1);
        let configs: Vec<MemSpotConfig> = cells.iter().map(|c| c.config).collect();
        let engines: Vec<SimEngine<'_>> = configs
            .iter()
            .map(|config| SimEngine::new(self.cpu, self.mem, self.power, self.cpu_power, config))
            .collect();
        let states: Vec<CellState> =
            cells.into_iter().zip(engines.iter()).map(|(cell, engine)| CellState::new(cell, engine, options)).collect();
        let total = states.len();
        let mut groups = lane_groups(&states);
        if workers > 1 {
            split_groups(&mut groups, workers, total);
        }
        let mut works = lane_works(states, groups);
        if workers <= 1 || works.len() <= 1 {
            for work in &mut works {
                run_lane_work(work, &engines, options);
            }
        } else {
            // The parallel_map idiom from the sweep runner: an atomic cursor
            // over the lane list, each worker claiming whole lanes and
            // stepping them to completion. Every lane index is claimed by
            // exactly one worker, so the per-lane mutexes are uncontended —
            // they only move ownership into and back out of the pool.
            let tasks: Vec<std::sync::Mutex<LaneWork>> = works.into_iter().map(std::sync::Mutex::new).collect();
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let engines_ref = &engines;
            std::thread::scope(|scope| {
                for _ in 0..workers.min(tasks.len()) {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let mut work = tasks[i].lock().expect("lane worker panicked");
                        run_lane_work(&mut work, engines_ref, options);
                    });
                }
            });
            works = tasks.into_iter().map(|m| m.into_inner().expect("lane worker panicked")).collect();
        }
        let mut results: Vec<Option<(MemSpotResult, CellRunStats)>> = (0..total).map(|_| None).collect();
        for work in works {
            for (local, result) in work.results.into_iter().enumerate() {
                results[work.globals[local]] = result;
            }
        }
        results.into_iter().map(|r| r.expect("every cell finalizes exactly once")).collect()
    }
}

/// One unit of lane-parallel work: a lane, the states of its member cells
/// (locally indexed `0..n`), their result slots, and the mapping back to
/// the batch's global cell order.
#[derive(Debug)]
struct LaneWork {
    /// `globals[local]` is the batch-order index of local cell `local`
    /// (used to pick its engine and to scatter its result).
    globals: Vec<usize>,
    lane: Lane,
    states: Vec<CellState>,
    results: Vec<Option<(MemSpotResult, CellRunStats)>>,
}

/// Steps one lane to completion (the whole single-lane execution loop).
fn run_lane_work(work: &mut LaneWork, engines: &[SimEngine<'_>], options: &BatchOptions) {
    let LaneWork { globals, lane, states, results } = work;
    lane_pre(lane, globals, engines, states, options, results);
    while !lane.members.is_empty() {
        lane_rc(lane, states);
        lane_post_pre(lane, globals, engines, states, options, results);
    }
}

/// The full mutable state of one in-flight cell — a field-for-field mirror
/// of the locals of [`SimEngine::run`], plus the batched-tier bookkeeping
/// (plan streak, execution stats, scratch buffers).
#[derive(Debug)]
struct CellState {
    mix: WorkloadMix,
    policy: Box<dyn DtmPolicy>,
    table: CharacterizationTable,
    batch: BatchJob,
    scene: DimmThermalScene,
    energy: EnergyAccumulator,
    full_shares: Vec<f64>,
    idle: Vec<FbdimmPowerBreakdown>,
    observation: ThermalObservation,
    plan_traffic: Vec<DimmTraffic>,
    plan_stats: PlanTrafficStats,
    step_s: f64,
    time_s: f64,
    next_dtm_s: f64,
    next_trace_s: f64,
    plan: ActuationPlan,
    mode: RunningMode,
    mode_key: ModeKey,
    point: Arc<CharPoint>,
    progressing: bool,
    window: WindowPower,
    overhead_s: f64,
    total_instructions: f64,
    total_bytes: f64,
    total_misses: f64,
    migrated_bytes: f64,
    max_amb: f64,
    max_dram: f64,
    ambient_sum: f64,
    ambient_samples: u64,
    residency: BTreeMap<ModeKey, f64>,
    trace: Vec<TempSample>,
    channel_throttle_s: Vec<f64>,
    plan_streak: u32,
    ff_allowed: bool,
    /// Whether the policy reads the observation's spatial field
    /// ([`DtmPolicy::observes_field`]); scalar policies get a cheap
    /// maxima-only observation straight from the lane's RC sweep.
    wants_field: bool,
    stats: CellRunStats,
    /// Whether the limit-cycle detector runs for this cell: fast-forward
    /// allowed, a pure-memoryless policy ([`DtmPolicy::decide_is_pure`])
    /// and a step that equals the DTM interval bitwise (so every window is
    /// exactly one decision and the replayed decision cadence is
    /// structurally identical to the stepped run).
    cycle_enabled: bool,
    cycle: CycleTracker,
    /// Whether the envelope fast-forward may engage for this cell: the
    /// limit-cycle eligibility conditions plus a positive
    /// [`BatchOptions::envelope_tolerance`].
    env_enabled: bool,
    /// Engage the envelope burst at the next DTM decision (set by the
    /// frozen-approach trigger, which fires mid-decision where the burst
    /// cannot start cleanly).
    env_pending: bool,
    /// Decisions left before the envelope may engage again after a band
    /// violation pushed the cell back to literal stepping.
    env_backoff: u32,
    /// Envelope fallbacks so far (saturating) — sets the next backoff's
    /// doubling exponent.
    env_fails: u32,
    /// Fixed-point scratch for the fast-forward engagement check.
    fp: Vec<f64>,
    /// Column scratch for syncing lane columns back into the scene.
    col_scratch: Vec<f64>,
}

impl CellState {
    fn new(cell: BatchCell, engine: &SimEngine<'_>, options: &BatchOptions) -> Self {
        let BatchCell { config, mix, mut policy, mut table } = cell;
        let batch = BatchJob::new(mix.clone(), config.copies_per_app, engine.cpu.cores, config.instruction_scale);
        let scene = engine.make_scene();
        let full_mode = RunningMode::full_speed(engine.cpu);
        let full_point = table.point(&full_mode);
        let full_shares = full_point.core_share.clone();
        let idle = engine.idle_powers();
        let observation = scene.observe();
        let mode = full_mode;
        let mode_key = ModeKey::from_mode(&mode);
        let progressing = mode.makes_progress() && full_point.instr_rate_total > 0.0;
        let window = engine.window_power(&scene, &idle, &full_point, &full_point.dimm_traffic, &mode, progressing);
        let (max_amb, max_dram) = scene.max_temps_c();
        policy.reset();
        let cycle_enabled = options.fast_forward
            && !config.record_temp_trace
            && policy.decide_is_pure()
            && !policy.observes_field()
            && config.window_s.min(config.dtm_interval_s).to_bits() == config.dtm_interval_s.to_bits();
        CellState {
            batch,
            energy: EnergyAccumulator::new(),
            full_shares,
            idle,
            observation,
            plan_traffic: Vec::new(),
            plan_stats: PlanTrafficStats::identity(),
            step_s: config.window_s.min(config.dtm_interval_s),
            time_s: 0.0,
            next_dtm_s: 0.0,
            next_trace_s: 0.0,
            plan: ActuationPlan::global(full_mode),
            mode,
            mode_key,
            point: full_point,
            progressing,
            window,
            overhead_s: 0.0,
            total_instructions: 0.0,
            total_bytes: 0.0,
            total_misses: 0.0,
            migrated_bytes: 0.0,
            max_amb,
            max_dram,
            ambient_sum: 0.0,
            ambient_samples: 0,
            residency: BTreeMap::new(),
            trace: Vec::new(),
            channel_throttle_s: vec![0.0; engine.mem.logical_channels],
            plan_streak: 0,
            ff_allowed: options.fast_forward && !config.record_temp_trace,
            wants_field: policy.observes_field(),
            stats: CellRunStats::default(),
            cycle_enabled,
            cycle: CycleTracker::default(),
            env_enabled: cycle_enabled && options.envelope_tolerance > 0.0,
            env_pending: false,
            env_backoff: 0,
            env_fails: 0,
            fp: Vec::new(),
            col_scratch: Vec::new(),
            mix,
            policy,
            table,
            scene,
        }
    }
}

/// One lockstep lane: the cells whose scenes share a device stack, a step
/// length and an ambient time constant, plus the shared cell-major
/// temperature/peak matrix they step over. Member position `c` owns matrix
/// column `c`; removing a member swap-removes its column (a pure copy, so
/// the surviving cells' bits are untouched).
#[derive(Debug)]
struct Lane {
    members: Vec<usize>,
    /// Column capacity (the member count at allocation time).
    stride: usize,
    rows: usize,
    depth: usize,
    /// Row-major `rows × stride` matrices, column = cell.
    temps: Vec<f64>,
    peaks: Vec<f64>,
    /// Cached Ψ superposition for non-identity stacks: `rows × stride`,
    /// `sup[(pos·depth + l)·stride + c] = Σ_j watts_j(c, pos)·Ψ[l][j]`.
    /// Window powers only change on plan transitions, so the split +
    /// Ψ-row dot products are hoisted out of the RC sweep and rewritten per
    /// column alongside `wamb`/`wdram`; the sweep reads
    /// `stable = ambient + sup` — the same `t += (s − t)·α` row loop the
    /// identity-split FBDIMM path runs. Empty for identity-split lanes.
    sup: Vec<f64>,
    /// Per-window scratch: each member's post-step ambient.
    amb: Vec<f64>,
    /// Per-column scratch: the stack's layer power split (used while
    /// rewriting a member's cached superposition column).
    watts: Vec<f64>,
    /// `positions × stride` buffer/DRAM window powers, column = cell.
    /// Window powers only change when a cell's plan changes, so these are
    /// rewritten per column on plan change instead of gathered per window.
    wamb: Vec<f64>,
    wdram: Vec<f64>,
    /// Whether the stack routes buffer watts to layer 0 and DRAM watts to
    /// layer 1 verbatim (the 2-layer FBDIMM case): the RC sweep then skips
    /// the per-cell power split entirely.
    identity_split: bool,
    /// Per-window scratch: each member's running hottest buffer / DRAM
    /// temperature, accumulated inside the RC row sweep.
    max_buffer: Vec<f64>,
    max_dram: Vec<f64>,
    /// Whether the lane's shared stack has a buffer die (`false` ⇒ the
    /// observation reports `NaN` for the buffer maximum).
    has_buffer: bool,
    ambient_alpha: f64,
    layer_alphas: Vec<f64>,
}

impl Lane {
    /// Copies member `j`'s temperature column into `out`.
    fn copy_temp_column(&self, j: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.rows).map(|r| self.temps[r * self.stride + j]));
    }

    /// Copies member `j`'s peak column into `out`.
    fn copy_peak_column(&self, j: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.rows).map(|r| self.peaks[r * self.stride + j]));
    }

    /// Removes member `j`, moving the last member's column into slot `j`.
    fn remove(&mut self, j: usize) {
        let last = self.members.len() - 1;
        if j != last {
            for r in 0..self.rows {
                let base = r * self.stride;
                self.temps[base + j] = self.temps[base + last];
                self.peaks[base + j] = self.peaks[base + last];
            }
            if !self.sup.is_empty() {
                for r in 0..self.rows {
                    let base = r * self.stride;
                    self.sup[base + j] = self.sup[base + last];
                }
            }
            for pos in 0..self.rows / self.depth {
                let base = pos * self.stride;
                self.wamb[base + j] = self.wamb[base + last];
                self.wdram[base + j] = self.wdram[base + last];
            }
            // The fused post+pre traversal removes a member *before* the
            // moved last member's post-step bookkeeping has read its
            // per-window maxima, so those columns move too. The ambient
            // column moves for the column-split traversal: its deferred
            // removals run *after* every survivor's pre-step has written
            // `amb` at its original slot, so the swap must carry that
            // fresh value (under the fused traversal the moved member's
            // pre-step overwrites `amb[j]` right after the swap, making
            // the copy redundant but harmless).
            self.max_buffer[j] = self.max_buffer[last];
            self.max_dram[j] = self.max_dram[last];
            self.amb[j] = self.amb[last];
        }
        self.members.swap_remove(j);
    }

    /// Rewrites member `j`'s window-power column (after a plan change),
    /// including the cached Ψ superposition on non-identity stacks.
    fn write_power_column(&mut self, j: usize, positions: &[FbdimmPowerBreakdown], topology: &StackTopology) {
        for (pos, p) in positions.iter().enumerate() {
            self.wamb[pos * self.stride + j] = p.amb_watts;
            self.wdram[pos * self.stride + j] = p.dram_watts;
            if !self.identity_split {
                topology.split_watts_into(p.amb_watts, p.dram_watts, &mut self.watts);
                for l in 0..self.depth {
                    self.sup[(pos * self.depth + l) * self.stride + j] = topology.psi_superpose(&self.watts, l);
                }
            }
        }
    }

    /// The stable (fixed-point target) temperature the next RC sweep will
    /// use for member `j`, row `r` — read back out of the cached power /
    /// superposition matrices with exactly the float-op sequence of
    /// [`lane_rc`], so a recorded cycle window replays the very bits the
    /// lane would have stepped.
    fn stable_for(&self, j: usize, r: usize, topology: &StackTopology) -> f64 {
        if self.identity_split {
            let pos = r / self.depth;
            let psi = topology.psi_row(r % self.depth);
            self.amb[j] + self.wamb[pos * self.stride + j] * psi[0] + self.wdram[pos * self.stride + j] * psi[1]
        } else {
            self.amb[j] + self.sup[r * self.stride + j]
        }
    }
}

/// Groups cell indices into lockstep-compatible lanes: cells share a lane
/// iff their scenes share a device stack, a step length (bitwise) and an
/// ambient time constant (bitwise).
fn lane_groups(states: &[CellState]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, st) in states.iter().enumerate() {
        let step_bits = st.step_s.to_bits();
        let tau_bits = st.scene.ambient_params().tau_cpu_dram_s.to_bits();
        let found = groups.iter_mut().find(|g| {
            let rep = &states[g[0]];
            rep.step_s.to_bits() == step_bits
                && rep.scene.ambient_params().tau_cpu_dram_s.to_bits() == tau_bits
                && rep.scene.topology() == st.scene.topology()
        });
        match found {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups
}

/// Splits the largest groups column-wise until there is one group per
/// worker (or no group can be split further) so a degenerate grid — e.g. a
/// homogeneous sweep that collapses into one dominant lane — still keeps
/// every worker busy. Splitting only changes which lane hosts a cell,
/// never the cell's own operation sequence, so results stay bit-identical.
fn split_groups(groups: &mut Vec<Vec<usize>>, workers: usize, total_cells: usize) {
    while groups.len() < workers.min(total_cells) {
        let Some((idx, len)) =
            groups.iter().enumerate().filter(|(_, g)| g.len() >= 2).map(|(i, g)| (i, g.len())).max_by_key(|&(_, l)| l)
        else {
            break;
        };
        let tail = groups[idx].split_off(len / 2);
        groups.insert(idx + 1, tail);
    }
}

/// Packages each group into an independently steppable [`LaneWork`]: the
/// group's states move out of the batch-order vector, the lane is built
/// over the local order, and `globals` remembers the way back.
fn lane_works(states: Vec<CellState>, groups: Vec<Vec<usize>>) -> Vec<LaneWork> {
    let mut slots: Vec<Option<CellState>> = states.into_iter().map(Some).collect();
    groups
        .into_iter()
        .map(|globals| {
            let states: Vec<CellState> =
                globals.iter().map(|&g| slots[g].take().expect("each cell belongs to exactly one lane")).collect();
            let members: Vec<usize> = (0..states.len()).collect();
            let lane = build_lane(&states, members);
            let results = states.iter().map(|_| None).collect();
            LaneWork { globals, lane, states, results }
        })
        .collect()
}

/// Builds one lane over `members` (indices into `states`) and seeds its
/// matrices from the cells' freshly built scenes.
fn build_lane(states: &[CellState], members: Vec<usize>) -> Lane {
    let rep = &states[members[0]];
    let depth = rep.scene.depth();
    let positions = rep.scene.len();
    let rows = positions * depth;
    let stride = members.len();
    let step_s = rep.step_s;
    let tau_s = rep.scene.ambient_params().tau_cpu_dram_s;
    let mut temps = vec![0.0; rows * stride];
    let mut peaks = vec![0.0; rows * stride];
    let mut wamb = vec![0.0; positions * stride];
    let mut wdram = vec![0.0; positions * stride];
    // Seed the per-member maxima from the initial field so a
    // first-window scalar observation (before any lane sweep has
    // refreshed the accumulators) sees the same maxima a fresh
    // `observe` would.
    let topology = rep.scene.topology();
    let layers = topology.layers();
    let identity_split = topology.is_identity_split();
    let mut sup = if identity_split { Vec::new() } else { vec![0.0; rows * stride] };
    let mut watts = vec![0.0; depth];
    // One length check at lane build covers every subsequent
    // `split_watts_into` call over this scratch.
    debug_assert_eq!(watts.len(), topology.depth(), "layer power scratch must match the stack depth");
    let mut max_buffer = vec![f64::NEG_INFINITY; stride];
    let mut max_dram = vec![f64::NEG_INFINITY; stride];
    for (c, &cell) in members.iter().enumerate() {
        for (r, (&t, &p)) in
            states[cell].scene.layer_temps_flat().iter().zip(states[cell].scene.layer_peaks_flat()).enumerate()
        {
            temps[r * stride + c] = t;
            peaks[r * stride + c] = p;
            match layers[r % depth].kind {
                DeviceLayerKind::Buffer => max_buffer[c] = max_buffer[c].max(t),
                DeviceLayerKind::Dram => max_dram[c] = max_dram[c].max(t),
            }
        }
        for (pos, p) in states[cell].window.positions.iter().enumerate() {
            wamb[pos * stride + c] = p.amb_watts;
            wdram[pos * stride + c] = p.dram_watts;
            if !identity_split {
                topology.split_watts_into(p.amb_watts, p.dram_watts, &mut watts);
                for l in 0..depth {
                    sup[(pos * depth + l) * stride + c] = topology.psi_superpose(&watts, l);
                }
            }
        }
    }
    let layer_alphas: Vec<f64> =
        rep.scene.topology().layers().iter().map(|l| ThermalNode::decay_alpha(l.tau_s, step_s)).collect();
    Lane {
        stride,
        rows,
        depth,
        temps,
        peaks,
        sup,
        amb: vec![0.0; stride],
        watts,
        wamb,
        wdram,
        identity_split,
        max_buffer,
        max_dram,
        has_buffer: topology.has_buffer(),
        ambient_alpha: ThermalNode::decay_alpha(tau_s, step_s),
        layer_alphas,
        members,
    }
}

/// The per-cell pre-step for lane member `j`: loop condition (finalizing a
/// finished cell), DTM decision (+ fast-forward engagement), batch
/// progress, and the cell's ambient step (the first thing
/// [`DimmThermalScene::step`] does) — each operation in exactly the order
/// of [`SimEngine::run`]. Returns `true` if the member stayed in the lane,
/// `false` if it departed (finalized or fast-forwarded out). The caller
/// owns the column removal: the fused driver calls [`Lane::remove`]
/// inline, the column-split driver defers all removals to the end of the
/// pass — which is what makes every operation in here column-disjoint
/// (`write_power_column`, `amb[j]`, the maxima reads all touch only
/// column `j`).
fn member_pre(
    lane: &mut Lane,
    j: usize,
    globals: &[usize],
    engines: &[SimEngine<'_>],
    states: &mut [CellState],
    options: &BatchOptions,
    results: &mut [Option<(MemSpotResult, CellRunStats)>],
) -> bool {
    let cell = lane.members[j];
    let engine = &engines[globals[cell]];
    let cfg = engine.config;
    let st = &mut states[cell];
    {
        if st.batch.is_complete() || st.time_s >= cfg.max_sim_time_s {
            lane.copy_temp_column(j, &mut st.col_scratch);
            st.scene.set_layer_temps(&st.col_scratch);
            lane.copy_peak_column(j, &mut st.col_scratch);
            st.scene.set_layer_peaks(&st.col_scratch);
            results[cell] = Some(finalize(st, engine));
            return false;
        }
        st.overhead_s = 0.0;
        if st.time_s + 1e-12 >= st.next_dtm_s {
            st.env_backoff = st.env_backoff.saturating_sub(1);
            // A completed cycle recording is verified *before* this
            // decision: on success the cell leaves the lane without
            // deciding (the jump replays the recorded decisions, which a
            // pure policy is guaranteed to reproduce), on failure the
            // detector backs off before recording again — and the envelope
            // tier gets its slipping-orbit shot: the cycle failed to close
            // exactly, but a confined orbit can still be replayed under a
            // band certificate.
            if st.cycle_enabled && st.cycle.recording.as_ref().is_some_and(|r| r.windows.len() == r.period) {
                let vt = std::time::Instant::now();
                let verdict = cycle_verify(lane, j, st, options);
                st.stats.verify_ns += vt.elapsed().as_nanos() as u64;
                match verdict {
                    Some(jump) => {
                        results[cell] = Some(fast_forward_periodic(lane, j, st, engine, jump));
                        return false;
                    }
                    None => {
                        let period = st.cycle.recording.as_ref().map_or(0, |r| r.period);
                        st.cycle.recording = None;
                        st.cycle.backoff = CYCLE_RETRY_BACKOFF << st.cycle.fails.min(CYCLE_BACKOFF_DOUBLINGS);
                        st.cycle.fails = st.cycle.fails.saturating_add(1);
                        if st.env_enabled && st.env_backoff == 0 {
                            let bt = std::time::Instant::now();
                            let band = env_band_slipping(lane, j, st, options, period);
                            st.stats.verify_ns += bt.elapsed().as_nanos() as u64;
                            if let Some(band) = band {
                                return match envelope_burst(lane, j, st, engine, band) {
                                    Some(result) => {
                                        results[cell] = Some(result);
                                        false
                                    }
                                    // A band violation already ran this
                                    // window's pre-step inside the burst.
                                    None => true,
                                };
                            }
                        }
                    }
                }
            }
            // Frozen-approach envelope engagement, armed by the previous
            // decision's trigger (which fires mid-decision, too late to
            // start a burst cleanly, so it waits one window).
            if st.env_pending {
                st.env_pending = false;
                if st.env_enabled && st.env_backoff == 0 {
                    let bt = std::time::Instant::now();
                    let band = env_band_frozen(lane, j, st);
                    st.stats.verify_ns += bt.elapsed().as_nanos() as u64;
                    if let Some(band) = band {
                        return match envelope_burst(lane, j, st, engine, band) {
                            Some(result) => {
                                results[cell] = Some(result);
                                false
                            }
                            None => true,
                        };
                    }
                }
            }
            if st.wants_field {
                st.scene.observe_lane_into(&lane.temps, lane.stride, j, &mut st.observation);
            } else {
                // Scalar policies read only the device maxima and the
                // ambient; the maxima are exactly the lane sweep's running
                // accumulators for this member (`f64::max` over the same
                // node set), so the full per-position field synthesis is
                // skipped. Spatial fields of the observation go stale and
                // must not be read (`DtmPolicy::observes_field`).
                st.observation.max_amb_c = if lane.has_buffer { lane.max_buffer[j] } else { f64::NAN };
                st.observation.max_dram_c = lane.max_dram[j];
                st.observation.ambient_c = st.scene.ambient_c();
            }
            let new_plan = st.policy.decide(&st.observation, cfg.dtm_interval_s);
            let plan_changed = new_plan != st.plan;
            if plan_changed {
                st.plan_streak = 0;
                st.overhead_s = cfg.dtm_overhead_s;
                if new_plan.mode != st.mode {
                    st.mode = new_plan.mode;
                    st.mode_key = ModeKey::from_mode(&st.mode);
                    st.point = st.table.point(&st.mode);
                    st.progressing = st.mode.makes_progress() && st.point.instr_rate_total > 0.0;
                }
                st.plan = new_plan;
                if st.plan.is_scalar() {
                    st.plan_stats = PlanTrafficStats::identity();
                    st.window = engine.window_power(
                        &st.scene,
                        &st.idle,
                        &st.point,
                        &st.point.dimm_traffic,
                        &st.mode,
                        st.progressing,
                    );
                } else {
                    st.plan_stats = st.plan.apply_traffic_into(
                        &st.point.dimm_traffic,
                        engine.mem.logical_channels,
                        engine.mem.dimms_per_channel,
                        &mut st.plan_traffic,
                    );
                    st.window =
                        engine.window_power(&st.scene, &st.idle, &st.point, &st.plan_traffic, &st.mode, st.progressing);
                }
                lane.write_power_column(j, &st.window.positions, st.scene.topology());
            } else {
                st.plan_streak = st.plan_streak.saturating_add(1);
                if st.ff_allowed
                    && st.plan_streak >= options.steady_decisions
                    && (st.plan_streak - options.steady_decisions).is_multiple_of(FF_CHECK_PERIOD)
                    && ff_engages(lane, j, st, options)
                {
                    results[cell] = Some(fast_forward(lane, j, st, engine));
                    return false;
                }
                // Frozen-approach envelope trigger: the plan has been
                // frozen far longer than the steady-state engagement needs,
                // yet the fast-forward keeps refusing — the temperatures
                // are still sliding toward a distant fixed point. Arm the
                // envelope burst for the next decision.
                if st.env_enabled && !st.env_pending && st.env_backoff == 0 && st.plan_streak >= ENV_FROZEN_STREAK {
                    st.env_pending = true;
                }
            }
            if st.cycle_enabled {
                // The tracker's cost is sampled 1-in-64 and extrapolated: a
                // per-window clock read would cost more than the tracking.
                if st.stats.stepped_windows.is_multiple_of(64) {
                    let dt0 = std::time::Instant::now();
                    cycle_track(lane, j, st, plan_changed, options);
                    st.stats.detector_ns += 64 * dt0.elapsed().as_nanos() as u64;
                } else {
                    cycle_track(lane, j, st, plan_changed, options);
                }
            }
            st.next_dtm_s += cfg.dtm_interval_s;
        }
        let effective_s = (st.step_s - st.overhead_s).max(0.0);
        if st.progressing {
            let instr = st.point.instr_rate_total * st.plan_stats.service_scale * effective_s;
            st.total_instructions += instr;
            st.total_bytes += st.point.total_gbps() * st.plan_stats.service_scale * 1e9 * effective_s;
            st.total_misses += st.point.l2_misses_per_instr * instr;
            st.migrated_bytes += st.plan_stats.migrated_gbps * 1e9 * effective_s;
            for core in 0..engine.cpu.cores {
                let share = st.full_shares.get(core).copied().unwrap_or(0.0);
                if share > 0.0 {
                    st.batch.retire(core, (instr * share) as u64);
                }
            }
        }
        lane.amb[j] = st.scene.step_ambient(st.window.v_ipc, lane.ambient_alpha);
        if st.cycle_enabled && st.cycle.recording.is_some() {
            cycle_record_window(lane, j, st);
        }
    }
    true
}

/// The per-cell post-step bookkeeping for lane member `j`, mirroring the
/// tail of the per-cell window loop (energy, maxima, residency, throttle
/// accounting, trace, clock).
fn member_post(lane: &Lane, j: usize, globals: &[usize], engines: &[SimEngine<'_>], states: &mut [CellState]) {
    let cell = lane.members[j];
    let cfg = engines[globals[cell]].config;
    let st = &mut states[cell];
    st.energy.add(st.window.mem_w, st.window.cpu_w, st.step_s);
    let amb_now = if lane.has_buffer { lane.max_buffer[j] } else { f64::NAN };
    let dram_now = lane.max_dram[j];
    st.max_amb = st.max_amb.max(amb_now);
    st.max_dram = st.max_dram.max(dram_now);
    st.ambient_sum += st.scene.ambient_c();
    st.ambient_samples += 1;
    *st.residency.entry(st.mode_key).or_insert(0.0) += st.step_s;
    for (channel, throttled_s) in st.channel_throttle_s.iter_mut().enumerate() {
        if st.plan.throttles_channel(channel) {
            *throttled_s += st.step_s;
        }
    }
    if cfg.record_temp_trace && st.time_s + 1e-12 >= st.next_trace_s {
        st.trace.push(TempSample {
            time_s: st.time_s,
            amb_c: amb_now,
            dram_c: dram_now,
            ambient_c: st.scene.ambient_c(),
            active_cores: st.mode.active_cores,
            freq_ghz: st.mode.op.freq_ghz,
        });
        st.next_trace_s += cfg.temp_trace_interval_s;
    }
    st.time_s += st.step_s;
    st.stats.stepped_windows += 1;
}

/// Apply the slots [`member_pre`] flagged as departed. Removals run in
/// **descending** slot order: [`Lane::remove`] swap-fills the hole with the
/// current last column, and with the highest slot removed first the fill
/// column is never itself a pending departure and never a slot the pass
/// still has to visit — so deferring removals moves no arithmetic.
fn apply_departures(lane: &mut Lane, departed: &mut Vec<usize>) {
    while let Some(j) = departed.pop() {
        lane.remove(j);
    }
}

/// The pre-step pass over a whole lane (the first window's phase A),
/// traversed per [`BatchOptions::decision_pass`].
fn lane_pre(
    lane: &mut Lane,
    globals: &[usize],
    engines: &[SimEngine<'_>],
    states: &mut [CellState],
    options: &BatchOptions,
    results: &mut [Option<(MemSpotResult, CellRunStats)>],
) {
    match options.decision_pass {
        DecisionPass::Fused => {
            let mut j = 0;
            while j < lane.members.len() {
                if member_pre(lane, j, globals, engines, states, options, results) {
                    j += 1;
                } else {
                    lane.remove(j);
                }
            }
        }
        DecisionPass::ColumnSplit => {
            let mut departed = Vec::new();
            for j in 0..lane.members.len() {
                if !member_pre(lane, j, globals, engines, states, options, results) {
                    departed.push(j);
                }
            }
            apply_departures(lane, &mut departed);
        }
    }
}

/// Each member's post-step bookkeeping for the window just stepped and its
/// pre-step for the next window, traversed per
/// [`BatchOptions::decision_pass`] — the per-cell operation order of
/// [`SimEngine::run`] is preserved exactly under both traversals (cell
/// `i`'s window-`k` tail always precedes its window-`k+1` head; cells are
/// mutually independent, so their interleaving is free to differ).
///
/// The fused traversal interleaves the two steps per member and removes
/// departures inline; the column-split traversal phase-separates them —
/// all post-steps, then all pre-steps collecting departures, then the
/// deferred removals — so that every phase is a loop of column-disjoint
/// member operations with no intervening column swaps.
fn lane_post_pre(
    lane: &mut Lane,
    globals: &[usize],
    engines: &[SimEngine<'_>],
    states: &mut [CellState],
    options: &BatchOptions,
    results: &mut [Option<(MemSpotResult, CellRunStats)>],
) {
    match options.decision_pass {
        DecisionPass::Fused => {
            let mut j = 0;
            while j < lane.members.len() {
                member_post(lane, j, globals, engines, states);
                if member_pre(lane, j, globals, engines, states, options, results) {
                    j += 1;
                } else {
                    lane.remove(j);
                }
            }
        }
        DecisionPass::ColumnSplit => {
            for j in 0..lane.members.len() {
                member_post(lane, j, globals, engines, states);
            }
            let mut departed = Vec::new();
            for j in 0..lane.members.len() {
                if !member_pre(lane, j, globals, engines, states, options, results) {
                    departed.push(j);
                }
            }
            apply_departures(lane, &mut departed);
        }
    }
}

/// The fused RC update over a whole lane — position-major contiguous
/// sweeps over all cells at once (the vectorized hot loop this tier exists
/// for). On identity-split stacks the per-element stable temperature is
/// computed inline as `ambient + w_buffer·ψ_l0 + w_dram·ψ_l1`, the exact
/// float-op sequence of `DimmThermalScene::step`, so the bits match the
/// per-cell engine; other stacks read `ambient + sup` from the cached
/// superposition matrix ([`Lane::sup`], rewritten only on plan changes) —
/// the same float-op sequence as the reordered non-identity branch of
/// `DimmThermalScene::step`, and the same `t += (s − t)·α` row sweep as the
/// FBDIMM fast path. The sweep also accumulates each cell's
/// per-device-kind running maximum of the freshly stepped temperatures —
/// `f64::max` over a fixed set is order-independent, so the per-cell
/// values carry bits identical to a post-step scene fold.
fn lane_rc(lane: &mut Lane, states: &[CellState]) {
    {
        let Lane {
            members,
            stride,
            depth,
            temps,
            peaks,
            sup,
            amb,
            wamb,
            wdram,
            identity_split,
            layer_alphas,
            max_buffer,
            max_dram,
            ..
        } = lane;
        let (stride, depth) = (*stride, *depth);
        let n = members.len();
        if n > 0 {
            let topology = states[members[0]].scene.topology();
            let layers = topology.layers();
            max_buffer[..n].fill(f64::NEG_INFINITY);
            max_dram[..n].fill(f64::NEG_INFINITY);
            for pos in 0..temps.len() / (depth * stride) {
                let wa = &wamb[pos * stride..pos * stride + n];
                let wd = &wdram[pos * stride..pos * stride + n];
                for l in 0..depth {
                    let alpha = layer_alphas[l];
                    let row = (pos * depth + l) * stride;
                    let t_row = &mut temps[row..row + n];
                    let p_row = &mut peaks[row..row + n];
                    let m_row = match layers[l].kind {
                        DeviceLayerKind::Buffer => &mut max_buffer[..n],
                        DeviceLayerKind::Dram => &mut max_dram[..n],
                    };
                    if *identity_split {
                        let psi = topology.psi_row(l);
                        let (psi_b, psi_d) = (psi[0], psi[1]);
                        for i in 0..n {
                            let s = amb[i] + wa[i] * psi_b + wd[i] * psi_d;
                            let t = &mut t_row[i];
                            *t += (s - *t) * alpha;
                            p_row[i] = p_row[i].max(*t);
                            m_row[i] = m_row[i].max(*t);
                        }
                    } else {
                        let s_row = &sup[row..row + n];
                        for i in 0..n {
                            let s = amb[i] + s_row[i];
                            let t = &mut t_row[i];
                            *t += (s - *t) * alpha;
                            p_row[i] = p_row[i].max(*t);
                            m_row[i] = m_row[i].max(*t);
                        }
                    }
                }
            }
        }
    }
}

/// Whether the cell at lane column `j` satisfies every fast-forward
/// condition: a provably steady policy, an ambient at its fixed point and
/// every layer within ε of its RC fixed point (left in `st.fp` for the
/// jump). The streak and trace conditions are checked by the caller.
fn ff_engages(lane: &Lane, j: usize, st: &mut CellState, options: &BatchOptions) -> bool {
    let drift_c = 2.0 * options.steady_epsilon_c;
    if !st.policy.is_steady(&st.observation, &st.plan, drift_c) {
        return false;
    }
    let stable_ambient = st.scene.ambient_params().stable_ambient_c(st.window.v_ipc);
    // `!(x <= eps)` deliberately refuses to fast-forward on NaN.
    let ambient_settled = (st.scene.ambient_c() - stable_ambient).abs() <= AMBIENT_FF_EPS_C;
    if !ambient_settled {
        return false;
    }
    st.scene.fixed_point_into(&st.window.positions, st.window.v_ipc, &mut st.fp);
    (0..lane.rows).all(|r| (lane.temps[r * lane.stride + j] - st.fp[r]).abs() <= options.steady_epsilon_c)
}

/// Replays the cell's remaining windows in closed form and finalizes it.
///
/// The plan is frozen (guaranteed by [`DtmPolicy::is_steady`] under the 2ε
/// drift bound), so every remaining window carries the same power, zero DTM
/// overhead and the same per-core retire rates. Batch completion is
/// resolved event-by-event: windows in which no job copy can possibly
/// finish are bulk-retired in one call per core (pure subtraction — order
/// cannot matter), and each window in which a copy *does* finish is retired
/// literally, core by core, so the round-robin refill from the pending
/// queue interleaves exactly as in the stepped run. Simulated time advances
/// by the literal repeated additions throughout, keeping `running_time_s`
/// and the total window count bit-identical.
fn fast_forward(lane: &Lane, j: usize, st: &mut CellState, engine: &SimEngine<'_>) -> (MemSpotResult, CellRunStats) {
    let started = std::time::Instant::now();
    let cfg = engine.config;
    let cores = engine.cpu.cores;
    let step = st.step_s;
    let instr = st.point.instr_rate_total * st.plan_stats.service_scale * step;
    let bytes = st.point.total_gbps() * st.plan_stats.service_scale * 1e9 * step;
    let misses = st.point.l2_misses_per_instr * instr;
    let migrated = st.plan_stats.migrated_gbps * 1e9 * step;
    let rates: Vec<u64> = (0..cores)
        .map(|core| {
            let share = st.full_shares.get(core).copied().unwrap_or(0.0);
            if share > 0.0 {
                (instr * share) as u64
            } else {
                0
            }
        })
        .collect();
    let shares_positive: Vec<bool> =
        (0..cores).map(|core| st.full_shares.get(core).copied().unwrap_or(0.0) > 0.0).collect();

    let mut w_total: u64 = 0;
    while !st.batch.is_complete() && st.time_s < cfg.max_sim_time_s {
        // Windows until the earliest possible job-copy completion (none if
        // the cell makes no progress or no core retires instructions).
        let target: Option<u64> = if st.progressing {
            (0..cores)
                .filter(|&core| rates[core] > 0)
                .filter_map(|core| st.batch.slot(core).map(|s| s.remaining_instructions.div_ceil(rates[core]).max(1)))
                .min()
        } else {
            None
        };
        let mut m: u64 = 0;
        match target {
            Some(t) => {
                while m < t && st.time_s < cfg.max_sim_time_s {
                    st.time_s += step;
                    m += 1;
                }
            }
            None => {
                while st.time_s < cfg.max_sim_time_s {
                    st.time_s += step;
                    m += 1;
                }
            }
        }
        if m == 0 {
            break;
        }
        let mf = m as f64;
        if st.progressing {
            st.total_instructions += instr * mf;
            st.total_bytes += bytes * mf;
            st.total_misses += misses * mf;
            st.migrated_bytes += migrated * mf;
            if target == Some(m) {
                // `m - 1` completion-free windows in bulk, then the
                // completion window itself replayed literally.
                if m > 1 {
                    for core in 0..cores {
                        if shares_positive[core] {
                            st.batch.retire(core, rates[core] * (m - 1));
                        }
                    }
                }
                for core in 0..cores {
                    if shares_positive[core] {
                        st.batch.retire(core, rates[core]);
                    }
                }
            } else {
                for core in 0..cores {
                    if shares_positive[core] {
                        st.batch.retire(core, rates[core] * m);
                    }
                }
            }
        }
        st.energy.add(st.window.mem_w, st.window.cpu_w, step * mf);
        *st.residency.entry(st.mode_key).or_insert(0.0) += step * mf;
        for (channel, throttled_s) in st.channel_throttle_s.iter_mut().enumerate() {
            if st.plan.throttles_channel(channel) {
                *throttled_s += step * mf;
            }
        }
        st.ambient_sum += st.scene.ambient_c() * mf;
        st.ambient_samples += m;
        w_total += m;
    }

    // Closed-form end state: each layer decays geometrically toward its
    // fixed point, `t_end = t* + (t0 − t*)·λ^W` with `λ = 1 − α` (computed
    // as `exp(W·ln λ)`; `λ = 0` yields `exp(−∞) = 0`, i.e. exactly the
    // fixed point). Trajectories are monotone, so the running maxima and
    // peaks only need the endpoint folded in — `t0` already contributed
    // when its window stepped.
    st.col_scratch.clear();
    for r in 0..lane.rows {
        let t0 = lane.temps[r * lane.stride + j];
        let lambda = 1.0 - lane.layer_alphas[r % lane.depth];
        let decay = if w_total == 0 { 1.0 } else { (w_total as f64 * lambda.ln()).exp() };
        st.col_scratch.push(st.fp[r] + (t0 - st.fp[r]) * decay);
    }
    st.scene.set_layer_temps(&st.col_scratch);
    let peaks_end: Vec<f64> = (0..lane.rows).map(|r| lane.peaks[r * lane.stride + j].max(st.col_scratch[r])).collect();
    st.scene.set_layer_peaks(&peaks_end);
    let (amb_now, dram_now) = st.scene.max_temps_c();
    st.max_amb = st.max_amb.max(amb_now);
    st.max_dram = st.max_dram.max(dram_now);
    st.stats.fast_forwarded_windows = w_total;
    st.stats.replay_ns += started.elapsed().as_nanos() as u64;
    finalize(st, engine)
}

/// The limit-cycle detector state of one cell (only populated when
/// [`CellState::cycle_enabled`]). Tracking is cheap — one snapshot per DTM
/// decision — and recording/verification only run once the plan sequence
/// already looks periodic.
#[derive(Debug, Default)]
struct CycleTracker {
    /// The most recent decisions, newest last (capped at
    /// `2·MAX_CYCLE_DECISIONS + 1` so any period up to the maximum can be
    /// checked against one full prior repetition).
    history: VecDeque<DecisionSnap>,
    /// The in-flight (or completed, pending verification) cycle recording.
    recording: Option<CycleRecording>,
    /// Decisions left before the detector may record again after a failed
    /// verification.
    backoff: u32,
    /// Failed verifications so far (saturating) — sets the next backoff's
    /// doubling exponent.
    fails: u32,
}

/// What the detector remembers about one DTM decision.
#[derive(Debug)]
struct DecisionSnap {
    plan: ActuationPlan,
    /// The cell's lane temperature column at decision time (pre-window).
    temps: Vec<f64>,
    /// The scene ambient at decision time. Candidate selection demands the
    /// same tight recurrence verification will ([`AMBIENT_FF_EPS_C`]), so a
    /// slowly drifting orbit — whose layer temperatures recur within ε over
    /// any short lag — never starts a recording it is bound to fail.
    ambient: f64,
}

/// One full candidate limit cycle, recorded window by window as it is
/// stepped literally. Everything the periodic fast-forward needs to replay
/// the cycle — plans, stable temperatures, per-window amounts — is captured
/// from the very values the stepped windows used.
#[derive(Debug)]
struct CycleRecording {
    /// The cycle length in windows (= decisions, since recording only runs
    /// when the step equals the DTM interval).
    period: usize,
    /// The scene ambient at the recording's first decision (pre-window);
    /// verification requires it to recur at the closing decision.
    start_ambient: f64,
    windows: Vec<CycleWindow>,
}

/// One recorded window of a candidate limit cycle.
#[derive(Debug)]
struct CycleWindow {
    plan: ActuationPlan,
    /// The observation this window's decision consumed (kept so
    /// verification can ask [`DtmPolicy::is_steady`] about *every* phase of
    /// the cycle, not just the closing one).
    observation: ThermalObservation,
    /// The per-row stable temperatures the RC sweep used
    /// ([`Lane::stable_for`]) — replaying them reproduces the sweep's bits.
    stables: Vec<f64>,
    mode_key: ModeKey,
    mem_w: f64,
    cpu_w: f64,
    instr: f64,
    bytes: f64,
    misses: f64,
    migrated: f64,
    /// Per-core retired-instruction amounts (exact integers, so completion
    /// events replay at the very window they would step at).
    retires: Vec<u64>,
    progressing: bool,
    /// Per-channel throttle flags of this window's plan.
    throttled: Vec<bool>,
    /// The scene ambient after this window's ambient step (the value the
    /// stepped run folds into `ambient_sum`).
    ambient_c: f64,
}

/// Per-cycle affine-map data computed by [`cycle_verify`] and consumed by
/// [`fast_forward_periodic`]: over one whole cycle each layer contracts as
/// `t ← a·t + c` toward the phase-0 fixed point `t* = c / (1 − a)`.
#[derive(Debug)]
struct CycleJump {
    /// Per-layer whole-cycle decay `a = λ^k`.
    layer_a: Vec<f64>,
    /// Per-row phase-0 fixed point of the cycle map.
    fixed: Vec<f64>,
}

/// Pushes one decision snapshot and, when the recent history shows a
/// period-`k` plan sequence whose temperatures recur within ε, starts
/// recording one full cycle for verification. Runs at every DTM decision of
/// a cycle-enabled cell (after the decision, before the window steps).
// The negated comparison is load-bearing: `!(x <= eps)` refuses on NaN
// where `x > eps` would accept it.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn cycle_track(lane: &Lane, j: usize, st: &mut CellState, changed: bool, options: &BatchOptions) {
    let streak = st.plan_streak as usize;
    let tracker = &mut st.cycle;
    // A plan frozen for the full history depth cannot take part in any
    // detectable cycle (a candidate must change the plan inside its two
    // repetitions), so tracking pauses for settled cells — dropping the
    // stale history keeps snapshot lags contiguous — until the plan next
    // changes. Without this gate the scan below is the batched tier's
    // dominant per-window cost on frozen-plan cells.
    if !changed && streak >= 2 * MAX_CYCLE_DECISIONS {
        tracker.history.clear();
        return;
    }
    // Once a recording is in flight the history is never read again — a
    // verified cycle removes the cell from the lane, a failed verification
    // clears the history into backoff — so both states idle at one branch
    // per decision instead of snapshotting.
    if tracker.recording.is_some() {
        return;
    }
    // Early backoff idles without snapshotting (the history is stale and
    // dropped); snapshotting resumes for the final `2·MAX + 1` decisions so
    // a full history is ready the moment the scan re-arms — detection
    // timing is exactly that of snapshotting throughout.
    let disarmed = tracker.backoff > 0;
    if disarmed {
        tracker.backoff -= 1;
        if tracker.backoff as usize > 2 * MAX_CYCLE_DECISIONS {
            tracker.history.clear();
            return;
        }
    }
    // Recycle the oldest snapshot's allocation once the history is full.
    let mut temps = if tracker.history.len() > 2 * MAX_CYCLE_DECISIONS {
        let mut old = tracker.history.pop_front().expect("history is non-empty");
        old.temps.clear();
        old.temps
    } else {
        Vec::with_capacity(lane.rows)
    };
    temps.extend((0..lane.rows).map(|r| lane.temps[r * lane.stride + j]));
    tracker.history.push_back(DecisionSnap { plan: st.plan.clone(), temps, ambient: st.scene.ambient_c() });
    if disarmed {
        return;
    }
    let h = &tracker.history;
    let n = h.len();
    for k in 2..=MAX_CYCLE_DECISIONS {
        if n < 2 * k {
            break;
        }
        // The last 2k decisions must repeat with period k, actually change
        // the plan at least once (a frozen plan is the steady-state
        // fast-forward's domain), and land on recurring temperatures. The
        // change requirement is the O(1) `plan_streak` test — the last
        // change must fall inside the candidate's two repetitions — and
        // filters before any plan is compared.
        if streak >= 2 * k {
            continue;
        }
        // Ambient recurrence to verification's own tolerance comes next —
        // one subtract rules most lags out (and refuses on NaN) before any
        // plan or temperature vector is compared.
        if !((h[n - 1].ambient - h[n - 1 - k].ambient).abs() <= AMBIENT_FF_EPS_C) {
            continue;
        }
        if !(0..k).all(|i| h[n - 1 - i].plan == h[n - 1 - i - k].plan) {
            continue;
        }
        let now = &h[n - 1].temps;
        let then = &h[n - 1 - k].temps;
        if !now.iter().zip(then).all(|(a, b)| (a - b).abs() <= options.steady_epsilon_c) {
            continue;
        }
        tracker.recording =
            Some(CycleRecording { period: k, start_ambient: st.scene.ambient_c(), windows: Vec::with_capacity(k) });
        return;
    }
}

/// Captures the window just prepared by [`member_pre`] into the in-flight
/// cycle recording (called after the cell's ambient step, so
/// [`Lane::stable_for`] reads exactly what the next RC sweep will use).
fn cycle_record_window(lane: &Lane, j: usize, st: &mut CellState) {
    let scene = &st.scene;
    let Some(rec) = st.cycle.recording.as_mut() else { return };
    if rec.windows.len() >= rec.period {
        return;
    }
    let topology = scene.topology();
    let stables: Vec<f64> = (0..lane.rows).map(|r| lane.stable_for(j, r, topology)).collect();
    let effective_s = (st.step_s - st.overhead_s).max(0.0);
    let (instr, bytes, misses, migrated) = if st.progressing {
        let instr = st.point.instr_rate_total * st.plan_stats.service_scale * effective_s;
        (
            instr,
            st.point.total_gbps() * st.plan_stats.service_scale * 1e9 * effective_s,
            st.point.l2_misses_per_instr * instr,
            st.plan_stats.migrated_gbps * 1e9 * effective_s,
        )
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };
    let retires: Vec<u64> = st
        .full_shares
        .iter()
        .map(|&share| if share > 0.0 && st.progressing { (instr * share) as u64 } else { 0 })
        .collect();
    let throttled: Vec<bool> = (0..st.channel_throttle_s.len()).map(|ch| st.plan.throttles_channel(ch)).collect();
    rec.windows.push(CycleWindow {
        plan: st.plan.clone(),
        observation: st.observation.clone(),
        stables,
        mode_key: st.mode_key,
        mem_w: st.window.mem_w,
        cpu_w: st.window.cpu_w,
        instr,
        bytes,
        misses,
        migrated,
        retires,
        progressing: st.progressing,
        throttled,
        ambient_c: scene.ambient_c(),
    });
}

/// Verifies a completed cycle recording against the cell's current state
/// and, on success, returns the cycle's affine-map data for the jump.
///
/// The detector's heuristics got us here; this is where correctness lives.
/// Over one cycle each layer evolves as `t ← a·t + c` with `a = λ^k` and
/// `c` the recorded stables folded from zero, so the cycle has a phase-0
/// fixed point `t* = c / (1 − a)` (with `1 − a` evaluated as `α·Σλ^i` to
/// dodge the cancellation at `λ → 1`). Requirements:
///
/// 1. the scene ambient recurs (bitwise for isolated scenes) at the cycle
///    boundary,
/// 2. the recorded plans actually change within the cycle (else the
///    steady-state fast-forward owns the cell),
/// 3. every row sits within ε of its cycle fixed point (`B = max |t − t*|`),
///    and
/// 4. the policy guarantees, for every phase `w`, that any observation
///    within `max(B, d_w)` of the *phase fixed-point* observation decides
///    the recorded plan ([`DtmPolicy::is_steady`] centered on the
///    fixed-point maxima). All future phase-`w` boundary temperatures stay
///    within `B` of the phase fixed point (whole-cycle contraction from the
///    current `B`, intra-cycle contraction `≤ 1`), and `d_w` — the recorded
///    observation's own distance to the fixed-point observation — pulls the
///    *recorded* decision into the same ball, so the level that is constant
///    over the ball is exactly the recorded plan's.
// The negated comparisons are load-bearing: `!(x <= eps)` refuses on NaN
// where `x > eps` would accept it.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn cycle_verify(lane: &Lane, j: usize, st: &CellState, options: &BatchOptions) -> Option<CycleJump> {
    let rec = st.cycle.recording.as_ref()?;
    let k = rec.period;
    // `!(x <= eps)` deliberately refuses on NaN.
    if !((st.scene.ambient_c() - rec.start_ambient).abs() <= AMBIENT_FF_EPS_C) {
        return None;
    }
    if !rec.windows.iter().any(|w| w.plan != rec.windows[0].plan) {
        return None;
    }
    let depth = lane.depth;
    let mut layer_a = vec![0.0; depth];
    let mut one_minus_a = vec![0.0; depth];
    for l in 0..depth {
        let alpha = lane.layer_alphas[l];
        let lambda = 1.0 - alpha;
        let mut geo = 0.0;
        let mut p = 1.0;
        for _ in 0..k {
            geo += p;
            p *= lambda;
        }
        layer_a[l] = lambda.powi(k as i32);
        one_minus_a[l] = alpha * geo;
    }
    let mut fixed = vec![0.0; lane.rows];
    let mut deviation: f64 = 0.0;
    for (r, slot) in fixed.iter_mut().enumerate() {
        let alpha = lane.layer_alphas[r % depth];
        let mut c = 0.0;
        for win in &rec.windows {
            c += (win.stables[r] - c) * alpha;
        }
        let t_star = c / one_minus_a[r % depth];
        if !t_star.is_finite() {
            return None;
        }
        *slot = t_star;
        deviation = deviation.max((lane.temps[r * lane.stride + j] - t_star).abs());
    }
    if !(deviation <= options.steady_epsilon_c) {
        return None;
    }
    // Walk the phase fixed points through the cycle and consult the policy
    // at each one: `t_star` holds the phase-`w` boundary temperatures of
    // the exactly periodic orbit, whose device maxima are what a converged
    // cycle's decision at phase `w` observes.
    let layers = st.scene.topology().layers();
    let has_buffer = st.scene.topology().has_buffer();
    let mut t_star = fixed.clone();
    let mut probe = rec.windows[0].observation.clone();
    for win in &rec.windows {
        let mut amb_star = f64::NEG_INFINITY;
        let mut dram_star = f64::NEG_INFINITY;
        for (r, &t) in t_star.iter().enumerate() {
            match layers[r % depth].kind {
                DeviceLayerKind::Buffer => amb_star = amb_star.max(t),
                DeviceLayerKind::Dram => dram_star = dram_star.max(t),
            }
        }
        let amb_star = if has_buffer { amb_star } else { f64::NAN };
        let d_w = {
            let da = if has_buffer { (win.observation.max_amb_c - amb_star).abs() } else { 0.0 };
            let dd = (win.observation.max_dram_c - dram_star).abs();
            da.max(dd)
        };
        if !d_w.is_finite() {
            return None;
        }
        probe.max_amb_c = amb_star;
        probe.max_dram_c = dram_star;
        probe.ambient_c = win.observation.ambient_c;
        let radius_c = deviation.max(d_w) + 1e-9;
        if !st.policy.is_steady(&probe, &win.plan, radius_c) {
            return None;
        }
        for (r, t) in t_star.iter_mut().enumerate() {
            *t += (win.stables[r] - *t) * lane.layer_alphas[r % depth];
        }
    }
    Some(CycleJump { layer_a, fixed })
}

/// Literal RC fold of the recorded windows `[from, to)` over the working
/// temperature state (the exact per-window float ops of [`lane_rc`], peaks
/// folded per window).
fn fold_cycle_temps(windows: &[CycleWindow], layer_alphas: &[f64], depth: usize, t_cur: &mut [f64], peaks: &mut [f64]) {
    for win in windows {
        for (r, t) in t_cur.iter_mut().enumerate() {
            *t += (win.stables[r] - *t) * layer_alphas[r % depth];
            peaks[r] = peaks[r].max(*t);
        }
    }
}

/// Replays one recorded window's accounting (everything except time and
/// temperatures, which the callers handle).
fn replay_cycle_window(st: &mut CellState, win: &CycleWindow, step: f64, shares_positive: &[bool]) {
    if win.progressing {
        st.total_instructions += win.instr;
        st.total_bytes += win.bytes;
        st.total_misses += win.misses;
        st.migrated_bytes += win.migrated;
        for (core, &positive) in shares_positive.iter().enumerate() {
            if positive {
                st.batch.retire(core, win.retires[core]);
            }
        }
    }
    st.energy.add(win.mem_w, win.cpu_w, step);
    *st.residency.entry(win.mode_key).or_insert(0.0) += step;
    for (channel, throttled_s) in st.channel_throttle_s.iter_mut().enumerate() {
        if win.throttled[channel] {
            *throttled_s += step;
        }
    }
    st.ambient_sum += win.ambient_c;
    st.ambient_samples += 1;
}

/// Replays the cell's remaining windows whole limit cycles at a time and
/// finalizes it.
///
/// The verified recording guarantees every future cycle re-decides the
/// recorded plans, so the trajectory is periodic forever. Completion events
/// are resolved cycle-by-cycle the way [`fast_forward`] resolves them
/// window-by-window: whole cycles in which no job copy can finish are
/// bulk-accounted (`amount × cycles` per recorded window — pure
/// accumulation, order-free), and the cycle containing a completion is
/// replayed literally window-by-window so the round-robin refill
/// interleaves exactly as stepped. Simulated time advances by the literal
/// repeated additions throughout (bit-identical window count), and the
/// per-core retire amounts are the recorded exact integers, so completions
/// land on the very windows the stepped run would step.
///
/// Temperatures across a bulk span: the first and last cycles are folded
/// literally (per-(phase, row) trajectories are monotone across cycles, so
/// those two bound every intermediate peak) and the middle collapses to the
/// closed form `t ← t* + (t − t*)·a^(cycles − 2)` per layer.
fn fast_forward_periodic(
    lane: &Lane,
    j: usize,
    st: &mut CellState,
    engine: &SimEngine<'_>,
    jump: CycleJump,
) -> (MemSpotResult, CellRunStats) {
    let started = std::time::Instant::now();
    let cfg = engine.config;
    let cores = engine.cpu.cores;
    let step = st.step_s;
    let max = cfg.max_sim_time_s;
    let rec = st.cycle.recording.take().expect("verified recording present");
    let k = rec.period;
    let rows = lane.rows;
    let depth = lane.depth;

    let shares_positive: Vec<bool> =
        (0..cores).map(|core| st.full_shares.get(core).copied().unwrap_or(0.0) > 0.0).collect();
    // Whole-cycle per-core retire totals (job-independent).
    let mut cycle_retires = vec![0u64; cores];
    for win in &rec.windows {
        if win.progressing {
            for (core, total) in cycle_retires.iter_mut().enumerate() {
                *total += win.retires[core];
            }
        }
    }
    let any_progress = rec.windows.iter().any(|w| w.progressing);

    let mut t_cur: Vec<f64> = (0..rows).map(|r| lane.temps[r * lane.stride + j]).collect();
    let mut peaks: Vec<f64> = (0..rows).map(|r| lane.peaks[r * lane.stride + j]).collect();
    let mut w_total: u64 = 0;
    let mut cycles_total: u64 = 0;

    while !st.batch.is_complete() && st.time_s < max {
        // Whole cycles until the earliest possible job-copy completion.
        let target: Option<u64> = if any_progress {
            (0..cores)
                .filter(|&core| cycle_retires[core] > 0)
                .filter_map(|core| {
                    st.batch.slot(core).map(|s| s.remaining_instructions.div_ceil(cycle_retires[core]).max(1))
                })
                .min()
        } else {
            None
        };
        let bulk: u64 = match target {
            Some(t) => t - 1,
            None => u64::MAX,
        };
        // Advance the completion-free span, literal time additions.
        let mut cycles: u64 = 0;
        let mut partial: usize = 0;
        'bulk: while cycles < bulk {
            for w in 0..k {
                if st.time_s >= max {
                    partial = w;
                    break 'bulk;
                }
                st.time_s += step;
            }
            cycles += 1;
        }
        w_total += cycles * k as u64 + partial as u64;
        cycles_total += cycles;
        if cycles > 0 {
            let cf = cycles as f64;
            for win in &rec.windows {
                if win.progressing {
                    st.total_instructions += win.instr * cf;
                    st.total_bytes += win.bytes * cf;
                    st.total_misses += win.misses * cf;
                    st.migrated_bytes += win.migrated * cf;
                }
                st.energy.add(win.mem_w, win.cpu_w, step * cf);
                *st.residency.entry(win.mode_key).or_insert(0.0) += step * cf;
                for (channel, throttled_s) in st.channel_throttle_s.iter_mut().enumerate() {
                    if win.throttled[channel] {
                        *throttled_s += step * cf;
                    }
                }
                st.ambient_sum += win.ambient_c * cf;
                st.ambient_samples += cycles;
            }
            if any_progress {
                for (core, &positive) in shares_positive.iter().enumerate() {
                    if positive && cycle_retires[core] > 0 {
                        st.batch.retire(core, cycle_retires[core] * cycles);
                    }
                }
            }
            fold_cycle_temps(&rec.windows, &lane.layer_alphas, depth, &mut t_cur, &mut peaks);
            if cycles >= 2 {
                if cycles > 2 {
                    for (r, t) in t_cur.iter_mut().enumerate() {
                        let a = jump.layer_a[r % depth];
                        let decay = ((cycles - 2) as f64 * a.ln()).exp();
                        *t = jump.fixed[r] + (*t - jump.fixed[r]) * decay;
                    }
                }
                fold_cycle_temps(&rec.windows, &lane.layer_alphas, depth, &mut t_cur, &mut peaks);
            }
        }
        if partial > 0 {
            // Time capped mid-cycle: the executed prefix already advanced
            // the clock, replay its accounting and temperatures and stop.
            for win in &rec.windows[..partial] {
                replay_cycle_window(st, win, step, &shares_positive);
            }
            fold_cycle_temps(&rec.windows[..partial], &lane.layer_alphas, depth, &mut t_cur, &mut peaks);
            break;
        }
        if st.time_s >= max {
            break;
        }
        // The completion cycle: replayed literally window-by-window with
        // the stepped loop's checks at each window head.
        let mut done = 0;
        for win in &rec.windows {
            if st.batch.is_complete() || st.time_s >= max {
                break;
            }
            replay_cycle_window(st, win, step, &shares_positive);
            fold_cycle_temps(std::slice::from_ref(win), &lane.layer_alphas, depth, &mut t_cur, &mut peaks);
            st.time_s += step;
            w_total += 1;
            done += 1;
        }
        if done == k {
            cycles_total += 1;
        }
    }

    st.scene.set_layer_temps(&t_cur);
    st.scene.set_layer_peaks(&peaks);
    let (amb_pk, dram_pk) = st.scene.peak_temps_c();
    st.max_amb = st.max_amb.max(amb_pk);
    st.max_dram = st.max_dram.max(dram_pk);
    st.stats.fast_forwarded_windows = w_total;
    st.stats.periodic_cycles = cycles_total;
    st.stats.replay_ns += started.elapsed().as_nanos() as u64;
    finalize(st, engine)
}

/// A proven per-row temperature confinement band for the envelope replay,
/// plus how to convert replayed windows into pseudo-cycles for
/// [`CellRunStats::envelope_cycles`].
#[derive(Debug)]
struct EnvBand {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// The detected orbit period at engagement (slipping orbits); `1` for
    /// frozen-approach engagements.
    period: u64,
    /// Whether the engagement came from the slipping-orbit trigger (a
    /// failed cycle verification on a confined trajectory).
    slipping: bool,
}

/// Everything the envelope burst needs per distinct actuation plan, cached
/// once so the per-window replay never re-derives characterization points,
/// window powers or accounting rates on a plan flip — the dominant
/// per-window cost of a slipping orbit stepped literally.
#[derive(Debug)]
struct EnvPlanEntry {
    plan: ActuationPlan,
    mode: RunningMode,
    mode_key: ModeKey,
    point: Arc<CharPoint>,
    progressing: bool,
    window: WindowPower,
    plan_stats: PlanTrafficStats,
    /// Per-row stable-temperature terms: the RC stable of row `r` is
    /// `ambient + stab_a[r]` (plus `stab_b[r]` on identity-split stacks),
    /// evaluated in exactly [`lane_rc`]'s float-op order so the private
    /// sweep carries the lane's bits.
    stab_a: Vec<f64>,
    stab_b: Vec<f64>,
    /// Per-window accounted amounts at the full step and at the overheaded
    /// (plan-change) step — the literal expressions evaluated once.
    instr: f64,
    bytes: f64,
    misses: f64,
    migrated: f64,
    instr_oh: f64,
    bytes_oh: f64,
    misses_oh: f64,
    migrated_oh: f64,
    retires: Vec<u64>,
    retires_oh: Vec<u64>,
    throttled: Vec<bool>,
    /// Residency seconds accumulated while this entry's plan was active,
    /// flushed into the cell's residency map when the burst exits (one
    /// reassociation per entry instead of one map probe per window).
    residency_s: f64,
}

/// Builds the cached per-plan entry through the very code path
/// [`member_pre`] runs on a plan change, so every cached value carries the
/// bits the literal window loop would have computed. (The scene is only
/// consulted for geometry by [`SimEngine::window_power`], never for
/// temperatures, so the burst's stale scene temperatures cannot leak in.)
fn env_build_entry(st: &mut CellState, engine: &SimEngine<'_>, plan: ActuationPlan, depth: usize) -> EnvPlanEntry {
    let cfg = engine.config;
    let cores = engine.cpu.cores;
    let mode = plan.mode;
    let mode_key = ModeKey::from_mode(&mode);
    let point = st.table.point(&mode);
    let progressing = mode.makes_progress() && point.instr_rate_total > 0.0;
    let (plan_stats, window) = if plan.is_scalar() {
        (
            PlanTrafficStats::identity(),
            engine.window_power(&st.scene, &st.idle, &point, &point.dimm_traffic, &mode, progressing),
        )
    } else {
        let stats = plan.apply_traffic_into(
            &point.dimm_traffic,
            engine.mem.logical_channels,
            engine.mem.dimms_per_channel,
            &mut st.plan_traffic,
        );
        (stats, engine.window_power(&st.scene, &st.idle, &point, &st.plan_traffic, &mode, progressing))
    };
    let topology = st.scene.topology();
    let rows = window.positions.len() * depth;
    let mut stab_a = vec![0.0; rows];
    let mut stab_b = vec![0.0; rows];
    if topology.is_identity_split() {
        for (pos, p) in window.positions.iter().enumerate() {
            for l in 0..depth {
                let psi = topology.psi_row(l);
                stab_a[pos * depth + l] = p.amb_watts * psi[0];
                stab_b[pos * depth + l] = p.dram_watts * psi[1];
            }
        }
    } else {
        let mut watts = vec![0.0; depth];
        for (pos, p) in window.positions.iter().enumerate() {
            topology.split_watts_into(p.amb_watts, p.dram_watts, &mut watts);
            for l in 0..depth {
                stab_a[pos * depth + l] = topology.psi_superpose(&watts, l);
            }
        }
    }
    let mut amounts = [(0.0, 0.0, 0.0, 0.0, vec![0u64; cores]), (0.0, 0.0, 0.0, 0.0, vec![0u64; cores])];
    if progressing {
        for (slot, overhead) in amounts.iter_mut().zip([0.0, cfg.dtm_overhead_s]) {
            let effective_s = (st.step_s - overhead).max(0.0);
            let instr = point.instr_rate_total * plan_stats.service_scale * effective_s;
            slot.0 = instr;
            slot.1 = point.total_gbps() * plan_stats.service_scale * 1e9 * effective_s;
            slot.2 = point.l2_misses_per_instr * instr;
            slot.3 = plan_stats.migrated_gbps * 1e9 * effective_s;
            for (core, amount) in slot.4.iter_mut().enumerate() {
                let share = st.full_shares.get(core).copied().unwrap_or(0.0);
                if share > 0.0 {
                    *amount = (instr * share) as u64;
                }
            }
        }
    }
    let [(instr, bytes, misses, migrated, retires), (instr_oh, bytes_oh, misses_oh, migrated_oh, retires_oh)] = amounts;
    let throttled = (0..st.channel_throttle_s.len()).map(|ch| plan.throttles_channel(ch)).collect();
    EnvPlanEntry {
        plan,
        mode,
        mode_key,
        point,
        progressing,
        window,
        plan_stats,
        stab_a,
        stab_b,
        instr,
        bytes,
        misses,
        migrated,
        instr_oh,
        bytes_oh,
        misses_oh,
        migrated_oh,
        retires,
        retires_oh,
        throttled,
        residency_s: 0.0,
    }
}

/// Slipping-orbit band: the cycle detector's decision history (plus the
/// cell's current temperatures) spans the orbit; if every row's raw span
/// fits inside [`BatchOptions::envelope_tolerance`] the orbit is confined
/// and the band — inflated by half a span per side to absorb the slow slip
/// — becomes the burst's audit certificate.
///
/// A *wide-swing* orbit (span beyond the tolerance) is still admitted when
/// its recorded decision sequence is exactly periodic and the policy can
/// certify decision regions ([`DtmPolicy::plan_decided_by_region`]): such a
/// sliding-mode orbit is replayed under per-phase contraction certificates
/// — every in-burst segment jump carries its own λ-powered proof — so the
/// band only has to confine the literal audit between jumps, not bound the
/// replay error. Refuses on NaN anywhere.
// The negated comparison is load-bearing: `!(x <= tol)` refuses on NaN.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn env_band_slipping(lane: &Lane, j: usize, st: &CellState, options: &BatchOptions, period: usize) -> Option<EnvBand> {
    if !lane.layer_alphas.iter().all(|&a| a > 0.0 && a <= 1.0) {
        return None;
    }
    let rows = lane.rows;
    let h = &st.cycle.history;
    // At least two orbit periods of snapshots, so the band has seen every
    // phase of the orbit at least twice.
    if period < 2 || h.len() < 2 * period {
        return None;
    }
    let mut lo = vec![f64::INFINITY; rows];
    let mut hi = vec![f64::NEG_INFINITY; rows];
    for snap in h.iter() {
        if snap.temps.len() != rows {
            return None;
        }
        for (r, &t) in snap.temps.iter().enumerate() {
            lo[r] = lo[r].min(t);
            hi[r] = hi[r].max(t);
        }
    }
    for (r, (lo, hi)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
        let t = lane.temps[r * lane.stride + j];
        *lo = lo.min(t);
        *hi = hi.max(t);
    }
    let mut width: f64 = 0.0;
    for (lo, hi) in lo.iter().zip(&hi) {
        width = width.max(hi - lo);
    }
    if !width.is_finite() {
        return None;
    }
    if !(width <= options.envelope_tolerance) {
        // Wide-swing sliding-mode admission: the heuristic confinement test
        // failed, but a policy whose decisions can be keyed
        // ([`DtmPolicy::decision_key`]) is replayed decision for decision
        // by the burst's exact decision replay — the band is only an audit
        // backstop, never a bound on the replay error — and a policy that
        // certifies decision regions ([`DtmPolicy::plan_decided_by_region`])
        // over an exactly periodic recorded sequence gets the same
        // guarantee from per-segment contraction certificates.
        let keyed = st.policy.decision_key(f64::NAN, f64::NAN).is_some();
        let periodic = h.iter().enumerate().all(|(i, snap)| snap.plan == h[i % period].plan);
        if !keyed && (!periodic || st.policy.plan_decided_by_region(&st.observation, 0.0, 0.0).is_none()) {
            return None;
        }
    }
    for (lo, hi) in lo.iter_mut().zip(hi.iter_mut()) {
        let margin = 0.5 * (*hi - *lo) + 1e-6;
        *lo -= margin;
        *hi += margin;
    }
    Some(EnvBand { lo, hi, period: period as u64, slipping: true })
}

/// Frozen-approach band: under a long-frozen plan each row slides
/// monotonically from its current temperature toward its RC fixed point, so
/// the directed interval between the two (plus a small margin for plan
/// flips near the end) confines the whole approach. Width is deliberately
/// *not* gated by the tolerance — every segment jump carries its own
/// [`DtmPolicy::is_steady_band`] certificate over the exact traversed
/// range, and the audit catches real escapes.
fn env_band_frozen(lane: &Lane, j: usize, st: &mut CellState) -> Option<EnvBand> {
    if !lane.layer_alphas.iter().all(|&a| a > 0.0 && a <= 1.0) {
        return None;
    }
    st.scene.fixed_point_into(&st.window.positions, st.window.v_ipc, &mut st.fp);
    let rows = lane.rows;
    let mut lo = vec![0.0; rows];
    let mut hi = vec![0.0; rows];
    for (r, (lo, hi)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
        let t = lane.temps[r * lane.stride + j];
        let f = st.fp[r];
        if !(t.is_finite() && f.is_finite()) {
            return None;
        }
        let (a, b) = if t <= f { (t, f) } else { (f, t) };
        let margin = 0.05 * (b - a) + 1e-6;
        *lo = a - margin;
        *hi = b + margin;
    }
    Some(EnvBand { lo, hi, period: 1, slipping: false })
}

/// Exact range of the discrete two-exponential row response
/// `f(k) = a·λ^k + b·λ_a^k` over `k ∈ {0, …, n}` — a row relaxing toward
/// its stable while the shared ambient relaxes toward its own. Returns
/// `(f(n), min, max)`. The response has at most one interior stationary
/// point, so the discrete extremes sit at the endpoints or at the two
/// integers bracketing it; `f(0)` is evaluated directly (never through
/// `0 · ln λ`), so a fully-relaxed row cannot produce NaN.
fn env_row_range(a: f64, b: f64, lambda: f64, lambda_a: f64, nf: f64) -> (f64, f64, f64) {
    let f = |k: f64| {
        if k <= 0.0 {
            a + b
        } else {
            a * (k * lambda.ln()).exp() + b * (k * lambda_a.ln()).exp()
        }
    };
    let f0 = a + b;
    let fe = f(nf);
    let (mut lo, mut hi) = if f0 <= fe { (f0, fe) } else { (fe, f0) };
    if a != 0.0 && b != 0.0 && (a > 0.0) != (b > 0.0) && lambda > 0.0 && lambda_a > 0.0 {
        let ratio = -(b * lambda_a.ln()) / (a * lambda.ln());
        if ratio > 0.0 {
            let kstar = ratio.ln() / (lambda.ln() - lambda_a.ln());
            if kstar > 0.0 && kstar < nf {
                for k in [kstar.floor().max(1.0), kstar.ceil().min(nf)] {
                    let v = f(k);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
    }
    (fe, lo, hi)
}

/// Flushes the burst's accumulators, syncs the scene and finalizes the
/// departed cell.
#[allow(clippy::too_many_arguments)]
fn env_finish(
    st: &mut CellState,
    engine: &SimEngine<'_>,
    entries: &[EnvPlanEntry],
    rows_t: &[f64],
    peaks: &[f64],
    env_windows: u64,
    pseudo_cycles: u64,
    started: std::time::Instant,
) -> (MemSpotResult, CellRunStats) {
    st.scene.set_layer_temps(rows_t);
    st.scene.set_layer_peaks(peaks);
    for e in entries {
        if e.residency_s > 0.0 {
            *st.residency.entry(e.mode_key).or_insert(0.0) += e.residency_s;
        }
    }
    st.stats.fast_forwarded_windows += env_windows;
    st.stats.envelope_cycles += pseudo_cycles;
    st.stats.replay_ns += started.elapsed().as_nanos() as u64;
    finalize(st, engine)
}

/// The envelope replay burst: takes a cell whose trajectory is confined to
/// `band` out of the lane's lockstep and replays its windows privately —
/// literal decisions, bit-exact RC, literal per-window accounting — with
/// two analytic exits: closed-form segment jumps over frozen-plan spans,
/// and exact decision replay over chattering spans whose plans never hold
/// still. Every window's sweep is audited against the band; a violation
/// hands the cell back to the lane (`None`), with the lane column, plan
/// state and detector bookkeeping restored so literal stepping continues
/// seamlessly. `Some(result)` means the cell ran to completion inside the
/// burst.
///
/// Relative to literal stepping the burst skips only: the cycle detector,
/// plan-flip window-power rebuilds (cached per plan entry), per-window
/// residency map probes (per-entry accumulator, flushed on exit) and — for
/// licensed jumps — the skipped windows' decisions, ambient steps and RC
/// sweeps. Frozen-jump licensing ([`DtmPolicy::is_steady_band`] for a
/// single frozen plan, [`DtmPolicy::plan_decided_by_region`] for a whole
/// invariant plan sequence, both over the exact traversed temperature
/// rectangle — each row's two-exponential response to the frozen plan and
/// the relaxing ambient, extremes included — plus a completion-safe retire
/// cap) and the decision replay's certificates (bitwise-literal binding
/// recurrences, per-entry forcing-gap dominance, plan-run-length
/// occupancy accounting) pin every reported quantity within the envelope
/// tier's 1e-9 relative claim; window counts, simulated time and job
/// completion windows stay exact (literal repeated additions and exact
/// integer retires throughout). An already-settled ambient (within
/// [`AMBIENT_FF_EPS_C`]) degenerates to the frozen single-exponential
/// form.
// Negated comparisons refuse on NaN throughout.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn envelope_burst(
    lane: &mut Lane,
    j: usize,
    st: &mut CellState,
    engine: &SimEngine<'_>,
    band: EnvBand,
) -> Option<(MemSpotResult, CellRunStats)> {
    let started = std::time::Instant::now();
    let cfg = engine.config;
    let cores = engine.cpu.cores;
    let step = st.step_s;
    let dt = cfg.dtm_interval_s;
    let max = cfg.max_sim_time_s;
    let rows = lane.rows;
    let depth = lane.depth;
    let identity_split = lane.identity_split;
    let ambient_alpha = lane.ambient_alpha;
    let has_buffer = lane.has_buffer;
    let kinds: Vec<DeviceLayerKind> = st.scene.topology().layers().iter().map(|l| l.kind).collect();
    let shares_pos: Vec<bool> = (0..cores).map(|c| st.full_shares.get(c).copied().unwrap_or(0.0) > 0.0).collect();

    // Private column state (written back on fallback, synced on finalize).
    let mut rows_t: Vec<f64> = (0..rows).map(|r| lane.temps[r * lane.stride + j]).collect();
    let mut peaks: Vec<f64> = (0..rows).map(|r| lane.peaks[r * lane.stride + j]).collect();
    let mut cur_max_buf = lane.max_buffer[j];
    let mut cur_max_dram = lane.max_dram[j];

    let first = env_build_entry(st, engine, st.plan.clone(), depth);
    let mut entries: Vec<EnvPlanEntry> = vec![first];
    let mut cur: usize = 0;

    // Per-row closed-form coefficients of the licensed segment jump
    // (stable, λ_r-coefficient, λ_a-coefficient), filled by the licensing
    // pass and consumed by the apply pass.
    let mut jump_s: Vec<f64> = vec![0.0; rows];
    let mut jump_a: Vec<f64> = vec![0.0; rows];
    let mut jump_k: Vec<f64> = vec![0.0; rows];

    let mut env_windows: u64 = 0;
    let mut jumps: u64 = 0;
    let mut violation = false;
    // In-burst frozen-plan run length and the next run length at which a
    // segment jump is probed (doubles on a refused probe so hopeless cells
    // never pay the license check per window; resets on plan change).
    let mut run: u64 = 0;
    let mut next_attempt: u64 = ENV_JUMP_MIN;
    // Whether the policy can attest decision regions. When it can, frozen
    // segment jumps are licensed *exclusively* through the per-axis region
    // certificate: it proves the unique decision over the traced range is
    // the frozen plan itself. The legacy shared-arm band query only proves
    // the decision is *unchanging* over the range — if the trajectory
    // crossed a boundary during the very window that scheduled the probe,
    // the whole traced range sits on the far side, the level is perfectly
    // unique, and the jump would freeze the stale plan across a flip the
    // literal path takes immediately.
    let supports_region = st.policy.plan_decided_by_region(&st.observation, 0.0, 0.0).is_some();
    // Run length at which a fresh frozen run arms its first probe. Starts
    // at [`ENV_JUMP_MIN`]; drops to 2 once a probe comes back
    // certificate-limited — the signature of sliding-mode chatter, where
    // every run ends at the same decision boundary and waiting
    // [`ENV_JUMP_MIN`] literal windows per half-cycle forfeits most of it.
    let mut arm: u64 = ENV_JUMP_MIN;

    // Exact decision replay: sliding-mode chatter defeats the frozen-run
    // probe above (`run` resets on every plan flip, and an orbit whose
    // duty ratio slips never repeats an exact plan period), so when a
    // probe threshold arrives with the frozen run still short, the burst
    // replays decisions *exactly* instead of certifying them away: a
    // policy whose decisions are keyed by the device maxima
    // ([`DtmPolicy::decision_key`]) is re-evaluated per virtual window
    // from bitwise-literal binding-row and ambient scalars, while every
    // other row is reconstructed at segment close from the plan-occupancy
    // weights. `chatter_next` schedules the attempts (in burst windows).
    let mut chatter_next: u64 = 2 * ENV_JUMP_MIN;
    let replay_keys = st.policy.decision_key(f64::NAN, f64::NAN).is_some();
    // Dominance-certificate reuse across consecutive replay segments: the
    // forcing-gap half of the audit (per row, against the binding rows it
    // was derived for) depends only on the cached plan entries, not on the
    // segment's start state, so consecutive segments re-use it and re-check
    // only the O(rows) start-state gaps. `(entry_count, b_buf, b_dram)`
    // keys the cache; per row it stores (same-layer forcing gap holds,
    // forcings bitwise-equal to binding, max forcing over entries).
    let mut replay_audit_key = (usize::MAX, usize::MAX, usize::MAX);
    let mut replay_audit: Vec<(bool, bool, f64)> = Vec::new();

    loop {
        // B: the window's pre-step — the envelope tier requires
        // `step == dtm_interval` bitwise, so every window is exactly one
        // DTM decision and the stepped run's decision-due test is always
        // true here.
        st.observation.max_amb_c = if has_buffer { cur_max_buf } else { f64::NAN };
        st.observation.max_dram_c = cur_max_dram;
        st.observation.ambient_c = st.scene.ambient_c();
        let new_plan = st.policy.decide(&st.observation, dt);
        let overheaded = new_plan != entries[cur].plan;
        if overheaded {
            st.plan_streak = 0;
            run = 0;
            next_attempt = arm;
            cur = match entries.iter().position(|e| e.plan == new_plan) {
                Some(i) => i,
                None => {
                    let e = env_build_entry(st, engine, new_plan, depth);
                    entries.push(e);
                    entries.len() - 1
                }
            };
        } else {
            st.plan_streak = st.plan_streak.saturating_add(1);
            run += 1;
        }
        st.next_dtm_s += dt;
        let e = &entries[cur];
        if e.progressing {
            let (instr, bytes, misses, migrated, retires) = if overheaded {
                (e.instr_oh, e.bytes_oh, e.misses_oh, e.migrated_oh, &e.retires_oh)
            } else {
                (e.instr, e.bytes, e.misses, e.migrated, &e.retires)
            };
            st.total_instructions += instr;
            st.total_bytes += bytes;
            st.total_misses += misses;
            st.migrated_bytes += migrated;
            for core in 0..cores {
                if shares_pos[core] {
                    st.batch.retire(core, retires[core]);
                }
            }
        }
        let amb = st.scene.step_ambient(entries[cur].window.v_ipc, ambient_alpha);

        // C: a band violation in the previous window's sweep hands the
        // cell back to the lane. The invariant at this point: the current
        // window's pre-step is done, its RC sweep is not — exactly what
        // returning `true` from [`member_pre`] promises, so the lane's RC
        // and post-step pick the window up seamlessly.
        if violation {
            for r in 0..rows {
                lane.temps[r * lane.stride + j] = rows_t[r];
                lane.peaks[r * lane.stride + j] = peaks[r];
            }
            lane.max_buffer[j] = cur_max_buf;
            lane.max_dram[j] = cur_max_dram;
            lane.amb[j] = amb;
            let e = &entries[cur];
            st.plan = e.plan.clone();
            st.mode = e.mode;
            st.mode_key = e.mode_key;
            st.point = Arc::clone(&e.point);
            st.progressing = e.progressing;
            st.plan_stats = e.plan_stats;
            st.window = e.window.clone();
            st.overhead_s = if overheaded { cfg.dtm_overhead_s } else { 0.0 };
            lane.write_power_column(j, &st.window.positions, st.scene.topology());
            // The detector's history went stale while the burst ran.
            st.cycle.history.clear();
            st.cycle.recording = None;
            st.env_backoff = CYCLE_RETRY_BACKOFF << st.env_fails.min(CYCLE_BACKOFF_DOUBLINGS);
            st.env_fails = st.env_fails.saturating_add(1);
            for e in &entries {
                if e.residency_s > 0.0 {
                    *st.residency.entry(e.mode_key).or_insert(0.0) += e.residency_s;
                }
            }
            st.stats.fast_forwarded_windows += env_windows;
            st.stats.envelope_cycles += jumps + if band.slipping { env_windows / band.period } else { 0 };
            st.stats.envelope_fallbacks += 1;
            st.stats.replay_ns += started.elapsed().as_nanos() as u64;
            return None;
        }

        // D: the private RC sweep ([`lane_rc`]'s float ops on one column),
        // the band audit and the window's post-step bookkeeping.
        let e = &entries[cur];
        cur_max_buf = f64::NEG_INFINITY;
        cur_max_dram = f64::NEG_INFINITY;
        let mut in_band = true;
        for r in 0..rows {
            let l = r % depth;
            let s = if identity_split { (amb + e.stab_a[r]) + e.stab_b[r] } else { amb + e.stab_a[r] };
            let t = &mut rows_t[r];
            *t += (s - *t) * lane.layer_alphas[l];
            peaks[r] = peaks[r].max(*t);
            match kinds[l] {
                DeviceLayerKind::Buffer => cur_max_buf = cur_max_buf.max(*t),
                DeviceLayerKind::Dram => cur_max_dram = cur_max_dram.max(*t),
            }
            in_band &= band.lo[r] <= *t && *t <= band.hi[r];
        }
        violation = !in_band;
        st.energy.add(e.window.mem_w, e.window.cpu_w, step);
        st.max_amb = st.max_amb.max(if has_buffer { cur_max_buf } else { f64::NAN });
        st.max_dram = st.max_dram.max(cur_max_dram);
        st.ambient_sum += st.scene.ambient_c();
        st.ambient_samples += 1;
        for (channel, &thr) in e.throttled.iter().enumerate() {
            if thr {
                st.channel_throttle_s[channel] += step;
            }
        }
        entries[cur].residency_s += step;
        st.time_s += step;
        env_windows += 1;

        // A: the stepped loop's window-head condition.
        if st.batch.is_complete() || st.time_s >= max {
            let pseudo = jumps + if band.slipping { env_windows / band.period } else { 0 };
            return Some(env_finish(st, engine, &entries, &rows_t, &peaks, env_windows, pseudo, started));
        }

        // Segment jump: a frozen-plan run long enough to probe is advanced
        // in closed form when (1) the whole traversed temperature range —
        // the exact two-exponential response of each row to a frozen plan
        // and a relaxing ambient — stays inside the band, and (2) the
        // policy certifies every skipped decision over that exact range
        // ([`DtmPolicy::is_steady_band`]), so each skipped decision
        // provably re-returns the frozen plan. The ambient node itself is
        // advanced in closed form too, so warmup approaches are jumped
        // long before the ambient settles.
        let chatter_probe = env_windows >= chatter_next;
        if violation || (run < next_attempt && !chatter_probe) {
            continue;
        }
        // Exact decision replay: sliding-mode chatter defeats the frozen
        // probe (the run resets on every plan flip, and an orbit whose
        // duty ratio slips never repeats an exact plan period), so a
        // policy whose decisions are keyed by the device maxima
        // ([`DtmPolicy::decision_key`]) is advanced by re-evaluating every
        // decision instead of certifying it away. Three scalars carry the
        // literal bits every decision reads — the binding (hottest) row of
        // each device kind and the shared ambient, iterated with exactly
        // the literal recurrences — while a dominance certificate proves
        // every other row stays strictly below its binding row for the
        // whole segment: each row is a convex combination of its start
        // temperature and its per-window forcings, so a margin on the
        // start gap and on every per-entry forcing gap bounds the entire
        // trajectory without tracing it. Accounting collapses to
        // plan-occupancy closed forms (per-entry window counts times the
        // cached per-window amounts), and the dominated rows are
        // reconstructed at segment close from the run log: within one plan
        // run the ambient is a single exponential, so each row follows the
        // exact two-exponential response `t = S_r + a·λ_l^k + c·λ_a^k` and
        // a run costs O(1) per row — endpoint from the λ-power ladders,
        // in-run extremes via [`env_row_range`] only when the two modes
        // pull in opposite directions.
        if run < next_attempt {
            if !replay_keys {
                // The policy cannot key decisions (PID state, spatial
                // observation): no replay, ever — stop probing.
                chatter_next = u64::MAX;
                continue;
            }
            let vt = std::time::Instant::now();
            // Key → entry table over the plans materialized so far; an
            // unseen key suspends the replay at the window that needs it
            // so the literal loop can build its entry.
            let nent = entries.len();
            if nent > REPLAY_KEYS {
                // A keyed policy materializes at most one plan per key;
                // more entries than keys means the contract is broken.
                chatter_next = u64::MAX;
                continue;
            }
            let mut key_entry = [usize::MAX; REPLAY_KEYS];
            for (k, ke) in key_entry.iter_mut().enumerate() {
                if let Some(p) = st.policy.plan_for_key(k as u8) {
                    if let Some(i) = entries.iter().position(|e| e.plan == p) {
                        *ke = i;
                    }
                }
            }
            // Binding (hottest) rows per device kind.
            let mut b_buf = usize::MAX;
            let mut b_dram = usize::MAX;
            for r in 0..rows {
                match kinds[r % depth] {
                    DeviceLayerKind::Buffer => {
                        if b_buf == usize::MAX || rows_t[r] > rows_t[b_buf] {
                            b_buf = r;
                        }
                    }
                    DeviceLayerKind::Dram => {
                        if b_dram == usize::MAX || rows_t[r] > rows_t[b_dram] {
                            b_dram = r;
                        }
                    }
                }
            }
            if b_dram == usize::MAX || !rows_t.iter().all(|t| t.is_finite()) {
                chatter_next = u64::MAX;
                continue;
            }
            let off = |e: &EnvPlanEntry, r: usize| -> f64 {
                if identity_split {
                    e.stab_a[r] + e.stab_b[r]
                } else {
                    e.stab_a[r]
                }
            };
            // Forcing-gap half of the dominance certificate, reused across
            // consecutive segments (it depends only on the cached entries
            // and the binding rows, never on the segment's start state).
            if replay_audit_key != (nent, b_buf, b_dram) {
                replay_audit.clear();
                for r in 0..rows {
                    let b = match kinds[r % depth] {
                        DeviceLayerKind::Buffer => b_buf,
                        DeviceLayerKind::Dram => b_dram,
                    };
                    let same_layer = b != usize::MAX && r % depth == b % depth;
                    let gap_ok = same_layer && entries.iter().all(|e| off(e, r) - off(e, b) <= -REPLAY_GAP_C);
                    let twin_ok = same_layer
                        && entries
                            .iter()
                            .all(|e| e.stab_a[r] == e.stab_a[b] && (!identity_split || e.stab_b[r] == e.stab_b[b]));
                    let hi_off = entries.iter().map(|e| off(e, r)).fold(f64::NEG_INFINITY, f64::max);
                    replay_audit.push((gap_ok, twin_ok, hi_off));
                }
                replay_audit_key = (nent, b_buf, b_dram);
            }
            // Segment ambient range for the cross-layer dominance bound:
            // the ambient is itself a convex combination of its start
            // value and the per-entry stable targets.
            let amb0 = st.scene.ambient_c();
            let stab_amb: Vec<f64> = {
                let ap = st.scene.ambient_params();
                entries.iter().map(|e| ap.stable_ambient_c(e.window.v_ipc)).collect()
            };
            let amb_min = stab_amb.iter().fold(amb0, |m, &s| m.min(s));
            let amb_max = stab_amb.iter().fold(amb0, |m, &s| m.max(s));
            // Start-state half of the certificate. Roles for the close
            // pass: 1 = binding, 2 = bitwise twin of its binding row
            // (equal state, forcing and band — stays bitwise equal, so the
            // binding scalar tracks it exactly), 0 = dominated, closed via
            // occupancy weights.
            let mut roles: Vec<u8> = vec![0; rows];
            roles[b_dram] = 1;
            if b_buf != usize::MAX {
                roles[b_buf] = 1;
            }
            let mut sound = true;
            for r in 0..rows {
                if roles[r] == 1 {
                    continue;
                }
                let b = match kinds[r % depth] {
                    DeviceLayerKind::Buffer => b_buf,
                    DeviceLayerKind::Dram => b_dram,
                };
                let (gap_ok, twin_ok, hi_off) = replay_audit[r];
                if twin_ok && rows_t[r] == rows_t[b] && band.lo[r] == band.lo[b] && band.hi[r] == band.hi[b] {
                    roles[r] = 2;
                } else if r % depth == b % depth {
                    sound &= gap_ok && rows_t[r] - rows_t[b] <= -REPLAY_GAP_C;
                } else {
                    let lo_off_b = entries.iter().map(|e| off(e, b)).fold(f64::INFINITY, f64::min);
                    let hi_r = rows_t[r].max(amb_max + hi_off);
                    let lo_b = rows_t[b].min(amb_min + lo_off_b);
                    sound &= hi_r <= lo_b - REPLAY_GAP_C;
                }
            }
            if !sound {
                st.stats.verify_ns += vt.elapsed().as_nanos() as u64;
                chatter_next = env_windows.saturating_mul(2).max(env_windows.saturating_add(ENV_JUMP_MIN));
                continue;
            }
            // Completion-safe cap: strictly fewer windows than the
            // earliest possible job-copy completion at the fastest cached
            // retire rate, so the bulk retires at segment close land
            // before any completion and `is_complete` flips exactly where
            // literal stepping puts it.
            let mut w_cap = u64::MAX;
            for (core, &shares) in shares_pos.iter().enumerate().take(cores) {
                if !shares {
                    continue;
                }
                let rate = entries
                    .iter()
                    .filter(|e| e.progressing)
                    .map(|e| e.retires[core].max(e.retires_oh[core]))
                    .max()
                    .unwrap_or(0);
                if rate == 0 {
                    continue;
                }
                if let Some(s) = st.batch.slot(core) {
                    w_cap = w_cap.min(s.remaining_instructions.div_ceil(rate).max(1) - 1);
                }
            }
            if w_cap == 0 {
                st.stats.verify_ns += vt.elapsed().as_nanos() as u64;
                chatter_next = env_windows.saturating_add(ENV_JUMP_MIN);
                continue;
            }
            // Per-layer and ambient λ-power ladders closing the logged
            // runs (every in-replay run is at most [`REPLAY_RUN_EXIT`]
            // long). The close pass needs the mode-splitting coefficient
            // `c = α_l·A·λ_a/(λ_a − λ_l)`; a degenerate lane whose layer
            // shares the ambient decay rate has no two-exponential split,
            // so the replay refuses it once and for all.
            let lambda_amb = 1.0 - ambient_alpha;
            if lane.layer_alphas.iter().any(|&al| (lambda_amb - (1.0 - al)).abs() < 1e-9) {
                st.stats.verify_ns += vt.elapsed().as_nanos() as u64;
                chatter_next = u64::MAX;
                continue;
            }
            let mut lam_tab: Vec<f64> = Vec::with_capacity(depth * (REPLAY_RUN_EXIT + 1));
            for l in 0..depth {
                let lambda = 1.0 - lane.layer_alphas[l];
                let mut p = 1.0;
                for _ in 0..=REPLAY_RUN_EXIT {
                    lam_tab.push(p);
                    p *= lambda;
                }
            }
            let mut laa_tab: Vec<f64> = Vec::with_capacity(REPLAY_RUN_EXIT + 1);
            {
                let mut p = 1.0;
                for _ in 0..=REPLAY_RUN_EXIT {
                    laa_tab.push(p);
                    p *= lambda_amb;
                }
            }
            // Binding-scalar constants: everything a virtual window reads.
            let a_dram = lane.layer_alphas[b_dram % depth];
            let sa_dram: Vec<f64> = entries.iter().map(|e| e.stab_a[b_dram]).collect();
            let sb_dram: Vec<f64> = entries.iter().map(|e| e.stab_b[b_dram]).collect();
            let (a_buf, sa_buf, sb_buf) = if b_buf != usize::MAX {
                (
                    lane.layer_alphas[b_buf % depth],
                    entries.iter().map(|e| e.stab_a[b_buf]).collect::<Vec<f64>>(),
                    entries.iter().map(|e| e.stab_b[b_buf]).collect::<Vec<f64>>(),
                )
            } else {
                (0.0, Vec::new(), Vec::new())
            };
            st.stats.verify_ns += vt.elapsed().as_nanos() as u64;
            // The run log: (entry, in-replay length, ambient at run entry)
            // per maximal constant-plan span — everything the close pass
            // needs to replay a dominated row run by run in closed form.
            let mut runs_log: Vec<(u32, u32, f64)> = Vec::new();
            let mut counts: Vec<u64> = vec![0; nent];
            let mut counts_oh: Vec<u64> = vec![0; nent];
            let mut amb_l = amb0;
            let mut time_l = st.time_s;
            let mut t_dram = cur_max_dram;
            let mut t_buf = if has_buffer { cur_max_buf } else { f64::NAN };
            let mut peak_dram = f64::NEG_INFINITY;
            let mut peak_buf = f64::NEG_INFINITY;
            let mut w: u64 = 0;
            let mut cur_l = cur;
            let mut run_l = run;
            let mut run_len: usize = 0;
            let mut flipped = false;
            let mut amb_sum = 0.0;
            let mut finished = false;
            let mut viol = false;
            let mut amb_run0 = amb0;
            // The replay loop: per virtual window, the literal decision
            // (from the binding maxima), the literal ambient step, the
            // literal binding-row sweeps with their band audit, and the
            // per-entry occupancy counts. A frozen run reaching
            // [`REPLAY_RUN_EXIT`] hands back to the closed-form probe —
            // a monotone approach is O(1) there, O(windows) here.
            loop {
                if run_l >= REPLAY_RUN_EXIT as u64 || w >= w_cap {
                    break;
                }
                let Some(key) = st.policy.decision_key(t_buf, t_dram) else {
                    break;
                };
                let ei = key_entry.get(key as usize).copied().unwrap_or(usize::MAX);
                if ei == usize::MAX {
                    break;
                }
                if ei != cur_l {
                    if run_len > 0 {
                        runs_log.push((cur_l as u32, run_len as u32, amb_run0));
                    }
                    amb_run0 = amb_l;
                    run_len = 1;
                    run_l = 0;
                    flipped = true;
                    cur_l = ei;
                    counts_oh[ei] += 1;
                } else {
                    run_len += 1;
                    run_l += 1;
                    counts[ei] += 1;
                }
                amb_l += (stab_amb[cur_l] - amb_l) * ambient_alpha;
                let s = if identity_split { (amb_l + sa_dram[cur_l]) + sb_dram[cur_l] } else { amb_l + sa_dram[cur_l] };
                t_dram += (s - t_dram) * a_dram;
                peak_dram = peak_dram.max(t_dram);
                let mut in_band = band.lo[b_dram] <= t_dram && t_dram <= band.hi[b_dram];
                if has_buffer {
                    let s =
                        if identity_split { (amb_l + sa_buf[cur_l]) + sb_buf[cur_l] } else { amb_l + sa_buf[cur_l] };
                    t_buf += (s - t_buf) * a_buf;
                    peak_buf = peak_buf.max(t_buf);
                    in_band &= band.lo[b_buf] <= t_buf && t_buf <= band.hi[b_buf];
                }
                amb_sum += amb_l;
                time_l += step;
                w += 1;
                viol = !in_band;
                finished = time_l >= max;
                if viol || finished {
                    break;
                }
            }
            if w == 0 {
                // Nothing replayed: a long frozen run belongs to the
                // closed-form probe; an unseen key needs one literal
                // window to materialize its entry.
                if run_l >= REPLAY_RUN_EXIT as u64 {
                    next_attempt = run;
                    chatter_next = env_windows.saturating_add(2 * ENV_JUMP_MIN);
                } else {
                    chatter_next = env_windows.saturating_add(1);
                }
                continue;
            }
            if run_len > 0 {
                runs_log.push((cur_l as u32, run_len as u32, amb_run0));
            }
            // Close the segment: exact binding/twin write-back, then each
            // dominated row replayed run by run in closed form — within
            // one run the ambient is a single exponential, so the row is
            // the exact two-exponential `t(k) = S_r + a·λ_l^k + c·λ_a^k`
            // with `c = α_l·A·λ_a/(λ_a − λ_l)` (A the ambient's offset
            // from its run target). Run endpoints come from the power
            // ladders; in-run extremes need [`env_row_range`] only when
            // the modes pull in opposite directions (rare — the ambient
            // and the row usually chase the same plan flip), so a run is
            // O(1) per row against O(len) literal windows. The close also
            // audits every reconstructed row against the band.
            // Per-run constants. The row endpoint map is affine with
            // shared coefficients per (run, layer) — `t' = t·λ_l^n +
            // base_{l} + off_r·(1 − λ_l^n)` — so a dominated row costs two
            // multiplies per run, and `ambx` (the run's highest possible
            // forcing ambient) pre-filters the in-run extremum search: any
            // in-run value is bounded by `max(t_start, ambx + off_r)`.
            // The dominated rows, scanned run-major with the rows in the
            // inner loop: each row's endpoint recurrence is a serial
            // dependency chain over tens of thousands of runs, so keeping
            // the rows innermost interleaves the chains (one independent
            // chain per row) instead of serializing on one. Rows are
            // grouped per layer so the affine coefficients are scalar
            // constants inside the inner loop. The in-run extremum search
            // stays out of the hot loop: an interior extreme needs the row
            // mode and the ambient mode pulling in opposite directions AND
            // a forcing ceiling (`ambx + off_r`, which bounds any in-run
            // value together with the running peak) above the recorded
            // peak — chatter runs chase the same plan flip, so the slow
            // path is cold.
            let mut lay_rows: Vec<Vec<usize>> = vec![Vec::new(); depth];
            for r in 0..rows {
                if roles[r] == 0 {
                    lay_rows[r % depth].push(r);
                }
            }
            for (l, rl) in lay_rows.iter().enumerate() {
                let n = rl.len();
                if n == 0 {
                    continue;
                }
                let lambda = 1.0 - lane.layer_alphas[l];
                let mut t: Vec<f64> = rl.iter().map(|&r| rows_t[r]).collect();
                let mut pk: Vec<f64> = rl.iter().map(|&r| peaks[r]).collect();
                let mut offs: Vec<f64> = vec![0.0; nent * n];
                for (e2, e) in entries.iter().enumerate() {
                    for (j, &r) in rl.iter().enumerate() {
                        offs[e2 * n + j] = off(e, r);
                    }
                }
                // Two run-level certificates keep per-row work minimal.
                // `pkm[e]` under-approximates `min_r (pk_r − off_er)`: when
                // a run's `ambx` sits below it, every in-run value of every
                // row (bounded by `max(t, ambx + off_r)` with the `t ≤ pk`
                // invariant) stays under the recorded peaks, so the run
                // needs only the endpoint map. `pkM[e]` over-approximates
                // `max_r (pk_r − off_er)`: when the run's ambient mode
                // falls (`c < 0`) and `pkM[e] < S_amb,e + c`, every row
                // starts below its two-exponential target with both modes
                // pulling the same way — no interior extreme exists and the
                // in-run max is the endpoint. `pk` only grows, so a stale
                // `pkm` is conservative, while `pkM` is refreshed whenever
                // a peak moved before it is trusted again.
                let mut pkm: Vec<f64> = vec![f64::NEG_INFINITY; nent];
                let mut pkx: Vec<f64> = vec![f64::INFINITY; nent];
                let refresh_pkm = |pkm: &mut Vec<f64>, pkx: &mut Vec<f64>, pk: &[f64], offs: &[f64]| {
                    for e2 in 0..nent {
                        let ob = &offs[e2 * n..(e2 + 1) * n];
                        let mut m = f64::INFINITY;
                        let mut x = f64::NEG_INFINITY;
                        for j in 0..n {
                            m = m.min(pk[j] - ob[j]);
                            x = x.max(pk[j] - ob[j]);
                        }
                        pkm[e2] = m;
                        pkx[e2] = x;
                    }
                };
                refresh_pkm(&mut pkm, &mut pkx, &pk, &offs);
                let mut dirty = false;
                // The per-run affine coefficients are recomputed inline
                // from the λ-power ladders (the division in `c` hoists to
                // the per-layer constant `q`) — cheaper than building and
                // re-streaming megabytes of per-run coefficient arrays.
                let q = lane.layer_alphas[l] * lambda_amb / (lambda_amb - (1.0 - lane.layer_alphas[l]));
                let lt = &lam_tab[l * (REPLAY_RUN_EXIT + 1)..(l + 1) * (REPLAY_RUN_EXIT + 1)];
                for &(ei, len, amb0r) in runs_log.iter() {
                    let s_amb_e = stab_amb[ei as usize];
                    let lp = lt[len as usize];
                    let k1 = 1.0 - lp;
                    let c = (amb0r - s_amb_e) * q;
                    let base = s_amb_e * k1 + c * (laa_tab[len as usize] - lp);
                    let ambx = amb0r.max(s_amb_e);
                    let ob = &offs[ei as usize * n..(ei as usize + 1) * n];
                    if ambx <= pkm[ei as usize] {
                        for j in 0..n {
                            t[j] = t[j] * lp + base + ob[j] * k1;
                        }
                        continue;
                    }
                    if dirty {
                        refresh_pkm(&mut pkm, &mut pkx, &pk, &offs);
                        dirty = false;
                    }
                    if c < 0.0 && pkx[ei as usize] < s_amb_e + c {
                        // Endpoint-only body: peaks can move, extremes not.
                        for j in 0..n {
                            let tn = t[j] * lp + base + ob[j] * k1;
                            dirty |= tn > pk[j];
                            pk[j] = pk[j].max(tn);
                            t[j] = tn;
                        }
                        continue;
                    }
                    let mut hot = false;
                    for j in 0..n {
                        let ofr = ob[j];
                        let tn = t[j] * lp + base + ofr * k1;
                        let pkn = pk[j].max(tn);
                        let a = (t[j] - s_amb_e - ofr) - c;
                        hot |= ((a > 0.0) != (c > 0.0)) & (a != 0.0) & (c != 0.0) & (ambx + ofr > pkn);
                        dirty |= tn > pk[j];
                        t[j] = tn;
                        pk[j] = pkn;
                    }
                    if hot {
                        // Cold path: some row may peak inside the run.
                        // Recover each row's run-entry state by inverting
                        // the affine endpoint map (λ^len > 0; the ~1 ulp
                        // inversion slop only feeds the peak bound, which
                        // tolerates far more than the 1e-9 guarantee).
                        for j in 0..n {
                            let ofr = ob[j];
                            let s_r = s_amb_e + ofr;
                            let tp = (t[j] - base - ofr * k1) / lp;
                            let a = (tp - s_r) - c;
                            if a != 0.0 && c != 0.0 && (a > 0.0) != (c > 0.0) && ambx + ofr > pk[j] {
                                let (_, _, hi) = env_row_range(a, c, lambda, lambda_amb, len as f64);
                                dirty |= s_r + hi > pk[j];
                                pk[j] = pk[j].max(s_r + hi);
                            }
                        }
                    }
                }
                for (j, &r) in rl.iter().enumerate() {
                    rows_t[r] = t[j];
                    peaks[r] = pk[j];
                }
            }
            for r in 0..rows {
                let new_t = match roles[r] {
                    1 | 2 => match kinds[r % depth] {
                        DeviceLayerKind::Dram => {
                            peaks[r] = peaks[r].max(peak_dram);
                            t_dram
                        }
                        DeviceLayerKind::Buffer => {
                            peaks[r] = peaks[r].max(peak_buf);
                            t_buf
                        }
                    },
                    _ => rows_t[r],
                };
                rows_t[r] = new_t;
                viol |= !(band.lo[r] <= new_t && new_t <= band.hi[r]);
            }
            cur_max_dram = t_dram;
            cur_max_buf = if has_buffer { t_buf } else { f64::NEG_INFINITY };
            st.max_dram = st.max_dram.max(peak_dram);
            if has_buffer {
                st.max_amb = st.max_amb.max(peak_buf);
            }
            st.scene.set_ambient_c(amb_l);
            st.ambient_sum += amb_sum;
            st.ambient_samples += w;
            for _ in 0..w {
                st.time_s += step;
                st.next_dtm_s += dt;
            }
            for (i, e) in entries.iter_mut().enumerate() {
                let (c, coh) = (counts[i], counts_oh[i]);
                if c + coh == 0 {
                    continue;
                }
                let (cf, cohf) = (c as f64, coh as f64);
                let totf = cf + cohf;
                e.residency_s += step * totf;
                if e.progressing {
                    st.total_instructions += e.instr * cf + e.instr_oh * cohf;
                    st.total_bytes += e.bytes * cf + e.bytes_oh * cohf;
                    st.total_misses += e.misses * cf + e.misses_oh * cohf;
                    st.migrated_bytes += e.migrated * cf + e.migrated_oh * cohf;
                    for (core, &pos) in shares_pos.iter().enumerate() {
                        if pos {
                            let n = e.retires[core] * c + e.retires_oh[core] * coh;
                            if n > 0 {
                                st.batch.retire(core, n);
                            }
                        }
                    }
                }
                st.energy.add(e.window.mem_w, e.window.cpu_w, step * totf);
                for (channel, &thr) in e.throttled.iter().enumerate() {
                    if thr {
                        st.channel_throttle_s[channel] += step * totf;
                    }
                }
            }
            env_windows += w;
            jumps += 1;
            cur = cur_l;
            run = run_l;
            st.plan_streak = if flipped {
                run_l.min(u64::from(u32::MAX)) as u32
            } else {
                st.plan_streak.saturating_add(w.min(u64::from(u32::MAX)) as u32)
            };
            // The replay owns chatter now, so the fast re-arm of
            // certificate-limited closed-form jumps is rolled back; a long
            // frozen tail is handed straight to the closed-form probe,
            // anything else re-enters the replay after one literal window.
            arm = ENV_JUMP_MIN;
            if run_l >= REPLAY_RUN_EXIT as u64 {
                next_attempt = run;
                chatter_next = env_windows.saturating_add(2 * ENV_JUMP_MIN);
            } else {
                next_attempt = run.max(ENV_JUMP_MIN);
                chatter_next = env_windows;
            }
            if finished || st.batch.is_complete() || st.time_s >= max {
                let pseudo = jumps + if band.slipping { env_windows / band.period } else { 0 };
                return Some(env_finish(st, engine, &entries, &rows_t, &peaks, env_windows, pseudo, started));
            }
            violation = viol;
            continue;
        }
        let e = &entries[cur];
        let stable_ambient = st.scene.ambient_params().stable_ambient_c(e.window.v_ipc);
        let lambda_a = 1.0 - ambient_alpha;
        let amb_c = st.scene.ambient_c();
        let mut a0 = amb_c - stable_ambient;
        // A settled (or non-relaxing) ambient degenerates to the frozen
        // single-exponential form: zero λ_a-coefficient everywhere.
        let amb_static = !(lambda_a > 0.0 && lambda_a < 1.0) || a0.abs() <= AMBIENT_FF_EPS_C;
        if amb_static {
            a0 = 0.0;
        }
        // Completion-safe cap: strictly fewer windows than the earliest
        // possible job-copy completion, so bulk retires land on the same
        // windows literal stepping would. The wall-time cap keeps the
        // licensed range exactly the applied range.
        let cap: u64 = if e.progressing {
            (0..cores)
                .filter(|&c| e.retires[c] > 0)
                .filter_map(|c| st.batch.slot(c).map(|s| s.remaining_instructions.div_ceil(e.retires[c]).max(1) - 1))
                .min()
                .unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        let time_cap = (((max - st.time_s) / step).ceil().max(1.0)) as u64;
        let n_max = cap.min(time_cap);
        let n0 = run.min(n_max);
        if n0 == 0 {
            next_attempt = run.saturating_mul(2);
            continue;
        }
        // Horizon-independent row coefficients of the frozen-plan
        // two-exponential (stable point, λ_r- and λ_a-coefficients),
        // shared by every trial horizon below.
        let mut licensed = true;
        for (r, &t_r) in rows_t.iter().enumerate() {
            let l = r % depth;
            let lambda = 1.0 - lane.layer_alphas[l];
            let off = if identity_split { e.stab_a[r] + e.stab_b[r] } else { e.stab_a[r] };
            let (s_r, kcoef) = if amb_static {
                (amb_c + off, 0.0)
            } else {
                let gap = lambda_a - lambda;
                if gap.abs() < 1e-9 {
                    licensed = false;
                    break;
                }
                (stable_ambient + off, (1.0 - lambda) * a0 * lambda_a / gap)
            };
            jump_s[r] = s_r;
            jump_a[r] = t_r - s_r - kcoef;
            jump_k[r] = kcoef;
        }
        if !licensed {
            next_attempt = run.saturating_mul(2);
            continue;
        }
        // The exact maxima ranges the trajectory traces over a trial
        // horizon, with the burst band audited per row; `None` refuses
        // the horizon outright.
        let range_for = |nf: f64| -> Option<(f64, f64, f64, f64)> {
            let (mut buf_lo, mut buf_hi) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            let (mut dram_lo, mut dram_hi) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for r in 0..rows {
                let l = r % depth;
                let lambda = 1.0 - lane.layer_alphas[l];
                let (t_end, lo_f, hi_f) = env_row_range(jump_a[r], jump_k[r], lambda, lambda_a, nf);
                let (lo_r, hi_r) = (jump_s[r] + lo_f, jump_s[r] + hi_f);
                if !(t_end.is_finite() && band.lo[r] <= lo_r && hi_r <= band.hi[r]) {
                    return None;
                }
                match kinds[l] {
                    DeviceLayerKind::Buffer => {
                        buf_lo = buf_lo.max(lo_r);
                        buf_hi = buf_hi.max(hi_r);
                    }
                    DeviceLayerKind::Dram => {
                        dram_lo = dram_lo.max(lo_r);
                        dram_hi = dram_hi.max(hi_r);
                    }
                }
            }
            Some((buf_lo, buf_hi, dram_lo, dram_hi))
        };
        // The frozen-plan attestations: the legacy shared-arm band query
        // (kept for policies without decision-region support) and the
        // per-axis region certificate — the device axes trace independent
        // ranges, so a wide buffer swing no longer inflates the DRAM arm
        // across a threshold it never approaches.
        let steady_at = |rg: &(f64, f64, f64, f64), obs: &mut ThermalObservation| -> bool {
            let (buf_lo, buf_hi, dram_lo, dram_hi) = *rg;
            let (mut below, mut above) = (0.0f64, 0.0f64);
            if has_buffer {
                below = below.max((cur_max_buf - buf_lo).max(0.0));
                above = above.max((buf_hi - cur_max_buf).max(0.0));
            }
            below = below.max((cur_max_dram - dram_lo).max(0.0)) + ENV_FP_GUARD_C;
            above = above.max((dram_hi - cur_max_dram).max(0.0)) + ENV_FP_GUARD_C;
            if !(below.is_finite() && above.is_finite()) {
                return false;
            }
            obs.max_amb_c = if has_buffer { cur_max_buf } else { f64::NAN };
            obs.max_dram_c = cur_max_dram;
            obs.ambient_c = amb_c;
            st.policy.is_steady_band(obs, &e.plan, below, above)
        };
        let region_at = |rg: &(f64, f64, f64, f64), obs: &mut ThermalObservation| -> bool {
            let (buf_lo, buf_hi, dram_lo, dram_hi) = *rg;
            let dram_span = (dram_hi - dram_lo) + 2.0 * ENV_FP_GUARD_C;
            let amb_span = if has_buffer { (buf_hi - buf_lo) + 2.0 * ENV_FP_GUARD_C } else { 0.0 };
            if !(dram_span.is_finite() && amb_span.is_finite()) {
                return false;
            }
            obs.max_amb_c = if has_buffer { buf_lo - ENV_FP_GUARD_C } else { f64::NAN };
            obs.max_dram_c = dram_lo - ENV_FP_GUARD_C;
            obs.ambient_c = amb_c;
            st.policy.plan_decided_by_region(obs, amb_span, dram_span).as_ref() == Some(&e.plan)
        };
        let attest = |rg: &(f64, f64, f64, f64), obs: &mut ThermalObservation| -> bool {
            if supports_region {
                region_at(rg, obs)
            } else {
                steady_at(rg, obs)
            }
        };
        // The licensed horizon: attested ranges nest as the horizon
        // shrinks, so licensing is monotone in n and binary search finds
        // the largest licensed horizon exactly. The horizon is NOT bounded
        // by the observed run length — the certificate itself proves plan
        // invariance over the traced range — so a run hugging a threshold
        // from one side is jumped to the chatter boundary in one segment,
        // and a monotone approach is jumped to its completion or wall cap.
        let mut n = n0;
        let ok = if match range_for(n0 as f64) {
            Some(rg) => attest(&rg, &mut st.observation),
            None => false,
        } {
            if n0 < n_max {
                let full = match range_for(n_max as f64) {
                    Some(rg) => attest(&rg, &mut st.observation),
                    None => false,
                };
                if full {
                    n = n_max;
                } else {
                    let (mut lo, mut hi) = (n0, n_max);
                    while hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        let good = match range_for(mid as f64) {
                            Some(rg) => attest(&rg, &mut st.observation),
                            None => false,
                        };
                        if good {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    n = lo;
                }
            }
            true
        } else if n0 > 1
            && match range_for(1.0) {
                Some(rg) => attest(&rg, &mut st.observation),
                None => false,
            }
        {
            // Near a decision boundary the largest licensed horizon is
            // shorter than the run that scheduled the probe.
            let (mut lo, mut hi) = (1u64, n0);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let good = match range_for(mid as f64) {
                    Some(rg) => attest(&rg, &mut st.observation),
                    None => false,
                };
                if good {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            n = lo;
            true
        } else {
            false
        };
        if !ok {
            next_attempt = run.saturating_mul(2);
            continue;
        }
        // A certificate-limited horizon marks a chattering cell: the plan
        // flips right past the jump, so future runs re-arm fast instead of
        // paying [`ENV_JUMP_MIN`] literal windows per chatter half-cycle.
        if n < n_max {
            arm = 2;
        }
        // Apply the jump: literal time/decision-clock additions (exact
        // window counts), `rate × m` accounting, closed-form ambient
        // (endpoint and running sum from the geometric series), and
        // closed-form temperatures with each row's in-segment extremes —
        // not just the endpoints — folded into peaks and maxima.
        let mut m: u64 = 0;
        while m < n && st.time_s < max {
            st.time_s += step;
            st.next_dtm_s += dt;
            m += 1;
        }
        if m == 0 {
            continue;
        }
        let mf = m as f64;
        if e.progressing {
            st.total_instructions += e.instr * mf;
            st.total_bytes += e.bytes * mf;
            st.total_misses += e.misses * mf;
            st.migrated_bytes += e.migrated * mf;
            for (core, &pos) in shares_pos.iter().enumerate() {
                if pos && e.retires[core] > 0 {
                    st.batch.retire(core, e.retires[core] * m);
                }
            }
        }
        st.energy.add(e.window.mem_w, e.window.cpu_w, step * mf);
        for (channel, &thr) in e.throttled.iter().enumerate() {
            if thr {
                st.channel_throttle_s[channel] += step * mf;
            }
        }
        if amb_static {
            st.ambient_sum += amb_c * mf;
        } else {
            st.ambient_sum += st.scene.ambient_segment_moments(stable_ambient, a0, lambda_a, mf);
        }
        st.ambient_samples += m;
        cur_max_buf = f64::NEG_INFINITY;
        cur_max_dram = f64::NEG_INFINITY;
        let mut peak_buf = f64::NEG_INFINITY;
        let mut peak_dram = f64::NEG_INFINITY;
        for r in 0..rows {
            let l = r % depth;
            let lambda = 1.0 - lane.layer_alphas[l];
            let (t_end, _, hi_f) = env_row_range(jump_a[r], jump_k[r], lambda, lambda_a, mf);
            let t = jump_s[r] + t_end;
            let hi = jump_s[r] + hi_f;
            rows_t[r] = t;
            peaks[r] = peaks[r].max(hi);
            match kinds[l] {
                DeviceLayerKind::Buffer => {
                    cur_max_buf = cur_max_buf.max(t);
                    peak_buf = peak_buf.max(hi);
                }
                DeviceLayerKind::Dram => {
                    cur_max_dram = cur_max_dram.max(t);
                    peak_dram = peak_dram.max(hi);
                }
            }
        }
        st.max_amb = st.max_amb.max(if has_buffer { peak_buf } else { f64::NAN });
        st.max_dram = st.max_dram.max(peak_dram);
        entries[cur].residency_s += step * mf;
        st.plan_streak = st.plan_streak.saturating_add(m.min(u64::from(u32::MAX)) as u32);
        run += m;
        next_attempt = run;
        env_windows += m;
        jumps += 1;
        if st.batch.is_complete() || st.time_s >= max {
            let pseudo = jumps + if band.slipping { env_windows / band.period } else { 0 };
            return Some(env_finish(st, engine, &entries, &rows_t, &peaks, env_windows, pseudo, started));
        }
    }
}

/// Folds a finished cell's accumulators into its result through the same
/// [`assemble_result`] path as the per-cell engine. The caller must have
/// synchronized the cell's scene (temperatures and peaks) beforehand.
fn finalize(st: &mut CellState, engine: &SimEngine<'_>) -> (MemSpotResult, CellRunStats) {
    let totals = RunTotals {
        completed: st.batch.is_complete(),
        time_s: st.time_s,
        total_instructions: st.total_instructions,
        total_bytes: st.total_bytes,
        total_misses: st.total_misses,
        migrated_bytes: st.migrated_bytes,
        max_amb: st.max_amb,
        max_dram: st.max_dram,
        ambient_sum: st.ambient_sum,
        ambient_samples: st.ambient_samples,
        residency: std::mem::take(&mut st.residency),
        trace: std::mem::take(&mut st.trace),
        channel_throttle_s: std::mem::take(&mut st.channel_throttle_s),
    };
    let result = assemble_result(&st.mix, engine.config, st.policy.as_ref(), &st.scene, &st.energy, totals);
    (result, st.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtm::acg::DtmAcg;
    use crate::dtm::no_limit::NoLimit;
    use crate::dtm::ts::DtmTs;
    use crate::thermal::params::{CoolingConfig, StackKind, ThermalLimits};
    use workloads::mixes;

    fn hardware() -> (CpuConfig, FbdimmConfig, FbdimmPowerModel, PaperCpuPower) {
        (
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            FbdimmPowerModel::paper_defaults(),
            PaperCpuPower::new(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn reference(
        cpu: &CpuConfig,
        mem: &FbdimmConfig,
        power: &FbdimmPowerModel,
        cpu_power: &PaperCpuPower,
        config: &MemSpotConfig,
        mix: &WorkloadMix,
        policy: &mut dyn DtmPolicy,
        store: Arc<CharStore>,
    ) -> MemSpotResult {
        let mut table = CharacterizationTable::with_store(
            cpu.clone(),
            *mem,
            mix.id.clone(),
            mix.apps.clone(),
            config.characterization_budget,
            store,
        )
        .with_rotation_threads(1);
        SimEngine::new(cpu, mem, power, cpu_power, config).run(&mut table, mix, policy)
    }

    #[test]
    fn literal_batched_results_are_bit_identical_to_the_per_cell_engine() {
        let (cpu, mem, power, cpu_power) = hardware();
        let store = Arc::new(CharStore::new());
        let limits = ThermalLimits::paper_fbdimm();
        let configs = [
            MemSpotConfig::tiny(CoolingConfig::aohs_1_5()),
            MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_integrated(None),
            MemSpotConfig::tiny(CoolingConfig::fdhs_1_0()).with_stack(StackKind::RankPair),
        ];
        let policies: [Box<dyn DtmPolicy>; 3] = [
            Box::new(NoLimit::new(&cpu)),
            Box::new(DtmTs::new(cpu.clone(), limits)),
            Box::new(DtmAcg::new(cpu.clone(), limits)),
        ];
        let cells: Vec<BatchCell> = configs
            .iter()
            .zip(policies)
            .map(|(config, policy)| {
                BatchCell::new(&cpu, &mem, *config, mixes::w1(), policy, Arc::clone(&store)).with_rotation_threads(1)
            })
            .collect();
        let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
        let batched = engine.run(cells, &BatchOptions::literal());

        let expectations: [Box<dyn DtmPolicy>; 3] = [
            Box::new(NoLimit::new(&cpu)),
            Box::new(DtmTs::new(cpu.clone(), limits)),
            Box::new(DtmAcg::new(cpu.clone(), limits)),
        ];
        for ((config, mut policy), (got, stats)) in configs.iter().zip(expectations).zip(&batched) {
            let want =
                reference(&cpu, &mem, &power, &cpu_power, config, &mixes::w1(), policy.as_mut(), Arc::clone(&store));
            assert_eq!(*got, want, "batched run diverged from the per-cell engine");
            assert_eq!(stats.fast_forwarded_windows, 0, "literal mode must never fast-forward");
            assert!(stats.stepped_windows > 0);
        }
    }

    #[test]
    fn column_split_decision_pass_is_bit_identical_to_the_fused_pass() {
        // The three policies depart their shared lane at different windows
        // (completion vs steady-state fast-forward), so the column-split
        // traversal's deferred descending removals are exercised against
        // the fused traversal's inline ones. Results are compared on their
        // Debug rendering: Rust formats `f64` shortest-roundtrip, so equal
        // strings mean equal bit patterns in every float field.
        let (cpu, mem, power, cpu_power) = hardware();
        let store = Arc::new(CharStore::new());
        let limits = ThermalLimits::paper_fbdimm();
        let make_cells = || -> Vec<BatchCell> {
            let policies: [Box<dyn DtmPolicy>; 3] = [
                Box::new(NoLimit::new(&cpu)),
                Box::new(DtmTs::new(cpu.clone(), limits)),
                Box::new(DtmAcg::new(cpu.clone(), limits)),
            ];
            policies
                .into_iter()
                .map(|policy| {
                    let config = MemSpotConfig::tiny(CoolingConfig::aohs_1_5());
                    BatchCell::new(&cpu, &mem, config, mixes::w1(), policy, Arc::clone(&store)).with_rotation_threads(1)
                })
                .collect()
        };
        let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
        for base in [BatchOptions::literal(), BatchOptions::default()] {
            let fused = engine.run(make_cells(), &BatchOptions { decision_pass: DecisionPass::Fused, ..base });
            let split = BatchOptions { decision_pass: DecisionPass::ColumnSplit, ..base };
            for workers in [1, 3] {
                let got = engine.run_with_workers(make_cells(), &split, workers);
                assert_eq!(got.len(), fused.len());
                for ((got, _), (want, _)) in got.iter().zip(&fused) {
                    assert_eq!(
                        format!("{got:?}"),
                        format!("{want:?}"),
                        "column-split pass diverged from fused \
                         (fast_forward={}, workers={workers})",
                        base.fast_forward
                    );
                }
            }
        }
    }

    #[test]
    fn lanes_group_by_stack_step_and_ambient() {
        let (cpu, mem, _, _) = hardware();
        let store = Arc::new(CharStore::new());
        let mk = |config: MemSpotConfig| {
            BatchCell::new(&cpu, &mem, config, mixes::w1(), Box::new(NoLimit::new(&cpu)), Arc::clone(&store))
        };
        let cells = vec![
            mk(MemSpotConfig::tiny(CoolingConfig::aohs_1_5())),
            mk(MemSpotConfig::tiny(CoolingConfig::aohs_1_5())),
            mk(MemSpotConfig::tiny(CoolingConfig::fdhs_1_0())),
            mk(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_stack(StackKind::RankPair)),
        ];
        let power = FbdimmPowerModel::paper_defaults();
        let cpu_power = PaperCpuPower::new();
        let configs: Vec<MemSpotConfig> = cells.iter().map(|c| c.config).collect();
        let sim_engines: Vec<SimEngine<'_>> =
            configs.iter().map(|c| SimEngine::new(&cpu, &mem, &power, &cpu_power, c)).collect();
        let opts = BatchOptions::default();
        let states: Vec<CellState> =
            cells.into_iter().zip(sim_engines.iter()).map(|(cell, e)| CellState::new(cell, e, &opts)).collect();
        let groups = lane_groups(&states);
        // aohs FBDIMM pair share a lane; fdhs and the rank pair each get
        // their own (different resistances => different topology taus).
        assert_eq!(groups.len(), 3);
        let works = lane_works(states, groups);
        assert_eq!(works.iter().map(|w| w.lane.members.len()).max(), Some(2));
        for work in &works {
            let lane = &work.lane;
            assert_eq!(lane.stride, lane.members.len());
            assert_eq!(lane.temps.len(), lane.rows * lane.stride);
            assert_eq!(work.globals.len(), work.states.len());
        }
    }

    #[test]
    fn splitting_groups_chunks_the_dominant_lane() {
        // One dominant 6-cell group plus a singleton: asking for 4 workers
        // must chunk the big group (6 → 3+3 → 3+2+1... stopping at 4 total)
        // while never splitting below one cell per group.
        let mut groups = vec![vec![0, 1, 2, 3, 4, 5], vec![6]];
        split_groups(&mut groups, 4, 7);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 7);
        assert!(groups.iter().all(|g| !g.is_empty()));
        // Membership is preserved, only partitioned.
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());

        // More workers than cells: every group ends up a singleton, no spin.
        let mut groups = vec![vec![0, 1, 2]];
        split_groups(&mut groups, 16, 3);
        assert_eq!(groups.len(), 3);
    }
}
