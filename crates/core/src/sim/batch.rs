//! Tier-3 execution: batched lockstep stepping of many level-2 runs, with
//! steady-state fast-forward.
//!
//! [`SimEngine`](crate::sim::SimEngine) advances one (mix, policy, cooling)
//! cell at a time; a design-space sweep runs hundreds of such cells whose
//! window loops are completely independent yet structurally identical. The
//! [`BatchedSimEngine`] exploits that: cells whose scenes share a device
//! stack, a step length and an ambient time constant are grouped into
//! **lanes**, and each lane steps all of its cells in lockstep over one
//! shared cell-major temperature/peak matrix (row = `position × depth +
//! layer`, column = cell). The per-window RC update then becomes a tight
//! inner loop over the cells of a row — contiguous, branch-free and
//! auto-vectorizable — instead of a pointer-chasing scene walk per cell.
//!
//! Everything that is *per-cell logic* (DTM decisions, actuation plans,
//! window-power rebuilds, batch progress, energy accounting) stays exactly
//! the per-cell code path, executed cell-by-cell in the same order as
//! [`SimEngine::run`], so every cell's trajectory is **bit-identical** to a
//! per-cell run: the lane only restructures the memory layout of the RC
//! arithmetic, not its operations or their order. Cells that finish (batch
//! complete or safety stop) drop out of the hot lane by a column
//! swap-remove, which moves no arithmetic and therefore cannot perturb the
//! remaining cells.
//!
//! Two further layout moves keep the per-window overhead below the
//! per-cell engine's. Window powers are constant between plan changes, so
//! each lane keeps its members' per-position powers in a
//! `positions × cells` matrix rewritten per column on plan change — the RC
//! sweep reads power rows contiguously instead of chasing each cell's
//! window struct. And policies that declare they read only the scalar
//! device maxima ([`DtmPolicy::observes_field`]) are observed straight
//! from the sweep's running per-cell maxima (`f64::max` over a fixed node
//! set is order-independent, so the bits match a full scene fold) instead
//! of re-synthesizing the per-position field at every DTM interval.
//!
//! # Steady-state fast-forward
//!
//! Long runs spend most of their windows in a fixed point: the actuation
//! plan stops changing and every RC node sits within ε of the temperature
//! it would converge to under the frozen window power. From there the
//! remaining trajectory is closed-form. At each DTM decision the batched
//! engine checks (all opt-in via [`BatchOptions::fast_forward`]):
//!
//! 1. the plan has been unchanged for [`BatchOptions::steady_decisions`]
//!    consecutive decisions,
//! 2. the policy itself guarantees steadiness under a 2ε temperature drift
//!    ([`DtmPolicy::is_steady`]) — stateful controllers (PID) answer
//!    `false` and are never fast-forwarded,
//! 3. the shared ambient node is (bitwise, for isolated scenes) at its own
//!    fixed point, and
//! 4. every layer temperature is within [`BatchOptions::steady_epsilon_c`]
//!    of its RC fixed point ([`DimmThermalScene::fixed_point_into`]).
//!
//! When all four hold, the cell leaves the lane and its remaining windows
//! are replayed analytically: time still advances by the literal repeated
//! float additions (so `running_time_s` and the window **count** are
//! bit-identical to the stepped run), batch completion events are resolved
//! by bulk-retiring whole spans of windows in which no job can finish plus
//! one literal window at each completion boundary (preserving the
//! round-robin refill interleaving exactly), and the final temperatures
//! follow `t_end = t* + (t0 − t*)·(1 − α)^W`. Accumulated quantities
//! (energy, instructions, residency) use `rate × W` instead of `W` repeated
//! additions and therefore agree with the literal run to relative 1e-9
//! rather than bitwise; the golden suite pins both contracts.

use std::collections::BTreeMap;
use std::sync::Arc;

use cpu_model::{CpuConfig, PaperCpuPower, RunningMode};
use fbdimm_sim::{DimmTraffic, FbdimmConfig};
use workloads::{BatchJob, WorkloadMix};

use crate::dtm::plan::{ActuationPlan, PlanTrafficStats};
use crate::dtm::policy::DtmPolicy;
use crate::power::fbdimm::{FbdimmPowerBreakdown, FbdimmPowerModel};
use crate::sim::characterize::{CharPoint, CharStore, CharacterizationTable, ModeKey};
use crate::sim::energy::EnergyAccumulator;
use crate::sim::engine::{assemble_result, RunTotals, SimEngine, WindowPower};
use crate::sim::memspot::{MemSpotConfig, MemSpotResult, TempSample};
use crate::thermal::params::DeviceLayerKind;
use crate::thermal::rc::ThermalNode;
use crate::thermal::scene::{DimmThermalScene, ThermalObservation};

/// How close the shared ambient node must sit to its own fixed point before
/// a cell may fast-forward. Isolated scenes hold the inlet temperature
/// bitwise, so this is only a gate for integrated (processor-heated)
/// ambients; it is an order of magnitude tighter than the 1e-9 agreement
/// the fast-forward promises so the frozen-ambient approximation cannot
/// consume the error budget.
const AMBIENT_FF_EPS_C: f64 = 1e-10;

/// Once a cell's plan streak reaches the steadiness threshold, the (fairly
/// expensive) fixed-point convergence test runs only every this many further
/// decisions. Engaging the fast-forward a few windows late merely steps a
/// handful of extra literal windows — strictly *more* accurate — while the
/// transient dies out, instead of recomputing the fixed point every window.
const FF_CHECK_PERIOD: u32 = 8;

/// Tuning knobs of the batched execution tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOptions {
    /// Enables steady-state fast-forward. When `false` the batched engine
    /// is purely a memory-layout transformation and every result is
    /// bit-identical to [`SimEngine::run`].
    pub fast_forward: bool,
    /// Convergence radius ε: every layer must be within this many degrees
    /// of its RC fixed point before a cell may fast-forward. Policies are
    /// consulted with a `2ε` drift bound.
    pub steady_epsilon_c: f64,
    /// Number of consecutive DTM decisions that must return an unchanged
    /// plan before a cell is considered for fast-forward.
    pub steady_decisions: u32,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { fast_forward: true, steady_epsilon_c: 0.05, steady_decisions: 3 }
    }
}

impl BatchOptions {
    /// Literal batched execution: lockstep lanes, no fast-forward. Every
    /// cell's result carries identical bits to a per-cell run.
    pub fn literal() -> Self {
        BatchOptions { fast_forward: false, ..Default::default() }
    }
}

/// Per-cell execution counters returned alongside each [`MemSpotResult`].
/// Kept outside the result so golden suites can keep comparing results with
/// `==` while still asserting how each cell was executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellRunStats {
    /// Windows executed literally (stepped through the lane RC loop).
    pub stepped_windows: u64,
    /// Windows replayed analytically by the steady-state fast-forward.
    pub fast_forwarded_windows: u64,
}

/// One sweep cell: a run configuration, a workload mix, a policy and the
/// mix's level-1 characterization table.
#[derive(Debug)]
pub struct BatchCell {
    /// The run configuration (cooling, stack, cadences, …).
    pub config: MemSpotConfig,
    /// The workload mix to run.
    pub mix: WorkloadMix,
    /// The DTM policy deciding each interval.
    pub policy: Box<dyn DtmPolicy>,
    /// Level-1 characterization table for `mix` (backed by a shared
    /// [`CharStore`] when built via [`BatchCell::new`]).
    pub table: CharacterizationTable,
}

impl BatchCell {
    /// Builds a cell whose characterization table shares `store`, so level-1
    /// results are computed once per distinct (mix, mode, budget, geometry)
    /// across the whole batch.
    pub fn new(
        cpu: &CpuConfig,
        mem: &FbdimmConfig,
        config: MemSpotConfig,
        mix: WorkloadMix,
        policy: Box<dyn DtmPolicy>,
        store: Arc<CharStore>,
    ) -> Self {
        let table = CharacterizationTable::with_store(
            cpu.clone(),
            *mem,
            mix.id.clone(),
            mix.apps.clone(),
            config.characterization_budget,
            store,
        );
        BatchCell { config, mix, policy, table }
    }

    /// Caps the level-1 rotation-averaging thread count (sweep engines pass
    /// 1 so cell-level parallelism composes deterministically).
    pub fn with_rotation_threads(mut self, threads: usize) -> Self {
        self.table = self.table.with_rotation_threads(threads);
        self
    }
}

/// The batched lockstep simulation engine. See the module docs for the
/// execution model and its bit-identity contract.
#[derive(Debug)]
pub struct BatchedSimEngine<'a> {
    cpu: &'a CpuConfig,
    mem: &'a FbdimmConfig,
    power: &'a FbdimmPowerModel,
    cpu_power: &'a PaperCpuPower,
}

impl<'a> BatchedSimEngine<'a> {
    /// Borrows the hardware models shared by every cell of the batch.
    pub fn new(
        cpu: &'a CpuConfig,
        mem: &'a FbdimmConfig,
        power: &'a FbdimmPowerModel,
        cpu_power: &'a PaperCpuPower,
    ) -> Self {
        BatchedSimEngine { cpu, mem, power, cpu_power }
    }

    /// Runs every cell to completion and returns one `(result, stats)` pair
    /// per cell, in input order. With [`BatchOptions::literal`] each result
    /// is bit-identical to [`SimEngine::run`] on the same cell.
    ///
    /// # Panics
    ///
    /// Panics if any cell's configuration fails [`MemSpotConfig::validate`].
    pub fn run(&self, cells: Vec<BatchCell>, options: &BatchOptions) -> Vec<(MemSpotResult, CellRunStats)> {
        let configs: Vec<MemSpotConfig> = cells.iter().map(|c| c.config).collect();
        let engines: Vec<SimEngine<'_>> = configs
            .iter()
            .map(|config| SimEngine::new(self.cpu, self.mem, self.power, self.cpu_power, config))
            .collect();
        let mut states: Vec<CellState> =
            cells.into_iter().zip(engines.iter()).map(|(cell, engine)| CellState::new(cell, engine, options)).collect();
        let mut lanes = build_lanes(&states);
        let mut results: Vec<Option<(MemSpotResult, CellRunStats)>> = (0..states.len()).map(|_| None).collect();
        for lane in &mut lanes {
            lane_pre(lane, &engines, &mut states, options, &mut results);
            while !lane.members.is_empty() {
                lane_rc(lane, &states);
                lane_post_pre(lane, &engines, &mut states, options, &mut results);
            }
        }
        results.into_iter().map(|r| r.expect("every cell finalizes exactly once")).collect()
    }
}

/// The full mutable state of one in-flight cell — a field-for-field mirror
/// of the locals of [`SimEngine::run`], plus the batched-tier bookkeeping
/// (plan streak, execution stats, scratch buffers).
#[derive(Debug)]
struct CellState {
    mix: WorkloadMix,
    policy: Box<dyn DtmPolicy>,
    table: CharacterizationTable,
    batch: BatchJob,
    scene: DimmThermalScene,
    energy: EnergyAccumulator,
    full_shares: Vec<f64>,
    idle: Vec<FbdimmPowerBreakdown>,
    observation: ThermalObservation,
    plan_traffic: Vec<DimmTraffic>,
    plan_stats: PlanTrafficStats,
    step_s: f64,
    time_s: f64,
    next_dtm_s: f64,
    next_trace_s: f64,
    plan: ActuationPlan,
    mode: RunningMode,
    mode_key: ModeKey,
    point: Arc<CharPoint>,
    progressing: bool,
    window: WindowPower,
    overhead_s: f64,
    total_instructions: f64,
    total_bytes: f64,
    total_misses: f64,
    migrated_bytes: f64,
    max_amb: f64,
    max_dram: f64,
    ambient_sum: f64,
    ambient_samples: u64,
    residency: BTreeMap<ModeKey, f64>,
    trace: Vec<TempSample>,
    channel_throttle_s: Vec<f64>,
    plan_streak: u32,
    ff_allowed: bool,
    /// Whether the policy reads the observation's spatial field
    /// ([`DtmPolicy::observes_field`]); scalar policies get a cheap
    /// maxima-only observation straight from the lane's RC sweep.
    wants_field: bool,
    stats: CellRunStats,
    /// Fixed-point scratch for the fast-forward engagement check.
    fp: Vec<f64>,
    /// Column scratch for syncing lane columns back into the scene.
    col_scratch: Vec<f64>,
}

impl CellState {
    fn new(cell: BatchCell, engine: &SimEngine<'_>, options: &BatchOptions) -> Self {
        let BatchCell { config, mix, mut policy, mut table } = cell;
        let batch = BatchJob::new(mix.clone(), config.copies_per_app, engine.cpu.cores, config.instruction_scale);
        let scene = engine.make_scene();
        let full_mode = RunningMode::full_speed(engine.cpu);
        let full_point = table.point(&full_mode);
        let full_shares = full_point.core_share.clone();
        let idle = engine.idle_powers();
        let observation = scene.observe();
        let mode = full_mode;
        let mode_key = ModeKey::from_mode(&mode);
        let progressing = mode.makes_progress() && full_point.instr_rate_total > 0.0;
        let window = engine.window_power(&scene, &idle, &full_point, &full_point.dimm_traffic, &mode, progressing);
        let (max_amb, max_dram) = scene.max_temps_c();
        policy.reset();
        CellState {
            batch,
            energy: EnergyAccumulator::new(),
            full_shares,
            idle,
            observation,
            plan_traffic: Vec::new(),
            plan_stats: PlanTrafficStats::identity(),
            step_s: config.window_s.min(config.dtm_interval_s),
            time_s: 0.0,
            next_dtm_s: 0.0,
            next_trace_s: 0.0,
            plan: ActuationPlan::global(full_mode),
            mode,
            mode_key,
            point: full_point,
            progressing,
            window,
            overhead_s: 0.0,
            total_instructions: 0.0,
            total_bytes: 0.0,
            total_misses: 0.0,
            migrated_bytes: 0.0,
            max_amb,
            max_dram,
            ambient_sum: 0.0,
            ambient_samples: 0,
            residency: BTreeMap::new(),
            trace: Vec::new(),
            channel_throttle_s: vec![0.0; engine.mem.logical_channels],
            plan_streak: 0,
            ff_allowed: options.fast_forward && !config.record_temp_trace,
            wants_field: policy.observes_field(),
            stats: CellRunStats::default(),
            fp: Vec::new(),
            col_scratch: Vec::new(),
            mix,
            policy,
            table,
            scene,
        }
    }
}

/// One lockstep lane: the cells whose scenes share a device stack, a step
/// length and an ambient time constant, plus the shared cell-major
/// temperature/peak matrix they step over. Member position `c` owns matrix
/// column `c`; removing a member swap-removes its column (a pure copy, so
/// the surviving cells' bits are untouched).
#[derive(Debug)]
struct Lane {
    members: Vec<usize>,
    /// Column capacity (the member count at allocation time).
    stride: usize,
    rows: usize,
    depth: usize,
    /// Row-major `rows × stride` matrices, column = cell.
    temps: Vec<f64>,
    peaks: Vec<f64>,
    /// Per-position scratch: `depth × stride` fixed-point stable temps.
    stable: Vec<f64>,
    /// Per-window scratch: each member's post-step ambient.
    amb: Vec<f64>,
    /// Per-position scratch: the stack's layer power split.
    watts: Vec<f64>,
    /// `positions × stride` buffer/DRAM window powers, column = cell.
    /// Window powers only change when a cell's plan changes, so these are
    /// rewritten per column on plan change instead of gathered per window.
    wamb: Vec<f64>,
    wdram: Vec<f64>,
    /// Whether the stack routes buffer watts to layer 0 and DRAM watts to
    /// layer 1 verbatim (the 2-layer FBDIMM case): the RC sweep then skips
    /// the per-cell power split entirely.
    identity_split: bool,
    /// Per-window scratch: each member's running hottest buffer / DRAM
    /// temperature, accumulated inside the RC row sweep.
    max_buffer: Vec<f64>,
    max_dram: Vec<f64>,
    /// Whether the lane's shared stack has a buffer die (`false` ⇒ the
    /// observation reports `NaN` for the buffer maximum).
    has_buffer: bool,
    ambient_alpha: f64,
    layer_alphas: Vec<f64>,
}

impl Lane {
    /// Copies member `j`'s temperature column into `out`.
    fn copy_temp_column(&self, j: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.rows).map(|r| self.temps[r * self.stride + j]));
    }

    /// Copies member `j`'s peak column into `out`.
    fn copy_peak_column(&self, j: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.rows).map(|r| self.peaks[r * self.stride + j]));
    }

    /// Removes member `j`, moving the last member's column into slot `j`.
    fn remove(&mut self, j: usize) {
        let last = self.members.len() - 1;
        if j != last {
            for r in 0..self.rows {
                let base = r * self.stride;
                self.temps[base + j] = self.temps[base + last];
                self.peaks[base + j] = self.peaks[base + last];
            }
            for pos in 0..self.rows / self.depth {
                let base = pos * self.stride;
                self.wamb[base + j] = self.wamb[base + last];
                self.wdram[base + j] = self.wdram[base + last];
            }
            // The fused post+pre traversal removes a member *before* the
            // moved last member's post-step bookkeeping has read its
            // per-window maxima, so those columns move too.
            self.max_buffer[j] = self.max_buffer[last];
            self.max_dram[j] = self.max_dram[last];
        }
        self.members.swap_remove(j);
    }

    /// Rewrites member `j`'s window-power column (after a plan change).
    fn write_power_column(&mut self, j: usize, positions: &[FbdimmPowerBreakdown]) {
        for (pos, p) in positions.iter().enumerate() {
            self.wamb[pos * self.stride + j] = p.amb_watts;
            self.wdram[pos * self.stride + j] = p.dram_watts;
        }
    }
}

/// Groups cells into lanes and seeds each lane's matrices from the cells'
/// freshly built scenes.
fn build_lanes(states: &[CellState]) -> Vec<Lane> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, st) in states.iter().enumerate() {
        let step_bits = st.step_s.to_bits();
        let tau_bits = st.scene.ambient_params().tau_cpu_dram_s.to_bits();
        let found = groups.iter_mut().find(|g| {
            let rep = &states[g[0]];
            rep.step_s.to_bits() == step_bits
                && rep.scene.ambient_params().tau_cpu_dram_s.to_bits() == tau_bits
                && rep.scene.topology() == st.scene.topology()
        });
        match found {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups
        .into_iter()
        .map(|members| {
            let rep = &states[members[0]];
            let depth = rep.scene.depth();
            let positions = rep.scene.len();
            let rows = positions * depth;
            let stride = members.len();
            let step_s = rep.step_s;
            let tau_s = rep.scene.ambient_params().tau_cpu_dram_s;
            let mut temps = vec![0.0; rows * stride];
            let mut peaks = vec![0.0; rows * stride];
            let mut wamb = vec![0.0; positions * stride];
            let mut wdram = vec![0.0; positions * stride];
            // Seed the per-member maxima from the initial field so a
            // first-window scalar observation (before any lane sweep has
            // refreshed the accumulators) sees the same maxima a fresh
            // `observe` would.
            let layers = rep.scene.topology().layers();
            let mut max_buffer = vec![f64::NEG_INFINITY; stride];
            let mut max_dram = vec![f64::NEG_INFINITY; stride];
            for (c, &cell) in members.iter().enumerate() {
                for (r, (&t, &p)) in
                    states[cell].scene.layer_temps_flat().iter().zip(states[cell].scene.layer_peaks_flat()).enumerate()
                {
                    temps[r * stride + c] = t;
                    peaks[r * stride + c] = p;
                    match layers[r % depth].kind {
                        DeviceLayerKind::Buffer => max_buffer[c] = max_buffer[c].max(t),
                        DeviceLayerKind::Dram => max_dram[c] = max_dram[c].max(t),
                    }
                }
                for (pos, p) in states[cell].window.positions.iter().enumerate() {
                    wamb[pos * stride + c] = p.amb_watts;
                    wdram[pos * stride + c] = p.dram_watts;
                }
            }
            let layer_alphas: Vec<f64> =
                rep.scene.topology().layers().iter().map(|l| ThermalNode::decay_alpha(l.tau_s, step_s)).collect();
            Lane {
                stride,
                rows,
                depth,
                temps,
                peaks,
                stable: vec![0.0; depth * stride],
                amb: vec![0.0; stride],
                watts: vec![0.0; depth],
                wamb,
                wdram,
                identity_split: rep.scene.topology().is_identity_split(),
                max_buffer,
                max_dram,
                has_buffer: rep.scene.topology().has_buffer(),
                ambient_alpha: ThermalNode::decay_alpha(tau_s, step_s),
                layer_alphas,
                members,
            }
        })
        .collect()
}

/// The per-cell pre-step for lane member `j`: loop condition (finalizing a
/// finished cell), DTM decision (+ fast-forward engagement), batch
/// progress, and the cell's ambient step (the first thing
/// [`DimmThermalScene::step`] does) — each operation in exactly the order
/// of [`SimEngine::run`]. Returns `true` if the member stayed in the lane
/// (the caller advances to `j + 1`), `false` if it was finalized or
/// fast-forwarded out (slot `j` now holds the previously-last member).
fn member_pre(
    lane: &mut Lane,
    j: usize,
    engines: &[SimEngine<'_>],
    states: &mut [CellState],
    options: &BatchOptions,
    results: &mut [Option<(MemSpotResult, CellRunStats)>],
) -> bool {
    let cell = lane.members[j];
    let engine = &engines[cell];
    let cfg = engine.config;
    let st = &mut states[cell];
    {
        if st.batch.is_complete() || st.time_s >= cfg.max_sim_time_s {
            lane.copy_temp_column(j, &mut st.col_scratch);
            st.scene.set_layer_temps(&st.col_scratch);
            lane.copy_peak_column(j, &mut st.col_scratch);
            st.scene.set_layer_peaks(&st.col_scratch);
            results[cell] = Some(finalize(st, engine));
            lane.remove(j);
            return false;
        }
        st.overhead_s = 0.0;
        if st.time_s + 1e-12 >= st.next_dtm_s {
            if st.wants_field {
                st.scene.observe_lane_into(&lane.temps, lane.stride, j, &mut st.observation);
            } else {
                // Scalar policies read only the device maxima and the
                // ambient; the maxima are exactly the lane sweep's running
                // accumulators for this member (`f64::max` over the same
                // node set), so the full per-position field synthesis is
                // skipped. Spatial fields of the observation go stale and
                // must not be read (`DtmPolicy::observes_field`).
                st.observation.max_amb_c = if lane.has_buffer { lane.max_buffer[j] } else { f64::NAN };
                st.observation.max_dram_c = lane.max_dram[j];
                st.observation.ambient_c = st.scene.ambient_c();
            }
            let new_plan = st.policy.decide(&st.observation, cfg.dtm_interval_s);
            if new_plan != st.plan {
                st.plan_streak = 0;
                st.overhead_s = cfg.dtm_overhead_s;
                if new_plan.mode != st.mode {
                    st.mode = new_plan.mode;
                    st.mode_key = ModeKey::from_mode(&st.mode);
                    st.point = st.table.point(&st.mode);
                    st.progressing = st.mode.makes_progress() && st.point.instr_rate_total > 0.0;
                }
                st.plan = new_plan;
                if st.plan.is_scalar() {
                    st.plan_stats = PlanTrafficStats::identity();
                    st.window = engine.window_power(
                        &st.scene,
                        &st.idle,
                        &st.point,
                        &st.point.dimm_traffic,
                        &st.mode,
                        st.progressing,
                    );
                } else {
                    st.plan_stats = st.plan.apply_traffic_into(
                        &st.point.dimm_traffic,
                        engine.mem.logical_channels,
                        engine.mem.dimms_per_channel,
                        &mut st.plan_traffic,
                    );
                    st.window =
                        engine.window_power(&st.scene, &st.idle, &st.point, &st.plan_traffic, &st.mode, st.progressing);
                }
                lane.write_power_column(j, &st.window.positions);
            } else {
                st.plan_streak = st.plan_streak.saturating_add(1);
                if st.ff_allowed
                    && st.plan_streak >= options.steady_decisions
                    && (st.plan_streak - options.steady_decisions).is_multiple_of(FF_CHECK_PERIOD)
                    && ff_engages(lane, j, st, options)
                {
                    results[cell] = Some(fast_forward(lane, j, st, engine));
                    lane.remove(j);
                    return false;
                }
            }
            st.next_dtm_s += cfg.dtm_interval_s;
        }
        let effective_s = (st.step_s - st.overhead_s).max(0.0);
        if st.progressing {
            let instr = st.point.instr_rate_total * st.plan_stats.service_scale * effective_s;
            st.total_instructions += instr;
            st.total_bytes += st.point.total_gbps() * st.plan_stats.service_scale * 1e9 * effective_s;
            st.total_misses += st.point.l2_misses_per_instr * instr;
            st.migrated_bytes += st.plan_stats.migrated_gbps * 1e9 * effective_s;
            for core in 0..engine.cpu.cores {
                let share = st.full_shares.get(core).copied().unwrap_or(0.0);
                if share > 0.0 {
                    st.batch.retire(core, (instr * share) as u64);
                }
            }
        }
        lane.amb[j] = st.scene.step_ambient(st.window.v_ipc, lane.ambient_alpha);
    }
    true
}

/// The per-cell post-step bookkeeping for lane member `j`, mirroring the
/// tail of the per-cell window loop (energy, maxima, residency, throttle
/// accounting, trace, clock).
fn member_post(lane: &Lane, j: usize, engines: &[SimEngine<'_>], states: &mut [CellState]) {
    let cell = lane.members[j];
    let cfg = engines[cell].config;
    let st = &mut states[cell];
    st.energy.add(st.window.mem_w, st.window.cpu_w, st.step_s);
    let amb_now = if lane.has_buffer { lane.max_buffer[j] } else { f64::NAN };
    let dram_now = lane.max_dram[j];
    st.max_amb = st.max_amb.max(amb_now);
    st.max_dram = st.max_dram.max(dram_now);
    st.ambient_sum += st.scene.ambient_c();
    st.ambient_samples += 1;
    *st.residency.entry(st.mode_key).or_insert(0.0) += st.step_s;
    for (channel, throttled_s) in st.channel_throttle_s.iter_mut().enumerate() {
        if st.plan.throttles_channel(channel) {
            *throttled_s += st.step_s;
        }
    }
    if cfg.record_temp_trace && st.time_s + 1e-12 >= st.next_trace_s {
        st.trace.push(TempSample {
            time_s: st.time_s,
            amb_c: amb_now,
            dram_c: dram_now,
            ambient_c: st.scene.ambient_c(),
            active_cores: st.mode.active_cores,
            freq_ghz: st.mode.op.freq_ghz,
        });
        st.next_trace_s += cfg.temp_trace_interval_s;
    }
    st.time_s += st.step_s;
    st.stats.stepped_windows += 1;
}

/// The pre-step pass over a whole lane (the first window's phase A).
fn lane_pre(
    lane: &mut Lane,
    engines: &[SimEngine<'_>],
    states: &mut [CellState],
    options: &BatchOptions,
    results: &mut [Option<(MemSpotResult, CellRunStats)>],
) {
    let mut j = 0;
    while j < lane.members.len() {
        if member_pre(lane, j, engines, states, options, results) {
            j += 1;
        }
    }
}

/// One fused traversal doing each member's post-step bookkeeping for the
/// window just stepped and then its pre-step for the next window — the
/// per-cell operation order of [`SimEngine::run`] is preserved exactly
/// (cell `i`'s window-`k` tail always precedes its window-`k+1` head; cells
/// are mutually independent, so their interleaving is free to differ).
fn lane_post_pre(
    lane: &mut Lane,
    engines: &[SimEngine<'_>],
    states: &mut [CellState],
    options: &BatchOptions,
    results: &mut [Option<(MemSpotResult, CellRunStats)>],
) {
    let mut j = 0;
    while j < lane.members.len() {
        member_post(lane, j, engines, states);
        if member_pre(lane, j, engines, states, options, results) {
            j += 1;
        }
    }
}

/// The fused RC update over a whole lane — position-major contiguous
/// sweeps over all cells at once (the vectorized hot loop this tier exists
/// for). On identity-split stacks the per-element stable temperature is
/// computed inline as `ambient + w_buffer·ψ_l0 + w_dram·ψ_l1`, the exact
/// float-op sequence of `DimmThermalScene::step`, so the bits match the
/// per-cell engine; other stacks split each cell's watts into the small
/// `depth × stride` stable scratch first. The sweep also accumulates each
/// cell's per-device-kind running maximum of the freshly stepped
/// temperatures — `f64::max` over a fixed set is order-independent, so the
/// per-cell values carry bits identical to a post-step scene fold.
fn lane_rc(lane: &mut Lane, states: &[CellState]) {
    {
        let Lane {
            members,
            stride,
            depth,
            temps,
            peaks,
            stable,
            amb,
            watts,
            wamb,
            wdram,
            identity_split,
            layer_alphas,
            max_buffer,
            max_dram,
            ..
        } = lane;
        let (stride, depth) = (*stride, *depth);
        let n = members.len();
        if n > 0 {
            let topology = states[members[0]].scene.topology();
            let layers = topology.layers();
            max_buffer[..n].fill(f64::NEG_INFINITY);
            max_dram[..n].fill(f64::NEG_INFINITY);
            for pos in 0..temps.len() / (depth * stride) {
                let wa = &wamb[pos * stride..pos * stride + n];
                let wd = &wdram[pos * stride..pos * stride + n];
                if !*identity_split {
                    for c in 0..n {
                        topology.split_watts_into(wa[c], wd[c], watts);
                        for (l, stable_row) in stable.chunks_exact_mut(stride).enumerate() {
                            let mut s = amb[c];
                            for (w, psi) in watts.iter().zip(topology.psi_row(l)) {
                                s += w * psi;
                            }
                            stable_row[c] = s;
                        }
                    }
                }
                for l in 0..depth {
                    let alpha = layer_alphas[l];
                    let row = (pos * depth + l) * stride;
                    let t_row = &mut temps[row..row + n];
                    let p_row = &mut peaks[row..row + n];
                    let m_row = match layers[l].kind {
                        DeviceLayerKind::Buffer => &mut max_buffer[..n],
                        DeviceLayerKind::Dram => &mut max_dram[..n],
                    };
                    if *identity_split {
                        let psi = topology.psi_row(l);
                        let (psi_b, psi_d) = (psi[0], psi[1]);
                        for i in 0..n {
                            let s = amb[i] + wa[i] * psi_b + wd[i] * psi_d;
                            let t = &mut t_row[i];
                            *t += (s - *t) * alpha;
                            p_row[i] = p_row[i].max(*t);
                            m_row[i] = m_row[i].max(*t);
                        }
                    } else {
                        let s_row = &stable[l * stride..l * stride + n];
                        for (((t, pk), s), m) in t_row.iter_mut().zip(p_row.iter_mut()).zip(s_row).zip(m_row) {
                            *t += (*s - *t) * alpha;
                            *pk = pk.max(*t);
                            *m = m.max(*t);
                        }
                    }
                }
            }
        }
    }
}

/// Whether the cell at lane column `j` satisfies every fast-forward
/// condition: a provably steady policy, an ambient at its fixed point and
/// every layer within ε of its RC fixed point (left in `st.fp` for the
/// jump). The streak and trace conditions are checked by the caller.
fn ff_engages(lane: &Lane, j: usize, st: &mut CellState, options: &BatchOptions) -> bool {
    let drift_c = 2.0 * options.steady_epsilon_c;
    if !st.policy.is_steady(&st.observation, &st.plan, drift_c) {
        return false;
    }
    let stable_ambient = st.scene.ambient_params().stable_ambient_c(st.window.v_ipc);
    // `!(x <= eps)` deliberately refuses to fast-forward on NaN.
    let ambient_settled = (st.scene.ambient_c() - stable_ambient).abs() <= AMBIENT_FF_EPS_C;
    if !ambient_settled {
        return false;
    }
    st.scene.fixed_point_into(&st.window.positions, st.window.v_ipc, &mut st.fp);
    (0..lane.rows).all(|r| (lane.temps[r * lane.stride + j] - st.fp[r]).abs() <= options.steady_epsilon_c)
}

/// Replays the cell's remaining windows in closed form and finalizes it.
///
/// The plan is frozen (guaranteed by [`DtmPolicy::is_steady`] under the 2ε
/// drift bound), so every remaining window carries the same power, zero DTM
/// overhead and the same per-core retire rates. Batch completion is
/// resolved event-by-event: windows in which no job copy can possibly
/// finish are bulk-retired in one call per core (pure subtraction — order
/// cannot matter), and each window in which a copy *does* finish is retired
/// literally, core by core, so the round-robin refill from the pending
/// queue interleaves exactly as in the stepped run. Simulated time advances
/// by the literal repeated additions throughout, keeping `running_time_s`
/// and the total window count bit-identical.
fn fast_forward(lane: &Lane, j: usize, st: &mut CellState, engine: &SimEngine<'_>) -> (MemSpotResult, CellRunStats) {
    let cfg = engine.config;
    let cores = engine.cpu.cores;
    let step = st.step_s;
    let instr = st.point.instr_rate_total * st.plan_stats.service_scale * step;
    let bytes = st.point.total_gbps() * st.plan_stats.service_scale * 1e9 * step;
    let misses = st.point.l2_misses_per_instr * instr;
    let migrated = st.plan_stats.migrated_gbps * 1e9 * step;
    let rates: Vec<u64> = (0..cores)
        .map(|core| {
            let share = st.full_shares.get(core).copied().unwrap_or(0.0);
            if share > 0.0 {
                (instr * share) as u64
            } else {
                0
            }
        })
        .collect();
    let shares_positive: Vec<bool> =
        (0..cores).map(|core| st.full_shares.get(core).copied().unwrap_or(0.0) > 0.0).collect();

    let mut w_total: u64 = 0;
    while !st.batch.is_complete() && st.time_s < cfg.max_sim_time_s {
        // Windows until the earliest possible job-copy completion (none if
        // the cell makes no progress or no core retires instructions).
        let target: Option<u64> = if st.progressing {
            (0..cores)
                .filter(|&core| rates[core] > 0)
                .filter_map(|core| st.batch.slot(core).map(|s| s.remaining_instructions.div_ceil(rates[core]).max(1)))
                .min()
        } else {
            None
        };
        let mut m: u64 = 0;
        match target {
            Some(t) => {
                while m < t && st.time_s < cfg.max_sim_time_s {
                    st.time_s += step;
                    m += 1;
                }
            }
            None => {
                while st.time_s < cfg.max_sim_time_s {
                    st.time_s += step;
                    m += 1;
                }
            }
        }
        if m == 0 {
            break;
        }
        let mf = m as f64;
        if st.progressing {
            st.total_instructions += instr * mf;
            st.total_bytes += bytes * mf;
            st.total_misses += misses * mf;
            st.migrated_bytes += migrated * mf;
            if target == Some(m) {
                // `m - 1` completion-free windows in bulk, then the
                // completion window itself replayed literally.
                if m > 1 {
                    for core in 0..cores {
                        if shares_positive[core] {
                            st.batch.retire(core, rates[core] * (m - 1));
                        }
                    }
                }
                for core in 0..cores {
                    if shares_positive[core] {
                        st.batch.retire(core, rates[core]);
                    }
                }
            } else {
                for core in 0..cores {
                    if shares_positive[core] {
                        st.batch.retire(core, rates[core] * m);
                    }
                }
            }
        }
        st.energy.add(st.window.mem_w, st.window.cpu_w, step * mf);
        *st.residency.entry(st.mode_key).or_insert(0.0) += step * mf;
        for (channel, throttled_s) in st.channel_throttle_s.iter_mut().enumerate() {
            if st.plan.throttles_channel(channel) {
                *throttled_s += step * mf;
            }
        }
        st.ambient_sum += st.scene.ambient_c() * mf;
        st.ambient_samples += m;
        w_total += m;
    }

    // Closed-form end state: each layer decays geometrically toward its
    // fixed point, `t_end = t* + (t0 − t*)·λ^W` with `λ = 1 − α` (computed
    // as `exp(W·ln λ)`; `λ = 0` yields `exp(−∞) = 0`, i.e. exactly the
    // fixed point). Trajectories are monotone, so the running maxima and
    // peaks only need the endpoint folded in — `t0` already contributed
    // when its window stepped.
    st.col_scratch.clear();
    for r in 0..lane.rows {
        let t0 = lane.temps[r * lane.stride + j];
        let lambda = 1.0 - lane.layer_alphas[r % lane.depth];
        let decay = if w_total == 0 { 1.0 } else { (w_total as f64 * lambda.ln()).exp() };
        st.col_scratch.push(st.fp[r] + (t0 - st.fp[r]) * decay);
    }
    st.scene.set_layer_temps(&st.col_scratch);
    let peaks_end: Vec<f64> = (0..lane.rows).map(|r| lane.peaks[r * lane.stride + j].max(st.col_scratch[r])).collect();
    st.scene.set_layer_peaks(&peaks_end);
    let (amb_now, dram_now) = st.scene.max_temps_c();
    st.max_amb = st.max_amb.max(amb_now);
    st.max_dram = st.max_dram.max(dram_now);
    st.stats.fast_forwarded_windows = w_total;
    finalize(st, engine)
}

/// Folds a finished cell's accumulators into its result through the same
/// [`assemble_result`] path as the per-cell engine. The caller must have
/// synchronized the cell's scene (temperatures and peaks) beforehand.
fn finalize(st: &mut CellState, engine: &SimEngine<'_>) -> (MemSpotResult, CellRunStats) {
    let totals = RunTotals {
        completed: st.batch.is_complete(),
        time_s: st.time_s,
        total_instructions: st.total_instructions,
        total_bytes: st.total_bytes,
        total_misses: st.total_misses,
        migrated_bytes: st.migrated_bytes,
        max_amb: st.max_amb,
        max_dram: st.max_dram,
        ambient_sum: st.ambient_sum,
        ambient_samples: st.ambient_samples,
        residency: std::mem::take(&mut st.residency),
        trace: std::mem::take(&mut st.trace),
        channel_throttle_s: std::mem::take(&mut st.channel_throttle_s),
    };
    let result = assemble_result(&st.mix, engine.config, st.policy.as_ref(), &st.scene, &st.energy, totals);
    (result, st.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtm::acg::DtmAcg;
    use crate::dtm::no_limit::NoLimit;
    use crate::dtm::ts::DtmTs;
    use crate::thermal::params::{CoolingConfig, StackKind, ThermalLimits};
    use workloads::mixes;

    fn hardware() -> (CpuConfig, FbdimmConfig, FbdimmPowerModel, PaperCpuPower) {
        (
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            FbdimmPowerModel::paper_defaults(),
            PaperCpuPower::new(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn reference(
        cpu: &CpuConfig,
        mem: &FbdimmConfig,
        power: &FbdimmPowerModel,
        cpu_power: &PaperCpuPower,
        config: &MemSpotConfig,
        mix: &WorkloadMix,
        policy: &mut dyn DtmPolicy,
        store: Arc<CharStore>,
    ) -> MemSpotResult {
        let mut table = CharacterizationTable::with_store(
            cpu.clone(),
            *mem,
            mix.id.clone(),
            mix.apps.clone(),
            config.characterization_budget,
            store,
        )
        .with_rotation_threads(1);
        SimEngine::new(cpu, mem, power, cpu_power, config).run(&mut table, mix, policy)
    }

    #[test]
    fn literal_batched_results_are_bit_identical_to_the_per_cell_engine() {
        let (cpu, mem, power, cpu_power) = hardware();
        let store = Arc::new(CharStore::new());
        let limits = ThermalLimits::paper_fbdimm();
        let configs = [
            MemSpotConfig::tiny(CoolingConfig::aohs_1_5()),
            MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_integrated(None),
            MemSpotConfig::tiny(CoolingConfig::fdhs_1_0()).with_stack(StackKind::RankPair),
        ];
        let policies: [Box<dyn DtmPolicy>; 3] = [
            Box::new(NoLimit::new(&cpu)),
            Box::new(DtmTs::new(cpu.clone(), limits)),
            Box::new(DtmAcg::new(cpu.clone(), limits)),
        ];
        let cells: Vec<BatchCell> = configs
            .iter()
            .zip(policies)
            .map(|(config, policy)| {
                BatchCell::new(&cpu, &mem, *config, mixes::w1(), policy, Arc::clone(&store)).with_rotation_threads(1)
            })
            .collect();
        let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
        let batched = engine.run(cells, &BatchOptions::literal());

        let expectations: [Box<dyn DtmPolicy>; 3] = [
            Box::new(NoLimit::new(&cpu)),
            Box::new(DtmTs::new(cpu.clone(), limits)),
            Box::new(DtmAcg::new(cpu.clone(), limits)),
        ];
        for ((config, mut policy), (got, stats)) in configs.iter().zip(expectations).zip(&batched) {
            let want =
                reference(&cpu, &mem, &power, &cpu_power, config, &mixes::w1(), policy.as_mut(), Arc::clone(&store));
            assert_eq!(*got, want, "batched run diverged from the per-cell engine");
            assert_eq!(stats.fast_forwarded_windows, 0, "literal mode must never fast-forward");
            assert!(stats.stepped_windows > 0);
        }
    }

    #[test]
    fn lanes_group_by_stack_step_and_ambient() {
        let (cpu, mem, _, _) = hardware();
        let store = Arc::new(CharStore::new());
        let mk = |config: MemSpotConfig| {
            BatchCell::new(&cpu, &mem, config, mixes::w1(), Box::new(NoLimit::new(&cpu)), Arc::clone(&store))
        };
        let cells = vec![
            mk(MemSpotConfig::tiny(CoolingConfig::aohs_1_5())),
            mk(MemSpotConfig::tiny(CoolingConfig::aohs_1_5())),
            mk(MemSpotConfig::tiny(CoolingConfig::fdhs_1_0())),
            mk(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_stack(StackKind::RankPair)),
        ];
        let power = FbdimmPowerModel::paper_defaults();
        let cpu_power = PaperCpuPower::new();
        let configs: Vec<MemSpotConfig> = cells.iter().map(|c| c.config).collect();
        let sim_engines: Vec<SimEngine<'_>> =
            configs.iter().map(|c| SimEngine::new(&cpu, &mem, &power, &cpu_power, c)).collect();
        let opts = BatchOptions::default();
        let states: Vec<CellState> =
            cells.into_iter().zip(sim_engines.iter()).map(|(cell, e)| CellState::new(cell, e, &opts)).collect();
        let lanes = build_lanes(&states);
        // aohs FBDIMM pair share a lane; fdhs and the rank pair each get
        // their own (different resistances => different topology taus).
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes.iter().map(|l| l.members.len()).max(), Some(2));
        for lane in &lanes {
            assert_eq!(lane.stride, lane.members.len());
            assert_eq!(lane.temps.len(), lane.rows * lane.stride);
        }
    }
}
