//! Level-1 design-point characterization.
//!
//! The first level of the two-level simulator (Section 4.3.1) produces, for
//! every workload mix and every running mode the DTM schemes can select, the
//! performance and memory-throughput numbers the second level replays:
//! aggregate instruction rate, per-core weights, read/write throughput, the
//! per-DIMM local/bypass traffic split and the shared-cache miss statistics.
//! [`CharacterizationTable`] builds these points lazily (one closed-loop
//! `cpu-model` + `fbdimm-sim` run per distinct mode) and caches them — the
//! analogue of the paper's `Wi × D` trace set.

use std::collections::HashMap;

use cpu_model::{CpuConfig, MulticoreSim, RunMeasurement, RunningMode};
use fbdimm_sim::{DimmTraffic, FbdimmConfig};
use workloads::AppBehavior;

/// One characterized design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CharPoint {
    /// The running mode this point describes.
    pub mode: RunningMode,
    /// Aggregate committed-instruction rate, instructions per second.
    pub instr_rate_total: f64,
    /// Per-core share of the aggregate instruction rate (sums to 1 over the
    /// active cores; inactive cores are 0).
    pub core_share: Vec<f64>,
    /// Memory read throughput in GB/s.
    pub read_gbps: f64,
    /// Memory write throughput in GB/s.
    pub write_gbps: f64,
    /// Per-DIMM-position traffic split (for the AMB/DRAM power models).
    pub dimm_traffic: Vec<DimmTraffic>,
    /// Sum over cores of reference-cycle IPC (the Σ IPC term of Eq. 3.6).
    pub ipc_ref_sum: f64,
    /// Shared-L2 miss rate over the run.
    pub l2_miss_rate: f64,
    /// L2 misses per committed instruction.
    pub l2_misses_per_instr: f64,
    /// Memory traffic per committed instruction, bytes.
    pub bytes_per_instr: f64,
}

impl CharPoint {
    /// Derives a point from a raw first-level measurement.
    pub fn from_measurement(m: &RunMeasurement) -> Self {
        let total_instr: u64 = m.cores.iter().map(|c| c.instructions).sum();
        let total_misses: u64 = m.cores.iter().map(|c| c.l2_misses).sum();
        let secs = m.elapsed_secs().max(1e-12);
        let core_share = if total_instr == 0 {
            vec![0.0; m.cores.len()]
        } else {
            m.cores.iter().map(|c| c.instructions as f64 / total_instr as f64).collect()
        };
        CharPoint {
            mode: m.mode,
            instr_rate_total: total_instr as f64 / secs,
            core_share,
            read_gbps: m.traffic.read_gbps,
            write_gbps: m.traffic.write_gbps,
            dimm_traffic: m.traffic.dimms.clone(),
            ipc_ref_sum: m.total_ipc_ref(),
            l2_miss_rate: m.l2_miss_rate(),
            l2_misses_per_instr: if total_instr == 0 { 0.0 } else { total_misses as f64 / total_instr as f64 },
            bytes_per_instr: m.bytes_per_instruction(),
        }
    }

    /// Total memory throughput in GB/s.
    pub fn total_gbps(&self) -> f64 {
        self.read_gbps + self.write_gbps
    }

    /// An all-zero point for modes that make no progress.
    pub fn idle(mode: RunningMode, cores: usize, mem_cfg: &FbdimmConfig) -> Self {
        let dimm_traffic = (0..mem_cfg.logical_channels)
            .flat_map(|c| (0..mem_cfg.dimms_per_channel).map(move |d| (c, d)))
            .map(|(channel, dimm)| DimmTraffic { channel, dimm, ..Default::default() })
            .collect();
        CharPoint {
            mode,
            instr_rate_total: 0.0,
            core_share: vec![0.0; cores],
            read_gbps: 0.0,
            write_gbps: 0.0,
            dimm_traffic,
            ipc_ref_sum: 0.0,
            l2_miss_rate: 0.0,
            l2_misses_per_instr: 0.0,
            bytes_per_instr: 0.0,
        }
    }
}

/// Quantized key identifying a running mode (so nearly identical floating
/// point modes share one characterization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ModeKey {
    active_cores: usize,
    freq_mhz: u32,
    cap_mbps: u32,
}

impl ModeKey {
    fn from_mode(mode: &RunningMode) -> Self {
        ModeKey {
            active_cores: mode.active_cores,
            freq_mhz: (mode.op.freq_ghz * 1000.0).round() as u32,
            cap_mbps: match mode.bandwidth_cap {
                None => u32::MAX,
                Some(cap) => (cap / 1e6).round() as u32,
            },
        }
    }
}

/// Lazily-built, cached characterization of one workload mix across running
/// modes.
#[derive(Debug)]
pub struct CharacterizationTable {
    sim: MulticoreSim,
    apps: Vec<AppBehavior>,
    budget: u64,
    cache: HashMap<ModeKey, CharPoint>,
}

impl CharacterizationTable {
    /// Creates a table for the given mix of applications. `budget` is the
    /// number of demand L2 accesses simulated per design point (larger =
    /// more accurate, slower).
    pub fn new(cpu: CpuConfig, mem: FbdimmConfig, apps: Vec<AppBehavior>, budget: u64) -> Self {
        CharacterizationTable { sim: MulticoreSim::new(cpu, mem), apps, budget, cache: HashMap::new() }
    }

    /// Number of design points characterized so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no design point has been characterized yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The applications of the mix being characterized.
    pub fn apps(&self) -> &[AppBehavior] {
        &self.apps
    }

    /// Returns the characterization of `mode`, simulating it on first use.
    ///
    /// For modes that gate some cores (DTM-ACG / DTM-COMB), the schemes
    /// rotate the gated cores round-robin among the applications for
    /// fairness; the characterization therefore averages over all rotations
    /// of the application list, so every application's cache behaviour
    /// contributes to the gated design point.
    pub fn point(&mut self, mode: &RunningMode) -> CharPoint {
        let key = ModeKey::from_mode(mode);
        if let Some(p) = self.cache.get(&key) {
            return p.clone();
        }
        let point = if mode.makes_progress() {
            let active = mode.active_cores.min(self.apps.len()).min(self.sim.cpu_config().cores);
            if active < self.apps.len() {
                self.rotation_averaged_point(mode)
            } else {
                let m = self.sim.run(&self.apps, mode, self.budget);
                CharPoint::from_measurement(&m)
            }
        } else {
            CharPoint::idle(*mode, self.sim.cpu_config().cores, self.sim.memory_config())
        };
        self.cache.insert(key, point.clone());
        point
    }

    fn rotation_averaged_point(&mut self, mode: &RunningMode) -> CharPoint {
        let n = self.apps.len();
        let rotations = n.max(1);
        let cores = self.sim.cpu_config().cores;
        let budget = (self.budget / rotations as u64).max(1_000);

        let mut acc: Option<CharPoint> = None;
        let mut app_share = vec![0.0f64; cores.max(n)];
        for offset in 0..rotations {
            let rotated: Vec<_> = (0..n).map(|i| self.apps[(offset + i) % n].clone()).collect();
            let m = self.sim.run(&rotated, mode, budget);
            let p = CharPoint::from_measurement(&m);
            // Attribute each core's share back to the application that was
            // running on it under this rotation.
            for (core_pos, share) in p.core_share.iter().enumerate() {
                let app_index = (offset + core_pos) % n;
                app_share[app_index] += share / rotations as f64;
            }
            acc = Some(match acc {
                None => p,
                Some(mut a) => {
                    a.instr_rate_total += p.instr_rate_total;
                    a.read_gbps += p.read_gbps;
                    a.write_gbps += p.write_gbps;
                    a.ipc_ref_sum += p.ipc_ref_sum;
                    a.l2_miss_rate += p.l2_miss_rate;
                    a.l2_misses_per_instr += p.l2_misses_per_instr;
                    a.bytes_per_instr += p.bytes_per_instr;
                    for (d, pd) in a.dimm_traffic.iter_mut().zip(p.dimm_traffic.iter()) {
                        d.local_gbps += pd.local_gbps;
                        d.bypass_gbps += pd.bypass_gbps;
                        d.read_fraction += pd.read_fraction;
                    }
                    a
                }
            });
        }
        let mut avg = acc.expect("at least one rotation");
        let r = rotations as f64;
        avg.instr_rate_total /= r;
        avg.read_gbps /= r;
        avg.write_gbps /= r;
        avg.ipc_ref_sum /= r;
        avg.l2_miss_rate /= r;
        avg.l2_misses_per_instr /= r;
        avg.bytes_per_instr /= r;
        for d in avg.dimm_traffic.iter_mut() {
            d.local_gbps /= r;
            d.bypass_gbps /= r;
            d.read_fraction /= r;
        }
        // Shares are per application; they already average to 1 across apps.
        app_share.truncate(cores.max(n));
        avg.core_share = app_share;
        avg.mode = *mode;
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::mixes;

    fn table() -> CharacterizationTable {
        CharacterizationTable::new(
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            mixes::w1().apps,
            15_000,
        )
    }

    #[test]
    fn points_are_cached_and_deterministic() {
        let mut t = table();
        let full = RunningMode::full_speed(&CpuConfig::paper_quad_core());
        let a = t.point(&full);
        assert_eq!(t.len(), 1);
        let b = t.point(&full);
        assert_eq!(t.len(), 1, "second lookup must hit the cache");
        assert_eq!(a, b);
        assert!(!t.is_empty());
        assert_eq!(t.apps().len(), 4);
    }

    #[test]
    fn full_speed_point_has_plausible_w1_characteristics() {
        let mut t = table();
        let p = t.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core()));
        assert!(p.total_gbps() > 8.0, "W1 aggregate throughput {}", p.total_gbps());
        assert!(p.instr_rate_total > 1e9, "instruction rate {}", p.instr_rate_total);
        assert!(p.ipc_ref_sum > 0.2 && p.ipc_ref_sum < 8.0);
        assert!((p.core_share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.l2_miss_rate > 0.2 && p.l2_miss_rate <= 1.0);
        assert!(p.bytes_per_instr > 0.1);
        assert!(!p.dimm_traffic.is_empty());
    }

    #[test]
    fn gated_point_reduces_traffic_and_misses_per_instruction() {
        let mut t = table();
        let cpu = CpuConfig::paper_quad_core();
        let full = t.point(&RunningMode::full_speed(&cpu));
        let two = t.point(&RunningMode::full_speed(&cpu).with_active_cores(2));
        assert!(two.total_gbps() < full.total_gbps());
        assert!(two.l2_misses_per_instr < full.l2_misses_per_instr);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shut_off_mode_characterizes_as_idle_without_simulation() {
        let mut t = table();
        let cpu = CpuConfig::paper_quad_core();
        let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
        let p = t.point(&off);
        assert_eq!(p.instr_rate_total, 0.0);
        assert_eq!(p.total_gbps(), 0.0);
        assert_eq!(p.dimm_traffic.len(), 8);
    }

    #[test]
    fn mode_quantization_merges_equivalent_modes() {
        let mut t = table();
        let cpu = CpuConfig::paper_quad_core();
        let a = RunningMode::full_speed(&cpu).with_bandwidth_cap_gbps(6.4);
        let mut b = a;
        b.bandwidth_cap = Some(6.4e9 + 10.0); // negligible difference
        t.point(&a);
        t.point(&b);
        assert_eq!(t.len(), 1);
    }
}
