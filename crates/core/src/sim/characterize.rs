//! Level-1 design-point characterization.
//!
//! The first level of the two-level simulator (Section 4.3.1) produces, for
//! every workload mix and every running mode the DTM schemes can select, the
//! performance and memory-throughput numbers the second level replays:
//! aggregate instruction rate, per-core weights, read/write throughput, the
//! per-DIMM local/bypass traffic split and the shared-cache miss statistics.
//! Each point costs one closed-loop `cpu-model` + `fbdimm-sim` run — by far
//! the most expensive unit of work in a scenario sweep — so the module is
//! built around sharing them:
//!
//! * [`CharStore`] is the process-wide, thread-safe home of every computed
//!   point, keyed by [`CharStoreKey`] (mix id, quantized [`ModeKey`],
//!   characterization budget, memory geometry, hardware-config
//!   fingerprint). The level-1 outcome is
//!   independent of the cooling configuration and the DTM policy, so a sweep
//!   grid that revisits the same mix under different cooling setups or
//!   policies characterizes each design point exactly once per process.
//!   Concurrent requests for the same key are deduplicated (losers block on
//!   the winner's in-flight computation), and hit/miss counters expose how
//!   much work the sharing saved. The store is sharded by a process-stable
//!   key hash ([`key_hash`]) — [`STORE_SHARDS`] independent lock domains in
//!   memory, [`crate::sim::diskcache::DISK_SHARDS`] cache files on disk —
//!   so workers resolving different design points never contend on a lock
//!   or a stats cache line (see the shard map diagram on [`CharStore`]).
//! * [`CharStore::with_disk_cache`] extends the sharing **across
//!   processes**: points already in the cache file load at startup (and
//!   count as hits), and every point computed by this process is appended,
//!   so repeated sweeps, examples and CI runs skip level-1 entirely once
//!   the file is warm. The file is a versioned, line-delimited JSON format
//!   (see [`crate::sim::diskcache`]); entries are keyed by the full
//!   [`CharStoreKey`] — including the hardware fingerprint, so caches from
//!   different hardware configurations coexist without aliasing — and a
//!   format-version mismatch discards the file wholesale rather than
//!   risking stale semantics. Floats round-trip bit-exactly: a reloaded
//!   point is indistinguishable from a computed one.
//! * [`CharacterizationTable`] is the per-run view: it owns the `MulticoreSim`
//!   that computes missing points, keeps a lock-free local cache of
//!   `Arc<CharPoint>` handles for the modes it has already resolved, and
//!   falls through to the shared store on local misses. Lookups return
//!   `Arc<CharPoint>` — a cache hit never deep-clones the point's inner
//!   vectors. This is the analogue of the paper's `Wi × D` trace set.
//!   [`CharacterizationTable::points`] resolves a whole batch of modes at
//!   once, fanning the distinct missing design points (and, for a single
//!   gated point, its application rotations) across cores — closed-loop
//!   runs are independent and deterministic, so the parallelism changes
//!   wall-clock only, never a result.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cpu_model::{CpuConfig, MulticoreSim, RunMeasurement, RunningMode};
use fbdimm_sim::{DimmTraffic, FbdimmConfig};
use workloads::AppBehavior;

use crate::sim::diskcache::DiskCache;

/// One characterized design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CharPoint {
    /// The running mode this point describes.
    pub mode: RunningMode,
    /// Aggregate committed-instruction rate, instructions per second.
    pub instr_rate_total: f64,
    /// Per-core share of the aggregate instruction rate (sums to 1 over the
    /// active cores; inactive cores are 0).
    pub core_share: Vec<f64>,
    /// Memory read throughput in GB/s.
    pub read_gbps: f64,
    /// Memory write throughput in GB/s.
    pub write_gbps: f64,
    /// Per-DIMM-position traffic split (for the AMB/DRAM power models).
    pub dimm_traffic: Vec<DimmTraffic>,
    /// Sum over cores of reference-cycle IPC (the Σ IPC term of Eq. 3.6).
    pub ipc_ref_sum: f64,
    /// Shared-L2 miss rate over the run.
    pub l2_miss_rate: f64,
    /// L2 misses per committed instruction.
    pub l2_misses_per_instr: f64,
    /// Memory traffic per committed instruction, bytes.
    pub bytes_per_instr: f64,
}

impl CharPoint {
    /// Derives a point from a raw first-level measurement.
    pub fn from_measurement(m: &RunMeasurement) -> Self {
        let total_instr: u64 = m.cores.iter().map(|c| c.instructions).sum();
        let total_misses: u64 = m.cores.iter().map(|c| c.l2_misses).sum();
        let secs = m.elapsed_secs().max(1e-12);
        let core_share = if total_instr == 0 {
            vec![0.0; m.cores.len()]
        } else {
            m.cores.iter().map(|c| c.instructions as f64 / total_instr as f64).collect()
        };
        CharPoint {
            mode: m.mode,
            instr_rate_total: total_instr as f64 / secs,
            core_share,
            read_gbps: m.traffic.read_gbps,
            write_gbps: m.traffic.write_gbps,
            dimm_traffic: m.traffic.dimms.clone(),
            ipc_ref_sum: m.total_ipc_ref(),
            l2_miss_rate: m.l2_miss_rate(),
            l2_misses_per_instr: if total_instr == 0 { 0.0 } else { total_misses as f64 / total_instr as f64 },
            bytes_per_instr: m.bytes_per_instruction(),
        }
    }

    /// Total memory throughput in GB/s.
    pub fn total_gbps(&self) -> f64 {
        self.read_gbps + self.write_gbps
    }

    /// An all-zero point for modes that make no progress.
    pub fn idle(mode: RunningMode, cores: usize, mem_cfg: &FbdimmConfig) -> Self {
        let dimm_traffic = mem_cfg.idle_dimm_traffic();
        CharPoint {
            mode,
            instr_rate_total: 0.0,
            core_share: vec![0.0; cores],
            read_gbps: 0.0,
            write_gbps: 0.0,
            dimm_traffic,
            ipc_ref_sum: 0.0,
            l2_miss_rate: 0.0,
            l2_misses_per_instr: 0.0,
            bytes_per_instr: 0.0,
        }
    }
}

/// Quantized key identifying a running mode (so nearly identical floating
/// point modes share one characterization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModeKey {
    /// Number of active cores.
    pub active_cores: usize,
    /// Core frequency quantized to MHz.
    pub freq_mhz: u32,
    /// Bandwidth cap quantized to MB/s (`u32::MAX` = unlimited, 0 = off).
    pub cap_mbps: u32,
}

impl ModeKey {
    /// Quantizes a running mode.
    pub fn from_mode(mode: &RunningMode) -> Self {
        ModeKey {
            active_cores: mode.active_cores,
            freq_mhz: (mode.op.freq_ghz * 1000.0).round() as u32,
            cap_mbps: match mode.bandwidth_cap {
                None => u32::MAX,
                Some(cap) => (cap / 1e6).round() as u32,
            },
        }
    }

    /// Whether the quantized mode makes any forward progress (mirrors
    /// [`RunningMode::makes_progress`] at quantization granularity).
    pub fn makes_progress(&self) -> bool {
        self.active_cores > 0 && self.cap_mbps > 0
    }
}

/// Identity of one shared level-1 design point: the workload mix, the
/// quantized running mode, the characterization budget, the memory geometry
/// and a fingerprint of the full hardware configuration (everything the
/// closed-loop level-1 run depends on — notably *not* the cooling
/// configuration or the DTM policy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CharStoreKey {
    /// Workload mix identifier.
    pub mix_id: String,
    /// Quantized running mode.
    pub mode: ModeKey,
    /// Demand L2 accesses simulated per design point.
    pub budget: u64,
    /// Logical memory channels.
    pub channels: usize,
    /// DIMMs per channel.
    pub dimms_per_channel: usize,
    /// Fingerprint of the complete `CpuConfig` + `FbdimmConfig` pair, so
    /// simulators sharing a store with different hardware (cache sizes,
    /// DVFS ladders, memory timings, ...) but identical geometry never alias
    /// each other's points. Stable within a process, which is the store's
    /// lifetime.
    pub hw_fingerprint: u64,
}

/// FNV-1a fingerprint of the hardware configurations' canonical (`Debug`)
/// rendering — cheap, collision-resistant enough for a per-process cache
/// key, and automatically covers every field the configs grow.
fn hardware_fingerprint(cpu: &CpuConfig, mem: &FbdimmConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{cpu:?}\u{1f}{mem:?}").bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Number of in-memory shards in a [`CharStore`]. A power of two so the
/// shard index is a mask of [`key_hash`]'s low bits.
pub const STORE_SHARDS: usize = 16;

/// Deterministic FNV-1a hash of a store key's canonical field encoding.
///
/// This hash routes a key to both its in-memory [`CharStore`] shard (low
/// `log2(STORE_SHARDS)` bits) and its disk-cache shard file (low
/// `log2(DISK_SHARDS)` bits, see [`crate::sim::diskcache`]), so it must be
/// stable across processes and runs — `std`'s seeded `RandomState` would
/// scatter one process's cache entries across another process's shard
/// files. Fields are folded in declaration order with `0x1f` separators and
/// little-endian integer encodings.
pub fn key_hash(key: &CharStoreKey) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(key.mix_id.as_bytes());
    eat(&[0x1f]);
    eat(&(key.mode.active_cores as u64).to_le_bytes());
    eat(&key.mode.freq_mhz.to_le_bytes());
    eat(&key.mode.cap_mbps.to_le_bytes());
    eat(&key.budget.to_le_bytes());
    eat(&(key.channels as u64).to_le_bytes());
    eat(&(key.dimms_per_channel as u64).to_le_bytes());
    eat(&key.hw_fingerprint.to_le_bytes());
    hash
}

/// One lock domain of the sharded [`CharStore`]: a key map plus the shard's
/// own hit/miss counters, so neither lookups nor stat bumps on different
/// shards ever touch the same cache line under contention.
#[derive(Debug, Default)]
struct StoreShard {
    cells: Mutex<HashMap<CharStoreKey, Arc<OnceLock<Arc<CharPoint>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Thread-safe, process-wide store of level-1 characterization points.
///
/// Sweep cells that revisit the same `(mix, mode, budget, geometry)` design
/// point — e.g. the same workload under two cooling configurations, or two
/// DTM policies exploring the same running level — share one `Arc<CharPoint>`
/// instead of recomputing the closed-loop level-1 run. Concurrent first
/// requests for one key are collapsed: a single caller computes while the
/// others block on the entry's [`OnceLock`] and then share the result, so a
/// design point is simulated at most once per process no matter how the
/// sweep is parallelized.
///
/// The store is sharded so concurrent workers on *different* keys almost
/// never contend — each key hashes to one of [`STORE_SHARDS`] independent
/// lock domains, and the same hash routes disk persistence:
///
/// ```text
///                     key_hash(key)          (FNV-1a, process-stable)
///                          │
///        ┌─ low 4 bits ────┤
///        ▼                 └─ low 2 bits ─┐
///  in-memory shard 0..16                  ▼
///  ┌───────────────────────┐      disk shard 0..4
///  │ Mutex<HashMap<K, …>>  │      cache.<shard>.jsonl
///  │ hits / misses atomics │      (own lock + compaction)
///  └───────────────────────┘
/// ```
///
/// The per-key `OnceLock` in-flight dedup lives inside a shard's map, and
/// the hit/miss counters are per-shard atomics folded on read — a
/// read-mostly sweep bumps a shard-local counter instead of funneling every
/// stat update through one cache line.
#[derive(Debug)]
pub struct CharStore {
    shards: Box<[StoreShard; STORE_SHARDS]>,
    /// Optional disk backing: pre-loaded at construction, appended on miss.
    disk: Option<DiskCache>,
}

impl Default for CharStore {
    fn default() -> Self {
        CharStore { shards: Box::new(std::array::from_fn(|_| StoreShard::default())), disk: None }
    }
}

impl CharStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard holding `key`.
    fn shard(&self, key: &CharStoreKey) -> &StoreShard {
        &self.shards[key_hash(key) as usize & (STORE_SHARDS - 1)]
    }

    /// Creates a store backed by a results-cache file at `path`: every entry
    /// already on disk is served as a hit (zero level-1 work), and every
    /// point computed by this process is appended, so repeated sweeps,
    /// examples and CI runs skip level-1 entirely once the cache is warm.
    /// The file is versioned ([`crate::sim::diskcache::FORMAT_VERSION`]) and
    /// keyed by the full [`CharStoreKey`] including the hardware
    /// fingerprint; a stale format version discards the file, while entries
    /// from other hardware configurations simply never match.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading an existing cache file (a missing
    /// file is not an error — it is created on first append).
    pub fn with_disk_cache(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let (disk, entries) = DiskCache::open(path)?;
        let store = CharStore { disk: Some(disk), ..Self::default() };
        for (key, point) in entries {
            let mut cells = store.shard(&key).cells.lock().expect("CharStore lock poisoned");
            let cell: &Arc<OnceLock<Arc<CharPoint>>> = cells.entry(key).or_default();
            let _ = cell.set(Arc::new(point));
        }
        Ok(store)
    }

    /// Path of the disk cache backing this store, if any.
    pub fn disk_cache_path(&self) -> Option<&std::path::Path> {
        self.disk.as_ref().map(DiskCache::path)
    }

    /// Returns the point for `key`, running `compute` (at most once per key
    /// process-wide) if it is not stored yet. Freshly computed points are
    /// appended to the disk cache, when one is attached.
    pub fn get_or_compute(&self, key: CharStoreKey, compute: impl FnOnce() -> CharPoint) -> Arc<CharPoint> {
        let shard = self.shard(&key);
        let cell = {
            let mut cells = shard.cells.lock().expect("CharStore lock poisoned");
            Arc::clone(cells.entry(key.clone()).or_default())
        };
        // The shard lock is released before computing: a miss on one key
        // never blocks progress on another. Racing callers of the *same* key
        // block here until the winner's computation lands.
        let mut computed = false;
        let point = Arc::clone(cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        }));
        if computed {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(disk) = &self.disk {
                disk.append(&key, &point);
            }
        } else {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        point
    }

    /// Returns the point for `key` if it is already computed, without
    /// blocking on (or joining) an in-flight computation. A found point
    /// counts as a hit; an absent or still-computing one is not counted at
    /// all.
    pub fn peek(&self, key: &CharStoreKey) -> Option<Arc<CharPoint>> {
        let shard = self.shard(key);
        let cells = shard.cells.lock().expect("CharStore lock poisoned");
        let point = cells.get(key).and_then(|cell| cell.get()).cloned();
        drop(cells);
        if point.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        point
    }

    /// Number of lookups that found an already-computed point, folded over
    /// all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits.load(Ordering::Relaxed)).sum()
    }

    /// Number of lookups that had to run the level-1 simulation, folded over
    /// all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses.load(Ordering::Relaxed)).sum()
    }

    /// Number of design points stored, folded over all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.cells.lock().expect("CharStore lock poisoned").values().filter(|c| c.get().is_some()).count())
            .sum()
    }

    /// Whether the store holds no completed design point.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-run view of one workload mix's characterization across running modes.
///
/// The table owns the `MulticoreSim` that computes missing points and a
/// lock-free local cache of the modes it has already resolved; local misses
/// fall through to the shared [`CharStore`]. Lookups hand out
/// `Arc<CharPoint>` handles, never deep clones.
#[derive(Debug)]
pub struct CharacterizationTable {
    sim: MulticoreSim,
    mix_id: String,
    apps: Vec<AppBehavior>,
    budget: u64,
    hw_fingerprint: u64,
    store: Arc<CharStore>,
    local: HashMap<ModeKey, Arc<CharPoint>>,
    /// Worker threads for rotation-averaged (core-gated) design points; the
    /// rotations are independent deterministic simulations, so fanning them
    /// out changes wall-clock only, never results. Set to 1 inside engines
    /// that already parallelize at a coarser granularity.
    rotation_threads: usize,
}

impl CharacterizationTable {
    /// Creates a table for the given mix of applications with a private
    /// store (no cross-table sharing). `budget` is the number of demand L2
    /// accesses simulated per design point (larger = more accurate, slower).
    pub fn new(cpu: CpuConfig, mem: FbdimmConfig, apps: Vec<AppBehavior>, budget: u64) -> Self {
        Self::with_store(cpu, mem, String::new(), apps, budget, Arc::new(CharStore::new()))
    }

    /// Creates a table whose points live in (and are shared through) an
    /// external [`CharStore`]. `mix_id` identifies the application mix in
    /// the store key, so every table created for the same mix against the
    /// same store shares one set of design points.
    pub fn with_store(
        cpu: CpuConfig,
        mem: FbdimmConfig,
        mix_id: impl Into<String>,
        apps: Vec<AppBehavior>,
        budget: u64,
        store: Arc<CharStore>,
    ) -> Self {
        let hw_fingerprint = hardware_fingerprint(&cpu, &mem);
        CharacterizationTable {
            sim: MulticoreSim::new(cpu, mem),
            mix_id: mix_id.into(),
            apps,
            budget,
            hw_fingerprint,
            store,
            local: HashMap::new(),
            rotation_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }

    /// Sets the number of worker threads used for rotation-averaged design
    /// points (minimum 1). Results are bit-identical for any value; engines
    /// that already fan out at cell granularity pass 1 to avoid
    /// oversubscription.
    pub fn with_rotation_threads(mut self, threads: usize) -> Self {
        self.rotation_threads = threads.max(1);
        self
    }

    /// Number of design points this table has resolved so far.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// Whether no design point has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// The applications of the mix being characterized.
    pub fn apps(&self) -> &[AppBehavior] {
        &self.apps
    }

    /// The shared store backing this table.
    pub fn store(&self) -> &Arc<CharStore> {
        &self.store
    }

    /// Returns the characterization of `mode`, simulating it on first use
    /// (process-wide, when the backing store is shared).
    ///
    /// For modes that gate some cores (DTM-ACG / DTM-COMB), the schemes
    /// rotate the gated cores round-robin among the applications for
    /// fairness; the characterization therefore averages over all rotations
    /// of the application list, so every application's cache behaviour
    /// contributes to the gated design point.
    pub fn point(&mut self, mode: &RunningMode) -> Arc<CharPoint> {
        let key = ModeKey::from_mode(mode);
        if let Some(p) = self.local.get(&key) {
            return Arc::clone(p);
        }
        let store_key = self.store_key(key);
        let store = Arc::clone(&self.store);
        let sim = &mut self.sim;
        let apps = &self.apps;
        let budget = self.budget;
        let threads = self.rotation_threads;
        let point = store.get_or_compute(store_key, || compute_point(sim, apps, budget, threads, mode));
        self.local.insert(key, Arc::clone(&point));
        point
    }

    /// Resolves a whole batch of modes, computing the distinct *missing*
    /// design points concurrently (they are independent closed-loop runs, so
    /// the results are bit-identical to resolving them one at a time).
    /// Grid engines and benches use this to characterize a mode lattice at
    /// full hardware parallelism. Each finished point is registered through
    /// the shared store (and appended to its disk cache, when present);
    /// points another table or an earlier process already computed are
    /// adopted up front and never scheduled.
    pub fn points(&mut self, modes: &[RunningMode]) -> Vec<Arc<CharPoint>> {
        let mut missing: Vec<RunningMode> = Vec::new();
        let mut missing_keys: Vec<ModeKey> = Vec::new();
        for mode in modes {
            let key = ModeKey::from_mode(mode);
            if !self.local.contains_key(&key) && !missing_keys.contains(&key) {
                // Adopt points already present in the (possibly disk-backed)
                // shared store instead of scheduling work for them.
                if let Some(point) = self.store.peek(&self.store_key(key)) {
                    self.local.insert(key, point);
                    continue;
                }
                missing_keys.push(key);
                missing.push(*mode);
            }
        }
        if self.rotation_threads > 1 && missing.len() > 1 {
            let cpu = self.sim.cpu_config().clone();
            let mem = *self.sim.memory_config();
            let apps = &self.apps;
            let budget = self.budget;
            let store = &self.store;
            // A few threads per core, timesliced by the OS: design points
            // differ widely in cost (a gated point is several rotation
            // runs), and on small shared hosts letting many points progress
            // concurrently rebalances around stalls better than a static
            // assignment of points to workers. The worker count is capped so
            // a large mode lattice cannot spawn hundreds of threads (and
            // simulators) at once; surplus points queue behind a shared
            // cursor. Rotations inside a worker stay sequential — the
            // point-level workers already cover the cores.
            let workers = missing.len().min(self.rotation_threads.saturating_mul(4));
            let jobs: Vec<(RunningMode, CharStoreKey)> =
                missing.iter().zip(missing_keys.iter()).map(|(m, k)| (*m, self.store_key(*k))).collect();
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let resolved: Vec<Vec<(ModeKey, Arc<CharPoint>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cpu = cpu.clone();
                        let (jobs, cursor) = (&jobs, &cursor);
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            let mut sim: Option<MulticoreSim> = None;
                            loop {
                                let j = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((mode, store_key)) = jobs.get(j) else { break };
                                let point = store.get_or_compute(store_key.clone(), || {
                                    let sim = sim.get_or_insert_with(|| MulticoreSim::new(cpu.clone(), mem));
                                    compute_point(sim, apps, budget, 1, mode)
                                });
                                done.push((ModeKey::from_mode(mode), point));
                            }
                            done
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("batch point worker panicked")).collect()
            });
            for (key, point) in resolved.into_iter().flatten() {
                self.local.insert(key, point);
            }
        }
        modes.iter().map(|mode| self.point(mode)).collect()
    }

    fn store_key(&self, key: ModeKey) -> CharStoreKey {
        CharStoreKey {
            mix_id: self.mix_id.clone(),
            mode: key,
            budget: self.budget,
            channels: self.sim.memory_config().logical_channels,
            dimms_per_channel: self.sim.memory_config().dimms_per_channel,
            hw_fingerprint: self.hw_fingerprint,
        }
    }
}

/// Computes one design point on `sim` (`rotation_threads` only affects
/// wall-clock, never results).
fn compute_point(
    sim: &mut MulticoreSim,
    apps: &[AppBehavior],
    budget: u64,
    rotation_threads: usize,
    mode: &RunningMode,
) -> CharPoint {
    if mode.makes_progress() {
        let active = mode.active_cores.min(apps.len()).min(sim.cpu_config().cores);
        if active < apps.len() {
            rotation_averaged_point(sim, apps, budget, rotation_threads, mode)
        } else {
            let m = sim.run(apps, mode, budget);
            CharPoint::from_measurement(&m)
        }
    } else {
        CharPoint::idle(*mode, sim.cpu_config().cores, sim.memory_config())
    }
}

/// Characterizes a core-gated mode as the average over all cyclic rotations
/// of the application list (Section 4.3.1 fairness).
fn rotation_averaged_point(
    sim: &mut MulticoreSim,
    apps: &[AppBehavior],
    table_budget: u64,
    rotation_threads: usize,
    mode: &RunningMode,
) -> CharPoint {
    let n = apps.len();
    let rotations = n.max(1);
    let cores = sim.cpu_config().cores;
    let budget = (table_budget / rotations as u64).max(1_000);

    // Each rotation is an independent, deterministic closed-loop run (fresh
    // memory system and cores per run), so the rotations fan out across
    // threads; the results are folded *in rotation order* below, which keeps
    // every floating-point sum identical to a sequential pass. Applications
    // are handed to the simulator by reference — the rotated orders borrow
    // from `apps` instead of cloning the behaviour models once per rotation.
    let points: Vec<CharPoint> = if rotation_threads > 1 && rotations > 1 {
        let cpu = sim.cpu_config().clone();
        let mem = *sim.memory_config();
        let workers = rotation_threads.min(rotations);
        let mut slots: Vec<Option<CharPoint>> = (0..rotations).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cpu = cpu.clone();
                    scope.spawn(move || {
                        // One simulator per worker, reused across its
                        // rotations.
                        let mut sim = MulticoreSim::new(cpu, mem);
                        (w..rotations)
                            .step_by(workers)
                            .map(|offset| {
                                let rotated: Vec<&AppBehavior> = (0..n).map(|i| &apps[(offset + i) % n]).collect();
                                (offset, CharPoint::from_measurement(&sim.run_order(&rotated, mode, budget)))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (offset, point) in handle.join().expect("rotation worker panicked") {
                    slots[offset] = Some(point);
                }
            }
        });
        slots.into_iter().map(|p| p.expect("every rotation computed")).collect()
    } else {
        let mut points = Vec::with_capacity(rotations);
        for offset in 0..rotations {
            let rotated: Vec<&AppBehavior> = (0..n).map(|i| &apps[(offset + i) % n]).collect();
            let m = sim.run_order(&rotated, mode, budget);
            points.push(CharPoint::from_measurement(&m));
        }
        points
    };
    fold_rotations(points, cores, n, mode)
}

/// Folds per-rotation measurements into one averaged design point. The fold
/// runs in rotation order with fixed arithmetic, so the result is identical
/// however the rotations were scheduled.
fn fold_rotations(points: Vec<CharPoint>, cores: usize, n: usize, mode: &RunningMode) -> CharPoint {
    let rotations = points.len().max(1);
    let mut acc: Option<CharPoint> = None;
    let mut app_share = vec![0.0f64; cores.max(n)];
    for (offset, p) in points.into_iter().enumerate() {
        // Attribute each core's share back to the application that was
        // running on it under this rotation.
        for (core_pos, share) in p.core_share.iter().enumerate() {
            let app_index = (offset + core_pos) % n;
            app_share[app_index] += share / rotations as f64;
        }
        acc = Some(match acc {
            None => p,
            Some(mut a) => {
                a.instr_rate_total += p.instr_rate_total;
                a.read_gbps += p.read_gbps;
                a.write_gbps += p.write_gbps;
                a.ipc_ref_sum += p.ipc_ref_sum;
                a.l2_miss_rate += p.l2_miss_rate;
                a.l2_misses_per_instr += p.l2_misses_per_instr;
                a.bytes_per_instr += p.bytes_per_instr;
                for (d, pd) in a.dimm_traffic.iter_mut().zip(p.dimm_traffic.iter()) {
                    d.local_gbps += pd.local_gbps;
                    d.bypass_gbps += pd.bypass_gbps;
                    d.read_fraction += pd.read_fraction;
                }
                a
            }
        });
    }
    let mut avg = acc.expect("at least one rotation");
    let r = rotations as f64;
    avg.instr_rate_total /= r;
    avg.read_gbps /= r;
    avg.write_gbps /= r;
    avg.ipc_ref_sum /= r;
    avg.l2_miss_rate /= r;
    avg.l2_misses_per_instr /= r;
    avg.bytes_per_instr /= r;
    for d in avg.dimm_traffic.iter_mut() {
        d.local_gbps /= r;
        d.bypass_gbps /= r;
        d.read_fraction /= r;
    }
    // Shares are per application; they already average to 1 across apps.
    app_share.truncate(cores.max(n));
    avg.core_share = app_share;
    avg.mode = *mode;
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::mixes;

    fn table() -> CharacterizationTable {
        CharacterizationTable::new(
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            mixes::w1().apps,
            15_000,
        )
    }

    #[test]
    fn points_are_cached_and_deterministic() {
        let mut t = table();
        let full = RunningMode::full_speed(&CpuConfig::paper_quad_core());
        let a = t.point(&full);
        assert_eq!(t.len(), 1);
        let b = t.point(&full);
        assert_eq!(t.len(), 1, "second lookup must hit the cache");
        assert_eq!(a, b);
        assert!(!t.is_empty());
        assert_eq!(t.apps().len(), 4);
    }

    #[test]
    fn full_speed_point_has_plausible_w1_characteristics() {
        let mut t = table();
        let p = t.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core()));
        assert!(p.total_gbps() > 8.0, "W1 aggregate throughput {}", p.total_gbps());
        assert!(p.instr_rate_total > 1e9, "instruction rate {}", p.instr_rate_total);
        assert!(p.ipc_ref_sum > 0.2 && p.ipc_ref_sum < 8.0);
        assert!((p.core_share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.l2_miss_rate > 0.2 && p.l2_miss_rate <= 1.0);
        assert!(p.bytes_per_instr > 0.1);
        assert!(!p.dimm_traffic.is_empty());
    }

    #[test]
    fn gated_point_reduces_traffic_and_misses_per_instruction() {
        let mut t = table();
        let cpu = CpuConfig::paper_quad_core();
        let full = t.point(&RunningMode::full_speed(&cpu));
        let two = t.point(&RunningMode::full_speed(&cpu).with_active_cores(2));
        assert!(two.total_gbps() < full.total_gbps());
        assert!(two.l2_misses_per_instr < full.l2_misses_per_instr);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shut_off_mode_characterizes_as_idle_without_simulation() {
        let mut t = table();
        let cpu = CpuConfig::paper_quad_core();
        let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
        let p = t.point(&off);
        assert_eq!(p.instr_rate_total, 0.0);
        assert_eq!(p.total_gbps(), 0.0);
        assert_eq!(p.dimm_traffic.len(), 8);
    }

    #[test]
    fn mode_quantization_merges_equivalent_modes() {
        let mut t = table();
        let cpu = CpuConfig::paper_quad_core();
        let a = RunningMode::full_speed(&cpu).with_bandwidth_cap_gbps(6.4);
        let mut b = a;
        b.bandwidth_cap = Some(6.4e9 + 10.0); // negligible difference
        t.point(&a);
        t.point(&b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shared_store_deduplicates_points_across_tables() {
        let store = Arc::new(CharStore::new());
        let make = || {
            CharacterizationTable::with_store(
                CpuConfig::paper_quad_core(),
                FbdimmConfig::ddr2_667_paper(),
                "W1",
                mixes::w1().apps,
                15_000,
                Arc::clone(&store),
            )
        };
        let mut first = make();
        let mut second = make();
        let full = RunningMode::full_speed(&CpuConfig::paper_quad_core());
        let a = first.point(&full);
        assert_eq!((store.hits(), store.misses()), (0, 1));
        let b = second.point(&full);
        assert_eq!((store.hits(), store.misses()), (1, 1), "second table must reuse the stored point");
        assert!(Arc::ptr_eq(&a, &b), "a store hit must hand out the same allocation, not a deep clone");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn table_local_cache_hits_do_not_touch_the_store() {
        let mut t = table();
        let full = RunningMode::full_speed(&CpuConfig::paper_quad_core());
        let a = t.point(&full);
        let b = t.point(&full);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.store().misses(), 1);
        assert_eq!(t.store().hits(), 0, "repeat lookups are absorbed by the table-local cache");
    }

    #[test]
    fn concurrent_requests_for_one_key_compute_once() {
        let store = Arc::new(CharStore::new());
        let key = || CharStoreKey {
            mix_id: "W1".to_string(),
            mode: ModeKey { active_cores: 4, freq_mhz: 3200, cap_mbps: u32::MAX },
            budget: 1_000,
            channels: 2,
            dimms_per_channel: 4,
            hw_fingerprint: 0,
        };
        let computations = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let computations = Arc::clone(&computations);
                scope.spawn(move || {
                    store.get_or_compute(key(), || {
                        computations.fetch_add(1, Ordering::Relaxed);
                        CharPoint::idle(
                            RunningMode::full_speed(&CpuConfig::paper_quad_core()),
                            4,
                            &FbdimmConfig::ddr2_667_paper(),
                        )
                    });
                });
            }
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1, "exactly one thread computes");
        assert_eq!(store.misses(), 1);
        assert_eq!(store.hits(), 3);
    }

    /// A synthetic key for store-sharding tests: `n` varies the budget so
    /// distinct `n` produce distinct keys spread across shards.
    fn hammer_key(n: u64) -> CharStoreKey {
        CharStoreKey {
            mix_id: "W1".to_string(),
            mode: ModeKey { active_cores: 4, freq_mhz: 3200, cap_mbps: u32::MAX },
            budget: 1_000 + n,
            channels: 2,
            dimms_per_channel: 4,
            hw_fingerprint: 0,
        }
    }

    fn cheap_point() -> CharPoint {
        CharPoint::idle(RunningMode::full_speed(&CpuConfig::paper_quad_core()), 4, &FbdimmConfig::ddr2_667_paper())
    }

    #[test]
    fn key_hash_is_deterministic_and_spreads_keys_over_shards() {
        // The hash routes disk persistence, so it must be a pure function of
        // the key's fields — recomputing it must never disagree.
        for n in 0..64 {
            assert_eq!(key_hash(&hammer_key(n)), key_hash(&hammer_key(n)));
        }
        let shards: std::collections::HashSet<usize> =
            (0..64).map(|n| key_hash(&hammer_key(n)) as usize & (STORE_SHARDS - 1)).collect();
        assert!(shards.len() >= STORE_SHARDS / 2, "64 keys hit at least half the shards (got {})", shards.len());
        // Every key field must influence the hash.
        let base = hammer_key(0);
        let mut other = base.clone();
        other.mix_id = "W2".to_string();
        assert_ne!(key_hash(&base), key_hash(&other));
        let mut other = base.clone();
        other.mode.freq_mhz += 1;
        assert_ne!(key_hash(&base), key_hash(&other));
        let mut other = base.clone();
        other.hw_fingerprint += 1;
        assert_ne!(key_hash(&base), key_hash(&other));
    }

    #[test]
    fn stats_stay_exact_when_many_threads_hammer_many_keys() {
        // N threads × K keys: the per-shard counters, folded on read, must
        // account for exactly K misses and N·K−K hits — sharding the stats
        // must not lose or double-count a single lookup.
        const THREADS: u64 = 8;
        const KEYS: u64 = 24;
        let store = Arc::new(CharStore::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    // A per-thread deterministic key order (rotated by the
                    // thread index) keeps the interleavings diverse without
                    // any randomness.
                    for i in 0..KEYS {
                        let n = (i + t * 7) % KEYS;
                        store.get_or_compute(hammer_key(n), cheap_point);
                    }
                });
            }
        });
        assert_eq!(store.misses(), KEYS, "each key computes exactly once");
        assert_eq!(store.hits(), THREADS * KEYS - KEYS, "every other lookup is a hit");
        assert_eq!(store.len() as u64, KEYS);
    }

    #[test]
    fn sharded_store_hands_out_one_allocation_per_key_under_contention() {
        // Seeded multi-thread hammer: every thread resolves every key and
        // records the allocation it got; all threads must agree per key, and
        // peek must find every point afterwards.
        const THREADS: usize = 6;
        const KEYS: u64 = 16;
        let store = Arc::new(CharStore::new());
        let per_thread: Vec<Vec<Arc<CharPoint>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        (0..KEYS)
                            .map(|i| store.get_or_compute(hammer_key((i + t as u64) % KEYS), cheap_point))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("hammer thread panicked")).collect()
        });
        for t in 1..THREADS {
            for i in 0..KEYS as usize {
                // Thread t resolved key (i + t) % KEYS at slot i; thread 0
                // resolved key k at slot k.
                let key = (i + t) % KEYS as usize;
                assert!(
                    Arc::ptr_eq(&per_thread[0][key], &per_thread[t][i]),
                    "all threads share one allocation per key"
                );
            }
        }
        for n in 0..KEYS {
            assert!(store.peek(&hammer_key(n)).is_some(), "peek finds every hammered key");
        }
    }

    #[test]
    fn different_hardware_with_identical_geometry_never_aliases() {
        // Same mix, budget and channel geometry but a different CPU config:
        // the hardware fingerprint must keep the store entries apart.
        let store = Arc::new(CharStore::new());
        let mut paper = CharacterizationTable::with_store(
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            "W1",
            mixes::w1().apps,
            15_000,
            Arc::clone(&store),
        );
        let mut small_l2 = CpuConfig::paper_quad_core();
        small_l2.l2.capacity_bytes /= 4;
        let mut shrunk = CharacterizationTable::with_store(
            small_l2.clone(),
            FbdimmConfig::ddr2_667_paper(),
            "W1",
            mixes::w1().apps,
            15_000,
            Arc::clone(&store),
        );
        let full = RunningMode::full_speed(&CpuConfig::paper_quad_core());
        let a = paper.point(&full);
        let b = shrunk.point(&full);
        assert_eq!(store.misses(), 2, "distinct hardware must characterize separately");
        assert_eq!(store.hits(), 0);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(b.l2_miss_rate > a.l2_miss_rate, "a quarter-size L2 must miss more");
    }

    #[test]
    fn batch_points_match_sequential_points_exactly() {
        let cpu = CpuConfig::paper_quad_core();
        let full = RunningMode::full_speed(&cpu);
        let modes = [full, full.with_active_cores(2), full.with_bandwidth_cap_gbps(6.4)];
        let mut sequential = table();
        let expected: Vec<_> = modes.iter().map(|m| sequential.point(m)).collect();
        let mut batched = table();
        let got = batched.points(&modes);
        for (a, b) in expected.iter().zip(got.iter()) {
            assert_eq!(**a, **b, "parallel batch resolution must be bit-identical");
        }
        assert_eq!(batched.len(), 3);
        // A second batch over the same modes is served from the local cache.
        let again = batched.points(&modes);
        for (a, b) in got.iter().zip(again.iter()) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn batch_points_deduplicate_repeated_modes() {
        let cpu = CpuConfig::paper_quad_core();
        let full = RunningMode::full_speed(&cpu);
        let mut t = table();
        let got = t.points(&[full, full, full]);
        assert_eq!(got.len(), 3);
        assert!(Arc::ptr_eq(&got[0], &got[1]) && Arc::ptr_eq(&got[1], &got[2]));
        assert_eq!(t.store().misses(), 1, "one computation for three requests");
    }

    /// A unique temp file path for disk-cache tests.
    fn temp_cache_path(tag: &str) -> std::path::PathBuf {
        let unique = format!("memtherm_char_cache_{}_{}_{tag}.jsonl", std::process::id(), {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed)
        });
        std::env::temp_dir().join(unique)
    }

    /// Removes a test cache's base file and shard files.
    fn remove_cache_files(base: &std::path::Path) {
        use crate::sim::diskcache::{shard_path, DISK_SHARDS};
        let _ = std::fs::remove_file(base);
        for shard in 0..DISK_SHARDS {
            let _ = std::fs::remove_file(shard_path(base, shard));
        }
    }

    fn disk_table(path: &std::path::Path) -> (Arc<CharStore>, CharacterizationTable) {
        let store = Arc::new(CharStore::with_disk_cache(path).expect("open disk cache"));
        let table = CharacterizationTable::with_store(
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            "W1",
            mixes::w1().apps,
            15_000,
            Arc::clone(&store),
        );
        (store, table)
    }

    #[test]
    fn disk_cache_round_trips_points_bit_exactly_and_eliminates_misses() {
        let path = temp_cache_path("roundtrip");
        let cpu = CpuConfig::paper_quad_core();
        let full = RunningMode::full_speed(&cpu);
        let modes = [full, full.with_active_cores(2), full.with_bandwidth_cap_gbps(6.4)];

        // First process: cold cache, three misses, entries appended.
        let (store, mut table) = disk_table(&path);
        let computed: Vec<_> = modes.iter().map(|m| table.point(m)).collect();
        assert_eq!(store.misses(), 3);
        drop(table);
        drop(store);

        // Second process: warm cache — identical points, zero level-1 work.
        let (store2, mut table2) = disk_table(&path);
        assert_eq!(store2.len(), 3, "all entries load at startup");
        for (mode, original) in modes.iter().zip(computed.iter()) {
            let reloaded = table2.point(mode);
            assert_eq!(**original, *reloaded, "disk round-trip must be bit-identical");
        }
        assert_eq!(store2.misses(), 0, "a warm disk cache serves every lookup");
        assert_eq!(store2.hits(), 3);
        remove_cache_files(&path);
    }

    #[test]
    fn disk_cache_version_bump_invalidates_cleanly() {
        use crate::sim::diskcache::{shard_path, DISK_SHARDS};
        let path = temp_cache_path("version");
        {
            let (store, mut table) = disk_table(&path);
            table.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core()));
            assert_eq!(store.misses(), 1);
        }
        // Rewrite every shard file's header with a bumped version; entries
        // must be ignored.
        let bumped = format!(
            "{{\"format\": \"memtherm-char-cache\", \"version\": {}}}",
            crate::sim::diskcache::FORMAT_VERSION + 1
        );
        for shard in 0..DISK_SHARDS {
            let spath = shard_path(&path, shard);
            if let Ok(body) = std::fs::read_to_string(&spath) {
                let mut lines: Vec<&str> = body.lines().collect();
                lines[0] = &bumped;
                std::fs::write(&spath, lines.join("\n")).unwrap();
            }
        }

        let (store, mut table) = disk_table(&path);
        assert!(store.is_empty(), "a future format version must not be trusted");
        table.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core()));
        assert_eq!(store.misses(), 1, "the point is recomputed");
        drop(table);

        // The invalidated shard was rewritten: a third store sees the fresh
        // entry under the current version again.
        let (store3, _) = disk_table(&path);
        assert_eq!(store3.len(), 1);
        remove_cache_files(&path);
    }

    #[test]
    fn disk_cache_entries_of_other_hardware_never_alias() {
        let path = temp_cache_path("hw");
        {
            let (store, mut table) = disk_table(&path);
            table.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core()));
            assert_eq!(store.misses(), 1);
        }
        // Same mix/budget/geometry, different L2 size: the fingerprint in the
        // stored key must keep the entry from matching.
        let store = Arc::new(CharStore::with_disk_cache(&path).expect("open disk cache"));
        assert_eq!(store.len(), 1, "the entry itself still loads");
        let mut small_l2 = CpuConfig::paper_quad_core();
        small_l2.l2.capacity_bytes /= 4;
        let mut shrunk = CharacterizationTable::with_store(
            small_l2,
            FbdimmConfig::ddr2_667_paper(),
            "W1",
            mixes::w1().apps,
            15_000,
            Arc::clone(&store),
        );
        shrunk.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core()));
        assert_eq!(store.misses(), 1, "different hardware must recompute, not reuse");
        assert_eq!(store.hits(), 0);
        remove_cache_files(&path);
    }

    #[test]
    fn mode_key_progress_mirrors_running_mode() {
        let cpu = CpuConfig::paper_quad_core();
        let full = RunningMode::full_speed(&cpu);
        assert!(ModeKey::from_mode(&full).makes_progress());
        let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
        assert!(!ModeKey::from_mode(&off).makes_progress());
        let shut = full.with_bandwidth_cap_gbps(0.0);
        assert!(!ModeKey::from_mode(&shut).makes_progress());
    }
}
