//! Energy accounting for the second-level simulator.

/// Integrates memory and processor power over simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyAccumulator {
    memory_joules: f64,
    cpu_joules: f64,
    elapsed_s: f64,
}

impl EnergyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one interval of `dt_s` seconds at the given power draws.
    pub fn add(&mut self, memory_watts: f64, cpu_watts: f64, dt_s: f64) {
        debug_assert!(dt_s >= 0.0);
        self.memory_joules += memory_watts * dt_s;
        self.cpu_joules += cpu_watts * dt_s;
        self.elapsed_s += dt_s;
    }

    /// Total memory-subsystem energy in joules.
    pub fn memory_joules(&self) -> f64 {
        self.memory_joules
    }

    /// Total processor energy in joules.
    pub fn cpu_joules(&self) -> f64 {
        self.cpu_joules
    }

    /// Combined processor + memory energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.memory_joules + self.cpu_joules
    }

    /// Simulated time covered by the accumulator, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Average memory power over the covered time, watts.
    pub fn avg_memory_watts(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.memory_joules / self.elapsed_s
        }
    }

    /// Average processor power over the covered time, watts.
    pub fn avg_cpu_watts(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.cpu_joules / self.elapsed_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let mut e = EnergyAccumulator::new();
        e.add(80.0, 260.0, 10.0);
        assert!((e.memory_joules() - 800.0).abs() < 1e-9);
        assert!((e.cpu_joules() - 2_600.0).abs() < 1e-9);
        assert!((e.total_joules() - 3_400.0).abs() < 1e-9);
        assert!((e.elapsed_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn averages_divide_by_elapsed_time() {
        let mut e = EnergyAccumulator::new();
        e.add(50.0, 100.0, 2.0);
        e.add(100.0, 200.0, 2.0);
        assert!((e.avg_memory_watts() - 75.0).abs() < 1e-9);
        assert!((e.avg_cpu_watts() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_reports_zero_averages() {
        let e = EnergyAccumulator::new();
        assert_eq!(e.avg_memory_watts(), 0.0);
        assert_eq!(e.avg_cpu_watts(), 0.0);
        assert_eq!(e.total_joules(), 0.0);
    }
}
