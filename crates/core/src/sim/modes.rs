//! Thermal running levels: the mapping from emergency level to control
//! decision for every DTM scheme (Table 4.3).

use cpu_model::{CpuConfig, RunningMode};

use crate::dtm::emergency::EmergencyLevel;
use crate::dtm::policy::DtmScheme;

/// A thermal running level: an emergency level paired with the scheme that
/// interprets it. Mostly useful for reporting (mode residency statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThermalRunningLevel {
    /// The DTM scheme.
    pub scheme: DtmScheme,
    /// The emergency level driving the decision.
    pub level: EmergencyLevel,
}

impl std::fmt::Display for ThermalRunningLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.scheme, self.level)
    }
}

/// The DTM-BW bandwidth limits of Table 4.3, in GB/s, for levels L2..L4.
pub const BW_LIMITS_GBPS: [f64; 3] = [19.2, 12.8, 6.4];

/// Peak throughput of the paper's memory subsystem, GB/s: four fully
/// populated DDR2-667 FBDIMM channels at 6.4 GB/s each — the reference the
/// Table 4.3 caps (and the per-channel service fractions derived from
/// them, [`EmergencyLevel::service_fraction`]) are normalized against.
pub const PEAK_BANDWIDTH_GBPS: f64 = 25.6;

/// Returns the running mode a scheme selects at a given emergency level
/// (Table 4.3). The highest emergency level shuts the memory subsystem off
/// for every scheme.
pub fn scheme_mode(scheme: DtmScheme, level: EmergencyLevel, cpu: &CpuConfig) -> RunningMode {
    let full = RunningMode::full_speed(cpu);
    let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
    if level == EmergencyLevel::L5 {
        return off;
    }
    match scheme {
        DtmScheme::NoLimit => full,
        DtmScheme::Ts => full,
        // The spatial schemes actuate through their plans' service fractions
        // and steering weights; forced to a *global* level they fall back to
        // the DTM-BW ladder (their fail-safe).
        DtmScheme::Bw | DtmScheme::Cbw | DtmScheme::Mig => match level {
            EmergencyLevel::L1 => full,
            EmergencyLevel::L2 => full.with_bandwidth_cap_gbps(BW_LIMITS_GBPS[0]),
            EmergencyLevel::L3 => full.with_bandwidth_cap_gbps(BW_LIMITS_GBPS[1]),
            EmergencyLevel::L4 => full.with_bandwidth_cap_gbps(BW_LIMITS_GBPS[2]),
            EmergencyLevel::L5 => off,
        },
        DtmScheme::Acg => full.with_active_cores(cpu.cores.saturating_sub(level.index())),
        DtmScheme::Cdvfs => full.with_op(cpu.dvfs.point(level.index())),
        DtmScheme::Comb => match level {
            EmergencyLevel::L1 => full,
            EmergencyLevel::L2 => full.with_active_cores(3).with_op(cpu.dvfs.point(1)),
            EmergencyLevel::L3 => full.with_active_cores(2).with_op(cpu.dvfs.point(2)),
            EmergencyLevel::L4 => full.with_active_cores(2).with_op(cpu.dvfs.point(3)),
            EmergencyLevel::L5 => off,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuConfig {
        CpuConfig::paper_quad_core()
    }

    #[test]
    fn l1_is_always_full_speed() {
        let cpu = cpu();
        for scheme in [DtmScheme::Ts, DtmScheme::Bw, DtmScheme::Acg, DtmScheme::Cdvfs, DtmScheme::Comb] {
            let mode = scheme_mode(scheme, EmergencyLevel::L1, &cpu);
            assert_eq!(mode.active_cores, 4, "{scheme}");
            assert_eq!(mode.bandwidth_cap, None, "{scheme}");
            assert!((mode.op.freq_ghz - 3.2).abs() < 1e-9, "{scheme}");
        }
    }

    #[test]
    fn l5_shuts_the_memory_off_for_every_scheme() {
        let cpu = cpu();
        for scheme in [DtmScheme::Ts, DtmScheme::Bw, DtmScheme::Acg, DtmScheme::Cdvfs, DtmScheme::Comb] {
            let mode = scheme_mode(scheme, EmergencyLevel::L5, &cpu);
            assert!(!mode.makes_progress(), "{scheme}");
        }
    }

    #[test]
    fn bw_limits_match_table_4_3() {
        let cpu = cpu();
        let caps: Vec<_> = [EmergencyLevel::L2, EmergencyLevel::L3, EmergencyLevel::L4]
            .iter()
            .map(|&l| scheme_mode(DtmScheme::Bw, l, &cpu).bandwidth_cap.unwrap() / 1e9)
            .collect();
        assert_eq!(caps, vec![19.2, 12.8, 6.4]);
    }

    #[test]
    fn acg_sheds_one_core_per_level() {
        let cpu = cpu();
        let cores: Vec<_> = [EmergencyLevel::L1, EmergencyLevel::L2, EmergencyLevel::L3, EmergencyLevel::L4]
            .iter()
            .map(|&l| scheme_mode(DtmScheme::Acg, l, &cpu).active_cores)
            .collect();
        assert_eq!(cores, vec![4, 3, 2, 1]);
    }

    #[test]
    fn cdvfs_descends_the_dvfs_ladder() {
        let cpu = cpu();
        let freqs: Vec<_> = [EmergencyLevel::L1, EmergencyLevel::L2, EmergencyLevel::L3, EmergencyLevel::L4]
            .iter()
            .map(|&l| scheme_mode(DtmScheme::Cdvfs, l, &cpu).op.freq_ghz)
            .collect();
        assert_eq!(freqs, vec![3.2, 2.8, 1.6, 0.8]);
        // All four cores stay active at every non-shutdown level.
        for l in [EmergencyLevel::L2, EmergencyLevel::L3, EmergencyLevel::L4] {
            assert_eq!(scheme_mode(DtmScheme::Cdvfs, l, &cpu).active_cores, 4);
        }
    }

    #[test]
    fn comb_combines_gating_and_dvfs() {
        let cpu = cpu();
        let l3 = scheme_mode(DtmScheme::Comb, EmergencyLevel::L3, &cpu);
        assert_eq!(l3.active_cores, 2);
        assert!((l3.op.freq_ghz - 1.6).abs() < 1e-9);
    }

    #[test]
    fn running_level_display_is_compact() {
        let rl = ThermalRunningLevel { scheme: DtmScheme::Acg, level: EmergencyLevel::L3 };
        assert_eq!(rl.to_string(), "DTM-ACG@L3");
    }
}
