//! The window-stepping core of the second-level simulator.
//!
//! This is the first of the simulator's four execution tiers:
//!
//! 1. **Per-cell stepping** (this module): one [`SimEngine`] advances one
//!    design point window by window. It is the reference semantics — every
//!    other tier is defined as "bit-identical to this loop" — and the right
//!    tool for a single run or when a policy needs bespoke instrumentation.
//! 2. **Batched lockstep** ([`crate::sim::batch`]): many independent cells
//!    share one row-major temperature matrix and advance in lockstep lanes,
//!    turning the per-window RC update into contiguous row sweeps. Same
//!    bits, better memory behavior; the sweep harness uses it by default.
//! 3. **Lane-parallel stepping** (`BatchedSimEngine::run_with_workers`):
//!    the lanes of tier 2 fanned across OS threads, with dominant lanes
//!    split column-wise so every worker has work. Lanes never interact, so
//!    this is still bit-identical to tier 1.
//! 4. **Analytic fast-forward** (opt-in on the batched tiers): cells whose
//!    temperatures have reached their RC fixed point under an unchanging
//!    plan — or whose threshold policy has locked into a verified limit
//!    cycle — are finished in closed form, within 1e-9 of literal stepping
//!    rather than bit-identically.
//!
//! [`SimEngine`] owns the inner loop MEMSpot used to inline: every window it
//! converts the current design point's per-DIMM traffic into per-position
//! power (Eqs. 3.1–3.2), advances the stack-resolved [`DimmThermalScene`]
//! (Eqs. 3.3–3.6, with each position's power split over the configured
//! [`StackKind`](crate::thermal::params::StackKind)'s layers), integrates
//! energy and batch progress, and at every DTM interval hands the active
//! policy a
//! [`ThermalObservation`](crate::thermal::scene::ThermalObservation) — the
//! full sensed per-position, per-layer temperature field with the hottest
//! devices derived by arg-max — and receives an
//! [`ActuationPlan`](crate::dtm::plan::ActuationPlan) back. Scalar plans
//! (global mode only) take the legacy code path bit-identically; spatial
//! plans steer the design point's traffic across positions and throttle
//! individual channels ([`ActuationPlan::apply_traffic_into`]), so
//! asymmetric throttling shows up as asymmetric heat, batch progress scales
//! with the served traffic fraction, and the result gains per-channel
//! throttle residency plus the total migrated traffic.
//!
//! The loop is allocation-free at steady state for any stack depth: the
//! scene steps with precomputed per-layer RC decay coefficients (no
//! per-window `exp()`, `depth + 1` of them cached per distinct step
//! length), one scratch observation buffer is refilled per DTM interval,
//! the idle-power vector is computed once per run, the planned-traffic grid
//! is a scratch buffer rebuilt only when the plan or design point changes,
//! and mode residency is keyed by the quantized [`ModeKey`] (stringified
//! once per distinct mode after the run) instead of formatting a `String`
//! every step.
//!
//! [`MemSpot`](crate::sim::memspot::MemSpot) remains the public facade; it
//! handles characterization-table caching and delegates each run here.

use std::collections::BTreeMap;
use std::sync::Arc;

use cpu_model::{CpuConfig, PaperCpuPower, ProcessorPowerModel, RunningMode};
use fbdimm_sim::{DimmTraffic, FbdimmConfig};
use workloads::{BatchJob, WorkloadMix};

use crate::dtm::plan::{ActuationPlan, PlanTrafficStats};
use crate::dtm::policy::DtmPolicy;
use crate::power::fbdimm::{FbdimmPowerBreakdown, FbdimmPowerModel};
use crate::sim::characterize::{CharPoint, CharacterizationTable, ModeKey};
use crate::sim::energy::EnergyAccumulator;
use crate::sim::memspot::{MemSpotConfig, MemSpotResult, PositionPeak, TempSample};
use crate::thermal::params::AmbientParams;
use crate::thermal::scene::DimmThermalScene;

/// Power draw of one simulation window. Shared with the batched tier
/// ([`crate::sim::batch`]), which rebuilds it through the same
/// [`SimEngine::window_power`] so both tiers carry identical bits.
#[derive(Debug, Clone)]
pub(crate) struct WindowPower {
    /// Per-position device powers, in scene order.
    pub(crate) positions: Vec<FbdimmPowerBreakdown>,
    /// Total memory-subsystem power, watts.
    pub(crate) mem_w: f64,
    /// Processor power, watts.
    pub(crate) cpu_w: f64,
    /// Σ(V·IPC) processor activity term of Eq. 3.6.
    pub(crate) v_ipc: f64,
}

/// The window-stepping simulation core.
#[derive(Debug)]
pub struct SimEngine<'a> {
    pub(crate) cpu: &'a CpuConfig,
    pub(crate) mem: &'a FbdimmConfig,
    power: &'a FbdimmPowerModel,
    cpu_power: &'a PaperCpuPower,
    pub(crate) config: &'a MemSpotConfig,
}

impl<'a> SimEngine<'a> {
    /// Borrows the hardware and run configuration for one or more runs.
    ///
    /// # Panics
    ///
    /// Panics if [`MemSpotConfig::validate`] rejects the configuration
    /// (e.g. a window or DTM cadence below [`MemSpotConfig::MIN_STEP_S`]).
    pub fn new(
        cpu: &'a CpuConfig,
        mem: &'a FbdimmConfig,
        power: &'a FbdimmPowerModel,
        cpu_power: &'a PaperCpuPower,
        config: &'a MemSpotConfig,
    ) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid MemSpotConfig: {e}"));
        SimEngine { cpu, mem, power, cpu_power, config }
    }

    /// Builds the thermal scene the run steps: one RC node **stack** per
    /// DIMM position (the configured [`StackKind`]'s topology), under the
    /// configured ambient model.
    ///
    /// [`StackKind`]: crate::thermal::params::StackKind
    pub fn make_scene(&self) -> DimmThermalScene {
        let mut params = if self.config.integrated {
            let mut p = AmbientParams::integrated(&self.config.cooling);
            if let Some(degree) = self.config.interaction_degree {
                p = p.with_interaction_degree(degree);
            }
            p
        } else {
            AmbientParams::isolated(&self.config.cooling)
        };
        if let Some(inlet) = self.config.ambient_override_c {
            params.system_inlet_c = inlet;
        }
        DimmThermalScene::with_topology(
            self.mem.logical_channels,
            self.mem.dimms_per_channel,
            self.config.cooling,
            self.config.limits,
            params,
            self.config.stack.topology(&self.config.cooling),
        )
    }

    /// Idle power for every position, in scene order — the single encoding
    /// of the "last DIMM of each channel uses the `is_last` AMB
    /// coefficient" rule.
    pub(crate) fn idle_powers(&self) -> Vec<FbdimmPowerBreakdown> {
        (0..self.mem.logical_channels)
            .flat_map(|_| (0..self.mem.dimms_per_channel).map(|d| d + 1 == self.mem.dimms_per_channel))
            .map(|is_last| self.power.idle_dimm_power(is_last))
            .collect()
    }

    /// Per-position power for a per-DIMM traffic split, in scene order —
    /// either a design point's natural split or the grid an
    /// [`ActuationPlan`] produced from it. Positions the split carries no
    /// traffic for draw idle power. `idle` is the run's cached
    /// [`SimEngine::idle_powers`] vector.
    fn position_powers(
        &self,
        scene: &DimmThermalScene,
        idle: &[FbdimmPowerBreakdown],
        traffic: &[DimmTraffic],
    ) -> Vec<FbdimmPowerBreakdown> {
        let mut powers = idle.to_vec();
        for (d, p) in traffic.iter().zip(self.power.scene_power_from_traffic(traffic, self.mem.dimms_per_channel)) {
            if let Some(idx) = scene.position_index(d.channel, d.dimm) {
                powers[idx] = p;
            }
        }
        powers
    }

    pub(crate) fn window_power(
        &self,
        scene: &DimmThermalScene,
        idle: &[FbdimmPowerBreakdown],
        point: &CharPoint,
        traffic: &[DimmTraffic],
        mode: &RunningMode,
        progressing: bool,
    ) -> WindowPower {
        let positions = if progressing { self.position_powers(scene, idle, traffic) } else { idle.to_vec() };
        let mem_w: f64 =
            positions.iter().map(FbdimmPowerBreakdown::total_watts).sum::<f64>() * self.mem.phys_per_logical as f64;
        let (cpu_w, v_ipc) = if progressing {
            (self.cpu_power.power_watts(mode.active_cores, &mode.op), mode.op.voltage * point.ipc_ref_sum)
        } else {
            (self.cpu_power.halted_watts(), 0.0)
        };
        WindowPower { positions, mem_w, cpu_w, v_ipc }
    }

    /// Runs one workload mix under one DTM policy to batch completion (or
    /// the safety stop) and returns the aggregate result.
    pub fn run(
        &self,
        table: &mut CharacterizationTable,
        mix: &WorkloadMix,
        policy: &mut dyn DtmPolicy,
    ) -> MemSpotResult {
        let mut batch =
            BatchJob::new(mix.clone(), self.config.copies_per_app, self.cpu.cores, self.config.instruction_scale);
        let mut scene = self.make_scene();
        let mut energy = EnergyAccumulator::new();

        // Per-core instruction shares taken from the full-speed point; used
        // to distribute aggregate progress over the cores regardless of how
        // many cores the current mode keeps active (DTM-ACG rotates the gated
        // cores round-robin for fairness, so on average all applications
        // advance).
        let full_mode = RunningMode::full_speed(self.cpu);
        let full_point = table.point(&full_mode);
        let full_shares = full_point.core_share.clone();

        // Run-constant hot-loop state: the idle-power vector (scene order),
        // the scratch observation buffer refilled at each DTM interval, and
        // the planned-traffic grid rebuilt only when a spatial plan (or its
        // design point) changes.
        let idle = self.idle_powers();
        let mut observation = scene.observe();
        let mut plan_traffic: Vec<DimmTraffic> = Vec::new();
        let mut plan_stats = PlanTrafficStats::identity();
        let channels = self.mem.logical_channels;

        // Both cadences are validated ≥ MIN_STEP_S at construction, so the
        // step is never clamped away from the configured DTM cadence.
        let step_s = self.config.window_s.min(self.config.dtm_interval_s);
        let mut time_s = 0.0f64;
        let mut next_dtm_s = 0.0f64;
        let mut next_trace_s = 0.0f64;
        let mut plan = ActuationPlan::global(full_mode);
        let mut mode = full_mode;
        let mut mode_key = ModeKey::from_mode(&mode);
        let mut point: Arc<CharPoint> = full_point;
        let mut progressing = mode.makes_progress() && point.instr_rate_total > 0.0;
        let mut window = self.window_power(&scene, &idle, &point, &point.dimm_traffic, &mode, progressing);

        let mut total_instructions = 0.0f64;
        let mut total_bytes = 0.0f64;
        let mut total_misses = 0.0f64;
        let mut migrated_bytes = 0.0f64;
        let mut channel_throttle_s = vec![0.0f64; channels];
        let (mut max_amb, mut max_dram) = scene.max_temps_c();
        let mut ambient_sum = 0.0f64;
        let mut ambient_samples = 0u64;
        let mut residency: BTreeMap<ModeKey, f64> = BTreeMap::new();
        let mut trace = Vec::new();

        policy.reset();

        while !batch.is_complete() && time_s < self.config.max_sim_time_s {
            // DTM decision at the configured interval, on the full sensed
            // temperature field. Scalar plans change only when their mode
            // changes, so the legacy policies charge overhead (and recompute
            // window power) exactly as often as before the plan refactor.
            let mut overhead_s = 0.0;
            if time_s + 1e-12 >= next_dtm_s {
                scene.observe_into(&mut observation);
                let new_plan = policy.decide(&observation, self.config.dtm_interval_s);
                if new_plan != plan {
                    overhead_s = self.config.dtm_overhead_s;
                    if new_plan.mode != mode {
                        mode = new_plan.mode;
                        mode_key = ModeKey::from_mode(&mode);
                        point = table.point(&mode);
                        progressing = mode.makes_progress() && point.instr_rate_total > 0.0;
                    }
                    plan = new_plan;
                    if plan.is_scalar() {
                        plan_stats = PlanTrafficStats::identity();
                        window = self.window_power(&scene, &idle, &point, &point.dimm_traffic, &mode, progressing);
                    } else {
                        plan_stats = plan.apply_traffic_into(
                            &point.dimm_traffic,
                            channels,
                            self.mem.dimms_per_channel,
                            &mut plan_traffic,
                        );
                        window = self.window_power(&scene, &idle, &point, &plan_traffic, &mode, progressing);
                    }
                }
                next_dtm_s += self.config.dtm_interval_s;
            }

            let effective_s = (step_s - overhead_s).max(0.0);

            // Advance batch progress and traffic statistics; per-channel
            // service fractions scale progress by the served traffic share
            // (`service_scale` is exactly 1.0 for scalar plans, so the
            // legacy trajectories carry identical bits).
            if progressing {
                let instr = point.instr_rate_total * plan_stats.service_scale * effective_s;
                total_instructions += instr;
                total_bytes += point.total_gbps() * plan_stats.service_scale * 1e9 * effective_s;
                total_misses += point.l2_misses_per_instr * instr;
                migrated_bytes += plan_stats.migrated_gbps * 1e9 * effective_s;
                for core in 0..self.cpu.cores {
                    let share = full_shares.get(core).copied().unwrap_or(0.0);
                    if share > 0.0 {
                        batch.retire(core, (instr * share) as u64);
                    }
                }
            }

            scene.step(&window.positions, window.v_ipc, step_s);
            energy.add(window.mem_w, window.cpu_w, step_s);

            let (amb_now, dram_now) = scene.max_temps_c();
            max_amb = max_amb.max(amb_now);
            max_dram = max_dram.max(dram_now);
            ambient_sum += scene.ambient_c();
            ambient_samples += 1;
            *residency.entry(mode_key).or_insert(0.0) += step_s;
            for (channel, throttled_s) in channel_throttle_s.iter_mut().enumerate() {
                if plan.throttles_channel(channel) {
                    *throttled_s += step_s;
                }
            }

            if self.config.record_temp_trace && time_s + 1e-12 >= next_trace_s {
                trace.push(TempSample {
                    time_s,
                    amb_c: amb_now,
                    dram_c: dram_now,
                    ambient_c: scene.ambient_c(),
                    active_cores: mode.active_cores,
                    freq_ghz: mode.op.freq_ghz,
                });
                next_trace_s += self.config.temp_trace_interval_s;
            }

            time_s += step_s;
        }

        let totals = RunTotals {
            completed: batch.is_complete(),
            time_s,
            total_instructions,
            total_bytes,
            total_misses,
            migrated_bytes,
            max_amb,
            max_dram,
            ambient_sum,
            ambient_samples,
            residency,
            trace,
            channel_throttle_s,
        };
        assemble_result(mix, self.config, policy, &scene, &energy, totals)
    }
}

/// Per-run accumulators the window loop produces, independent of which
/// execution tier (per-cell or batched) ran it. Handed to
/// [`assemble_result`] so both tiers share one result-assembly path.
#[derive(Debug)]
pub(crate) struct RunTotals {
    pub(crate) completed: bool,
    pub(crate) time_s: f64,
    pub(crate) total_instructions: f64,
    pub(crate) total_bytes: f64,
    pub(crate) total_misses: f64,
    pub(crate) migrated_bytes: f64,
    pub(crate) max_amb: f64,
    pub(crate) max_dram: f64,
    pub(crate) ambient_sum: f64,
    pub(crate) ambient_samples: u64,
    pub(crate) residency: BTreeMap<ModeKey, f64>,
    pub(crate) trace: Vec<TempSample>,
    pub(crate) channel_throttle_s: Vec<f64>,
}

/// Folds a finished run's accumulators and the scene's peak field into a
/// [`MemSpotResult`]. Labels are derived from the quantized mode key exactly
/// once per distinct mode; distinct keys that render identically
/// (sub-0.1-unit differences) merge by summing their residency.
pub(crate) fn assemble_result(
    mix: &WorkloadMix,
    config: &MemSpotConfig,
    policy: &dyn DtmPolicy,
    scene: &DimmThermalScene,
    energy: &EnergyAccumulator,
    totals: RunTotals,
) -> MemSpotResult {
    let elapsed = energy.elapsed_s().max(1e-9);
    let mut mode_residency: BTreeMap<String, f64> = BTreeMap::new();
    for (key, secs) in totals.residency {
        *mode_residency.entry(mode_label_from_key(&key)).or_insert(0.0) += secs / elapsed;
    }

    let position_peaks = scene
        .position_peaks()
        .into_iter()
        .enumerate()
        .map(|(i, p)| PositionPeak {
            channel: p.channel,
            dimm: p.dimm,
            max_amb_c: p.amb_c,
            max_dram_c: p.dram_c,
            hottest_layer: p.hottest_layer,
            layers_c: scene.layer_peaks_of(i).to_vec(),
        })
        .collect();

    MemSpotResult {
        workload: mix.id.clone(),
        stack: config.stack.label(),
        policy: policy.name(),
        scheme: policy.scheme(),
        completed: totals.completed,
        running_time_s: totals.time_s,
        total_instructions: totals.total_instructions,
        total_memory_bytes: totals.total_bytes,
        total_l2_misses: totals.total_misses,
        memory_energy_j: energy.memory_joules(),
        cpu_energy_j: energy.cpu_joules(),
        avg_memory_power_w: energy.avg_memory_watts(),
        avg_cpu_power_w: energy.avg_cpu_watts(),
        avg_ambient_c: if totals.ambient_samples == 0 {
            0.0
        } else {
            totals.ambient_sum / totals.ambient_samples as f64
        },
        max_amb_c: totals.max_amb,
        max_dram_c: totals.max_dram,
        mode_residency,
        temp_trace: totals.trace,
        position_peaks,
        channel_throttle_residency: totals.channel_throttle_s.iter().map(|&s| s / elapsed).collect(),
        migrated_traffic_bytes: totals.migrated_bytes,
    }
}

/// Human-readable label of a quantized running mode. Quantization-equivalent
/// modes map to one [`ModeKey`] and therefore to one label; the window loop
/// only stringifies each distinct key once, after the run.
fn mode_label_from_key(key: &ModeKey) -> String {
    if !key.makes_progress() {
        return "off".to_string();
    }
    let freq_ghz = key.freq_mhz as f64 / 1000.0;
    match key.cap_mbps {
        u32::MAX => format!("{}c@{:.1}GHz/nolimit", key.active_cores, freq_ghz),
        cap => format!("{}c@{:.1}GHz/{:.1}GB/s", key.active_cores, freq_ghz, cap as f64 / 1000.0),
    }
}

#[cfg(test)]
fn mode_label(mode: &RunningMode) -> String {
    mode_label_from_key(&ModeKey::from_mode(mode))
}

impl FbdimmPowerModel {
    /// Total memory-subsystem power for a characterized design point: the
    /// sum of the per-position `scene_power` breakdowns times the number of
    /// physical DIMMs per position.
    pub fn subsystem_power_watts_from_point(
        &self,
        point: &CharPoint,
        dimms_per_channel: usize,
        phys_per_position: usize,
    ) -> f64 {
        let per_position: f64 = self
            .scene_power_from_traffic(&point.dimm_traffic, dimms_per_channel)
            .iter()
            .map(FbdimmPowerBreakdown::total_watts)
            .sum();
        per_position * phys_per_position as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::params::CoolingConfig;
    use workloads::mixes;

    fn config() -> MemSpotConfig {
        MemSpotConfig::tiny(CoolingConfig::aohs_1_5())
    }

    #[test]
    fn engine_scene_matches_the_memory_shape() {
        let cpu = CpuConfig::paper_quad_core();
        let mem = FbdimmConfig::ddr2_667_paper();
        let power = FbdimmPowerModel::paper_defaults();
        let cpu_power = PaperCpuPower::new();
        let cfg = config();
        let engine = SimEngine::new(&cpu, &mem, &power, &cpu_power, &cfg);
        let scene = engine.make_scene();
        assert_eq!(scene.len(), mem.dimm_positions());
        assert_eq!(scene.ambient_c(), cfg.cooling.isolated_ambient_c());
    }

    #[test]
    fn ambient_override_reaches_the_scene() {
        let cpu = CpuConfig::paper_quad_core();
        let mem = FbdimmConfig::ddr2_667_paper();
        let power = FbdimmPowerModel::paper_defaults();
        let cpu_power = PaperCpuPower::new();
        let mut cfg = config();
        cfg.ambient_override_c = Some(36.0);
        let engine = SimEngine::new(&cpu, &mem, &power, &cpu_power, &cfg);
        assert_eq!(engine.make_scene().ambient_c(), 36.0);
    }

    #[test]
    fn progressing_window_power_covers_every_position() {
        let cpu = CpuConfig::paper_quad_core();
        let mem = FbdimmConfig::ddr2_667_paper();
        let power = FbdimmPowerModel::paper_defaults();
        let cpu_power = PaperCpuPower::new();
        let cfg = config();
        let engine = SimEngine::new(&cpu, &mem, &power, &cpu_power, &cfg);
        let scene = engine.make_scene();
        let mut table = CharacterizationTable::new(cpu.clone(), mem, mixes::w1().apps, 15_000);
        let mode = RunningMode::full_speed(&cpu);
        let point = table.point(&mode);
        let w = engine.window_power(&scene, &engine.idle_powers(), &point, &point.dimm_traffic, &mode, true);
        assert_eq!(w.positions.len(), mem.dimm_positions());
        // The window total equals the legacy subsystem accounting.
        let legacy = power.subsystem_power_watts_from_point(&point, mem.dimms_per_channel, mem.phys_per_logical);
        assert!((w.mem_w - legacy).abs() < 1e-9, "window {} vs legacy {}", w.mem_w, legacy);
        assert!(w.cpu_w > 100.0 && w.v_ipc > 0.0);
    }

    #[test]
    fn idle_window_power_matches_the_idle_subsystem() {
        let cpu = CpuConfig::paper_quad_core();
        let mem = FbdimmConfig::ddr2_667_paper();
        let power = FbdimmPowerModel::paper_defaults();
        let cpu_power = PaperCpuPower::new();
        let cfg = config();
        let engine = SimEngine::new(&cpu, &mem, &power, &cpu_power, &cfg);
        let scene = engine.make_scene();
        let mut table = CharacterizationTable::new(cpu.clone(), mem, mixes::w1().apps, 15_000);
        let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
        let point = table.point(&off);
        let w = engine.window_power(&scene, &engine.idle_powers(), &point, &point.dimm_traffic, &off, false);
        let legacy =
            power.subsystem_idle_power_watts(mem.logical_channels, mem.dimms_per_channel, mem.phys_per_logical);
        assert!((w.mem_w - legacy).abs() < 1e-9);
        assert_eq!(w.v_ipc, 0.0);
    }

    #[test]
    fn mode_labels_are_stable_across_quantization_equivalent_modes() {
        let cpu = CpuConfig::paper_quad_core();
        let a = RunningMode::full_speed(&cpu).with_bandwidth_cap_gbps(6.4);
        let mut b = a;
        b.bandwidth_cap = Some(6.4e9 + 10.0); // quantizes to the same ModeKey
        assert_eq!(ModeKey::from_mode(&a), ModeKey::from_mode(&b));
        assert_eq!(mode_label(&a), mode_label(&b));
        assert_eq!(mode_label(&a), "4c@3.2GHz/6.4GB/s");

        let mut c = a;
        c.op.freq_ghz += 2e-4; // sub-MHz wobble quantizes away too
        assert_eq!(mode_label(&a), mode_label(&c));

        let full = RunningMode::full_speed(&cpu);
        assert_eq!(mode_label(&full), "4c@3.2GHz/nolimit");
        let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
        assert_eq!(mode_label(&off), "off");
        let shut = full.with_bandwidth_cap_gbps(0.0);
        assert_eq!(mode_label(&shut), "off");
    }
}
