//! # memtherm
//!
//! The primary contribution of *Thermal modeling and management of DRAM
//! memory systems* (ISCA 2007), reproduced as a library:
//!
//! * **Power models** of FBDIMM ([`power`]): DRAM chip power as a linear
//!   function of read/write throughput (Eq. 3.1) and AMB power as a linear
//!   function of local/bypass throughput (Eq. 3.2, Table 3.1). The
//!   channel-resolved base API is `FbdimmPowerModel::scene_power`, which
//!   returns one power breakdown per DIMM position; the hottest-DIMM and
//!   subsystem-total figures are derived from it.
//! * **Thermal models** ([`thermal`]): steady-state device temperatures
//!   from thermal resistances (Eqs. 3.3–3.4, Table 3.2), first-order dynamic
//!   temperature (Eq. 3.5), and the integrated model that adds
//!   processor→memory heating of the DRAM ambient (Eq. 3.6, Table 3.3).
//!   Both dynamic models implement the
//!   [`ThermalModel`](crate::thermal::model::ThermalModel) trait, and a
//!   [`DimmThermalScene`](crate::thermal::scene::DimmThermalScene) tracks an
//!   RC node **stack** for every DIMM position (channels × DIMMs per
//!   channel): the legacy AMB+DRAM pair, DDR4/5-style rank pairs, or
//!   CoMeT-style 3D stacks whose dies couple vertically through TSV
//!   resistances ([`StackTopology`](crate::thermal::params::StackTopology)).
//!   The hottest device is derived by arg-max over positions *and layers*
//!   instead of being assumed.
//! * **DTM schemes** ([`dtm`]): thermal shutdown (DTM-TS), bandwidth
//!   throttling (DTM-BW), adaptive core gating (DTM-ACG), coordinated DVFS
//!   (DTM-CDVFS) and the combined policy (DTM-COMB), each optionally driven
//!   by a PID formal controller (Eq. 4.1). Policies consume a
//!   [`ThermalObservation`](crate::thermal::scene::ThermalObservation) — the
//!   sensed temperature field with per-position, per-layer resolution — and
//!   answer with an [`ActuationPlan`](crate::dtm::plan::ActuationPlan):
//!   the global running mode plus optional per-channel service fractions
//!   and traffic-steering weights. Two spatially aware schemes exploit the
//!   field the paper's policies ignore: DTM-CBW (per-channel bandwidth
//!   caps keyed to each channel's hottest layer) and DTM-MIG
//!   (migration-aware steering away from the hottest DIMM position).
//! * **The two-level thermal simulator** ([`sim`]): level 1 characterizes
//!   workload mixes under every running mode using the `cpu-model` and
//!   `fbdimm-sim` substrates; level 2 ("MEMSpot") replays those
//!   characterizations in 10 ms windows over thousands of simulated seconds.
//!   The window loop lives in [`SimEngine`](crate::sim::engine::SimEngine),
//!   which steps the thermal scene from per-position power (with
//!   precomputed RC step coefficients — no per-window `exp()`) and feeds
//!   each DTM policy the full observation; `MemSpot` is the facade, backed
//!   by a thread-safe [`CharStore`](crate::sim::characterize::CharStore)
//!   that shares level-1 design points across runs, policies and — when
//!   injected into several simulators — whole sweep grids.
//!
//! ## Quick start
//!
//! ```
//! use memtherm::prelude::*;
//!
//! // Thermal emergency of a hot AMB under the paper's default cooling.
//! let cooling = CoolingConfig::aohs_1_5();
//! let mut model = IsolatedThermalModel::new(cooling, ThermalLimits::paper_fbdimm());
//! let power = FbdimmPowerModel::paper_defaults();
//! // 1 GB/s of local traffic plus 2 GB/s of bypass traffic on the hottest DIMM.
//! let amb_w = power.amb.power_watts(2.0, 1.0, false);
//! let dram_w = power.dram.power_watts(0.7, 0.3);
//! for _ in 0..600 {
//!     model.step(amb_w, dram_w, 1.0); // one second per step
//! }
//! assert!(model.amb_temp_c() > 100.0);
//!
//! // The same physics, resolved over every DIMM position: the scene derives
//! // the hottest DIMM instead of assuming it.
//! let mem = FbdimmConfig::ddr2_667_paper();
//! let mut scene = DimmThermalScene::isolated(&mem, cooling, ThermalLimits::paper_fbdimm());
//! // DIMM 0 of each channel carries the bypass traffic and runs hottest.
//! let powers: Vec<FbdimmPowerBreakdown> = (0..scene.len())
//!     .map(|i| FbdimmPowerBreakdown { amb_watts: 6.5 - 0.4 * (i % 4) as f64, dram_watts: 1.8 })
//!     .collect();
//! for _ in 0..600 {
//!     scene.step(&powers, 0.0, 1.0);
//! }
//! let obs = scene.observe();
//! assert_eq!(obs.positions.len(), 8);
//! assert!(obs.hottest_amb.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dtm;
pub mod power;
pub mod sim;
pub mod thermal;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::dtm::emergency::{EmergencyLevel, EmergencyThresholds};
    pub use crate::dtm::pid::PidController;
    pub use crate::dtm::plan::{ActuationPlan, PlanTrafficStats};
    pub use crate::dtm::policy::{DtmPolicy, DtmScheme};
    pub use crate::dtm::{acg::DtmAcg, bw::DtmBw, cbw::DtmCbw, cdvfs::DtmCdvfs, comb::DtmComb, mig::DtmMig, ts::DtmTs};
    pub use crate::power::amb::AmbPowerModel;
    pub use crate::power::dram::DramPowerModel;
    pub use crate::power::fbdimm::{FbdimmPowerBreakdown, FbdimmPowerModel};
    pub use crate::sim::batch::{BatchCell, BatchOptions, BatchedSimEngine, CellRunStats};
    pub use crate::sim::characterize::{CharPoint, CharStore, CharStoreKey, CharacterizationTable, ModeKey};
    pub use crate::sim::engine::SimEngine;
    pub use crate::sim::memspot::{MemSpot, MemSpotConfig, MemSpotResult, PositionPeak, TempSample};
    pub use crate::sim::modes::{scheme_mode, ThermalRunningLevel};
    pub use crate::thermal::integrated::IntegratedThermalModel;
    pub use crate::thermal::isolated::IsolatedThermalModel;
    pub use crate::thermal::model::ThermalModel;
    pub use crate::thermal::params::{
        AmbientParams, CoolingConfig, DeviceLayer, DeviceLayerKind, HeatSpreader, StackKind, StackTopology,
        ThermalLimits, ThermalResistances,
    };
    pub use crate::thermal::rc::ThermalNode;
    pub use crate::thermal::scene::{DimmThermalScene, PositionTemp, ThermalObservation};
    pub use cpu_model::{CpuConfig, OperatingPoint, PaperCpuPower, ProcessorPowerModel, RunningMode};
    pub use fbdimm_sim::FbdimmConfig;
    pub use workloads::{mixes, WorkloadMix};
}
