//! # memtherm
//!
//! The primary contribution of *Thermal modeling and management of DRAM
//! memory systems* (ISCA 2007), reproduced as a library:
//!
//! * **Power models** of FBDIMM ([`power`]): DRAM chip power as a linear
//!   function of read/write throughput (Eq. 3.1) and AMB power as a linear
//!   function of local/bypass throughput (Eq. 3.2, Table 3.1).
//! * **Thermal models** ([`thermal`]): steady-state AMB/DRAM temperatures
//!   from thermal resistances (Eqs. 3.3–3.4, Table 3.2), first-order dynamic
//!   temperature (Eq. 3.5), and the integrated model that adds
//!   processor→memory heating of the DRAM ambient (Eq. 3.6, Table 3.3).
//! * **DTM schemes** ([`dtm`]): thermal shutdown (DTM-TS), bandwidth
//!   throttling (DTM-BW), adaptive core gating (DTM-ACG), coordinated DVFS
//!   (DTM-CDVFS) and the combined policy (DTM-COMB), each optionally driven
//!   by a PID formal controller (Eq. 4.1).
//! * **The two-level thermal simulator** ([`sim`]): level 1 characterizes
//!   workload mixes under every running mode using the `cpu-model` and
//!   `fbdimm-sim` substrates; level 2 ("MEMSpot") replays those
//!   characterizations in 10 ms windows over thousands of simulated seconds,
//!   applying a DTM policy and integrating power, energy and temperature.
//!
//! ## Quick start
//!
//! ```
//! use memtherm::prelude::*;
//!
//! // Thermal emergency of a hot AMB under the paper's default cooling.
//! let cooling = CoolingConfig::aohs_1_5();
//! let mut model = IsolatedThermalModel::new(cooling, ThermalLimits::paper_fbdimm());
//! let power = FbdimmPowerModel::paper_defaults();
//! // 1 GB/s of local traffic plus 2 GB/s of bypass traffic on the hottest DIMM.
//! let amb_w = power.amb.power_watts(2.0, 1.0, false);
//! let dram_w = power.dram.power_watts(0.7, 0.3);
//! for _ in 0..600 {
//!     model.step(amb_w, dram_w, 1.0); // one second per step
//! }
//! assert!(model.amb_temp_c() > 100.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dtm;
pub mod power;
pub mod sim;
pub mod thermal;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::dtm::emergency::{EmergencyLevel, EmergencyThresholds};
    pub use crate::dtm::pid::PidController;
    pub use crate::dtm::policy::{DtmPolicy, DtmScheme};
    pub use crate::dtm::{acg::DtmAcg, bw::DtmBw, cdvfs::DtmCdvfs, comb::DtmComb, ts::DtmTs};
    pub use crate::power::amb::AmbPowerModel;
    pub use crate::power::dram::DramPowerModel;
    pub use crate::power::fbdimm::FbdimmPowerModel;
    pub use crate::sim::characterize::{CharPoint, CharacterizationTable};
    pub use crate::sim::memspot::{MemSpot, MemSpotConfig, MemSpotResult};
    pub use crate::sim::modes::{scheme_mode, ThermalRunningLevel};
    pub use crate::thermal::integrated::IntegratedThermalModel;
    pub use crate::thermal::isolated::IsolatedThermalModel;
    pub use crate::thermal::params::{
        AmbientParams, CoolingConfig, HeatSpreader, ThermalLimits, ThermalResistances,
    };
    pub use crate::thermal::rc::ThermalNode;
    pub use cpu_model::{CpuConfig, OperatingPoint, PaperCpuPower, ProcessorPowerModel, RunningMode};
    pub use fbdimm_sim::FbdimmConfig;
    pub use workloads::{mixes, WorkloadMix};
}
