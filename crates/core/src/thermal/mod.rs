//! FBDIMM thermal models (Sections 3.4 and 3.5), generalized to device
//! stacks.
//!
//! The substrate is the first-order RC node of Equation 3.5 ([`rc`]). The
//! paper composes two of them — one AMB, one DRAM — through the measured
//! Table 3.2 Ψ resistances; [`params::StackTopology`] lifts that pattern
//! into an ordered stack of [`params::DeviceLayer`]s per DIMM position with
//! an N×N Ψ coupling matrix, and [`scene::DimmThermalScene`] integrates one
//! such stack per position (all sharing the memory-ambient node of
//! Equation 3.6). Three families of topologies are built in:
//!
//! * **FBDIMM** ([`StackKind::Fbdimm`]) — the paper's AMB + DRAM pair,
//!   carrying Table 3.2 verbatim. This is the two-layer instance of the
//!   general machinery and reproduces the pre-stack trajectories
//!   bit-identically.
//! * **DDR4/5 rank pairs** ([`StackKind::RankPair`]) — two DRAM ranks on
//!   one module, no buffer die; the ranks couple through the PCB.
//!   Observations of such a scene report a `NaN` AMB maximum (there is no
//!   AMB), and every limit check is NaN-safe.
//! * **3D stacks** ([`StackKind::Stacked3d`]) — a base logic/interface die
//!   plus N DRAM dies coupled vertically through TSV-field resistances,
//!   after the interval-thermal-simulation methodology of CoMeT
//!   (arXiv:2109.12405, PAPERS.md), which models 2D/2.5D/3D
//!   processor-memory systems with per-layer thermal nodes, and the 3-D
//!   memory-integration analysis of arXiv:1109.0708, which motivates
//!   modeling vertical heat coupling between stacked dies: dies buried
//!   next to the hot base die run measurably hotter than the die under the
//!   heat spreader, so a hottest-*layer* arg-max (not a fixed AMB/DRAM
//!   pair) decides thermal emergencies. The ladder Ψ matrices are exact
//!   steady-state solutions (conductance-matrix inversion), so the scene's
//!   RC dynamics relax to the true superposition temperatures.
//!
//! The single-DIMM models ([`isolated`], [`integrated`]) remain as the
//! legacy reference implementations behind the [`model::ThermalModel`]
//! trait; the scene's regression tests pin its FBDIMM instance against
//! them.

pub mod integrated;
pub mod isolated;
pub mod model;
pub mod params;
pub mod rc;
pub mod scene;

pub use integrated::IntegratedThermalModel;
pub use isolated::IsolatedThermalModel;
pub use model::ThermalModel;
pub use params::{
    AmbientParams, CoolingConfig, DeviceLayer, DeviceLayerKind, HeatSpreader, StackKind, StackTopology, ThermalLimits,
    ThermalResistances,
};
pub use rc::ThermalNode;
pub use scene::{DimmThermalScene, PositionTemp, ThermalObservation};
