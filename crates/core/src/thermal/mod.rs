//! FBDIMM thermal models (Sections 3.4 and 3.5).

pub mod integrated;
pub mod isolated;
pub mod model;
pub mod params;
pub mod rc;
pub mod scene;

pub use integrated::IntegratedThermalModel;
pub use isolated::IsolatedThermalModel;
pub use model::ThermalModel;
pub use params::{AmbientParams, CoolingConfig, HeatSpreader, ThermalLimits, ThermalResistances};
pub use rc::ThermalNode;
pub use scene::{DimmThermalScene, PositionTemp, ThermalObservation};
