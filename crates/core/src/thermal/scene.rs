//! Stack-resolved thermal scene: one RC node **stack** per DIMM position.
//!
//! The paper's two-level simulator tracks a single AMB+DRAM pair for the
//! hottest DIMM (Section 4.3.1). A [`DimmThermalScene`] generalizes that
//! twice over:
//!
//! * **Across positions** — every DIMM position (logical channels × DIMMs
//!   per channel) integrates its own temperatures from its own power, all
//!   breathing the same memory-ambient air, and the hottest device is
//!   derived by arg-max instead of assumed.
//! * **Across layers** — each position holds an ordered
//!   [`StackTopology`](crate::thermal::params::StackTopology) of
//!   [`DeviceLayer`](crate::thermal::params::DeviceLayer) nodes: the legacy
//!   AMB+DRAM pair, a DDR4/5-style rank pair with no buffer die, or a
//!   CoMeT-style 3D stack whose dies couple vertically through TSV
//!   resistances and heat each other. Layer temperatures follow the same
//!   Equation 3.5 RC dynamics toward steady states given by the topology's
//!   Ψ coupling matrix (Eqs. 3.3–3.4 generalized to N layers).
//!
//! The FBDIMM topology is the two-layer instance of the general machinery
//! and reproduces the pre-stack trajectories **bit-identically** (pinned by
//! `tests/scene_regression.rs` and the bit-pattern golden in
//! `tests/stack_regression.rs`).
//!
//! The scene produces the [`ThermalObservation`] the DTM policies consume:
//! maximum device temperatures (NaN-safe — a stack with no buffer die has
//! no AMB maximum), the full per-position × per-layer temperature field,
//! and the derived hottest positions and layers.

use fbdimm_sim::FbdimmConfig;

use crate::power::fbdimm::FbdimmPowerBreakdown;
use crate::thermal::params::{AmbientParams, CoolingConfig, DeviceLayerKind, StackTopology, ThermalLimits};
use crate::thermal::rc::ThermalNode;

/// NaN-aware `f64` equality: a `NaN` buffer maximum is a regular value
/// ("this stack has no buffer die"), so two observations of the same
/// bufferless scene must compare equal instead of `NaN != NaN` poisoning
/// every derived comparison.
pub(crate) fn f64_eq_nan(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

/// Temperature summary of one DIMM position's device stack.
#[derive(Debug, Clone, Copy)]
pub struct PositionTemp {
    /// Logical channel index.
    pub channel: usize,
    /// DIMM position along the chain (0 = closest to the controller).
    pub dimm: usize,
    /// Buffer-layer (AMB / base-die) temperature, °C. `NaN` when the stack
    /// has no buffer layer (DDR4/5 rank pairs).
    pub amb_c: f64,
    /// Hottest DRAM-layer temperature of the stack, °C.
    pub dram_c: f64,
    /// Index of the hottest layer in the stack (arg-max over all layers).
    pub hottest_layer: usize,
    /// Temperature of that hottest layer, °C.
    pub hottest_layer_c: f64,
}

impl PartialEq for PositionTemp {
    fn eq(&self, other: &Self) -> bool {
        self.channel == other.channel
            && self.dimm == other.dimm
            && f64_eq_nan(self.amb_c, other.amb_c)
            && self.dram_c == other.dram_c
            && self.hottest_layer == other.hottest_layer
            && self.hottest_layer_c == other.hottest_layer_c
    }
}

/// What a DTM policy sees at a decision point: the sensed temperature field
/// of the memory subsystem.
///
/// Policies that act globally (all of Chapter 4's schemes) read the maxima;
/// the per-position and per-layer fields are carried alongside so spatially
/// aware policies can be written against the same interface.
///
/// Equality is NaN-aware on the fields where `NaN` is a meaningful value
/// (`max_amb_c` for bufferless stacks, `ambient_c` for synthesized
/// observations), so identical observations always compare equal.
#[derive(Debug, Clone)]
pub struct ThermalObservation {
    /// Hottest buffer (AMB / base-die) temperature across all positions,
    /// °C. `NaN` when the scene's stacks have no buffer layer — use
    /// [`ThermalObservation::max_amb_opt`] for Option-style access; all
    /// limit checks on this struct treat `NaN` as "no such device" rather
    /// than reporting 0.0 as a hot (or cold) spot.
    pub max_amb_c: f64,
    /// Hottest DRAM temperature across all positions and DRAM layers, °C.
    pub max_dram_c: f64,
    /// Memory ambient (DIMM inlet) temperature, °C. `NaN` when the
    /// observation was synthesized from scalar device sensors that cannot
    /// see the ambient ([`ThermalObservation::from_hottest`]).
    pub ambient_c: f64,
    /// `(channel, dimm)` of the position with the hottest buffer, if any.
    pub hottest_amb: Option<(usize, usize)>,
    /// `(channel, dimm)` of the position with the hottest DRAM layer, if any.
    pub hottest_dram: Option<(usize, usize)>,
    /// The per-position stack summaries (empty when the observation was
    /// synthesized from scalar sensors).
    pub positions: Vec<PositionTemp>,
    /// Number of layers per stack (0 for synthesized observations).
    pub layer_depth: usize,
    /// Flat per-layer temperature field, position-major: the stack of
    /// `positions[i]` occupies `layer_temps_c[i*layer_depth..(i+1)*layer_depth]`.
    pub layer_temps_c: Vec<f64>,
}

impl PartialEq for ThermalObservation {
    fn eq(&self, other: &Self) -> bool {
        f64_eq_nan(self.max_amb_c, other.max_amb_c)
            && self.max_dram_c == other.max_dram_c
            && f64_eq_nan(self.ambient_c, other.ambient_c)
            && self.hottest_amb == other.hottest_amb
            && self.hottest_dram == other.hottest_dram
            && self.positions == other.positions
            && self.layer_depth == other.layer_depth
            && self.layer_temps_c == other.layer_temps_c
    }
}

impl ThermalObservation {
    /// Builds an observation from scalar hottest-device temperatures, with
    /// no per-position field. This is what a pair of physical sensors (or a
    /// unit test) provides; a sensor board with no buffer device passes
    /// `f64::NAN` for `max_amb_c` and every limit check on the observation
    /// stays well-defined. `ambient_c` is `NaN` — the sensors cannot see
    /// the ambient; use [`ThermalObservation::with_ambient_c`] when the
    /// caller knows it.
    pub fn from_hottest(max_amb_c: f64, max_dram_c: f64) -> Self {
        ThermalObservation {
            max_amb_c,
            max_dram_c,
            ambient_c: f64::NAN,
            hottest_amb: None,
            hottest_dram: None,
            positions: Vec::new(),
            layer_depth: 0,
            layer_temps_c: Vec::new(),
        }
    }

    /// Returns a copy with a known ambient (inlet) temperature.
    pub fn with_ambient_c(mut self, ambient_c: f64) -> Self {
        self.ambient_c = ambient_c;
        self
    }

    /// The hottest buffer temperature, or `None` when the observed stacks
    /// have no buffer layer (`max_amb_c` is `NaN`).
    pub fn max_amb_opt(&self) -> Option<f64> {
        if self.max_amb_c.is_nan() {
            None
        } else {
            Some(self.max_amb_c)
        }
    }

    /// Whether either maximum reaches its thermal design point. `NaN`
    /// maxima (absent devices) never trip a limit.
    pub fn over_tdp(&self, limits: &ThermalLimits) -> bool {
        self.max_amb_c >= limits.amb_tdp_c || self.max_dram_c >= limits.dram_tdp_c
    }

    /// Whether every present device has cooled to (or below) its thermal
    /// release point — the DTM-TS re-enable condition. `NaN` maxima
    /// (absent devices) count as released.
    pub fn released(&self, limits: &ThermalLimits) -> bool {
        let at_or_below = |temp: f64, trp_c: f64| temp.is_nan() || temp <= trp_c;
        at_or_below(self.max_amb_c, limits.amb_trp_c) && at_or_below(self.max_dram_c, limits.dram_trp_c)
    }

    /// The per-layer temperatures of position `index`, in stack order
    /// (empty for synthesized observations).
    pub fn layers_of(&self, index: usize) -> &[f64] {
        if self.layer_depth == 0 {
            return &[];
        }
        &self.layer_temps_c[index * self.layer_depth..(index + 1) * self.layer_depth]
    }

    /// Number of logical channels covered by the per-position field (0 for
    /// synthesized observations).
    pub fn channels(&self) -> usize {
        self.positions.iter().map(|p| p.channel + 1).max().unwrap_or(0)
    }

    /// The hottest buffer and DRAM temperatures of one logical channel,
    /// NaN-safe: the buffer maximum is `NaN` for bufferless stacks, and both
    /// are `NaN` when the channel has no observed positions. This is the
    /// sensor input of per-channel policies
    /// ([`DtmCbw`](crate::dtm::cbw::DtmCbw)): each channel is throttled from
    /// its own hottest layer instead of the global maximum.
    pub fn channel_max_temps(&self, channel: usize) -> (f64, f64) {
        let nan_max = |acc: f64, t: f64| if t.is_nan() || t <= acc { acc } else { t };
        let mut amb = f64::NAN;
        let mut dram = f64::NAN;
        for p in self.positions.iter().filter(|p| p.channel == channel) {
            amb = if amb.is_nan() { p.amb_c } else { nan_max(amb, p.amb_c) };
            dram = if dram.is_nan() { p.dram_c } else { nan_max(dram, p.dram_c) };
        }
        (amb, dram)
    }

    /// Index (into `positions`) of the position whose hottest layer is the
    /// hottest of the field, or `None` for synthesized observations.
    pub fn hottest_position_index(&self) -> Option<usize> {
        self.positions
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.hottest_layer_c.total_cmp(&b.hottest_layer_c))
            .map(|(i, _)| i)
    }

    /// Index (into `positions`) of the position whose hottest layer is the
    /// coolest of the field, or `None` for synthesized observations.
    pub fn coldest_position_index(&self) -> Option<usize> {
        self.positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.hottest_layer_c.total_cmp(&b.hottest_layer_c))
            .map(|(i, _)| i)
    }
}

/// Precomputed per-step RC decay factors for one step length. Every position
/// shares the topology's per-layer time constants, so a whole-scene step
/// needs `depth + 1` `exp()` evaluations in total — computed once per
/// distinct `dt_s` and reused for every subsequent window of the same
/// length, instead of `depth × positions + 1` per step.
#[derive(Debug, Clone)]
struct StepCoeffs {
    dt_s: f64,
    ambient_alpha: f64,
    layer_alphas: Vec<f64>,
}

/// A thermal model of the whole DIMM population.
///
/// Positions are ordered channel-major (`index = channel ×
/// dimms_per_channel + dimm`), matching the order of
/// [`FbdimmPowerModel::scene_power`](crate::power::fbdimm::FbdimmPowerModel::scene_power)
/// for a full traffic window. Each position holds one device stack; layer
/// temperatures live in a flat position-major array so the window loop
/// touches contiguous memory.
///
/// All positions share one memory-ambient node (constant under isolated
/// parameters, processor-driven under integrated ones, Equation 3.6).
#[derive(Debug, Clone)]
pub struct DimmThermalScene {
    cooling: CoolingConfig,
    topology: StackTopology,
    limits: ThermalLimits,
    ambient_params: AmbientParams,
    ambient: ThermalNode,
    dimms_per_channel: usize,
    /// `(channel, dimm)` per position, channel-major.
    coords: Vec<(usize, usize)>,
    /// Current layer temperatures, position-major flat (positions × depth).
    temps_c: Vec<f64>,
    /// Running per-layer peak temperatures since construction, same layout.
    peaks_c: Vec<f64>,
    coeffs: Option<StepCoeffs>,
    /// Per-layer watts scratch for one position (reused every step).
    watts: Vec<f64>,
}

impl DimmThermalScene {
    /// Creates a scene with explicit shape and ambient parameters and the
    /// legacy FBDIMM (AMB + DRAM) stack at every position; every node
    /// starts at the ambient inlet temperature.
    pub fn new(
        channels: usize,
        dimms_per_channel: usize,
        cooling: CoolingConfig,
        limits: ThermalLimits,
        ambient_params: AmbientParams,
    ) -> Self {
        let topology = StackTopology::fbdimm(&cooling.resistances());
        Self::with_topology(channels, dimms_per_channel, cooling, limits, ambient_params, topology)
    }

    /// Creates a scene whose positions each hold the given device stack.
    pub fn with_topology(
        channels: usize,
        dimms_per_channel: usize,
        cooling: CoolingConfig,
        limits: ThermalLimits,
        ambient_params: AmbientParams,
        topology: StackTopology,
    ) -> Self {
        assert!(channels > 0 && dimms_per_channel > 0, "scene must contain at least one DIMM position");
        let start = ambient_params.system_inlet_c;
        let coords: Vec<(usize, usize)> =
            (0..channels).flat_map(|channel| (0..dimms_per_channel).map(move |dimm| (channel, dimm))).collect();
        let cells = coords.len() * topology.depth();
        DimmThermalScene {
            cooling,
            limits,
            ambient_params,
            ambient: ThermalNode::new(start, ambient_params.tau_cpu_dram_s),
            dimms_per_channel,
            coords,
            temps_c: vec![start; cells],
            peaks_c: vec![start; cells],
            coeffs: None,
            watts: vec![0.0; topology.depth()],
            topology,
        }
    }

    /// A scene shaped like `mem` under the isolated thermal model (constant
    /// ambient, Table 3.3), with the legacy FBDIMM stack.
    pub fn isolated(mem: &FbdimmConfig, cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        Self::new(mem.logical_channels, mem.dimms_per_channel, cooling, limits, AmbientParams::isolated(&cooling))
    }

    /// A scene shaped like `mem` under the integrated thermal model
    /// (processor-heated ambient, Equation 3.6), with the legacy FBDIMM
    /// stack.
    pub fn integrated(mem: &FbdimmConfig, cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        Self::new(mem.logical_channels, mem.dimms_per_channel, cooling, limits, AmbientParams::integrated(&cooling))
    }

    /// Number of DIMM positions in the scene.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the scene has no positions (never true for a constructed
    /// scene; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The device stack each position holds.
    pub fn topology(&self) -> &StackTopology {
        &self.topology
    }

    /// Number of layers per position (the stack depth).
    pub fn depth(&self) -> usize {
        self.topology.depth()
    }

    /// The cooling configuration in use.
    pub fn cooling(&self) -> &CoolingConfig {
        &self.cooling
    }

    /// The thermal limits in use.
    pub fn limits(&self) -> &ThermalLimits {
        &self.limits
    }

    /// The ambient parameters in use.
    pub fn ambient_params(&self) -> &AmbientParams {
        &self.ambient_params
    }

    /// Current memory ambient (DIMM inlet) temperature.
    pub fn ambient_c(&self) -> f64 {
        self.ambient.temp_c()
    }

    /// Flat index of a `(channel, dimm)` position.
    pub fn position_index(&self, channel: usize, dimm: usize) -> Option<usize> {
        let idx = channel * self.dimms_per_channel + dimm;
        (dimm < self.dimms_per_channel && idx < self.coords.len()).then_some(idx)
    }

    /// Advances every position by `dt_s` seconds.
    ///
    /// `powers` carries one buffer/DRAM power breakdown per position in
    /// scene order; the topology splits each breakdown over the stack's
    /// layers and the Ψ matrix couples the layer powers into per-layer
    /// steady states (vertically stacked dies heat each other through
    /// their TSV resistances). `sum_voltage_ipc` is the processors'
    /// Σ(V·IPC) term of Equation 3.6 (ignored under isolated ambient
    /// parameters, where Ψ_CPU_MEM×ξ = 0).
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` does not match the number of positions.
    pub fn step(&mut self, powers: &[FbdimmPowerBreakdown], sum_voltage_ipc: f64, dt_s: f64) {
        assert_eq!(powers.len(), self.coords.len(), "one power breakdown per DIMM position required");
        let depth = self.topology.depth();
        // All positions share the topology's per-layer time constants, so
        // one scene step costs `depth + 1` `exp()`s — and zero once the step
        // length repeats (the window loop always steps with a fixed
        // `step_s`).
        if !matches!(&self.coeffs, Some(c) if c.dt_s == dt_s) {
            self.coeffs = Some(StepCoeffs {
                dt_s,
                ambient_alpha: ThermalNode::decay_alpha(self.ambient.tau_s(), dt_s),
                layer_alphas: self.topology.layers().iter().map(|l| ThermalNode::decay_alpha(l.tau_s, dt_s)).collect(),
            });
        }
        let coeffs = self.coeffs.as_ref().expect("coefficients computed above");
        let stable_ambient = self.ambient_params.stable_ambient_c(sum_voltage_ipc);
        let ambient = self.ambient.step_with_alpha(stable_ambient, coeffs.ambient_alpha);
        if self.topology.is_identity_split() {
            // Legacy FBDIMM order (ambient-first accumulation) — preserved
            // exactly so the paper-configuration goldens stay bit-identical.
            for (pos, p) in powers.iter().enumerate() {
                self.topology.split_watts_into(p.amb_watts, p.dram_watts, &mut self.watts);
                let base = pos * depth;
                for l in 0..depth {
                    let mut stable = ambient;
                    for (w, psi) in self.watts.iter().zip(self.topology.psi_row(l)) {
                        stable += w * psi;
                    }
                    let t = &mut self.temps_c[base + l];
                    *t += (stable - *t) * coeffs.layer_alphas[l];
                    let peak = &mut self.peaks_c[base + l];
                    *peak = peak.max(*t);
                }
            }
        } else {
            // Non-identity stacks superpose Ψ from zero and add the ambient
            // last: the same operation order as the batched tier's cached
            // superposition matrix, so both paths round identically.
            for (pos, p) in powers.iter().enumerate() {
                self.topology.split_watts_into(p.amb_watts, p.dram_watts, &mut self.watts);
                let base = pos * depth;
                for l in 0..depth {
                    let stable = ambient + self.topology.psi_superpose(&self.watts, l);
                    let t = &mut self.temps_c[base + l];
                    *t += (stable - *t) * coeffs.layer_alphas[l];
                    let peak = &mut self.peaks_c[base + l];
                    *peak = peak.max(*t);
                }
            }
        }
    }

    /// Advances only the shared ambient node by one precomputed decay
    /// factor and returns the new ambient temperature. The batched engine
    /// ([`crate::sim::batch`]) steps each cell's ambient individually, then
    /// runs one fused per-layer RC loop over the whole lane; routing the
    /// update through the same `step_with_alpha` call keeps every cell's
    /// ambient bit-identical to a [`DimmThermalScene::step`] sequence.
    pub(crate) fn step_ambient(&mut self, sum_voltage_ipc: f64, alpha: f64) -> f64 {
        let stable_ambient = self.ambient_params.stable_ambient_c(sum_voltage_ipc);
        self.ambient.step_with_alpha(stable_ambient, alpha)
    }

    /// Overwrites the shared ambient node temperature. The batched
    /// engine's envelope tier advances the ambient in closed form during
    /// certified segment jumps and writes the exact endpoint back here.
    pub(crate) fn set_ambient_c(&mut self, temp_c: f64) {
        self.ambient.set_temp_c(temp_c);
    }

    /// Closed-form segment moments of the shared ambient node: over `m`
    /// windows of geometric relaxation toward `stable` (per-window decay
    /// factor `lambda_a`, current deviation `a0 = ambient − stable`), the
    /// node's endpoint is `stable + a0·λ_a^m` and the running sum of the
    /// per-window samples is the geometric series
    /// `stable·m + a0·λ_a·(1 − λ_a^m)/(1 − λ_a)`. Writes the endpoint back
    /// and returns the sum — the two moments the envelope replay accounts
    /// for a licensed segment jump without stepping the node per window.
    pub(crate) fn ambient_segment_moments(&mut self, stable: f64, a0: f64, lambda_a: f64, m: f64) -> f64 {
        let lam_am = (m * lambda_a.ln()).exp();
        let sum = stable * m + a0 * lambda_a * (1.0 - lam_am) / (1.0 - lambda_a);
        self.ambient.set_temp_c(stable + a0 * lam_am);
        sum
    }

    /// The flat position-major layer temperature field (positions × depth).
    pub(crate) fn layer_temps_flat(&self) -> &[f64] {
        &self.temps_c
    }

    /// The flat position-major running peak field (positions × depth).
    pub(crate) fn layer_peaks_flat(&self) -> &[f64] {
        &self.peaks_c
    }

    /// Overwrites the layer temperature field from a flat position-major
    /// slice (the batched engine synchronizes its lane matrix back into the
    /// scene before observations and at the end of a run).
    pub(crate) fn set_layer_temps(&mut self, temps_c: &[f64]) {
        assert_eq!(temps_c.len(), self.temps_c.len(), "temperature field shape mismatch");
        self.temps_c.copy_from_slice(temps_c);
    }

    /// Overwrites the running peak field from a flat position-major slice.
    pub(crate) fn set_layer_peaks(&mut self, peaks_c: &[f64]) {
        assert_eq!(peaks_c.len(), self.peaks_c.len(), "peak field shape mismatch");
        self.peaks_c.copy_from_slice(peaks_c);
    }

    /// Computes every layer's RC fixed point — the temperature it converges
    /// to if `powers` and `sum_voltage_ipc` were held forever, with the
    /// shared ambient at its own fixed point — into `out` (position-major
    /// flat, `positions × depth`, cleared first).
    ///
    /// The arithmetic mirrors [`DimmThermalScene::step`] operation for
    /// operation — identity splits accumulate ambient-first in ψ-row order,
    /// non-identity stacks superpose Ψ from zero via `psi_superpose` and add
    /// the ambient last — so a temperature field sitting exactly at the
    /// fixed point is bit-stationary under `step` with the same inputs. The steady-state
    /// fast-forward uses this to decide when the transient has died out and
    /// to evaluate its closed-form jump.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` does not match the number of positions.
    pub fn fixed_point_into(&self, powers: &[FbdimmPowerBreakdown], sum_voltage_ipc: f64, out: &mut Vec<f64>) {
        assert_eq!(powers.len(), self.coords.len(), "one power breakdown per DIMM position required");
        let depth = self.topology.depth();
        let ambient = self.ambient_params.stable_ambient_c(sum_voltage_ipc);
        out.clear();
        out.reserve(powers.len() * depth);
        let mut watts = vec![0.0; depth];
        if self.topology.is_identity_split() {
            for p in powers {
                self.topology.split_watts_into(p.amb_watts, p.dram_watts, &mut watts);
                for l in 0..depth {
                    let mut stable = ambient;
                    for (w, psi) in watts.iter().zip(self.topology.psi_row(l)) {
                        stable += w * psi;
                    }
                    out.push(stable);
                }
            }
        } else {
            for p in powers {
                self.topology.split_watts_into(p.amb_watts, p.dram_watts, &mut watts);
                for l in 0..depth {
                    out.push(ambient + self.topology.psi_superpose(&watts, l));
                }
            }
        }
    }

    /// The current hottest `(buffer, dram)` temperatures across all
    /// positions, without materializing a full observation (the per-window
    /// hot path of the simulation engine). The buffer maximum is `NaN` when
    /// the stack has no buffer layer.
    pub fn max_temps_c(&self) -> (f64, f64) {
        self.fold_kind_maxima(&self.temps_c)
    }

    /// Like [`DimmThermalScene::max_temps_c`] but over the running
    /// per-layer peaks instead of the current temperatures.
    pub fn peak_temps_c(&self) -> (f64, f64) {
        self.fold_kind_maxima(&self.peaks_c)
    }

    fn fold_kind_maxima(&self, field: &[f64]) -> (f64, f64) {
        let depth = self.topology.depth();
        let mut max_buffer = f64::NEG_INFINITY;
        let mut max_dram = f64::NEG_INFINITY;
        for stack in field.chunks_exact(depth) {
            for (layer, &t) in self.topology.layers().iter().zip(stack) {
                match layer.kind {
                    DeviceLayerKind::Buffer => max_buffer = max_buffer.max(t),
                    DeviceLayerKind::Dram => max_dram = max_dram.max(t),
                }
            }
        }
        if self.topology.has_buffer() {
            (max_buffer, max_dram)
        } else {
            (f64::NAN, max_dram)
        }
    }

    fn summarize(&self, pos: usize, field: &[f64]) -> PositionTemp {
        let depth = self.topology.depth();
        let stack = &field[pos * depth..(pos + 1) * depth];
        let (channel, dimm) = self.coords[pos];
        let mut amb_c = f64::NAN;
        let mut dram_c = f64::NEG_INFINITY;
        let mut hottest_layer = 0;
        let mut hottest_layer_c = f64::NEG_INFINITY;
        for (l, (layer, &t)) in self.topology.layers().iter().zip(stack).enumerate() {
            match layer.kind {
                DeviceLayerKind::Buffer => amb_c = if amb_c.is_nan() { t } else { amb_c.max(t) },
                DeviceLayerKind::Dram => dram_c = dram_c.max(t),
            }
            if t > hottest_layer_c {
                hottest_layer_c = t;
                hottest_layer = l;
            }
        }
        PositionTemp { channel, dimm, amb_c, dram_c, hottest_layer, hottest_layer_c }
    }

    /// The current per-position temperature summaries.
    pub fn position_temps(&self) -> Vec<PositionTemp> {
        (0..self.coords.len()).map(|pos| self.summarize(pos, &self.temps_c)).collect()
    }

    /// The running per-position peak summaries since construction.
    pub fn position_peaks(&self) -> Vec<PositionTemp> {
        (0..self.coords.len()).map(|pos| self.summarize(pos, &self.peaks_c)).collect()
    }

    /// The running per-layer peak temperatures of position `index`, in
    /// stack order.
    pub fn layer_peaks_of(&self, index: usize) -> &[f64] {
        let depth = self.topology.depth();
        &self.peaks_c[index * depth..(index + 1) * depth]
    }

    /// The current per-layer temperatures of position `index`, in stack
    /// order.
    pub fn layers_of(&self, index: usize) -> &[f64] {
        let depth = self.topology.depth();
        &self.temps_c[index * depth..(index + 1) * depth]
    }

    /// Snapshots the scene into the observation a DTM policy consumes, with
    /// the hottest devices *derived* (arg-max over positions and layers).
    pub fn observe(&self) -> ThermalObservation {
        let mut obs = ThermalObservation::from_hottest(f64::NEG_INFINITY, f64::NEG_INFINITY);
        self.observe_into(&mut obs);
        obs
    }

    /// Like [`DimmThermalScene::observe`] but refills a caller-owned
    /// observation, reusing its `positions` and `layer_temps_c`
    /// allocations. The window loop calls this once per DTM interval with
    /// one scratch buffer per run, so the hot path allocates nothing.
    pub fn observe_into(&self, obs: &mut ThermalObservation) {
        let depth = self.topology.depth();
        obs.max_amb_c = f64::NEG_INFINITY;
        obs.max_dram_c = f64::NEG_INFINITY;
        obs.ambient_c = self.ambient.temp_c();
        obs.hottest_amb = None;
        obs.hottest_dram = None;
        obs.layer_depth = depth;
        obs.positions.clear();
        obs.positions.reserve(self.coords.len());
        obs.layer_temps_c.clear();
        obs.layer_temps_c.extend_from_slice(&self.temps_c);
        for pos in 0..self.coords.len() {
            let summary = self.summarize(pos, &self.temps_c);
            if summary.amb_c > obs.max_amb_c {
                obs.max_amb_c = summary.amb_c;
                obs.hottest_amb = Some((summary.channel, summary.dimm));
            }
            if summary.dram_c > obs.max_dram_c {
                obs.max_dram_c = summary.dram_c;
                obs.hottest_dram = Some((summary.channel, summary.dimm));
            }
            obs.positions.push(summary);
        }
        if !self.topology.has_buffer() {
            obs.max_amb_c = f64::NAN;
        }
    }

    /// Like [`DimmThermalScene::observe_into`] but reading the temperature
    /// field from column `col` of a row-major lane matrix (`stride` cells
    /// per row) instead of the scene's own field. The batched engine
    /// ([`crate::sim::batch`]) keeps in-flight temperatures in its lane, so
    /// observing through this method skips the two full-field copies a
    /// sync-then-observe round trip would cost per DTM decision. The column
    /// is gathered once into the observation's own `layer_temps_c` buffer
    /// and summarized from there, so every derived quantity carries bits
    /// identical to a synced [`DimmThermalScene::observe_into`].
    pub(crate) fn observe_lane_into(&self, temps: &[f64], stride: usize, col: usize, obs: &mut ThermalObservation) {
        let depth = self.topology.depth();
        obs.max_amb_c = f64::NEG_INFINITY;
        obs.max_dram_c = f64::NEG_INFINITY;
        obs.ambient_c = self.ambient.temp_c();
        obs.hottest_amb = None;
        obs.hottest_dram = None;
        obs.layer_depth = depth;
        obs.positions.clear();
        obs.positions.reserve(self.coords.len());
        let mut field = std::mem::take(&mut obs.layer_temps_c);
        field.clear();
        field.extend(temps[col..].iter().step_by(stride).take(self.coords.len() * depth));
        for pos in 0..self.coords.len() {
            let summary = self.summarize(pos, &field);
            if summary.amb_c > obs.max_amb_c {
                obs.max_amb_c = summary.amb_c;
                obs.hottest_amb = Some((summary.channel, summary.dimm));
            }
            if summary.dram_c > obs.max_dram_c {
                obs.max_dram_c = summary.dram_c;
                obs.hottest_dram = Some((summary.channel, summary.dimm));
            }
            obs.positions.push(summary);
        }
        obs.layer_temps_c = field;
        if !self.topology.has_buffer() {
            obs.max_amb_c = f64::NAN;
        }
    }

    /// Whether any layer of any position currently exceeds the thermal
    /// design point of its device kind (buffer layers check the AMB TDP,
    /// DRAM layers the DRAM TDP).
    pub fn over_tdp(&self) -> bool {
        let depth = self.topology.depth();
        self.temps_c.chunks_exact(depth).any(|stack| {
            self.topology.layers().iter().zip(stack).any(|(layer, &t)| t >= self.limits.tdp_for(layer.kind))
        })
    }

    /// Forces every position to the given device temperatures: buffer
    /// layers to `amb_c`, DRAM layers to `dram_c` (used to start
    /// experiments from a known state).
    pub fn set_uniform_temps_c(&mut self, amb_c: f64, dram_c: f64) {
        let depth = self.topology.depth();
        for (cell, layer) in
            self.temps_c.iter_mut().zip(self.topology.layers().iter().cycle().take(depth * self.coords.len()))
        {
            let t = match layer.kind {
                DeviceLayerKind::Buffer => amb_c,
                DeviceLayerKind::Dram => dram_c,
            };
            *cell = t;
        }
        for (peak, &t) in self.peaks_c.iter_mut().zip(self.temps_c.iter()) {
            *peak = peak.max(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::isolated::IsolatedThermalModel;
    use crate::thermal::model::ThermalModel;
    use crate::thermal::params::StackKind;

    fn shape() -> FbdimmConfig {
        FbdimmConfig::ddr2_667_paper()
    }

    fn graded_powers(n: usize) -> Vec<FbdimmPowerBreakdown> {
        // Position 0 of each channel is the hottest (carries the bypass
        // traffic of everything behind it), like a real FBDIMM chain.
        (0..n).map(|i| FbdimmPowerBreakdown { amb_watts: 6.5 - 0.3 * (i % 4) as f64, dram_watts: 2.0 }).collect()
    }

    fn stacked_scene(kind: StackKind) -> DimmThermalScene {
        let mem = shape();
        let cooling = CoolingConfig::aohs_1_5();
        DimmThermalScene::with_topology(
            mem.logical_channels,
            mem.dimms_per_channel,
            cooling,
            ThermalLimits::paper_fbdimm(),
            AmbientParams::isolated(&cooling),
            kind.topology(&cooling),
        )
    }

    #[test]
    fn scene_has_one_position_per_dimm() {
        let mem = shape();
        let scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        assert_eq!(scene.len(), mem.dimm_positions());
        assert!(!scene.is_empty());
        assert_eq!(scene.depth(), 2);
        assert_eq!(scene.topology().name(), "fbdimm");
        assert_eq!(scene.position_index(1, 3), Some(7));
        assert_eq!(scene.position_index(0, 4), None);
        assert_eq!(scene.position_index(7, 0), None);
    }

    #[test]
    fn hottest_dimm_is_derived_not_assumed() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers = graded_powers(scene.len());
        for _ in 0..200 {
            scene.step(&powers, 0.0, 1.0);
        }
        let obs = scene.observe();
        // Both channels' dimm 0 are equally hot; arg-max reports one of them.
        let (channel, dimm) = obs.hottest_amb.unwrap();
        assert_eq!(dimm, 0, "dimm 0 carries the most power");
        assert!(channel < mem.logical_channels);
        assert_eq!(obs.positions.len(), scene.len());
        assert_eq!(obs.layer_depth, 2);
        assert_eq!(obs.layer_temps_c.len(), scene.len() * 2);
        // The field is spatially resolved: the far end of the chain is cooler.
        let near = obs.positions.iter().find(|p| p.channel == 0 && p.dimm == 0).unwrap();
        let far = obs.positions.iter().find(|p| p.channel == 0 && p.dimm == 3).unwrap();
        assert!(near.amb_c > far.amb_c + 3.0, "near {:.1} vs far {:.1}", near.amb_c, far.amb_c);
        // Per-layer access agrees with the summary: the AMB layer is layer 0.
        assert_eq!(obs.layers_of(0)[0], obs.positions[0].amb_c);
        assert_eq!(obs.positions[0].hottest_layer, 0, "the AMB runs hotter than the DRAM");
    }

    #[test]
    fn hottest_position_tracks_the_legacy_single_model_exactly() {
        // The regression contract: when one position consistently carries
        // the worst-case power, the scene's maximum must reproduce the
        // legacy hottest-DIMM trajectory.
        let mem = shape();
        let cooling = CoolingConfig::aohs_1_5();
        let limits = ThermalLimits::paper_fbdimm();
        let mut scene = DimmThermalScene::isolated(&mem, cooling, limits);
        let mut legacy = IsolatedThermalModel::new(cooling, limits);
        let powers = graded_powers(scene.len());
        for _ in 0..600 {
            scene.step(&powers, 0.0, 1.0);
            legacy.step(powers[0].amb_watts, powers[0].dram_watts, 1.0);
            let obs = scene.observe();
            assert!((obs.max_amb_c - legacy.amb_temp_c()).abs() < 0.1, "AMB diverged");
            assert!((obs.max_dram_c - legacy.dram_temp_c()).abs() < 0.1, "DRAM diverged");
        }
    }

    #[test]
    fn integrated_scene_shares_one_processor_heated_ambient() {
        let mem = shape();
        let mut idle = DimmThermalScene::integrated(&mem, CoolingConfig::fdhs_1_0(), ThermalLimits::paper_fbdimm());
        let mut busy = idle.clone();
        let powers = vec![FbdimmPowerBreakdown { amb_watts: 5.5, dram_watts: 1.5 }; idle.len()];
        for _ in 0..300 {
            idle.step(&powers, 0.0, 1.0);
            busy.step(&powers, 6.0, 1.0);
        }
        assert!((idle.ambient_c() - idle.ambient_params().system_inlet_c).abs() < 0.01);
        assert!(busy.ambient_c() > idle.ambient_c() + 5.0);
        // The hotter air heats every position, not just the hottest one.
        let cold = idle.observe();
        let hot = busy.observe();
        for (c, h) in cold.positions.iter().zip(hot.positions.iter()) {
            assert!(h.amb_c > c.amb_c + 3.0);
        }
    }

    #[test]
    fn position_peaks_remember_transients() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let hot = vec![FbdimmPowerBreakdown { amb_watts: 6.5, dram_watts: 2.0 }; scene.len()];
        let idle = vec![FbdimmPowerBreakdown { amb_watts: 5.1, dram_watts: 0.98 }; scene.len()];
        for _ in 0..400 {
            scene.step(&hot, 0.0, 1.0);
        }
        let peak_during_burst = scene.observe().max_amb_c;
        for _ in 0..400 {
            scene.step(&idle, 0.0, 1.0);
        }
        assert!(scene.observe().max_amb_c < peak_during_burst - 5.0, "scene must cool down");
        let peaks = scene.position_peaks();
        assert!(peaks.iter().all(|p| p.amb_c >= peak_during_burst - 0.1), "peaks must persist");
        let (peak_amb, _) = scene.peak_temps_c();
        assert!(peak_amb >= peak_during_burst - 1e-9);
    }

    #[test]
    fn fixed_point_is_bit_stationary_under_step() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers = graded_powers(scene.len());
        let mut fp = Vec::new();
        scene.fixed_point_into(&powers, 0.0, &mut fp);
        assert_eq!(fp.len(), scene.len() * scene.depth());
        // A long constant-power run converges toward the fixed point…
        for _ in 0..5_000 {
            scene.step(&powers, 0.0, 1.0);
        }
        for (t, f) in scene.layer_temps_flat().iter().zip(fp.iter()) {
            assert!((t - f).abs() < 1e-9, "temp {t} vs fixed point {f}");
        }
        // …and a field placed exactly on it does not move by a single bit
        // (the fast-forward contract: stepping is the identity there).
        scene.set_layer_temps(&fp);
        scene.step(&powers, 0.0, 1.0);
        assert_eq!(scene.layer_temps_flat(), fp.as_slice());
    }

    #[test]
    fn over_tdp_and_forced_temperatures() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        assert!(!scene.over_tdp());
        scene.set_uniform_temps_c(110.5, 80.0);
        assert!(scene.over_tdp());
        let obs = scene.observe();
        assert!(obs.over_tdp(scene.limits()));
        assert_eq!(obs.max_amb_c, 110.5);
    }

    #[test]
    fn observe_into_reuses_the_buffer_and_matches_observe() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers = graded_powers(scene.len());
        let mut scratch = scene.observe();
        for _ in 0..50 {
            scene.step(&powers, 0.0, 1.0);
            scene.observe_into(&mut scratch);
            assert_eq!(scratch, scene.observe());
        }
    }

    #[test]
    fn changing_step_lengths_invalidate_the_cached_coefficients() {
        // Stepping with alternating dt must match a scene that never cached
        // (i.e. per-step closed-form nodes), because the coefficient cache is
        // keyed by dt.
        let mem = shape();
        let cooling = CoolingConfig::aohs_1_5();
        let limits = ThermalLimits::paper_fbdimm();
        let mut scene = DimmThermalScene::isolated(&mem, cooling, limits);
        let r = cooling.resistances();
        let inlet = scene.ambient_params().system_inlet_c;
        let powers = graded_powers(scene.len());
        let mut mirror_amb = vec![inlet; scene.len()];
        let mut mirror_dram = vec![inlet; scene.len()];
        for i in 0..400 {
            let dt = if i % 3 == 0 { 0.01 } else { 1.0 };
            scene.step(&powers, 0.0, dt);
            for (j, p) in powers.iter().enumerate() {
                let stable_amb = inlet + p.amb_watts * r.psi_amb + p.dram_watts * r.psi_dram_amb;
                let stable_dram = inlet + p.amb_watts * r.psi_amb_dram + p.dram_watts * r.psi_dram;
                mirror_amb[j] += (stable_amb - mirror_amb[j]) * (1.0 - (-dt / r.tau_amb_s).exp());
                mirror_dram[j] += (stable_dram - mirror_dram[j]) * (1.0 - (-dt / r.tau_dram_s).exp());
            }
        }
        for (pos, (ma, md)) in scene.position_temps().iter().zip(mirror_amb.iter().zip(mirror_dram.iter())) {
            assert!((pos.amb_c - ma).abs() < 1e-12, "AMB {} vs mirror {}", pos.amb_c, ma);
            assert!((pos.dram_c - md).abs() < 1e-12, "DRAM {} vs mirror {}", pos.dram_c, md);
        }
    }

    #[test]
    fn synthesized_observation_carries_no_field() {
        let obs = ThermalObservation::from_hottest(109.0, 82.0);
        assert_eq!(obs.max_amb_c, 109.0);
        assert_eq!(obs.max_dram_c, 82.0);
        assert!(obs.positions.is_empty() && obs.hottest_amb.is_none());
        assert_eq!(obs.layer_depth, 0);
        assert!(obs.layers_of(0).is_empty());
        assert!(obs.ambient_c.is_nan(), "scalar sensors cannot see the ambient");
        assert_eq!(obs.with_ambient_c(50.0).ambient_c, 50.0);
        let obs = ThermalObservation::from_hottest(109.0, 82.0);
        assert!(!obs.over_tdp(&ThermalLimits::paper_fbdimm()));
    }

    #[test]
    fn bufferless_observation_is_nan_safe() {
        // A DDR4/5 rank pair has no AMB; the observation must not invent a
        // 0.0 (or -inf) hot spot and every limit check must stay sane.
        let mut scene = stacked_scene(StackKind::RankPair);
        let powers = vec![FbdimmPowerBreakdown { amb_watts: 1.0, dram_watts: 3.0 }; scene.len()];
        for _ in 0..200 {
            scene.step(&powers, 0.0, 1.0);
        }
        let obs = scene.observe();
        assert!(obs.max_amb_c.is_nan(), "no buffer layer -> NaN, got {}", obs.max_amb_c);
        assert_eq!(obs.max_amb_opt(), None);
        assert!(obs.hottest_amb.is_none());
        assert!(obs.max_dram_c > 55.0);
        let limits = ThermalLimits::paper_fbdimm();
        assert!(!obs.over_tdp(&limits), "NaN must never trip a limit");
        assert!(obs.released(&limits), "NaN counts as released");
        let (amb, dram) = scene.max_temps_c();
        assert!(amb.is_nan() && dram > 55.0);
        // The round-trip through scalar sensors stays NaN-safe too.
        let synth = ThermalObservation::from_hottest(obs.max_amb_c, obs.max_dram_c);
        assert!(synth.max_amb_opt().is_none());
        assert!(!synth.over_tdp(&limits));
    }

    #[test]
    fn stacked_positions_heat_their_inner_dies_most() {
        let mut scene = stacked_scene(StackKind::stacked4());
        assert_eq!(scene.depth(), 5);
        let powers = vec![FbdimmPowerBreakdown { amb_watts: 6.0, dram_watts: 2.0 }; scene.len()];
        for _ in 0..600 {
            scene.step(&powers, 0.0, 1.0);
        }
        let obs = scene.observe();
        // Layer 0 is the base buffer die; dies 1..=4 sit above it. The die
        // next to the hot base (the inner die) must beat the spreader-side
        // outer die.
        let stack = obs.layers_of(0);
        assert!(stack[1] > stack[4] + 1.0, "inner die {:.1} vs outer die {:.1}", stack[1], stack[4]);
        // The buffer maximum is real (base die), and per-layer peaks exist.
        assert!(obs.max_amb_opt().is_some());
        assert_eq!(scene.layer_peaks_of(0).len(), 5);
        assert!(scene.layer_peaks_of(0)[1] >= stack[1]);
    }

    #[test]
    fn channel_and_position_helpers_resolve_the_field() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers = graded_powers(scene.len());
        for _ in 0..200 {
            scene.step(&powers, 0.0, 1.0);
        }
        let obs = scene.observe();
        assert_eq!(obs.channels(), mem.logical_channels);
        let (amb0, dram0) = obs.channel_max_temps(0);
        let expected_amb =
            obs.positions.iter().filter(|p| p.channel == 0).map(|p| p.amb_c).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(amb0, expected_amb);
        assert!(dram0 > 0.0);
        // A channel outside the field reports NaN for both devices.
        let (nan_amb, nan_dram) = obs.channel_max_temps(99);
        assert!(nan_amb.is_nan() && nan_dram.is_nan());
        // Hottest/coldest positions: dimm 0 carries the bypass power, the
        // far end of the chain idles coolest.
        let hot = obs.hottest_position_index().unwrap();
        let cold = obs.coldest_position_index().unwrap();
        assert_eq!(obs.positions[hot].dimm, 0);
        assert_eq!(obs.positions[cold].dimm, 3);
        assert!(obs.positions[hot].hottest_layer_c > obs.positions[cold].hottest_layer_c);
        // Bufferless channels report a NaN buffer maximum but a real DRAM one.
        let mut rank = stacked_scene(StackKind::RankPair);
        let powers = vec![FbdimmPowerBreakdown { amb_watts: 1.0, dram_watts: 3.0 }; rank.len()];
        for _ in 0..100 {
            rank.step(&powers, 0.0, 1.0);
        }
        let obs = rank.observe();
        let (amb, dram) = obs.channel_max_temps(0);
        assert!(amb.is_nan() && dram > 45.0);
        // Synthesized observations have no field to resolve.
        let synth = ThermalObservation::from_hottest(100.0, 80.0);
        assert_eq!(synth.channels(), 0);
        assert!(synth.hottest_position_index().is_none() && synth.coldest_position_index().is_none());
    }

    #[test]
    fn per_layer_tdp_checks_catch_a_hot_inner_die() {
        let mut scene = stacked_scene(StackKind::stacked4());
        assert!(!scene.over_tdp());
        // Push only the DRAM dies over their TDP; the base stays cool.
        scene.set_uniform_temps_c(50.0, 86.0);
        assert!(scene.over_tdp(), "a DRAM layer at 86 degC must trip the 85 degC DRAM TDP");
        let obs = scene.observe();
        assert!(obs.over_tdp(scene.limits()));
        assert!(obs.max_amb_c < 85.0, "the base die is cool");
    }
}
