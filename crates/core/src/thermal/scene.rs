//! Channel-resolved thermal scene: one RC node pair per DIMM position.
//!
//! The paper's two-level simulator tracks only the *hottest* DIMM
//! (Section 4.3.1), but the memory simulator already reports per-position
//! traffic and the power model already computes per-position power. A
//! [`DimmThermalScene`] keeps an AMB/DRAM thermal node pair for **every**
//! DIMM position (logical channels × DIMMs per channel), all breathing the
//! same memory-ambient air, and derives the hottest DIMM by arg-max instead
//! of assuming it. Because each position integrates the same Equations
//! 3.3–3.6 the legacy single-model trajectory falls out as the scene's
//! maximum whenever one position carries the worst-case power — which is the
//! regression contract the `scene_matches_legacy` tests pin down.
//!
//! The scene also produces the [`ThermalObservation`] the DTM policies
//! consume: maximum device temperatures (what a global policy throttles on),
//! the full per-position temperature field (what future per-DIMM policies
//! need) and the derived hottest positions.

use fbdimm_sim::FbdimmConfig;

use crate::power::fbdimm::FbdimmPowerBreakdown;
use crate::thermal::params::{AmbientParams, CoolingConfig, ThermalLimits, ThermalResistances};
use crate::thermal::rc::ThermalNode;

/// Temperatures of one DIMM position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionTemp {
    /// Logical channel index.
    pub channel: usize,
    /// DIMM position along the chain (0 = closest to the controller).
    pub dimm: usize,
    /// AMB temperature, °C.
    pub amb_c: f64,
    /// DRAM temperature, °C.
    pub dram_c: f64,
}

/// What a DTM policy sees at a decision point: the sensed temperature field
/// of the memory subsystem.
///
/// Policies that act globally (all of Chapter 4's schemes) read the maxima;
/// the per-position field is carried alongside so spatially aware policies
/// can be written against the same interface.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalObservation {
    /// Hottest AMB temperature across all DIMM positions, °C.
    pub max_amb_c: f64,
    /// Hottest DRAM temperature across all DIMM positions, °C.
    pub max_dram_c: f64,
    /// Memory ambient (DIMM inlet) temperature, °C. `NaN` when the
    /// observation was synthesized from scalar device sensors that cannot
    /// see the ambient ([`ThermalObservation::from_hottest`]).
    pub ambient_c: f64,
    /// `(channel, dimm)` of the position with the hottest AMB, if any.
    pub hottest_amb: Option<(usize, usize)>,
    /// `(channel, dimm)` of the position with the hottest DRAM, if any.
    pub hottest_dram: Option<(usize, usize)>,
    /// The full per-position temperature field (empty when the observation
    /// was synthesized from scalar sensors).
    pub positions: Vec<PositionTemp>,
}

impl ThermalObservation {
    /// Builds an observation from scalar hottest-device temperatures, with
    /// no per-position field. This is what a pair of physical sensors (or a
    /// unit test) provides. `ambient_c` is `NaN` — the sensors cannot see
    /// the ambient; use [`ThermalObservation::with_ambient_c`] when the
    /// caller knows it.
    pub fn from_hottest(max_amb_c: f64, max_dram_c: f64) -> Self {
        ThermalObservation {
            max_amb_c,
            max_dram_c,
            ambient_c: f64::NAN,
            hottest_amb: None,
            hottest_dram: None,
            positions: Vec::new(),
        }
    }

    /// Returns a copy with a known ambient (inlet) temperature.
    pub fn with_ambient_c(mut self, ambient_c: f64) -> Self {
        self.ambient_c = ambient_c;
        self
    }

    /// Whether either maximum reaches its thermal design point.
    pub fn over_tdp(&self, limits: &ThermalLimits) -> bool {
        self.max_amb_c >= limits.amb_tdp_c || self.max_dram_c >= limits.dram_tdp_c
    }
}

#[derive(Debug, Clone)]
struct ScenePosition {
    channel: usize,
    dimm: usize,
    amb: ThermalNode,
    dram: ThermalNode,
    peak_amb_c: f64,
    peak_dram_c: f64,
}

/// Precomputed per-step RC decay factors for one step length. Every position
/// shares the same AMB and DRAM time constants (Table 3.2), so a whole-scene
/// step needs three `exp()` evaluations in total — computed once per distinct
/// `dt_s` and reused for every subsequent window of the same length, instead
/// of `2 × positions + 1` per step.
#[derive(Debug, Clone, Copy)]
struct StepCoeffs {
    dt_s: f64,
    ambient_alpha: f64,
    amb_alpha: f64,
    dram_alpha: f64,
}

/// A thermal model of the whole DIMM population.
///
/// Positions are ordered channel-major (`index = channel ×
/// dimms_per_channel + dimm`), matching the order of
/// [`FbdimmPowerModel::scene_power`](crate::power::fbdimm::FbdimmPowerModel::scene_power)
/// for a full traffic window.
///
/// All positions share one memory-ambient node (constant under isolated
/// parameters, processor-driven under integrated ones, Equation 3.6).
#[derive(Debug, Clone)]
pub struct DimmThermalScene {
    cooling: CoolingConfig,
    resistances: ThermalResistances,
    limits: ThermalLimits,
    ambient_params: AmbientParams,
    ambient: ThermalNode,
    dimms_per_channel: usize,
    positions: Vec<ScenePosition>,
    coeffs: Option<StepCoeffs>,
}

impl DimmThermalScene {
    /// Creates a scene with explicit shape and ambient parameters; every
    /// node starts at the ambient inlet temperature.
    pub fn new(
        channels: usize,
        dimms_per_channel: usize,
        cooling: CoolingConfig,
        limits: ThermalLimits,
        ambient_params: AmbientParams,
    ) -> Self {
        assert!(channels > 0 && dimms_per_channel > 0, "scene must contain at least one DIMM position");
        let resistances = cooling.resistances();
        let start = ambient_params.system_inlet_c;
        let positions = (0..channels)
            .flat_map(|channel| (0..dimms_per_channel).map(move |dimm| (channel, dimm)))
            .map(|(channel, dimm)| ScenePosition {
                channel,
                dimm,
                amb: ThermalNode::new(start, resistances.tau_amb_s),
                dram: ThermalNode::new(start, resistances.tau_dram_s),
                peak_amb_c: start,
                peak_dram_c: start,
            })
            .collect();
        DimmThermalScene {
            cooling,
            resistances,
            limits,
            ambient_params,
            ambient: ThermalNode::new(start, ambient_params.tau_cpu_dram_s),
            dimms_per_channel,
            positions,
            coeffs: None,
        }
    }

    /// A scene shaped like `mem` under the isolated thermal model (constant
    /// ambient, Table 3.3).
    pub fn isolated(mem: &FbdimmConfig, cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        Self::new(mem.logical_channels, mem.dimms_per_channel, cooling, limits, AmbientParams::isolated(&cooling))
    }

    /// A scene shaped like `mem` under the integrated thermal model
    /// (processor-heated ambient, Equation 3.6).
    pub fn integrated(mem: &FbdimmConfig, cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        Self::new(mem.logical_channels, mem.dimms_per_channel, cooling, limits, AmbientParams::integrated(&cooling))
    }

    /// Number of DIMM positions in the scene.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the scene has no positions (never true for a constructed
    /// scene; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The cooling configuration in use.
    pub fn cooling(&self) -> &CoolingConfig {
        &self.cooling
    }

    /// The thermal limits in use.
    pub fn limits(&self) -> &ThermalLimits {
        &self.limits
    }

    /// The ambient parameters in use.
    pub fn ambient_params(&self) -> &AmbientParams {
        &self.ambient_params
    }

    /// Current memory ambient (DIMM inlet) temperature.
    pub fn ambient_c(&self) -> f64 {
        self.ambient.temp_c()
    }

    /// Flat index of a `(channel, dimm)` position.
    pub fn position_index(&self, channel: usize, dimm: usize) -> Option<usize> {
        let idx = channel * self.dimms_per_channel + dimm;
        (dimm < self.dimms_per_channel && idx < self.positions.len()).then_some(idx)
    }

    /// Advances every position by `dt_s` seconds.
    ///
    /// `powers` carries one AMB/DRAM power breakdown per position in scene
    /// order; `sum_voltage_ipc` is the processors' Σ(V·IPC) term of
    /// Equation 3.6 (ignored under isolated ambient parameters, where
    /// Ψ_CPU_MEM×ξ = 0).
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` does not match the number of positions.
    pub fn step(&mut self, powers: &[FbdimmPowerBreakdown], sum_voltage_ipc: f64, dt_s: f64) {
        assert_eq!(powers.len(), self.positions.len(), "one power breakdown per DIMM position required");
        // All positions share two time constants, so one scene step costs
        // three `exp()`s — and zero once the step length repeats (the window
        // loop always steps with a fixed `step_s`).
        let coeffs = match self.coeffs {
            Some(c) if c.dt_s == dt_s => c,
            _ => {
                let c = StepCoeffs {
                    dt_s,
                    ambient_alpha: ThermalNode::decay_alpha(self.ambient.tau_s(), dt_s),
                    amb_alpha: ThermalNode::decay_alpha(self.resistances.tau_amb_s, dt_s),
                    dram_alpha: ThermalNode::decay_alpha(self.resistances.tau_dram_s, dt_s),
                };
                self.coeffs = Some(c);
                c
            }
        };
        let stable_ambient = self.ambient_params.stable_ambient_c(sum_voltage_ipc);
        let ambient = self.ambient.step_with_alpha(stable_ambient, coeffs.ambient_alpha);
        let r = &self.resistances;
        for (pos, p) in self.positions.iter_mut().zip(powers) {
            let stable_amb = ambient + p.amb_watts * r.psi_amb + p.dram_watts * r.psi_dram_amb;
            let stable_dram = ambient + p.amb_watts * r.psi_amb_dram + p.dram_watts * r.psi_dram;
            let amb_c = pos.amb.step_with_alpha(stable_amb, coeffs.amb_alpha);
            let dram_c = pos.dram.step_with_alpha(stable_dram, coeffs.dram_alpha);
            pos.peak_amb_c = pos.peak_amb_c.max(amb_c);
            pos.peak_dram_c = pos.peak_dram_c.max(dram_c);
        }
    }

    /// The current hottest `(amb, dram)` temperatures across all positions,
    /// without materializing a full observation (the per-window hot path of
    /// the simulation engine).
    pub fn max_temps_c(&self) -> (f64, f64) {
        self.positions
            .iter()
            .fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |(a, d), p| (a.max(p.amb.temp_c()), d.max(p.dram.temp_c())))
    }

    /// The current per-position temperature field.
    pub fn position_temps(&self) -> Vec<PositionTemp> {
        self.positions
            .iter()
            .map(|p| PositionTemp { channel: p.channel, dimm: p.dimm, amb_c: p.amb.temp_c(), dram_c: p.dram.temp_c() })
            .collect()
    }

    /// The running per-position peak temperatures since construction.
    pub fn position_peaks(&self) -> Vec<PositionTemp> {
        self.positions
            .iter()
            .map(|p| PositionTemp { channel: p.channel, dimm: p.dimm, amb_c: p.peak_amb_c, dram_c: p.peak_dram_c })
            .collect()
    }

    /// Snapshots the scene into the observation a DTM policy consumes, with
    /// the hottest DIMM *derived* (arg-max over positions).
    pub fn observe(&self) -> ThermalObservation {
        let mut obs = ThermalObservation::from_hottest(f64::NEG_INFINITY, f64::NEG_INFINITY);
        self.observe_into(&mut obs);
        obs
    }

    /// Like [`DimmThermalScene::observe`] but refills a caller-owned
    /// observation, reusing its `positions` allocation. The window loop calls
    /// this once per DTM interval with one scratch buffer per run, so the
    /// hot path allocates nothing.
    pub fn observe_into(&self, obs: &mut ThermalObservation) {
        obs.max_amb_c = f64::NEG_INFINITY;
        obs.max_dram_c = f64::NEG_INFINITY;
        obs.ambient_c = self.ambient.temp_c();
        obs.hottest_amb = None;
        obs.hottest_dram = None;
        obs.positions.clear();
        obs.positions.reserve(self.positions.len());
        for p in &self.positions {
            let amb_c = p.amb.temp_c();
            let dram_c = p.dram.temp_c();
            if amb_c > obs.max_amb_c {
                obs.max_amb_c = amb_c;
                obs.hottest_amb = Some((p.channel, p.dimm));
            }
            if dram_c > obs.max_dram_c {
                obs.max_dram_c = dram_c;
                obs.hottest_dram = Some((p.channel, p.dimm));
            }
            obs.positions.push(PositionTemp { channel: p.channel, dimm: p.dimm, amb_c, dram_c });
        }
    }

    /// Whether any position currently exceeds a thermal design point.
    pub fn over_tdp(&self) -> bool {
        self.positions
            .iter()
            .any(|p| p.amb.temp_c() >= self.limits.amb_tdp_c || p.dram.temp_c() >= self.limits.dram_tdp_c)
    }

    /// Forces every position to the given device temperatures (used to start
    /// experiments from a known state).
    pub fn set_uniform_temps_c(&mut self, amb_c: f64, dram_c: f64) {
        for p in &mut self.positions {
            p.amb.set_temp_c(amb_c);
            p.dram.set_temp_c(dram_c);
            p.peak_amb_c = p.peak_amb_c.max(amb_c);
            p.peak_dram_c = p.peak_dram_c.max(dram_c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::isolated::IsolatedThermalModel;
    use crate::thermal::model::ThermalModel;

    fn shape() -> FbdimmConfig {
        FbdimmConfig::ddr2_667_paper()
    }

    fn graded_powers(n: usize) -> Vec<FbdimmPowerBreakdown> {
        // Position 0 of each channel is the hottest (carries the bypass
        // traffic of everything behind it), like a real FBDIMM chain.
        (0..n).map(|i| FbdimmPowerBreakdown { amb_watts: 6.5 - 0.3 * (i % 4) as f64, dram_watts: 2.0 }).collect()
    }

    #[test]
    fn scene_has_one_position_per_dimm() {
        let mem = shape();
        let scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        assert_eq!(scene.len(), mem.dimm_positions());
        assert!(!scene.is_empty());
        assert_eq!(scene.position_index(1, 3), Some(7));
        assert_eq!(scene.position_index(0, 4), None);
        assert_eq!(scene.position_index(7, 0), None);
    }

    #[test]
    fn hottest_dimm_is_derived_not_assumed() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers = graded_powers(scene.len());
        for _ in 0..200 {
            scene.step(&powers, 0.0, 1.0);
        }
        let obs = scene.observe();
        // Both channels' dimm 0 are equally hot; arg-max reports one of them.
        let (channel, dimm) = obs.hottest_amb.unwrap();
        assert_eq!(dimm, 0, "dimm 0 carries the most power");
        assert!(channel < mem.logical_channels);
        assert_eq!(obs.positions.len(), scene.len());
        // The field is spatially resolved: the far end of the chain is cooler.
        let near = obs.positions.iter().find(|p| p.channel == 0 && p.dimm == 0).unwrap();
        let far = obs.positions.iter().find(|p| p.channel == 0 && p.dimm == 3).unwrap();
        assert!(near.amb_c > far.amb_c + 3.0, "near {:.1} vs far {:.1}", near.amb_c, far.amb_c);
    }

    #[test]
    fn hottest_position_tracks_the_legacy_single_model_exactly() {
        // The regression contract: when one position consistently carries
        // the worst-case power, the scene's maximum must reproduce the
        // legacy hottest-DIMM trajectory.
        let mem = shape();
        let cooling = CoolingConfig::aohs_1_5();
        let limits = ThermalLimits::paper_fbdimm();
        let mut scene = DimmThermalScene::isolated(&mem, cooling, limits);
        let mut legacy = IsolatedThermalModel::new(cooling, limits);
        let powers = graded_powers(scene.len());
        for _ in 0..600 {
            scene.step(&powers, 0.0, 1.0);
            legacy.step(powers[0].amb_watts, powers[0].dram_watts, 1.0);
            let obs = scene.observe();
            assert!((obs.max_amb_c - legacy.amb_temp_c()).abs() < 0.1, "AMB diverged");
            assert!((obs.max_dram_c - legacy.dram_temp_c()).abs() < 0.1, "DRAM diverged");
        }
    }

    #[test]
    fn integrated_scene_shares_one_processor_heated_ambient() {
        let mem = shape();
        let mut idle = DimmThermalScene::integrated(&mem, CoolingConfig::fdhs_1_0(), ThermalLimits::paper_fbdimm());
        let mut busy = idle.clone();
        let powers = vec![FbdimmPowerBreakdown { amb_watts: 5.5, dram_watts: 1.5 }; idle.len()];
        for _ in 0..300 {
            idle.step(&powers, 0.0, 1.0);
            busy.step(&powers, 6.0, 1.0);
        }
        assert!((idle.ambient_c() - idle.ambient_params().system_inlet_c).abs() < 0.01);
        assert!(busy.ambient_c() > idle.ambient_c() + 5.0);
        // The hotter air heats every position, not just the hottest one.
        let cold = idle.observe();
        let hot = busy.observe();
        for (c, h) in cold.positions.iter().zip(hot.positions.iter()) {
            assert!(h.amb_c > c.amb_c + 3.0);
        }
    }

    #[test]
    fn position_peaks_remember_transients() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let hot = vec![FbdimmPowerBreakdown { amb_watts: 6.5, dram_watts: 2.0 }; scene.len()];
        let idle = vec![FbdimmPowerBreakdown { amb_watts: 5.1, dram_watts: 0.98 }; scene.len()];
        for _ in 0..400 {
            scene.step(&hot, 0.0, 1.0);
        }
        let peak_during_burst = scene.observe().max_amb_c;
        for _ in 0..400 {
            scene.step(&idle, 0.0, 1.0);
        }
        assert!(scene.observe().max_amb_c < peak_during_burst - 5.0, "scene must cool down");
        let peaks = scene.position_peaks();
        assert!(peaks.iter().all(|p| p.amb_c >= peak_during_burst - 0.1), "peaks must persist");
    }

    #[test]
    fn over_tdp_and_forced_temperatures() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        assert!(!scene.over_tdp());
        scene.set_uniform_temps_c(110.5, 80.0);
        assert!(scene.over_tdp());
        let obs = scene.observe();
        assert!(obs.over_tdp(scene.limits()));
        assert_eq!(obs.max_amb_c, 110.5);
    }

    #[test]
    fn observe_into_reuses_the_buffer_and_matches_observe() {
        let mem = shape();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers = graded_powers(scene.len());
        let mut scratch = scene.observe();
        for _ in 0..50 {
            scene.step(&powers, 0.0, 1.0);
            scene.observe_into(&mut scratch);
            assert_eq!(scratch, scene.observe());
        }
    }

    #[test]
    fn changing_step_lengths_invalidate_the_cached_coefficients() {
        // Stepping with alternating dt must match a scene that never cached
        // (i.e. per-step closed-form nodes), because the coefficient cache is
        // keyed by dt.
        let mem = shape();
        let cooling = CoolingConfig::aohs_1_5();
        let limits = ThermalLimits::paper_fbdimm();
        let mut scene = DimmThermalScene::isolated(&mem, cooling, limits);
        let r = cooling.resistances();
        let inlet = scene.ambient_params().system_inlet_c;
        let powers = graded_powers(scene.len());
        let mut mirror_amb = vec![inlet; scene.len()];
        let mut mirror_dram = vec![inlet; scene.len()];
        for i in 0..400 {
            let dt = if i % 3 == 0 { 0.01 } else { 1.0 };
            scene.step(&powers, 0.0, dt);
            for (j, p) in powers.iter().enumerate() {
                let stable_amb = inlet + p.amb_watts * r.psi_amb + p.dram_watts * r.psi_dram_amb;
                let stable_dram = inlet + p.amb_watts * r.psi_amb_dram + p.dram_watts * r.psi_dram;
                mirror_amb[j] += (stable_amb - mirror_amb[j]) * (1.0 - (-dt / r.tau_amb_s).exp());
                mirror_dram[j] += (stable_dram - mirror_dram[j]) * (1.0 - (-dt / r.tau_dram_s).exp());
            }
        }
        for (pos, (ma, md)) in scene.position_temps().iter().zip(mirror_amb.iter().zip(mirror_dram.iter())) {
            assert!((pos.amb_c - ma).abs() < 1e-12, "AMB {} vs mirror {}", pos.amb_c, ma);
            assert!((pos.dram_c - md).abs() < 1e-12, "DRAM {} vs mirror {}", pos.dram_c, md);
        }
    }

    #[test]
    fn synthesized_observation_carries_no_field() {
        let obs = ThermalObservation::from_hottest(109.0, 82.0);
        assert_eq!(obs.max_amb_c, 109.0);
        assert_eq!(obs.max_dram_c, 82.0);
        assert!(obs.positions.is_empty() && obs.hottest_amb.is_none());
        assert!(obs.ambient_c.is_nan(), "scalar sensors cannot see the ambient");
        assert_eq!(obs.with_ambient_c(50.0).ambient_c, 50.0);
        let obs = ThermalObservation::from_hottest(109.0, 82.0);
        assert!(!obs.over_tdp(&ThermalLimits::paper_fbdimm()));
    }
}
