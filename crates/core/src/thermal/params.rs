//! Thermal parameters (Tables 3.2 and 3.3), thermal design points, and the
//! device-stack topologies the scene generalizes over.
//!
//! The paper models one AMB + DRAM pair per DIMM; [`StackTopology`] lifts
//! that into an ordered stack of [`DeviceLayer`]s per position — the legacy
//! FBDIMM pair, DDR4/5-style rank pairs, or CoMeT-style 3D stacks with
//! vertical (TSV) coupling resistances between dies — while keeping the
//! same steady-state formalism: layer temperatures are superpositions of
//! per-layer powers through a Ψ coupling matrix (Eqs. 3.3–3.4 generalized
//! to N layers).

/// Type of heat spreader mounted on the FBDIMM (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeatSpreader {
    /// AMB-Only Heat Spreader: covers only the AMB.
    Aohs,
    /// Full-DIMM Heat Spreader: covers the AMB and the DRAM devices.
    Fdhs,
}

impl std::fmt::Display for HeatSpreader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeatSpreader::Aohs => write!(f, "AOHS"),
            HeatSpreader::Fdhs => write!(f, "FDHS"),
        }
    }
}

/// Thermal resistances of one FBDIMM for a given cooling configuration
/// (Table 3.2), in °C per watt, plus the thermal RC time constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalResistances {
    /// Ψ_AMB: AMB power to AMB temperature.
    pub psi_amb: f64,
    /// Ψ_DRAM_AMB: DRAM power to AMB temperature.
    pub psi_dram_amb: f64,
    /// Ψ_DRAM: DRAM power to DRAM temperature.
    pub psi_dram: f64,
    /// Ψ_AMB_DRAM: AMB power to DRAM temperature.
    pub psi_amb_dram: f64,
    /// τ_AMB: AMB thermal time constant in seconds (Table 3.2: 50 s).
    pub tau_amb_s: f64,
    /// τ_DRAM: DRAM thermal time constant in seconds (Table 3.2: 100 s).
    pub tau_dram_s: f64,
}

/// A cooling configuration: heat spreader type and cooling-air velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingConfig {
    /// Heat spreader type.
    pub spreader: HeatSpreader,
    /// Cooling-air velocity in m/s (Table 3.2 tabulates 1.0, 1.5 and 3.0).
    pub air_velocity_mps: f64,
}

impl CoolingConfig {
    /// `AOHS_1.5`: AMB-only heat spreader with 1.5 m/s air (one of the two
    /// configurations used in the experiments).
    pub fn aohs_1_5() -> Self {
        CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 1.5 }
    }

    /// `FDHS_1.0`: full-DIMM heat spreader with 1.0 m/s air (the other
    /// experimental configuration).
    pub fn fdhs_1_0() -> Self {
        CoolingConfig { spreader: HeatSpreader::Fdhs, air_velocity_mps: 1.0 }
    }

    /// A short identifier (`"AOHS_1.5"`, `"FDHS_1.0"`, ...).
    pub fn label(&self) -> String {
        format!("{}_{:.1}", self.spreader, self.air_velocity_mps)
    }

    /// Thermal resistances for this cooling configuration (Table 3.2). Air
    /// velocities between table columns are linearly interpolated; values
    /// outside the table range are clamped to the nearest column.
    pub fn resistances(&self) -> ThermalResistances {
        // Table columns: air velocity 1.0, 1.5, 3.0 m/s.
        const VELOCITIES: [f64; 3] = [1.0, 1.5, 3.0];
        let (psi_amb, psi_dram_amb, psi_dram, psi_amb_dram): ([f64; 3], [f64; 3], [f64; 3], [f64; 3]) =
            match self.spreader {
                HeatSpreader::Aohs => ([11.2, 9.3, 6.6], [4.3, 3.4, 2.2], [4.9, 4.0, 2.7], [5.3, 4.1, 2.6]),
                HeatSpreader::Fdhs => ([8.0, 7.0, 5.5], [4.4, 3.7, 2.9], [4.0, 3.3, 2.3], [5.7, 4.5, 2.9]),
            };
        let interp = |col: &[f64; 3]| -> f64 {
            let v = self.air_velocity_mps;
            if v <= VELOCITIES[0] {
                return col[0];
            }
            if v >= VELOCITIES[2] {
                return col[2];
            }
            let (lo, hi, a, b) = if v <= VELOCITIES[1] {
                (VELOCITIES[0], VELOCITIES[1], col[0], col[1])
            } else {
                (VELOCITIES[1], VELOCITIES[2], col[1], col[2])
            };
            a + (b - a) * (v - lo) / (hi - lo)
        };
        ThermalResistances {
            psi_amb: interp(&psi_amb),
            psi_dram_amb: interp(&psi_dram_amb),
            psi_dram: interp(&psi_dram),
            psi_amb_dram: interp(&psi_amb_dram),
            tau_amb_s: 50.0,
            tau_dram_s: 100.0,
        }
    }

    /// Default memory ambient (inlet) temperature for the *isolated* thermal
    /// model under this configuration (Table 3.3): 50 °C for AOHS_1.5 and
    /// 45 °C for FDHS_1.0.
    pub fn isolated_ambient_c(&self) -> f64 {
        match self.spreader {
            HeatSpreader::Aohs => 50.0,
            HeatSpreader::Fdhs => 45.0,
        }
    }

    /// Default *system inlet* temperature for the integrated thermal model
    /// (Table 3.3): 45 °C for AOHS_1.5 and 40 °C for FDHS_1.0.
    pub fn integrated_inlet_c(&self) -> f64 {
        self.isolated_ambient_c() - 5.0
    }
}

/// Parameters of the DRAM-ambient (memory inlet) model of Section 3.5 /
/// Table 3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbientParams {
    /// System inlet temperature in °C.
    pub system_inlet_c: f64,
    /// Combined coefficient Ψ_CPU_MEM × ξ of Equation 3.6 (1.5 in the
    /// integrated model, 0.0 in the isolated model).
    pub psi_cpu_mem_xi: f64,
    /// Thermal RC constant of the CPU→DRAM ambient path, seconds (20 s).
    pub tau_cpu_dram_s: f64,
}

impl AmbientParams {
    /// Isolated-model parameters: the ambient is a constant equal to the
    /// configured memory inlet temperature.
    pub fn isolated(cooling: &CoolingConfig) -> Self {
        AmbientParams { system_inlet_c: cooling.isolated_ambient_c(), psi_cpu_mem_xi: 0.0, tau_cpu_dram_s: 20.0 }
    }

    /// Integrated-model parameters (Table 3.3): lower inlet temperature plus
    /// processor heating with Ψ_CPU_MEM × ξ = 1.5.
    pub fn integrated(cooling: &CoolingConfig) -> Self {
        AmbientParams { system_inlet_c: cooling.integrated_inlet_c(), psi_cpu_mem_xi: 1.5, tau_cpu_dram_s: 20.0 }
    }

    /// Returns a copy with a different thermal-interaction degree
    /// (Section 4.5.2 sweeps 1.0, 1.5, 2.0).
    pub fn with_interaction_degree(mut self, degree: f64) -> Self {
        self.psi_cpu_mem_xi = degree;
        self
    }

    /// Stable DRAM-ambient temperature given the processors' Σ(V_i × IPC_i)
    /// activity term (Equation 3.6).
    pub fn stable_ambient_c(&self, sum_voltage_ipc: f64) -> f64 {
        self.system_inlet_c + self.psi_cpu_mem_xi * sum_voltage_ipc.max(0.0)
    }
}

/// What kind of device a stack layer is; selects the power source it draws
/// from and the thermal limit that applies to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceLayerKind {
    /// A buffer / interface die (the FBDIMM AMB, a 3D stack's base logic
    /// die). Judged against the AMB thermal limits.
    Buffer,
    /// A DRAM die or rank. Judged against the DRAM thermal limits.
    Dram,
}

/// One layer of a device stack: its kind, display name, RC time constant,
/// and the share of each power source (buffer power, DRAM power) deposited
/// into it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLayer {
    /// What the layer is (selects limits and power source).
    pub kind: DeviceLayerKind,
    /// Display name ("AMB", "rank0", "die2", ...).
    pub name: String,
    /// Thermal RC time constant of the layer, seconds.
    pub tau_s: f64,
    /// Share of the position's buffer (AMB-equivalent) power deposited here.
    pub buffer_share: f64,
    /// Share of the position's DRAM power deposited here.
    pub dram_share: f64,
}

/// Vertical die-to-die (TSV field / thinned silicon) thermal resistance used
/// by the built-in 3D-stack topologies, °C/W per interface. The 3-D memory
/// integration literature puts thinned-die + TSV interfaces well under
/// 1 °C/W, which is what makes vertical stacks thermally coupled at all.
pub const TSV_INTERFACE_C_PER_W: f64 = 0.4;

/// PCB coupling resistance between the two ranks of a DDR4/5-style
/// double-sided DIMM, °C/W.
pub const RANK_BOARD_COUPLING_C_PER_W: f64 = 3.0;

/// The device-stack topology of one DIMM/module position: an ordered list of
/// layers plus the Ψ coupling matrix mapping per-layer power to steady-state
/// layer temperatures (the N-layer generalization of Eqs. 3.3–3.4).
///
/// `psi[i][j]` is the temperature rise of layer `i` (above the memory
/// ambient) per watt dissipated in layer `j`. The legacy FBDIMM topology
/// carries Table 3.2's measured 2×2 matrix verbatim; the rank-pair and
/// 3D-stack topologies derive their matrices from a one-dimensional
/// resistance ladder (lateral paths to the cooling air plus vertical
/// inter-layer coupling), solved exactly by inverting the conductance
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StackTopology {
    name: String,
    layers: Vec<DeviceLayer>,
    /// Row-major depth × depth coupling matrix, °C/W.
    psi: Vec<f64>,
    /// True when layer 0 takes exactly the buffer power and layer 1 exactly
    /// the DRAM power — the legacy FBDIMM fast path that keeps the
    /// pre-refactor trajectories bit-identical.
    identity_split: bool,
    buffer_layer: Option<usize>,
}

impl StackTopology {
    /// Builds a topology from explicit layers and a row-major Ψ matrix.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty, the matrix is not layers² long, any
    /// time constant is not strictly positive, or a power source's shares
    /// do not sum to 1 across the stack (0 is also accepted — an unused
    /// source — but a partial sum would silently create or destroy watts
    /// every step, violating the energy-conservation invariant of
    /// [`StackTopology::split_watts_into`]).
    pub fn from_matrix(name: impl Into<String>, layers: Vec<DeviceLayer>, psi: Vec<f64>) -> Self {
        assert!(!layers.is_empty(), "a stack needs at least one layer");
        assert_eq!(psi.len(), layers.len() * layers.len(), "psi must be a layers x layers matrix");
        assert!(layers.iter().all(|l| l.tau_s > 0.0), "layer time constants must be positive");
        for (source, sum) in [
            ("buffer", layers.iter().map(|l| l.buffer_share).sum::<f64>()),
            ("dram", layers.iter().map(|l| l.dram_share).sum::<f64>()),
        ] {
            assert!(
                (sum - 1.0).abs() < 1e-9 || sum.abs() < 1e-9,
                "{source} power shares must sum to 1 (or 0 for an unused source), got {sum}"
            );
        }
        let buffer_layer = layers.iter().position(|l| l.kind == DeviceLayerKind::Buffer);
        let identity_split = layers.len() == 2
            && layers[0].buffer_share == 1.0
            && layers[0].dram_share == 0.0
            && layers[1].buffer_share == 0.0
            && layers[1].dram_share == 1.0;
        StackTopology { name: name.into(), layers, psi, identity_split, buffer_layer }
    }

    /// The paper's FBDIMM stack: one AMB above the DRAM devices, coupled by
    /// Table 3.2's measured Ψ matrix. The two-layer instance of the general
    /// machinery; its trajectories are bit-identical to the pre-stack scene.
    pub fn fbdimm(r: &ThermalResistances) -> Self {
        let layers = vec![
            DeviceLayer {
                kind: DeviceLayerKind::Buffer,
                name: "AMB".to_string(),
                tau_s: r.tau_amb_s,
                buffer_share: 1.0,
                dram_share: 0.0,
            },
            DeviceLayer {
                kind: DeviceLayerKind::Dram,
                name: "DRAM".to_string(),
                tau_s: r.tau_dram_s,
                buffer_share: 0.0,
                dram_share: 1.0,
            },
        ];
        Self::from_matrix("fbdimm", layers, vec![r.psi_amb, r.psi_dram_amb, r.psi_amb_dram, r.psi_dram])
    }

    /// A DDR4/5-style double-sided DIMM: two DRAM ranks, no buffer die.
    /// Each rank has its own lateral path to the cooling air (Ψ_DRAM of the
    /// cooling configuration) and the ranks couple through the PCB
    /// ([`RANK_BOARD_COUPLING_C_PER_W`]). The register/PMIC (the
    /// buffer-power source) has no die of its own — its power splits evenly
    /// into the two ranks.
    pub fn ddr_rank_pair(r: &ThermalResistances) -> Self {
        let rank = |i: usize| DeviceLayer {
            kind: DeviceLayerKind::Dram,
            name: format!("rank{i}"),
            tau_s: r.tau_dram_s,
            buffer_share: 0.5,
            dram_share: 0.5,
        };
        let psi = ladder_psi(&[1.0 / r.psi_dram, 1.0 / r.psi_dram], &[1.0 / RANK_BOARD_COUPLING_C_PER_W]);
        StackTopology::from_matrix("rank-pair", vec![rank(0), rank(1)], psi)
    }

    /// A 3D-stacked DRAM device: a base buffer (logic/interface) die plus
    /// `dies` vertically stacked DRAM dies, CoMeT-style. Heat leaves through
    /// the package balls under the base die (2·Ψ_AMB — the board is a poor
    /// sink) and through the heat spreader above the top die (Ψ_DRAM of the
    /// cooling configuration); every die-to-die interface adds a
    /// [`TSV_INTERFACE_C_PER_W`] vertical resistance, so the dies in the
    /// middle of the stack — farthest from both exits — run hottest.
    ///
    /// # Panics
    ///
    /// Panics if `dies` is zero.
    pub fn stacked_3d(dies: usize, r: &ThermalResistances) -> Self {
        assert!(dies > 0, "a 3D stack needs at least one DRAM die");
        let mut layers = Vec::with_capacity(dies + 1);
        layers.push(DeviceLayer {
            kind: DeviceLayerKind::Buffer,
            name: "base".to_string(),
            tau_s: r.tau_amb_s,
            buffer_share: 1.0,
            dram_share: 0.0,
        });
        for i in 0..dies {
            layers.push(DeviceLayer {
                kind: DeviceLayerKind::Dram,
                name: format!("die{i}"),
                tau_s: r.tau_dram_s,
                buffer_share: 0.0,
                dram_share: 1.0 / dies as f64,
            });
        }
        let depth = dies + 1;
        let mut g_ambient = vec![0.0; depth];
        g_ambient[0] = 1.0 / (2.0 * r.psi_amb);
        g_ambient[depth - 1] = 1.0 / r.psi_dram;
        let g_vertical = vec![1.0 / TSV_INTERFACE_C_PER_W; depth - 1];
        let psi = ladder_psi(&g_ambient, &g_vertical);
        StackTopology::from_matrix(format!("3d-{dies}h"), layers, psi)
    }

    /// Short identifier of the topology ("fbdimm", "rank-pair", "3d-4h").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers in the stack.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The ordered layers, bottom to top.
    pub fn layers(&self) -> &[DeviceLayer] {
        &self.layers
    }

    /// Index of the buffer layer, if the stack has one (DDR4/5 rank pairs
    /// do not).
    pub fn buffer_layer(&self) -> Option<usize> {
        self.buffer_layer
    }

    /// Whether any layer is a buffer die.
    pub fn has_buffer(&self) -> bool {
        self.buffer_layer.is_some()
    }

    /// Ψ coupling of layer `i`'s temperature to layer `j`'s power, °C/W.
    pub fn psi(&self, i: usize, j: usize) -> f64 {
        self.psi[i * self.layers.len() + j]
    }

    /// Row `i` of the Ψ matrix (one coefficient per power-source layer).
    pub fn psi_row(&self, i: usize) -> &[f64] {
        let n = self.layers.len();
        &self.psi[i * n..(i + 1) * n]
    }

    /// Whether the split is the legacy identity (layer 0 = buffer power,
    /// layer 1 = DRAM power) and the fast path preserves bit-identity.
    pub fn is_identity_split(&self) -> bool {
        self.identity_split
    }

    /// Distributes a position's power sources over the layers:
    /// `out[l] = buffer_share[l]·amb_watts + dram_share[l]·dram_watts`.
    /// Shares sum to 1 per source across the stack, so the total power into
    /// the stack equals `amb_watts + dram_watts` (energy conservation).
    ///
    /// Callers are expected to size the scratch once (lane build, scene
    /// construction) rather than per window; the length check is therefore a
    /// debug assertion.
    pub fn split_watts_into(&self, amb_watts: f64, dram_watts: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.layers.len(), "one output slot per layer required");
        if self.identity_split {
            out[0] = amb_watts;
            out[1] = dram_watts;
            return;
        }
        for (w, layer) in out.iter_mut().zip(&self.layers) {
            *w = layer.buffer_share * amb_watts + layer.dram_share * dram_watts;
        }
    }

    /// Ψ-superposed steady-state rise of `layer` over the memory ambient for
    /// the given per-layer watts: `Σ_j watts[j] · Ψ[layer][j]`, accumulated
    /// left to right from zero.
    ///
    /// Every non-identity stable-state computation in the crate (the
    /// per-cell `DimmThermalScene::step`, the RC fixed point, and the
    /// batched tier's cached superposition matrix) goes through this helper
    /// so the floating-point operation order — and hence the rounding — is
    /// identical at every site.
    #[inline]
    pub fn psi_superpose(&self, watts: &[f64], layer: usize) -> f64 {
        let mut s = 0.0;
        for (w, psi) in watts.iter().zip(self.psi_row(layer)) {
            s += w * psi;
        }
        s
    }

    /// Allocating convenience over [`StackTopology::split_watts_into`].
    pub fn split_watts(&self, amb_watts: f64, dram_watts: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.layers.len()];
        self.split_watts_into(amb_watts, dram_watts, &mut out);
        out
    }
}

/// Solves a one-dimensional thermal ladder for its Ψ matrix: node `i` has
/// conductance `g_ambient[i]` to the (grounded) memory ambient and
/// conductance `g_vertical[i]` to node `i + 1`. Builds the tridiagonal
/// conductance matrix and inverts it by Gaussian elimination with partial
/// pivoting — `Ψ = G⁻¹`, the exact steady-state superposition solution.
///
/// # Panics
///
/// Panics if the ladder is disconnected from the ambient (singular matrix)
/// or the slice lengths are inconsistent.
fn ladder_psi(g_ambient: &[f64], g_vertical: &[f64]) -> Vec<f64> {
    let n = g_ambient.len();
    assert_eq!(g_vertical.len() + 1, n, "a ladder of n nodes has n-1 vertical links");
    let mut g = vec![0.0; n * n];
    for i in 0..n {
        let mut diag = g_ambient[i];
        if i > 0 {
            diag += g_vertical[i - 1];
            g[i * n + i - 1] = -g_vertical[i - 1];
        }
        if i + 1 < n {
            diag += g_vertical[i];
            g[i * n + i + 1] = -g_vertical[i];
        }
        g[i * n + i] = diag;
    }
    // Augmented [G | I] elimination.
    let mut inv = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&a, &b| g[a * n + col].abs().partial_cmp(&g[b * n + col].abs()).expect("finite conductances"))
            .expect("non-empty ladder");
        assert!(g[pivot_row * n + col].abs() > 1e-15, "thermal ladder is disconnected from the ambient");
        if pivot_row != col {
            for k in 0..n {
                g.swap(col * n + k, pivot_row * n + k);
                inv.swap(col * n + k, pivot_row * n + k);
            }
        }
        let pivot = g[col * n + col];
        for k in 0..n {
            g[col * n + k] /= pivot;
            inv[col * n + k] /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = g[row * n + col];
            if factor == 0.0 {
                continue;
            }
            for k in 0..n {
                g[row * n + k] -= factor * g[col * n + k];
                inv[row * n + k] -= factor * inv[col * n + k];
            }
        }
    }
    inv
}

/// A named, `Copy`-able selector for the built-in stack topologies — the
/// scenario-axis value carried by sweep configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StackKind {
    /// The paper's AMB + DRAM FBDIMM pair (the default; bit-identical to the
    /// pre-stack scene).
    #[default]
    Fbdimm,
    /// DDR4/5-style double-sided rank pair, no buffer die.
    RankPair,
    /// 3D stack: base buffer die plus `dies` DRAM dies with TSV coupling.
    Stacked3d {
        /// Number of stacked DRAM dies (4-high, 8-high, ...).
        dies: usize,
    },
}

impl StackKind {
    /// The 4-high 3D stack.
    pub fn stacked4() -> Self {
        StackKind::Stacked3d { dies: 4 }
    }

    /// The 8-high 3D stack.
    pub fn stacked8() -> Self {
        StackKind::Stacked3d { dies: 8 }
    }

    /// Builds the concrete topology under a cooling configuration.
    pub fn topology(&self, cooling: &CoolingConfig) -> StackTopology {
        let r = cooling.resistances();
        match self {
            StackKind::Fbdimm => StackTopology::fbdimm(&r),
            StackKind::RankPair => StackTopology::ddr_rank_pair(&r),
            StackKind::Stacked3d { dies } => StackTopology::stacked_3d(*dies, &r),
        }
    }

    /// Short label ("fbdimm", "rank-pair", "3d-4h").
    pub fn label(&self) -> String {
        match self {
            StackKind::Fbdimm => "fbdimm".to_string(),
            StackKind::RankPair => "rank-pair".to_string(),
            StackKind::Stacked3d { dies } => format!("3d-{dies}h"),
        }
    }
}

/// Thermal design points (TDP) and release points (TRP) of the AMB and the
/// DRAM devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalLimits {
    /// AMB thermal design point in °C.
    pub amb_tdp_c: f64,
    /// DRAM thermal design point in °C.
    pub dram_tdp_c: f64,
    /// AMB thermal release point in °C (DTM-TS re-enables below this).
    pub amb_trp_c: f64,
    /// DRAM thermal release point in °C.
    pub dram_trp_c: f64,
}

impl ThermalLimits {
    /// The FBDIMM limits used in the simulation study (Section 4.3.3):
    /// AMB TDP 110 °C, DRAM TDP 85 °C, release points 1 °C below.
    pub fn paper_fbdimm() -> Self {
        ThermalLimits { amb_tdp_c: 110.0, dram_tdp_c: 85.0, amb_trp_c: 109.0, dram_trp_c: 84.0 }
    }

    /// Returns a copy with a different AMB TRP (Figure 4.2 sweeps this).
    pub fn with_amb_trp(mut self, trp_c: f64) -> Self {
        self.amb_trp_c = trp_c;
        self
    }

    /// Returns a copy with a different DRAM TRP (Figure 4.2 sweeps this).
    pub fn with_dram_trp(mut self, trp_c: f64) -> Self {
        self.dram_trp_c = trp_c;
        self
    }

    /// Returns a copy with a different AMB TDP, shifting the TRP to keep the
    /// same margin (Figure 5.14 sweeps the TDP).
    pub fn with_amb_tdp(mut self, tdp_c: f64) -> Self {
        let margin = self.amb_tdp_c - self.amb_trp_c;
        self.amb_tdp_c = tdp_c;
        self.amb_trp_c = tdp_c - margin;
        self
    }

    /// Returns a copy with a different DRAM TDP, shifting the TRP to keep
    /// the same margin. Bufferless topologies (DDR4/5 rank pairs, 3D
    /// stacks) are DRAM-limited, so this is their equivalent of the Figure
    /// 5.14 AMB-TDP sweep.
    pub fn with_dram_tdp(mut self, tdp_c: f64) -> Self {
        let margin = self.dram_tdp_c - self.dram_trp_c;
        self.dram_tdp_c = tdp_c;
        self.dram_trp_c = tdp_c - margin;
        self
    }

    /// The thermal design point that applies to a stack layer of the given
    /// kind: buffer dies are judged against the AMB limit, DRAM dies and
    /// ranks against the DRAM limit.
    pub fn tdp_for(&self, kind: DeviceLayerKind) -> f64 {
        match kind {
            DeviceLayerKind::Buffer => self.amb_tdp_c,
            DeviceLayerKind::Dram => self.dram_tdp_c,
        }
    }

    /// The thermal release point that applies to a stack layer of the given
    /// kind.
    pub fn trp_for(&self, kind: DeviceLayerKind) -> f64 {
        match kind {
            DeviceLayerKind::Buffer => self.amb_trp_c,
            DeviceLayerKind::Dram => self.dram_trp_c,
        }
    }
}

impl Default for ThermalLimits {
    fn default() -> Self {
        Self::paper_fbdimm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_2_columns_are_reproduced_exactly() {
        let aohs15 = CoolingConfig::aohs_1_5().resistances();
        assert!((aohs15.psi_amb - 9.3).abs() < 1e-12);
        assert!((aohs15.psi_dram_amb - 3.4).abs() < 1e-12);
        assert!((aohs15.psi_dram - 4.0).abs() < 1e-12);
        assert!((aohs15.psi_amb_dram - 4.1).abs() < 1e-12);

        let fdhs10 = CoolingConfig::fdhs_1_0().resistances();
        assert!((fdhs10.psi_amb - 8.0).abs() < 1e-12);
        assert!((fdhs10.psi_dram_amb - 4.4).abs() < 1e-12);
        assert!((fdhs10.psi_dram - 4.0).abs() < 1e-12);
        assert!((fdhs10.psi_amb_dram - 5.7).abs() < 1e-12);

        assert_eq!(aohs15.tau_amb_s, 50.0);
        assert_eq!(aohs15.tau_dram_s, 100.0);
    }

    #[test]
    fn faster_air_always_cools_better() {
        for spreader in [HeatSpreader::Aohs, HeatSpreader::Fdhs] {
            let slow = CoolingConfig { spreader, air_velocity_mps: 1.0 }.resistances();
            let fast = CoolingConfig { spreader, air_velocity_mps: 3.0 }.resistances();
            assert!(fast.psi_amb < slow.psi_amb);
            assert!(fast.psi_dram < slow.psi_dram);
        }
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let mid = CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 2.0 }.resistances();
        assert!(mid.psi_amb < 9.3 && mid.psi_amb > 6.6);
        let low = CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 0.5 }.resistances();
        assert!((low.psi_amb - 11.2).abs() < 1e-12);
        let high = CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 9.0 }.resistances();
        assert!((high.psi_amb - 6.6).abs() < 1e-12);
    }

    #[test]
    fn table_3_3_ambient_temperatures() {
        assert_eq!(CoolingConfig::aohs_1_5().isolated_ambient_c(), 50.0);
        assert_eq!(CoolingConfig::fdhs_1_0().isolated_ambient_c(), 45.0);
        assert_eq!(CoolingConfig::aohs_1_5().integrated_inlet_c(), 45.0);
        assert_eq!(CoolingConfig::fdhs_1_0().integrated_inlet_c(), 40.0);
    }

    #[test]
    fn ambient_params_reflect_model_choice() {
        let cooling = CoolingConfig::aohs_1_5();
        let iso = AmbientParams::isolated(&cooling);
        let int = AmbientParams::integrated(&cooling);
        assert_eq!(iso.psi_cpu_mem_xi, 0.0);
        assert_eq!(int.psi_cpu_mem_xi, 1.5);
        // Isolated ambient never responds to processor activity.
        assert_eq!(iso.stable_ambient_c(4.0), 50.0);
        assert!(int.stable_ambient_c(4.0) > int.stable_ambient_c(0.0));
        assert_eq!(int.with_interaction_degree(2.0).psi_cpu_mem_xi, 2.0);
    }

    #[test]
    fn thermal_limits_default_to_110_and_85() {
        let l = ThermalLimits::paper_fbdimm();
        assert_eq!(l.amb_tdp_c, 110.0);
        assert_eq!(l.dram_tdp_c, 85.0);
        assert_eq!(l.amb_trp_c, 109.0);
        assert_eq!(l.dram_trp_c, 84.0);
        let shifted = l.with_amb_tdp(100.0);
        assert_eq!(shifted.amb_trp_c, 99.0);
        assert_eq!(l.with_amb_trp(108.5).amb_trp_c, 108.5);
        assert_eq!(l.with_dram_trp(83.0).dram_trp_c, 83.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CoolingConfig::aohs_1_5().label(), "AOHS_1.5");
        assert_eq!(CoolingConfig::fdhs_1_0().label(), "FDHS_1.0");
    }

    #[test]
    fn fbdimm_topology_carries_table_3_2_verbatim() {
        let r = CoolingConfig::aohs_1_5().resistances();
        let t = StackTopology::fbdimm(&r);
        assert_eq!(t.depth(), 2);
        assert!(t.is_identity_split());
        assert_eq!(t.buffer_layer(), Some(0));
        assert_eq!(t.psi_row(0), &[r.psi_amb, r.psi_dram_amb]);
        assert_eq!(t.psi_row(1), &[r.psi_amb_dram, r.psi_dram]);
        assert_eq!(t.layers()[0].tau_s, r.tau_amb_s);
        assert_eq!(t.layers()[1].tau_s, r.tau_dram_s);
        assert_eq!(t.name(), "fbdimm");
        // Identity split hands the sources through untouched, bit-for-bit.
        let w = t.split_watts(6.5, 2.0);
        assert_eq!(w, vec![6.5, 2.0]);
    }

    #[test]
    fn rank_pair_has_no_buffer_and_spreads_interface_power() {
        let r = CoolingConfig::fdhs_1_0().resistances();
        let t = StackTopology::ddr_rank_pair(&r);
        assert_eq!(t.depth(), 2);
        assert!(!t.has_buffer());
        assert!(t.layers().iter().all(|l| l.kind == DeviceLayerKind::Dram));
        let w = t.split_watts(1.0, 3.0);
        assert!((w[0] - 2.0).abs() < 1e-12 && (w[1] - 2.0).abs() < 1e-12);
        // Symmetric ladder: equal self-coupling, nonzero cross-coupling.
        assert!((t.psi(0, 0) - t.psi(1, 1)).abs() < 1e-12);
        assert!(t.psi(0, 1) > 0.0 && (t.psi(0, 1) - t.psi(1, 0)).abs() < 1e-12);
        assert!(t.psi(0, 1) < t.psi(0, 0), "cross-coupling is weaker than self-heating");
    }

    #[test]
    fn ladder_psi_row_sums_reproduce_the_isolated_rank_resistance() {
        // Two identical ranks powered identically push no heat through the
        // PCB link, so each behaves like an isolated rank: row sums of the
        // Ψ matrix must equal the lateral resistance.
        let r = CoolingConfig::aohs_1_5().resistances();
        let t = StackTopology::ddr_rank_pair(&r);
        for i in 0..2 {
            let sum: f64 = t.psi_row(i).iter().sum();
            assert!((sum - r.psi_dram).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn stacked_3d_heats_inner_dies_most_under_uniform_power() {
        let r = CoolingConfig::aohs_1_5().resistances();
        let t = StackTopology::stacked_3d(4, &r);
        assert_eq!(t.depth(), 5);
        assert_eq!(t.buffer_layer(), Some(0));
        assert_eq!(t.layers()[1].name, "die0");
        // Uniform per-layer power: steady-state rise of layer i is the Ψ row
        // sum. Heat overwhelmingly exits through the spreader above the top
        // die (the board path under the base is poor), so temperature falls
        // monotonically toward that exit: the inner die buried next to the
        // base is the hottest DRAM die and the spreader-side outer die the
        // coolest — the CoMeT-style stacked-memory gradient.
        let rises: Vec<f64> = (0..t.depth()).map(|i| t.psi_row(i).iter().sum()).collect();
        assert!(rises[1] > rises[2] && rises[2] > rises[3] && rises[3] > rises[4], "die gradient {rises:?}");
        assert!(rises[0] > rises[1], "the powered base die sits above the inner die");
        // DRAM power splits evenly across the dies and conserves energy.
        let w = t.split_watts(6.0, 2.0);
        assert!((w.iter().sum::<f64>() - 8.0).abs() < 1e-12);
        assert_eq!(w[0], 6.0);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ladder_inverse_actually_inverts_the_conductance_matrix() {
        // Ψ·G = I for a 4-node ladder with mixed conductances.
        let g_amb = [0.25, 0.0, 0.0, 0.125];
        let g_v = [2.0, 1.5, 3.0];
        let psi = ladder_psi(&g_amb, &g_v);
        let n = 4;
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            let mut diag = g_amb[i];
            if i > 0 {
                diag += g_v[i - 1];
                g[i * n + i - 1] = -g_v[i - 1];
            }
            if i + 1 < n {
                diag += g_v[i];
                g[i * n + i + 1] = -g_v[i];
            }
            g[i * n + i] = diag;
        }
        for i in 0..n {
            for j in 0..n {
                let mut dot = 0.0;
                for k in 0..n {
                    dot += psi[i * n + k] * g[k * n + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "(Ψ·G)[{i}][{j}] = {dot}");
            }
        }
    }

    #[test]
    fn stack_kinds_build_their_topologies() {
        let cooling = CoolingConfig::aohs_1_5();
        assert_eq!(StackKind::default(), StackKind::Fbdimm);
        assert_eq!(StackKind::Fbdimm.topology(&cooling).name(), "fbdimm");
        assert_eq!(StackKind::RankPair.topology(&cooling).name(), "rank-pair");
        assert_eq!(StackKind::stacked4().topology(&cooling).depth(), 5);
        assert_eq!(StackKind::stacked8().topology(&cooling).depth(), 9);
        assert_eq!(StackKind::stacked4().label(), "3d-4h");
        assert_eq!(StackKind::RankPair.label(), "rank-pair");
        assert_eq!(StackKind::Fbdimm.label(), "fbdimm");
    }

    #[test]
    fn per_layer_limits_select_by_kind() {
        let l = ThermalLimits::paper_fbdimm();
        assert_eq!(l.tdp_for(DeviceLayerKind::Buffer), 110.0);
        assert_eq!(l.tdp_for(DeviceLayerKind::Dram), 85.0);
        assert_eq!(l.trp_for(DeviceLayerKind::Buffer), 109.0);
        assert_eq!(l.trp_for(DeviceLayerKind::Dram), 84.0);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn floating_ladders_are_rejected() {
        let _ = ladder_psi(&[0.0, 0.0], &[1.0]);
    }
}
