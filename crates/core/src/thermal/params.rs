//! Thermal parameters (Tables 3.2 and 3.3) and thermal design points.

/// Type of heat spreader mounted on the FBDIMM (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeatSpreader {
    /// AMB-Only Heat Spreader: covers only the AMB.
    Aohs,
    /// Full-DIMM Heat Spreader: covers the AMB and the DRAM devices.
    Fdhs,
}

impl std::fmt::Display for HeatSpreader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeatSpreader::Aohs => write!(f, "AOHS"),
            HeatSpreader::Fdhs => write!(f, "FDHS"),
        }
    }
}

/// Thermal resistances of one FBDIMM for a given cooling configuration
/// (Table 3.2), in °C per watt, plus the thermal RC time constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalResistances {
    /// Ψ_AMB: AMB power to AMB temperature.
    pub psi_amb: f64,
    /// Ψ_DRAM_AMB: DRAM power to AMB temperature.
    pub psi_dram_amb: f64,
    /// Ψ_DRAM: DRAM power to DRAM temperature.
    pub psi_dram: f64,
    /// Ψ_AMB_DRAM: AMB power to DRAM temperature.
    pub psi_amb_dram: f64,
    /// τ_AMB: AMB thermal time constant in seconds (Table 3.2: 50 s).
    pub tau_amb_s: f64,
    /// τ_DRAM: DRAM thermal time constant in seconds (Table 3.2: 100 s).
    pub tau_dram_s: f64,
}

/// A cooling configuration: heat spreader type and cooling-air velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingConfig {
    /// Heat spreader type.
    pub spreader: HeatSpreader,
    /// Cooling-air velocity in m/s (Table 3.2 tabulates 1.0, 1.5 and 3.0).
    pub air_velocity_mps: f64,
}

impl CoolingConfig {
    /// `AOHS_1.5`: AMB-only heat spreader with 1.5 m/s air (one of the two
    /// configurations used in the experiments).
    pub fn aohs_1_5() -> Self {
        CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 1.5 }
    }

    /// `FDHS_1.0`: full-DIMM heat spreader with 1.0 m/s air (the other
    /// experimental configuration).
    pub fn fdhs_1_0() -> Self {
        CoolingConfig { spreader: HeatSpreader::Fdhs, air_velocity_mps: 1.0 }
    }

    /// A short identifier (`"AOHS_1.5"`, `"FDHS_1.0"`, ...).
    pub fn label(&self) -> String {
        format!("{}_{:.1}", self.spreader, self.air_velocity_mps)
    }

    /// Thermal resistances for this cooling configuration (Table 3.2). Air
    /// velocities between table columns are linearly interpolated; values
    /// outside the table range are clamped to the nearest column.
    pub fn resistances(&self) -> ThermalResistances {
        // Table columns: air velocity 1.0, 1.5, 3.0 m/s.
        const VELOCITIES: [f64; 3] = [1.0, 1.5, 3.0];
        let (psi_amb, psi_dram_amb, psi_dram, psi_amb_dram): ([f64; 3], [f64; 3], [f64; 3], [f64; 3]) =
            match self.spreader {
                HeatSpreader::Aohs => ([11.2, 9.3, 6.6], [4.3, 3.4, 2.2], [4.9, 4.0, 2.7], [5.3, 4.1, 2.6]),
                HeatSpreader::Fdhs => ([8.0, 7.0, 5.5], [4.4, 3.7, 2.9], [4.0, 3.3, 2.3], [5.7, 4.5, 2.9]),
            };
        let interp = |col: &[f64; 3]| -> f64 {
            let v = self.air_velocity_mps;
            if v <= VELOCITIES[0] {
                return col[0];
            }
            if v >= VELOCITIES[2] {
                return col[2];
            }
            let (lo, hi, a, b) = if v <= VELOCITIES[1] {
                (VELOCITIES[0], VELOCITIES[1], col[0], col[1])
            } else {
                (VELOCITIES[1], VELOCITIES[2], col[1], col[2])
            };
            a + (b - a) * (v - lo) / (hi - lo)
        };
        ThermalResistances {
            psi_amb: interp(&psi_amb),
            psi_dram_amb: interp(&psi_dram_amb),
            psi_dram: interp(&psi_dram),
            psi_amb_dram: interp(&psi_amb_dram),
            tau_amb_s: 50.0,
            tau_dram_s: 100.0,
        }
    }

    /// Default memory ambient (inlet) temperature for the *isolated* thermal
    /// model under this configuration (Table 3.3): 50 °C for AOHS_1.5 and
    /// 45 °C for FDHS_1.0.
    pub fn isolated_ambient_c(&self) -> f64 {
        match self.spreader {
            HeatSpreader::Aohs => 50.0,
            HeatSpreader::Fdhs => 45.0,
        }
    }

    /// Default *system inlet* temperature for the integrated thermal model
    /// (Table 3.3): 45 °C for AOHS_1.5 and 40 °C for FDHS_1.0.
    pub fn integrated_inlet_c(&self) -> f64 {
        self.isolated_ambient_c() - 5.0
    }
}

/// Parameters of the DRAM-ambient (memory inlet) model of Section 3.5 /
/// Table 3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbientParams {
    /// System inlet temperature in °C.
    pub system_inlet_c: f64,
    /// Combined coefficient Ψ_CPU_MEM × ξ of Equation 3.6 (1.5 in the
    /// integrated model, 0.0 in the isolated model).
    pub psi_cpu_mem_xi: f64,
    /// Thermal RC constant of the CPU→DRAM ambient path, seconds (20 s).
    pub tau_cpu_dram_s: f64,
}

impl AmbientParams {
    /// Isolated-model parameters: the ambient is a constant equal to the
    /// configured memory inlet temperature.
    pub fn isolated(cooling: &CoolingConfig) -> Self {
        AmbientParams { system_inlet_c: cooling.isolated_ambient_c(), psi_cpu_mem_xi: 0.0, tau_cpu_dram_s: 20.0 }
    }

    /// Integrated-model parameters (Table 3.3): lower inlet temperature plus
    /// processor heating with Ψ_CPU_MEM × ξ = 1.5.
    pub fn integrated(cooling: &CoolingConfig) -> Self {
        AmbientParams { system_inlet_c: cooling.integrated_inlet_c(), psi_cpu_mem_xi: 1.5, tau_cpu_dram_s: 20.0 }
    }

    /// Returns a copy with a different thermal-interaction degree
    /// (Section 4.5.2 sweeps 1.0, 1.5, 2.0).
    pub fn with_interaction_degree(mut self, degree: f64) -> Self {
        self.psi_cpu_mem_xi = degree;
        self
    }

    /// Stable DRAM-ambient temperature given the processors' Σ(V_i × IPC_i)
    /// activity term (Equation 3.6).
    pub fn stable_ambient_c(&self, sum_voltage_ipc: f64) -> f64 {
        self.system_inlet_c + self.psi_cpu_mem_xi * sum_voltage_ipc.max(0.0)
    }
}

/// Thermal design points (TDP) and release points (TRP) of the AMB and the
/// DRAM devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalLimits {
    /// AMB thermal design point in °C.
    pub amb_tdp_c: f64,
    /// DRAM thermal design point in °C.
    pub dram_tdp_c: f64,
    /// AMB thermal release point in °C (DTM-TS re-enables below this).
    pub amb_trp_c: f64,
    /// DRAM thermal release point in °C.
    pub dram_trp_c: f64,
}

impl ThermalLimits {
    /// The FBDIMM limits used in the simulation study (Section 4.3.3):
    /// AMB TDP 110 °C, DRAM TDP 85 °C, release points 1 °C below.
    pub fn paper_fbdimm() -> Self {
        ThermalLimits { amb_tdp_c: 110.0, dram_tdp_c: 85.0, amb_trp_c: 109.0, dram_trp_c: 84.0 }
    }

    /// Returns a copy with a different AMB TRP (Figure 4.2 sweeps this).
    pub fn with_amb_trp(mut self, trp_c: f64) -> Self {
        self.amb_trp_c = trp_c;
        self
    }

    /// Returns a copy with a different DRAM TRP (Figure 4.2 sweeps this).
    pub fn with_dram_trp(mut self, trp_c: f64) -> Self {
        self.dram_trp_c = trp_c;
        self
    }

    /// Returns a copy with a different AMB TDP, shifting the TRP to keep the
    /// same margin (Figure 5.14 sweeps the TDP).
    pub fn with_amb_tdp(mut self, tdp_c: f64) -> Self {
        let margin = self.amb_tdp_c - self.amb_trp_c;
        self.amb_tdp_c = tdp_c;
        self.amb_trp_c = tdp_c - margin;
        self
    }
}

impl Default for ThermalLimits {
    fn default() -> Self {
        Self::paper_fbdimm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_2_columns_are_reproduced_exactly() {
        let aohs15 = CoolingConfig::aohs_1_5().resistances();
        assert!((aohs15.psi_amb - 9.3).abs() < 1e-12);
        assert!((aohs15.psi_dram_amb - 3.4).abs() < 1e-12);
        assert!((aohs15.psi_dram - 4.0).abs() < 1e-12);
        assert!((aohs15.psi_amb_dram - 4.1).abs() < 1e-12);

        let fdhs10 = CoolingConfig::fdhs_1_0().resistances();
        assert!((fdhs10.psi_amb - 8.0).abs() < 1e-12);
        assert!((fdhs10.psi_dram_amb - 4.4).abs() < 1e-12);
        assert!((fdhs10.psi_dram - 4.0).abs() < 1e-12);
        assert!((fdhs10.psi_amb_dram - 5.7).abs() < 1e-12);

        assert_eq!(aohs15.tau_amb_s, 50.0);
        assert_eq!(aohs15.tau_dram_s, 100.0);
    }

    #[test]
    fn faster_air_always_cools_better() {
        for spreader in [HeatSpreader::Aohs, HeatSpreader::Fdhs] {
            let slow = CoolingConfig { spreader, air_velocity_mps: 1.0 }.resistances();
            let fast = CoolingConfig { spreader, air_velocity_mps: 3.0 }.resistances();
            assert!(fast.psi_amb < slow.psi_amb);
            assert!(fast.psi_dram < slow.psi_dram);
        }
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let mid = CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 2.0 }.resistances();
        assert!(mid.psi_amb < 9.3 && mid.psi_amb > 6.6);
        let low = CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 0.5 }.resistances();
        assert!((low.psi_amb - 11.2).abs() < 1e-12);
        let high = CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 9.0 }.resistances();
        assert!((high.psi_amb - 6.6).abs() < 1e-12);
    }

    #[test]
    fn table_3_3_ambient_temperatures() {
        assert_eq!(CoolingConfig::aohs_1_5().isolated_ambient_c(), 50.0);
        assert_eq!(CoolingConfig::fdhs_1_0().isolated_ambient_c(), 45.0);
        assert_eq!(CoolingConfig::aohs_1_5().integrated_inlet_c(), 45.0);
        assert_eq!(CoolingConfig::fdhs_1_0().integrated_inlet_c(), 40.0);
    }

    #[test]
    fn ambient_params_reflect_model_choice() {
        let cooling = CoolingConfig::aohs_1_5();
        let iso = AmbientParams::isolated(&cooling);
        let int = AmbientParams::integrated(&cooling);
        assert_eq!(iso.psi_cpu_mem_xi, 0.0);
        assert_eq!(int.psi_cpu_mem_xi, 1.5);
        // Isolated ambient never responds to processor activity.
        assert_eq!(iso.stable_ambient_c(4.0), 50.0);
        assert!(int.stable_ambient_c(4.0) > int.stable_ambient_c(0.0));
        assert_eq!(int.with_interaction_degree(2.0).psi_cpu_mem_xi, 2.0);
    }

    #[test]
    fn thermal_limits_default_to_110_and_85() {
        let l = ThermalLimits::paper_fbdimm();
        assert_eq!(l.amb_tdp_c, 110.0);
        assert_eq!(l.dram_tdp_c, 85.0);
        assert_eq!(l.amb_trp_c, 109.0);
        assert_eq!(l.dram_trp_c, 84.0);
        let shifted = l.with_amb_tdp(100.0);
        assert_eq!(shifted.amb_trp_c, 99.0);
        assert_eq!(l.with_amb_trp(108.5).amb_trp_c, 108.5);
        assert_eq!(l.with_dram_trp(83.0).dram_trp_c, 83.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CoolingConfig::aohs_1_5().label(), "AOHS_1.5");
        assert_eq!(CoolingConfig::fdhs_1_0().label(), "FDHS_1.0");
    }
}
