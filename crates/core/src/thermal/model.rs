//! The common interface of the FBDIMM thermal models.
//!
//! [`IsolatedThermalModel`](crate::thermal::isolated::IsolatedThermalModel)
//! (Section 3.4) and
//! [`IntegratedThermalModel`](crate::thermal::integrated::IntegratedThermalModel)
//! (Section 3.5) expose the same quantities — device temperatures, the
//! memory-ambient temperature and the thermal design points — and differ
//! only in how the ambient responds to processor activity. [`ThermalModel`]
//! captures that shared surface so simulators and experiments can be written
//! against one interface instead of dispatching over the concrete types.

use crate::thermal::params::{CoolingConfig, ThermalLimits};

/// A dynamic thermal model of one FBDIMM (AMB + DRAM device pair).
///
/// `advance` is the polymorphic stepping entry point: it carries the
/// processors' Σ(V·IPC) activity term of Equation 3.6, which the isolated
/// model ignores and the integrated model feeds into its ambient node. The
/// concrete types additionally keep their equation-shaped inherent `step`
/// methods for direct use.
pub trait ThermalModel: std::fmt::Debug {
    /// Advances the model by `dt_s` seconds with the given hottest-DIMM
    /// device powers and processor activity term.
    fn advance(&mut self, amb_power_w: f64, dram_power_w: f64, sum_voltage_ipc: f64, dt_s: f64);

    /// Current AMB temperature in °C.
    fn amb_temp_c(&self) -> f64;

    /// Current DRAM temperature in °C.
    fn dram_temp_c(&self) -> f64;

    /// Current memory ambient (DIMM inlet) temperature in °C.
    fn ambient_c(&self) -> f64;

    /// The cooling configuration in use.
    fn cooling(&self) -> &CoolingConfig;

    /// The thermal limits in use.
    fn limits(&self) -> &ThermalLimits;

    /// Whether either device currently exceeds its thermal design point.
    fn over_tdp(&self) -> bool {
        self.amb_temp_c() >= self.limits().amb_tdp_c || self.dram_temp_c() >= self.limits().dram_tdp_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::integrated::IntegratedThermalModel;
    use crate::thermal::isolated::IsolatedThermalModel;

    fn settle(model: &mut dyn ThermalModel, amb_w: f64, dram_w: f64, v_ipc: f64, seconds: usize) -> f64 {
        for _ in 0..seconds {
            model.advance(amb_w, dram_w, v_ipc, 1.0);
        }
        model.amb_temp_c()
    }

    #[test]
    fn both_models_drive_through_the_common_interface() {
        let cooling = CoolingConfig::aohs_1_5();
        let limits = ThermalLimits::paper_fbdimm();
        let mut iso = IsolatedThermalModel::new(cooling, limits);
        let mut int = IntegratedThermalModel::new(cooling, limits);
        let hot_iso = settle(&mut iso, 6.5, 2.0, 0.0, 600);
        let hot_int = settle(&mut int, 6.5, 2.0, 0.0, 600);
        assert!(hot_iso > 100.0 && hot_int > 100.0);
        assert!(iso.over_tdp());
        // The integrated inlet is 5 °C below the isolated ambient, so with an
        // idle processor the integrated model settles cooler.
        assert!(hot_int < hot_iso);
    }

    #[test]
    fn activity_term_only_matters_to_the_integrated_model() {
        let cooling = CoolingConfig::fdhs_1_0();
        let limits = ThermalLimits::paper_fbdimm();
        let mut iso_idle = IsolatedThermalModel::new(cooling, limits);
        let mut iso_busy = IsolatedThermalModel::new(cooling, limits);
        let mut int_idle = IntegratedThermalModel::new(cooling, limits);
        let mut int_busy = IntegratedThermalModel::new(cooling, limits);
        let a = settle(&mut iso_idle, 5.5, 1.5, 0.0, 300);
        let b = settle(&mut iso_busy, 5.5, 1.5, 6.0, 300);
        assert_eq!(a, b, "isolated model must ignore the activity term");
        let c = settle(&mut int_idle, 5.5, 1.5, 0.0, 300);
        let d = settle(&mut int_busy, 5.5, 1.5, 6.0, 300);
        assert!(d > c + 3.0, "integrated model must heat with processor activity");
    }

    #[test]
    fn trait_accessors_report_the_configuration() {
        let model = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let m: &dyn ThermalModel = &model;
        assert_eq!(m.limits().amb_tdp_c, 110.0);
        assert_eq!(m.cooling().label(), "AOHS_1.5");
        assert_eq!(m.ambient_c(), 50.0);
        assert!(!m.over_tdp());
    }
}
