//! Isolated FBDIMM thermal model (Section 3.4).
//!
//! Tracks the AMB and DRAM temperatures of the hottest DIMM. The memory
//! ambient temperature is a constant (Table 3.3); stable temperatures follow
//! Equations 3.3 and 3.4, dynamics follow Equation 3.5.

use crate::thermal::model::ThermalModel;
use crate::thermal::params::{CoolingConfig, ThermalLimits, ThermalResistances};
use crate::thermal::rc::ThermalNode;

/// The isolated thermal model of one (worst-case) FBDIMM.
///
/// The common accessors (`amb_temp_c`, `dram_temp_c`, `ambient_c`,
/// `over_tdp`, ...) are provided through the [`ThermalModel`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolatedThermalModel {
    cooling: CoolingConfig,
    resistances: ThermalResistances,
    limits: ThermalLimits,
    ambient_c: f64,
    amb: ThermalNode,
    dram: ThermalNode,
}

impl IsolatedThermalModel {
    /// Creates a model with both devices initially at the ambient
    /// temperature of the cooling configuration (Table 3.3).
    pub fn new(cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        let resistances = cooling.resistances();
        let ambient_c = cooling.isolated_ambient_c();
        IsolatedThermalModel {
            cooling,
            resistances,
            limits,
            ambient_c,
            amb: ThermalNode::new(ambient_c, resistances.tau_amb_s),
            dram: ThermalNode::new(ambient_c, resistances.tau_dram_s),
        }
    }

    /// Overrides the constant ambient temperature (used by sensitivity
    /// studies).
    pub fn with_ambient_c(mut self, ambient_c: f64) -> Self {
        self.ambient_c = ambient_c;
        self
    }

    /// Stable AMB temperature for the given device powers (Equation 3.3).
    pub fn stable_amb_c(&self, amb_power_w: f64, dram_power_w: f64) -> f64 {
        self.ambient_c + amb_power_w * self.resistances.psi_amb + dram_power_w * self.resistances.psi_dram_amb
    }

    /// Stable DRAM temperature for the given device powers (Equation 3.4).
    pub fn stable_dram_c(&self, amb_power_w: f64, dram_power_w: f64) -> f64 {
        self.ambient_c + amb_power_w * self.resistances.psi_amb_dram + dram_power_w * self.resistances.psi_dram
    }

    /// Advances the model by `dt_s` seconds with the given device powers.
    /// Returns the new `(amb, dram)` temperatures.
    pub fn step(&mut self, amb_power_w: f64, dram_power_w: f64, dt_s: f64) -> (f64, f64) {
        let stable_amb = self.stable_amb_c(amb_power_w, dram_power_w);
        let stable_dram = self.stable_dram_c(amb_power_w, dram_power_w);
        (self.amb.step(stable_amb, dt_s), self.dram.step(stable_dram, dt_s))
    }

    /// Forces the device temperatures (used to start experiments from a
    /// known hot state).
    pub fn set_temps_c(&mut self, amb_c: f64, dram_c: f64) {
        self.amb.set_temp_c(amb_c);
        self.dram.set_temp_c(dram_c);
    }
}

impl ThermalModel for IsolatedThermalModel {
    /// Ignores the processor activity term: the isolated ambient is constant.
    fn advance(&mut self, amb_power_w: f64, dram_power_w: f64, _sum_voltage_ipc: f64, dt_s: f64) {
        self.step(amb_power_w, dram_power_w, dt_s);
    }

    fn amb_temp_c(&self) -> f64 {
        self.amb.temp_c()
    }

    fn dram_temp_c(&self) -> f64 {
        self.dram.temp_c()
    }

    fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    fn cooling(&self) -> &CoolingConfig {
        &self.cooling
    }

    fn limits(&self) -> &ThermalLimits {
        &self.limits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::model::ThermalModel;

    fn hot_power() -> (f64, f64) {
        // A busy hottest DIMM: ~6.5 W AMB, ~2 W DRAM.
        (6.5, 2.0)
    }

    #[test]
    fn idle_dimm_settles_well_below_the_limits_under_aohs() {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        for _ in 0..3_000 {
            m.step(5.1, 0.98, 1.0);
        }
        assert!(m.amb_temp_c() < m.limits().amb_tdp_c, "idle AMB at {:.1} °C", m.amb_temp_c());
        assert!(m.dram_temp_c() < m.limits().dram_tdp_c);
    }

    #[test]
    fn saturated_dimm_exceeds_the_amb_limit_under_aohs() {
        // Under AOHS_1.5 the AMB is the component that overheats (Section 4.4.1).
        let m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        assert!(m.stable_amb_c(amb_w, dram_w) > 110.0);
        assert!(m.stable_dram_c(amb_w, dram_w) < 85.0);
    }

    #[test]
    fn saturated_dimm_exceeds_the_dram_limit_under_fdhs() {
        // Under FDHS_1.0 the DRAM devices reach their limit first.
        let m = IsolatedThermalModel::new(CoolingConfig::fdhs_1_0(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        assert!(m.stable_dram_c(amb_w, dram_w) > 85.0);
        assert!(m.stable_amb_c(amb_w, dram_w) < 110.0);
    }

    #[test]
    fn heating_takes_tens_of_seconds_not_milliseconds() {
        // Section 4.3.1: AMB/DRAM overheat in tens of seconds to over a
        // hundred seconds (unlike processors, which overheat in ms).
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        let mut seconds = 0.0;
        while m.amb_temp_c() < 110.0 && seconds < 1_000.0 {
            m.step(amb_w, dram_w, 1.0);
            seconds += 1.0;
        }
        assert!(seconds > 20.0 && seconds < 200.0, "overheated after {seconds} s");
        assert!(m.over_tdp());
    }

    #[test]
    fn step_moves_toward_stable_temperatures_monotonically() {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        let mut last = m.amb_temp_c();
        for _ in 0..100 {
            let (amb, _) = m.step(amb_w, dram_w, 1.0);
            assert!(amb >= last);
            last = amb;
        }
        assert!(last <= m.stable_amb_c(amb_w, dram_w));
    }

    #[test]
    fn cooling_after_shutdown_brings_temperature_down() {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        m.set_temps_c(110.0, 84.0);
        // Memory shut down: AMB drops to idle power.
        for _ in 0..60 {
            m.step(5.1, 0.98, 1.0);
        }
        assert!(m.amb_temp_c() < 110.0);
        assert!(!m.over_tdp());
    }

    #[test]
    fn ambient_override_shifts_stable_temperatures() {
        let base = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let hot = base.with_ambient_c(60.0);
        assert!(hot.stable_amb_c(5.0, 1.0) > base.stable_amb_c(5.0, 1.0));
        assert_eq!(hot.ambient_c(), 60.0);
    }
}
