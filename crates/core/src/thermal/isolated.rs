//! Isolated FBDIMM thermal model (Section 3.4).
//!
//! Tracks the AMB and DRAM temperatures of the hottest DIMM. The memory
//! ambient temperature is a constant (Table 3.3); stable temperatures follow
//! Equations 3.3 and 3.4, dynamics follow Equation 3.5.

use serde::{Deserialize, Serialize};

use crate::thermal::params::{CoolingConfig, ThermalLimits, ThermalResistances};
use crate::thermal::rc::ThermalNode;

/// The isolated thermal model of one (worst-case) FBDIMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsolatedThermalModel {
    cooling: CoolingConfig,
    resistances: ThermalResistances,
    limits: ThermalLimits,
    ambient_c: f64,
    amb: ThermalNode,
    dram: ThermalNode,
}

impl IsolatedThermalModel {
    /// Creates a model with both devices initially at the ambient
    /// temperature of the cooling configuration (Table 3.3).
    pub fn new(cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        let resistances = cooling.resistances();
        let ambient_c = cooling.isolated_ambient_c();
        IsolatedThermalModel {
            cooling,
            resistances,
            limits,
            ambient_c,
            amb: ThermalNode::new(ambient_c, resistances.tau_amb_s),
            dram: ThermalNode::new(ambient_c, resistances.tau_dram_s),
        }
    }

    /// Overrides the constant ambient temperature (used by sensitivity
    /// studies).
    pub fn with_ambient_c(mut self, ambient_c: f64) -> Self {
        self.ambient_c = ambient_c;
        self
    }

    /// The cooling configuration in use.
    pub fn cooling(&self) -> &CoolingConfig {
        &self.cooling
    }

    /// The thermal limits in use.
    pub fn limits(&self) -> &ThermalLimits {
        &self.limits
    }

    /// The (constant) memory ambient temperature.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Current AMB temperature in °C.
    pub fn amb_temp_c(&self) -> f64 {
        self.amb.temp_c()
    }

    /// Current DRAM temperature in °C.
    pub fn dram_temp_c(&self) -> f64 {
        self.dram.temp_c()
    }

    /// Stable AMB temperature for the given device powers (Equation 3.3).
    pub fn stable_amb_c(&self, amb_power_w: f64, dram_power_w: f64) -> f64 {
        self.ambient_c + amb_power_w * self.resistances.psi_amb + dram_power_w * self.resistances.psi_dram_amb
    }

    /// Stable DRAM temperature for the given device powers (Equation 3.4).
    pub fn stable_dram_c(&self, amb_power_w: f64, dram_power_w: f64) -> f64 {
        self.ambient_c + amb_power_w * self.resistances.psi_amb_dram + dram_power_w * self.resistances.psi_dram
    }

    /// Advances the model by `dt_s` seconds with the given device powers.
    /// Returns the new `(amb, dram)` temperatures.
    pub fn step(&mut self, amb_power_w: f64, dram_power_w: f64, dt_s: f64) -> (f64, f64) {
        let stable_amb = self.stable_amb_c(amb_power_w, dram_power_w);
        let stable_dram = self.stable_dram_c(amb_power_w, dram_power_w);
        (self.amb.step(stable_amb, dt_s), self.dram.step(stable_dram, dt_s))
    }

    /// Whether either device currently exceeds its thermal design point.
    pub fn over_tdp(&self) -> bool {
        self.amb_temp_c() >= self.limits.amb_tdp_c || self.dram_temp_c() >= self.limits.dram_tdp_c
    }

    /// Forces the device temperatures (used to start experiments from a
    /// known hot state).
    pub fn set_temps_c(&mut self, amb_c: f64, dram_c: f64) {
        self.amb.set_temp_c(amb_c);
        self.dram.set_temp_c(dram_c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_power() -> (f64, f64) {
        // A busy hottest DIMM: ~6.5 W AMB, ~2 W DRAM.
        (6.5, 2.0)
    }

    #[test]
    fn idle_dimm_settles_well_below_the_limits_under_aohs() {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        for _ in 0..3_000 {
            m.step(5.1, 0.98, 1.0);
        }
        assert!(m.amb_temp_c() < m.limits().amb_tdp_c, "idle AMB at {:.1} °C", m.amb_temp_c());
        assert!(m.dram_temp_c() < m.limits().dram_tdp_c);
    }

    #[test]
    fn saturated_dimm_exceeds_the_amb_limit_under_aohs() {
        // Under AOHS_1.5 the AMB is the component that overheats (Section 4.4.1).
        let m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        assert!(m.stable_amb_c(amb_w, dram_w) > 110.0);
        assert!(m.stable_dram_c(amb_w, dram_w) < 85.0);
    }

    #[test]
    fn saturated_dimm_exceeds_the_dram_limit_under_fdhs() {
        // Under FDHS_1.0 the DRAM devices reach their limit first.
        let m = IsolatedThermalModel::new(CoolingConfig::fdhs_1_0(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        assert!(m.stable_dram_c(amb_w, dram_w) > 85.0);
        assert!(m.stable_amb_c(amb_w, dram_w) < 110.0);
    }

    #[test]
    fn heating_takes_tens_of_seconds_not_milliseconds() {
        // Section 4.3.1: AMB/DRAM overheat in tens of seconds to over a
        // hundred seconds (unlike processors, which overheat in ms).
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        let mut seconds = 0.0;
        while m.amb_temp_c() < 110.0 && seconds < 1_000.0 {
            m.step(amb_w, dram_w, 1.0);
            seconds += 1.0;
        }
        assert!(seconds > 20.0 && seconds < 200.0, "overheated after {seconds} s");
        assert!(m.over_tdp());
    }

    #[test]
    fn step_moves_toward_stable_temperatures_monotonically() {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (amb_w, dram_w) = hot_power();
        let mut last = m.amb_temp_c();
        for _ in 0..100 {
            let (amb, _) = m.step(amb_w, dram_w, 1.0);
            assert!(amb >= last);
            last = amb;
        }
        assert!(last <= m.stable_amb_c(amb_w, dram_w));
    }

    #[test]
    fn cooling_after_shutdown_brings_temperature_down() {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        m.set_temps_c(110.0, 84.0);
        // Memory shut down: AMB drops to idle power.
        for _ in 0..60 {
            m.step(5.1, 0.98, 1.0);
        }
        assert!(m.amb_temp_c() < 110.0);
        assert!(!m.over_tdp());
    }

    #[test]
    fn ambient_override_shifts_stable_temperatures() {
        let base = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let hot = base.with_ambient_c(60.0);
        assert!(hot.stable_amb_c(5.0, 1.0) > base.stable_amb_c(5.0, 1.0));
        assert_eq!(hot.ambient_c(), 60.0);
    }
}
