//! First-order thermal RC node (Equation 3.5).
//!
//! `T(t + Δt) = T(t) + (T_stable − T(t)) · (1 − e^(−Δt/τ))`
//!
//! The temperature of a component behaves like the voltage on an RC circuit
//! charging toward the stable temperature implied by the current power. The
//! paper observes no meaningful thermal-leakage feedback for DRAM devices
//! and AMBs (≈2 % power increase over the full temperature range), so the
//! node deliberately has no leakage loop.
//!
//! For a fixed step length the decay factor `α = 1 − e^(−Δt/τ)` is a
//! constant, so hot loops precompute it once with
//! [`ThermalNode::decay_alpha`] and advance nodes with
//! [`ThermalNode::step_with_alpha`] — the HotSpot-style RC step-coefficient
//! trick — instead of paying one `exp()` per node per step. [`step`]
//! (closed form) and the cached path are numerically identical because both
//! evaluate the same expression.
//!
//! [`step`]: ThermalNode::step

/// One first-order thermal node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalNode {
    temp_c: f64,
    tau_s: f64,
}

impl ThermalNode {
    /// Creates a node at `initial_c` with time constant `tau_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `tau_s` is not strictly positive.
    pub fn new(initial_c: f64, tau_s: f64) -> Self {
        assert!(tau_s > 0.0, "thermal time constant must be positive");
        ThermalNode { temp_c: initial_c, tau_s }
    }

    /// Current temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Time constant in seconds.
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }

    /// Forces the temperature (used to initialize a model at a known state).
    pub fn set_temp_c(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// The exponential decay factor `1 − e^(−Δt/τ)` of Equation 3.5 for one
    /// step of `dt_s` seconds (0 for non-positive steps). Precompute this
    /// once per fixed step length and reuse it through
    /// [`ThermalNode::step_with_alpha`].
    pub fn decay_alpha(tau_s: f64, dt_s: f64) -> f64 {
        if dt_s > 0.0 {
            1.0 - (-dt_s / tau_s).exp()
        } else {
            0.0
        }
    }

    /// Advances the node by `dt_s` seconds toward `stable_c` (Equation 3.5)
    /// and returns the new temperature.
    pub fn step(&mut self, stable_c: f64, dt_s: f64) -> f64 {
        self.step_with_alpha(stable_c, Self::decay_alpha(self.tau_s, dt_s))
    }

    /// Advances the node toward `stable_c` using a precomputed decay factor
    /// (see [`ThermalNode::decay_alpha`]). Bit-identical to [`step`] when
    /// `alpha` was computed from this node's `tau_s` and the same `dt_s`.
    ///
    /// [`step`]: ThermalNode::step
    pub fn step_with_alpha(&mut self, stable_c: f64, alpha: f64) -> f64 {
        self.temp_c += (stable_c - self.temp_c) * alpha;
        self.temp_c
    }

    /// Time in seconds needed to move from the current temperature to
    /// `target_c` if the stable temperature stays at `stable_c`. Returns
    /// `None` if the target is unreachable (not between the current and the
    /// stable temperature).
    pub fn time_to_reach(&self, target_c: f64, stable_c: f64) -> Option<f64> {
        let from = self.temp_c;
        let num = stable_c - target_c;
        let den = stable_c - from;
        if den == 0.0 {
            return if (target_c - from).abs() < f64::EPSILON { Some(0.0) } else { None };
        }
        let ratio = num / den;
        if ratio <= 0.0 || ratio > 1.0 {
            return None;
        }
        Some(-self.tau_s * ratio.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_converges_to_stable_temperature() {
        let mut node = ThermalNode::new(50.0, 50.0);
        for _ in 0..2_000 {
            node.step(110.0, 1.0);
        }
        assert!((node.temp_c() - 110.0).abs() < 0.01);
    }

    #[test]
    fn one_tau_covers_sixty_three_percent_of_the_gap() {
        let mut node = ThermalNode::new(0.0, 50.0);
        node.step(100.0, 50.0);
        let expected = 100.0 * (1.0 - (-1.0f64).exp());
        assert!((node.temp_c() - expected).abs() < 1e-9);
    }

    #[test]
    fn many_small_steps_equal_one_large_step() {
        let mut fine = ThermalNode::new(40.0, 50.0);
        let mut coarse = ThermalNode::new(40.0, 50.0);
        for _ in 0..1_000 {
            fine.step(95.0, 0.01);
        }
        coarse.step(95.0, 10.0);
        assert!((fine.temp_c() - coarse.temp_c()).abs() < 1e-6);
    }

    #[test]
    fn cooling_works_symmetrically_to_heating() {
        let mut hot = ThermalNode::new(110.0, 50.0);
        hot.step(50.0, 50.0);
        let expected = 110.0 - 60.0 * (1.0 - (-1.0f64).exp());
        assert!((hot.temp_c() - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_dt_changes_nothing() {
        let mut node = ThermalNode::new(75.0, 100.0);
        node.step(120.0, 0.0);
        assert_eq!(node.temp_c(), 75.0);
    }

    #[test]
    fn time_to_reach_matches_integration() {
        let node = ThermalNode::new(50.0, 50.0);
        let t = node.time_to_reach(100.0, 115.0).unwrap();
        // Integrate and confirm we arrive at ~100 °C after t seconds.
        let mut sim = node;
        let mut remaining = t;
        while remaining > 0.0 {
            let dt = remaining.min(0.01);
            sim.step(115.0, dt);
            remaining -= dt;
        }
        assert!((sim.temp_c() - 100.0).abs() < 0.05, "reached {}", sim.temp_c());
    }

    #[test]
    fn unreachable_targets_return_none() {
        let node = ThermalNode::new(50.0, 50.0);
        // Target above the stable temperature can never be reached.
        assert!(node.time_to_reach(120.0, 110.0).is_none());
        // Target below the current temperature while heating is unreachable.
        assert!(node.time_to_reach(40.0, 110.0).is_none());
    }

    #[test]
    fn dram_heats_slower_than_amb() {
        // tau_DRAM = 100 s vs tau_AMB = 50 s: after the same time under the
        // same stable target the AMB is closer to it.
        let mut amb = ThermalNode::new(50.0, 50.0);
        let mut dram = ThermalNode::new(50.0, 100.0);
        amb.step(100.0, 30.0);
        dram.step(100.0, 30.0);
        assert!(amb.temp_c() > dram.temp_c());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_is_rejected() {
        let _ = ThermalNode::new(25.0, 0.0);
    }

    #[test]
    fn precomputed_alpha_is_bit_identical_to_the_closed_form() {
        let alpha = ThermalNode::decay_alpha(50.0, 0.01);
        let mut cached = ThermalNode::new(40.0, 50.0);
        let mut closed = ThermalNode::new(40.0, 50.0);
        for i in 0..10_000 {
            let stable = 95.0 + (i % 7) as f64;
            cached.step_with_alpha(stable, alpha);
            closed.step(stable, 0.01);
            assert_eq!(cached.temp_c(), closed.temp_c(), "diverged at step {i}");
        }
    }

    #[test]
    fn zero_and_negative_dt_yield_zero_alpha() {
        assert_eq!(ThermalNode::decay_alpha(50.0, 0.0), 0.0);
        assert_eq!(ThermalNode::decay_alpha(50.0, -1.0), 0.0);
        let mut node = ThermalNode::new(75.0, 100.0);
        node.step_with_alpha(120.0, 0.0);
        assert_eq!(node.temp_c(), 75.0);
    }
}
