//! Integrated FBDIMM thermal model (Section 3.5).
//!
//! Extends the isolated model with a dynamic DRAM-ambient temperature: the
//! cooling air is pre-heated by the processors before it reaches the DIMMs,
//! so the memory inlet temperature follows the processors' activity
//! (Equation 3.6) with its own thermal RC constant (20 s).

use crate::thermal::model::ThermalModel;
use crate::thermal::params::{AmbientParams, CoolingConfig, ThermalLimits, ThermalResistances};
use crate::thermal::rc::ThermalNode;

/// The integrated thermal model: AMB + DRAM + dynamic memory ambient.
///
/// The common accessors (`amb_temp_c`, `dram_temp_c`, `ambient_c`,
/// `over_tdp`, ...) are provided through the [`ThermalModel`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegratedThermalModel {
    cooling: CoolingConfig,
    resistances: ThermalResistances,
    limits: ThermalLimits,
    ambient_params: AmbientParams,
    ambient: ThermalNode,
    amb: ThermalNode,
    dram: ThermalNode,
}

impl IntegratedThermalModel {
    /// Creates a model with the DRAM ambient starting at the system inlet
    /// temperature and both devices at that ambient.
    pub fn new(cooling: CoolingConfig, limits: ThermalLimits) -> Self {
        Self::with_ambient_params(cooling, limits, AmbientParams::integrated(&cooling))
    }

    /// Creates a model with explicit ambient parameters (used by the
    /// thermal-interaction sensitivity study, Section 4.5.2).
    pub fn with_ambient_params(cooling: CoolingConfig, limits: ThermalLimits, ambient_params: AmbientParams) -> Self {
        let resistances = cooling.resistances();
        let start = ambient_params.system_inlet_c;
        IntegratedThermalModel {
            cooling,
            resistances,
            limits,
            ambient_params,
            ambient: ThermalNode::new(start, ambient_params.tau_cpu_dram_s),
            amb: ThermalNode::new(start, resistances.tau_amb_s),
            dram: ThermalNode::new(start, resistances.tau_dram_s),
        }
    }

    /// The ambient-model parameters in use.
    pub fn ambient_params(&self) -> &AmbientParams {
        &self.ambient_params
    }

    /// Advances the model by `dt_s` seconds. `sum_voltage_ipc` is the
    /// processors' Σ(V_core_i × IPC_core_i) term of Equation 3.6 (IPC in
    /// reference cycles); `amb_power_w`/`dram_power_w` are the hottest
    /// DIMM's device powers. Returns `(ambient, amb, dram)` temperatures.
    pub fn step(&mut self, amb_power_w: f64, dram_power_w: f64, sum_voltage_ipc: f64, dt_s: f64) -> (f64, f64, f64) {
        let stable_ambient = self.ambient_params.stable_ambient_c(sum_voltage_ipc);
        let ambient = self.ambient.step(stable_ambient, dt_s);
        let stable_amb =
            ambient + amb_power_w * self.resistances.psi_amb + dram_power_w * self.resistances.psi_dram_amb;
        let stable_dram =
            ambient + amb_power_w * self.resistances.psi_amb_dram + dram_power_w * self.resistances.psi_dram;
        (ambient, self.amb.step(stable_amb, dt_s), self.dram.step(stable_dram, dt_s))
    }

    /// Forces all three node temperatures.
    pub fn set_temps_c(&mut self, ambient_c: f64, amb_c: f64, dram_c: f64) {
        self.ambient.set_temp_c(ambient_c);
        self.amb.set_temp_c(amb_c);
        self.dram.set_temp_c(dram_c);
    }
}

impl ThermalModel for IntegratedThermalModel {
    fn advance(&mut self, amb_power_w: f64, dram_power_w: f64, sum_voltage_ipc: f64, dt_s: f64) {
        self.step(amb_power_w, dram_power_w, sum_voltage_ipc, dt_s);
    }

    fn amb_temp_c(&self) -> f64 {
        self.amb.temp_c()
    }

    fn dram_temp_c(&self) -> f64 {
        self.dram.temp_c()
    }

    fn ambient_c(&self) -> f64 {
        self.ambient.temp_c()
    }

    fn cooling(&self) -> &CoolingConfig {
        &self.cooling
    }

    fn limits(&self) -> &ThermalLimits {
        &self.limits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::model::ThermalModel;

    fn model() -> IntegratedThermalModel {
        IntegratedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm())
    }

    #[test]
    fn ambient_rises_with_processor_activity() {
        let mut m = model();
        let start = m.ambient_c();
        for _ in 0..300 {
            // Four busy cores at 1.55 V with IPC ~1 each.
            m.step(5.5, 1.5, 4.0 * 1.55, 1.0);
        }
        assert!(m.ambient_c() > start + 5.0, "ambient only reached {:.1}", m.ambient_c());
    }

    #[test]
    fn idle_processors_keep_ambient_at_inlet() {
        let mut m = model();
        for _ in 0..300 {
            m.step(5.1, 0.98, 0.0, 1.0);
        }
        assert!((m.ambient_c() - m.ambient_params().system_inlet_c).abs() < 0.01);
    }

    #[test]
    fn stronger_interaction_degree_heats_memory_more() {
        let cooling = CoolingConfig::fdhs_1_0();
        let limits = ThermalLimits::paper_fbdimm();
        let mut weak = IntegratedThermalModel::with_ambient_params(
            cooling,
            limits,
            AmbientParams::integrated(&cooling).with_interaction_degree(1.0),
        );
        let mut strong = IntegratedThermalModel::with_ambient_params(
            cooling,
            limits,
            AmbientParams::integrated(&cooling).with_interaction_degree(2.0),
        );
        for _ in 0..400 {
            weak.step(6.0, 2.0, 5.0, 1.0);
            strong.step(6.0, 2.0, 5.0, 1.0);
        }
        assert!(strong.amb_temp_c() > weak.amb_temp_c());
        assert!(strong.dram_temp_c() > weak.dram_temp_c());
    }

    #[test]
    fn lowering_processor_voltage_lowers_memory_temperature() {
        // The mechanism behind DTM-CDVFS's advantage in the integrated model:
        // the same memory traffic with cooler processors yields cooler DIMMs.
        let mut fast = model();
        let mut slow = model();
        for _ in 0..600 {
            fast.step(6.0, 2.0, 4.0 * 1.55, 1.0); // 4 cores at 1.55 V
            slow.step(6.0, 2.0, 4.0 * 0.95 * 0.8, 1.0); // 4 cores at 0.95 V, lower IPC
        }
        assert!(slow.amb_temp_c() < fast.amb_temp_c() - 2.0);
    }

    #[test]
    fn ambient_reacts_faster_than_the_dram_devices() {
        // tau_CPU_DRAM = 20 s vs tau_DRAM = 100 s.
        let mut m = model();
        m.step(6.0, 2.0, 6.0, 10.0);
        let ambient_progress = (m.ambient_c() - 45.0) / (m.ambient_params().stable_ambient_c(6.0) - 45.0);
        assert!(ambient_progress > 0.35, "ambient progress {ambient_progress}");
        // DRAM has barely moved by comparison toward its own stable point.
        assert!(m.dram_temp_c() < 60.0);
    }

    #[test]
    fn over_tdp_reflects_forced_state() {
        let mut m = model();
        assert!(!m.over_tdp());
        m.set_temps_c(55.0, 110.5, 80.0);
        assert!(m.over_tdp());
    }

    #[test]
    fn integrated_inlet_is_five_degrees_below_isolated_ambient() {
        let m = model();
        assert_eq!(m.ambient_params().system_inlet_c, 45.0);
        assert_eq!(m.cooling().isolated_ambient_c(), 50.0);
        assert_eq!(m.limits().amb_tdp_c, 110.0);
    }
}
