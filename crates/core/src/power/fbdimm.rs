//! Whole-subsystem FBDIMM power accounting.
//!
//! Combines the per-DIMM DRAM and AMB power models over a traffic window
//! produced by the memory simulator: per-DIMM power for the thermal model,
//! per-**layer** power for the stack-resolved scene (each position's
//! buffer/DRAM breakdown splits over its
//! [`StackTopology`](crate::thermal::params::StackTopology)'s layers),
//! plan-transformed power for spatially resolved DTM
//! ([`FbdimmPowerModel::scene_power_planned`] routes a traffic split
//! through an [`ActuationPlan`]'s steering weights and per-channel service
//! fractions, so asymmetric throttling shows up as asymmetric heat), and
//! total memory subsystem power for the energy results (Figure 4.9).

use fbdimm_sim::{DimmTraffic, TrafficWindow};

use crate::dtm::plan::{ActuationPlan, PlanTrafficStats};
use crate::power::amb::AmbPowerModel;
use crate::power::dram::DramPowerModel;
use crate::thermal::params::StackTopology;

/// Power of one DIMM position, split into its AMB and DRAM components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FbdimmPowerBreakdown {
    /// AMB power in watts.
    pub amb_watts: f64,
    /// DRAM-devices power in watts.
    pub dram_watts: f64,
}

impl FbdimmPowerBreakdown {
    /// Total power of the DIMM.
    pub fn total_watts(&self) -> f64 {
        self.amb_watts + self.dram_watts
    }

    /// Splits this position's power over the layers of a device stack:
    /// one watt figure per layer, conserving the total (`amb_watts +
    /// dram_watts` flows into the stack, no more, no less).
    pub fn layer_watts(&self, topology: &StackTopology) -> Vec<f64> {
        topology.split_watts(self.amb_watts, self.dram_watts)
    }
}

/// Combined power model of the FBDIMM memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FbdimmPowerModel {
    /// Per-DIMM DRAM-devices model (Eq. 3.1).
    pub dram: DramPowerModel,
    /// Per-DIMM AMB model (Eq. 3.2).
    pub amb: AmbPowerModel,
}

impl FbdimmPowerModel {
    /// The paper's default coefficients (Table 3.1 and the Micron-derived
    /// DRAM coefficients).
    pub fn paper_defaults() -> Self {
        FbdimmPowerModel { dram: DramPowerModel::ddr2_667_1gb(), amb: AmbPowerModel::table_3_1() }
    }

    /// Power of one DIMM position given its traffic split. `is_last` marks
    /// the last DIMM of its channel, `dimms_per_channel` is used to decide
    /// that from the position when the caller does not know.
    pub fn dimm_power(&self, traffic: &DimmTraffic, is_last: bool) -> FbdimmPowerBreakdown {
        let read = traffic.local_gbps * traffic.read_fraction;
        let write = traffic.local_gbps * (1.0 - traffic.read_fraction);
        FbdimmPowerBreakdown {
            amb_watts: self.amb.power_watts(traffic.bypass_gbps, traffic.local_gbps, is_last),
            dram_watts: self.dram.power_watts(read, write),
        }
    }

    /// Per-position power breakdowns for a list of per-DIMM traffic splits,
    /// in the order the splits are given. This is the channel-resolved base
    /// API: the hottest-DIMM and subsystem-total entry points below are
    /// derived from it, and the thermal scene steps directly from its
    /// output.
    pub fn scene_power_from_traffic(
        &self,
        dimms: &[DimmTraffic],
        dimms_per_channel: usize,
    ) -> Vec<FbdimmPowerBreakdown> {
        dimms.iter().map(|d| self.dimm_power(d, d.dimm + 1 == dimms_per_channel)).collect()
    }

    /// Per-position power breakdowns for a traffic window, ordered as
    /// `window.dimms` (channel-major for a full window).
    pub fn scene_power(&self, window: &TrafficWindow, dimms_per_channel: usize) -> Vec<FbdimmPowerBreakdown> {
        self.scene_power_from_traffic(&window.dimms, dimms_per_channel)
    }

    /// Per-position power breakdowns after an [`ActuationPlan`] transformed
    /// the traffic split: steering weights redistribute the locally served
    /// throughput over the `channels × dimms_per_channel` position grid,
    /// per-channel service fractions scale each channel's share, and the
    /// FBDIMM chain bypass is rebuilt from the planned locals
    /// ([`ActuationPlan::apply_traffic_into`]) — so a plan that starves one
    /// channel cools exactly that channel's positions. Scalar plans
    /// reproduce [`FbdimmPowerModel::scene_power_from_traffic`] over the
    /// grid. Returns the breakdowns (grid order) together with the plan's
    /// [`PlanTrafficStats`].
    ///
    /// This is the convenience composition of
    /// [`ActuationPlan::apply_traffic_into`] and
    /// [`FbdimmPowerModel::scene_power_from_traffic`] for one-shot callers
    /// (analyses, tests); the window loop in `sim/engine.rs` inlines the
    /// same two primitives with reusable scratch buffers, so the two paths
    /// cannot diverge behaviorally.
    pub fn scene_power_planned(
        &self,
        dimms: &[DimmTraffic],
        channels: usize,
        dimms_per_channel: usize,
        plan: &ActuationPlan,
    ) -> (Vec<FbdimmPowerBreakdown>, PlanTrafficStats) {
        let mut grid = Vec::new();
        let stats = plan.apply_traffic_into(dimms, channels, dimms_per_channel, &mut grid);
        (self.scene_power_from_traffic(&grid, dimms_per_channel), stats)
    }

    /// Per-layer watts of one position's device stack: the position's
    /// buffer/DRAM power split over the topology's layers (a 3D stack
    /// spreads the DRAM power across its dies and deposits the interface
    /// power in the base die; a rank pair folds the register power into the
    /// ranks).
    pub fn stack_power(&self, traffic: &DimmTraffic, is_last: bool, topology: &StackTopology) -> Vec<f64> {
        self.dimm_power(traffic, is_last).layer_watts(topology)
    }

    /// Per-position, per-layer watts for a list of per-DIMM traffic splits:
    /// [`FbdimmPowerModel::scene_power_from_traffic`] pushed down to layer
    /// resolution. The flattened sum equals the subsystem total for one
    /// physical DIMM per position (energy conservation).
    pub fn scene_stack_power(
        &self,
        dimms: &[DimmTraffic],
        dimms_per_channel: usize,
        topology: &StackTopology,
    ) -> Vec<Vec<f64>> {
        self.scene_power_from_traffic(dimms, dimms_per_channel).iter().map(|p| p.layer_watts(topology)).collect()
    }

    /// Power of the hottest DIMM of a traffic window — the quantity the
    /// legacy single-DIMM thermal model tracks (the DIMM closest to the
    /// controller carries the most bypass traffic and is the thermal worst
    /// case). Derived by arg-max over [`FbdimmPowerModel::scene_power`].
    pub fn hottest_dimm_power(&self, window: &TrafficWindow, dimms_per_channel: usize) -> FbdimmPowerBreakdown {
        self.scene_power(window, dimms_per_channel)
            .into_iter()
            .max_by(|a, b| a.total_watts().partial_cmp(&b.total_watts()).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or_else(|| self.idle_dimm_power(false))
    }

    /// Power of an idle DIMM (no traffic at all).
    pub fn idle_dimm_power(&self, is_last: bool) -> FbdimmPowerBreakdown {
        FbdimmPowerBreakdown {
            amb_watts: self.amb.power_watts(0.0, 0.0, is_last),
            dram_watts: self.dram.power_watts(0.0, 0.0),
        }
    }

    /// Total power of the whole memory subsystem over a traffic window: the
    /// sum of the per-position [`FbdimmPowerModel::scene_power`] breakdowns.
    /// `phys_per_position` physical DIMMs share each logical position (the
    /// traffic window already reports per-physical-DIMM throughput).
    pub fn subsystem_power_watts(
        &self,
        window: &TrafficWindow,
        dimms_per_channel: usize,
        phys_per_position: usize,
    ) -> f64 {
        let per_position: f64 =
            self.scene_power(window, dimms_per_channel).iter().map(FbdimmPowerBreakdown::total_watts).sum();
        per_position * phys_per_position as f64
    }

    /// Total idle power of a subsystem with the given shape (used while the
    /// memory is shut off by DTM or no characterization traffic exists).
    pub fn subsystem_idle_power_watts(
        &self,
        logical_channels: usize,
        dimms_per_channel: usize,
        phys_per_position: usize,
    ) -> f64 {
        let mut total = 0.0;
        for _ in 0..logical_channels {
            for dimm in 0..dimms_per_channel {
                let is_last = dimm + 1 == dimms_per_channel;
                total += self.idle_dimm_power(is_last).total_watts();
            }
        }
        total * phys_per_position as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_with(dimms: Vec<DimmTraffic>) -> TrafficWindow {
        TrafficWindow { dimms, ..TrafficWindow::default() }
    }

    #[test]
    fn hottest_dimm_is_the_one_with_most_traffic() {
        let model = FbdimmPowerModel::paper_defaults();
        let dimms = vec![
            DimmTraffic { channel: 0, dimm: 0, local_gbps: 1.0, bypass_gbps: 3.0, read_fraction: 0.7 },
            DimmTraffic { channel: 0, dimm: 3, local_gbps: 1.0, bypass_gbps: 0.0, read_fraction: 0.7 },
        ];
        let w = window_with(dimms);
        let hottest = model.hottest_dimm_power(&w, 4);
        let near = model.dimm_power(&w.dimms[0], false);
        assert!((hottest.total_watts() - near.total_watts()).abs() < 1e-12);
    }

    #[test]
    fn empty_window_falls_back_to_idle_power() {
        let model = FbdimmPowerModel::paper_defaults();
        let w = window_with(vec![]);
        let p = model.hottest_dimm_power(&w, 4);
        assert!((p.amb_watts - 5.1).abs() < 1e-9);
        assert!((p.dram_watts - 0.98).abs() < 1e-9);
    }

    #[test]
    fn subsystem_power_scales_with_physical_dimm_count() {
        let model = FbdimmPowerModel::paper_defaults();
        let dimms = vec![DimmTraffic { channel: 0, dimm: 0, local_gbps: 0.5, bypass_gbps: 1.0, read_fraction: 0.6 }];
        let w = window_with(dimms);
        let one = model.subsystem_power_watts(&w, 4, 1);
        let two = model.subsystem_power_watts(&w, 4, 2);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn idle_subsystem_power_matches_paper_scale() {
        // 16 physical idle DIMMs: AMB idle (5.1 or 4.0) + DRAM static 0.98.
        // Three of four positions use 5.1 W AMBs, the last 4.0 W.
        let model = FbdimmPowerModel::paper_defaults();
        let p = model.subsystem_idle_power_watts(2, 4, 2);
        let expected = 2.0 * 2.0 * (3.0 * (5.1 + 0.98) + (4.0 + 0.98));
        assert!((p - expected).abs() < 1e-9, "idle power {p}, expected {expected}");
        // This is the scale (~80-100 W peak with traffic) Section 2.2 quotes.
        assert!(p > 60.0 && p < 100.0);
    }

    #[test]
    fn dimm_power_splits_reads_and_writes() {
        let model = FbdimmPowerModel::paper_defaults();
        let all_reads = DimmTraffic { channel: 0, dimm: 0, local_gbps: 1.0, bypass_gbps: 0.0, read_fraction: 1.0 };
        let all_writes = DimmTraffic { channel: 0, dimm: 0, local_gbps: 1.0, bypass_gbps: 0.0, read_fraction: 0.0 };
        let pr = model.dimm_power(&all_reads, false);
        let pw = model.dimm_power(&all_writes, false);
        assert!(pw.dram_watts > pr.dram_watts, "write column accesses cost slightly more");
        assert_eq!(pw.amb_watts, pr.amb_watts);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let b = FbdimmPowerBreakdown { amb_watts: 5.0, dram_watts: 2.0 };
        assert!((b.total_watts() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn planned_scene_power_makes_asymmetric_throttling_asymmetric_heat() {
        use crate::dtm::plan::ActuationPlan;
        use cpu_model::{CpuConfig, RunningMode};
        let model = FbdimmPowerModel::paper_defaults();
        let dimms = vec![
            DimmTraffic { channel: 0, dimm: 0, local_gbps: 2.0, bypass_gbps: 2.0, read_fraction: 0.7 },
            DimmTraffic { channel: 0, dimm: 1, local_gbps: 2.0, bypass_gbps: 0.0, read_fraction: 0.7 },
            DimmTraffic { channel: 1, dimm: 0, local_gbps: 2.0, bypass_gbps: 2.0, read_fraction: 0.7 },
            DimmTraffic { channel: 1, dimm: 1, local_gbps: 2.0, bypass_gbps: 0.0, read_fraction: 0.7 },
        ];
        let mode = RunningMode::full_speed(&CpuConfig::paper_quad_core());

        // A scalar plan reproduces the unplanned per-position power exactly.
        let (scalar, stats) = model.scene_power_planned(&dimms, 2, 2, &ActuationPlan::global(mode));
        assert_eq!(stats.service_scale, 1.0);
        assert_eq!(scalar, model.scene_power_from_traffic(&dimms, 2));

        // Starving channel 0 cools channel 0's positions and only them.
        let plan = ActuationPlan::global(mode).with_channel_service(vec![0.25, 1.0]);
        let (planned, stats) = model.scene_power_planned(&dimms, 2, 2, &plan);
        assert!((stats.service_scale - 0.625).abs() < 1e-12, "half the traffic at 1/4 service");
        assert!(planned[0].total_watts() < scalar[0].total_watts());
        assert!(planned[1].total_watts() < scalar[1].total_watts());
        assert_eq!(planned[2], scalar[2], "untouched channel keeps its heat");
        assert_eq!(planned[3], scalar[3]);

        // Steering everything onto channel 1 moves the watts with it.
        let steer = ActuationPlan::global(mode).with_steering(vec![0.0, 0.0, 0.5, 0.5]);
        let (steered, stats) = model.scene_power_planned(&dimms, 2, 2, &steer);
        assert_eq!(stats.service_scale, 1.0, "steering moves heat without throttling");
        assert!(stats.migrated_gbps > 0.0);
        let idle = model.idle_dimm_power(false);
        assert!((steered[0].total_watts() - idle.total_watts()).abs() < 1e-12, "drained position idles");
        assert!(steered[2].total_watts() > scalar[2].total_watts(), "target position heats up");
    }

    #[test]
    fn stack_power_pushes_scene_power_down_to_layer_resolution() {
        use crate::thermal::params::{CoolingConfig, StackKind};
        let model = FbdimmPowerModel::paper_defaults();
        let topology = StackKind::stacked4().topology(&CoolingConfig::aohs_1_5());
        let dimms = vec![
            DimmTraffic { channel: 0, dimm: 0, local_gbps: 1.0, bypass_gbps: 2.0, read_fraction: 0.7 },
            DimmTraffic { channel: 0, dimm: 1, local_gbps: 0.5, bypass_gbps: 0.0, read_fraction: 0.5 },
        ];
        let per_position = model.scene_power_from_traffic(&dimms, 2);
        let per_layer = model.scene_stack_power(&dimms, 2, &topology);
        assert_eq!(per_layer.len(), per_position.len());
        for (i, (layers, breakdown)) in per_layer.iter().zip(&per_position).enumerate() {
            assert_eq!(layers.len(), topology.depth());
            // The split conserves the position's power and matches the
            // single-position entry point.
            assert!((layers.iter().sum::<f64>() - breakdown.total_watts()).abs() < 1e-12);
            assert_eq!(layers, &model.stack_power(&dimms[i], dimms[i].dimm + 1 == 2, &topology));
            // The base die carries the whole buffer (AMB-equivalent) power.
            assert!((layers[0] - breakdown.amb_watts).abs() < 1e-12);
        }
    }
}
