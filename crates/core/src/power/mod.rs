//! FBDIMM power models (Section 3.3).

pub mod amb;
pub mod dram;
pub mod fbdimm;

pub use amb::AmbPowerModel;
pub use dram::DramPowerModel;
pub use fbdimm::{FbdimmPowerBreakdown, FbdimmPowerModel};
