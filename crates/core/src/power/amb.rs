//! AMB power model (Equation 3.2 and Table 3.1).
//!
//! `P_AMB = P_idle + β·Throughput_bypass + γ·Throughput_local`
//!
//! The idle power of the last AMB in a channel is lower (4.0 W vs 5.1 W)
//! because it only has to stay synchronized with one neighbour.

/// Power model of one Advanced Memory Buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbPowerModel {
    /// Idle power of the last AMB of a channel, watts (Table 3.1: 4.0 W).
    pub idle_last_watts: f64,
    /// Idle power of every other AMB, watts (Table 3.1: 5.1 W).
    pub idle_other_watts: f64,
    /// Bypass-throughput coefficient β in W/(GB/s) (Table 3.1: 0.19).
    pub beta_bypass: f64,
    /// Local-throughput coefficient γ in W/(GB/s) (Table 3.1: 0.75).
    pub gamma_local: f64,
}

impl AmbPowerModel {
    /// Parameters of Table 3.1 (1 GB DDR2-667x8 FBDIMM, 110 nm).
    pub fn table_3_1() -> Self {
        AmbPowerModel { idle_last_watts: 4.0, idle_other_watts: 5.1, beta_bypass: 0.19, gamma_local: 0.75 }
    }

    /// AMB power given bypass and local throughput in GB/s (Equation 3.2).
    /// `is_last` selects the idle power of the last AMB in the daisy chain.
    ///
    /// ```
    /// use memtherm::power::amb::AmbPowerModel;
    /// let m = AmbPowerModel::table_3_1();
    /// assert!((m.power_watts(0.0, 0.0, false) - 5.1).abs() < 1e-12);
    /// assert!((m.power_watts(0.0, 0.0, true) - 4.0).abs() < 1e-12);
    /// ```
    pub fn power_watts(&self, bypass_gbps: f64, local_gbps: f64, is_last: bool) -> f64 {
        self.idle_watts(is_last) + self.beta_bypass * bypass_gbps.max(0.0) + self.gamma_local * local_gbps.max(0.0)
    }

    /// The idle (zero-traffic) term of Equation 3.2 alone. In a 3D-stacked
    /// topology this is the floor of the base logic die's power — the
    /// buffer role moves from a discrete AMB onto the stack's bottom layer,
    /// where [`StackTopology::stacked_3d`](crate::thermal::params::StackTopology::stacked_3d)
    /// deposits the whole buffer power share.
    pub fn idle_watts(&self, is_last: bool) -> f64 {
        if is_last {
            self.idle_last_watts
        } else {
            self.idle_other_watts
        }
    }
}

impl Default for AmbPowerModel {
    fn default() -> Self {
        Self::table_3_1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_match_the_paper() {
        let m = AmbPowerModel::table_3_1();
        assert_eq!(m.idle_last_watts, 4.0);
        assert_eq!(m.idle_other_watts, 5.1);
        assert_eq!(m.beta_bypass, 0.19);
        assert_eq!(m.gamma_local, 0.75);
    }

    #[test]
    fn local_traffic_costs_more_than_bypass_traffic() {
        let m = AmbPowerModel::table_3_1();
        let local = m.power_watts(0.0, 1.0, false);
        let bypass = m.power_watts(1.0, 0.0, false);
        assert!(local > bypass, "a local request does more work in the AMB than a bypassed one");
    }

    #[test]
    fn last_amb_idles_cooler() {
        let m = AmbPowerModel::table_3_1();
        assert!(m.power_watts(1.0, 1.0, true) < m.power_watts(1.0, 1.0, false));
    }

    #[test]
    fn power_is_linear_and_clamps_negative_inputs() {
        let m = AmbPowerModel::table_3_1();
        let base = m.power_watts(0.0, 0.0, false);
        let one = m.power_watts(2.0, 1.0, false) - base;
        let two = m.power_watts(4.0, 2.0, false) - base;
        assert!((two - 2.0 * one).abs() < 1e-9);
        assert_eq!(m.power_watts(-3.0, -3.0, false), base);
    }

    #[test]
    fn peak_amb_power_is_consistent_with_reported_power_density() {
        // Section 3.1 quotes an AMB power density of up to 18.5 W/cm^2; the
        // AMB die is on the order of 0.5 cm^2, so peak power should land in
        // the 6-10 W range when a channel is saturated.
        let m = AmbPowerModel::table_3_1();
        let peak = m.power_watts(8.0, 2.7, false);
        assert!(peak > 6.0 && peak < 10.5, "peak AMB power {peak} W");
    }
}
