//! DRAM chip power model (Equation 3.1).
//!
//! `P_DRAM = P_static + α1·Throughput_read + α2·Throughput_write`
//!
//! The coefficients are derived from the Micron DDR2 system-power calculator
//! for a 1 GB DDR2-667x8 FBDIMM built in a 110 nm process, assuming the
//! close-page mode with auto-precharge, no low-power modes, and banks all
//! precharged 20 % of the time (the calculator's representative default):
//! static power 0.98 W per DIMM, α1 = 1.12 W/(GB/s), α2 = 1.16 W/(GB/s).

/// Power model of the DRAM devices of one FBDIMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPowerModel {
    /// Static power per DIMM in watts (includes refresh).
    pub static_watts: f64,
    /// Read-throughput coefficient α1 in W/(GB/s).
    pub alpha_read: f64,
    /// Write-throughput coefficient α2 in W/(GB/s).
    pub alpha_write: f64,
}

impl DramPowerModel {
    /// Coefficients for the 1 GB DDR2-667x8 FBDIMM used throughout the
    /// paper (Section 3.3).
    pub fn ddr2_667_1gb() -> Self {
        DramPowerModel { static_watts: 0.98, alpha_read: 1.12, alpha_write: 1.16 }
    }

    /// DRAM power of one DIMM given its read and write throughput in GB/s
    /// (Equation 3.1).
    ///
    /// ```
    /// use memtherm::power::dram::DramPowerModel;
    /// let m = DramPowerModel::ddr2_667_1gb();
    /// let idle = m.power_watts(0.0, 0.0);
    /// assert!((idle - 0.98).abs() < 1e-12);
    /// assert!(m.power_watts(1.0, 0.5) > idle);
    /// ```
    pub fn power_watts(&self, read_gbps: f64, write_gbps: f64) -> f64 {
        self.static_watts + self.alpha_read * read_gbps.max(0.0) + self.alpha_write * write_gbps.max(0.0)
    }

    /// Power of one die of a multi-die device (a DDR4/5 rank or a 3D
    /// stack's layer) when the accesses interleave evenly across `dies`
    /// dies: each die carries its share of the static (refresh) power and
    /// of the throughput-proportional access power.
    ///
    /// ```
    /// use memtherm::power::dram::DramPowerModel;
    /// let m = DramPowerModel::ddr2_667_1gb();
    /// let whole = m.power_watts(2.0, 1.0);
    /// let die = m.per_die_watts(2.0, 1.0, 4);
    /// assert!((4.0 * die - whole).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `dies` is zero.
    pub fn per_die_watts(&self, read_gbps: f64, write_gbps: f64, dies: usize) -> f64 {
        assert!(dies > 0, "a device needs at least one die");
        self.power_watts(read_gbps, write_gbps) / dies as f64
    }
}

impl Default for DramPowerModel {
    fn default() -> Self {
        Self::ddr2_667_1gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_dimm_consumes_static_power_only() {
        let m = DramPowerModel::ddr2_667_1gb();
        assert!((m.power_watts(0.0, 0.0) - 0.98).abs() < 1e-12);
    }

    #[test]
    fn coefficients_match_the_paper() {
        let m = DramPowerModel::ddr2_667_1gb();
        assert!((m.alpha_read - 1.12).abs() < 1e-12);
        assert!((m.alpha_write - 1.16).abs() < 1e-12);
    }

    #[test]
    fn power_is_linear_in_throughput() {
        let m = DramPowerModel::ddr2_667_1gb();
        let p1 = m.power_watts(1.0, 1.0) - m.static_watts;
        let p2 = m.power_watts(2.0, 2.0) - m.static_watts;
        assert!((p2 - 2.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn writes_cost_slightly_more_than_reads() {
        let m = DramPowerModel::ddr2_667_1gb();
        assert!(m.power_watts(0.0, 1.0) > m.power_watts(1.0, 0.0));
    }

    #[test]
    fn negative_throughput_is_clamped() {
        let m = DramPowerModel::ddr2_667_1gb();
        assert_eq!(m.power_watts(-1.0, -1.0), m.static_watts);
    }
}
