//! Cross-process disk-cache contract: two *processes* appending to one
//! sharded results cache concurrently (each shard file serialized by its
//! own `<path>.lock` advisory lock) must produce shard files every entry of
//! which loads back.
//!
//! The test re-executes its own test binary twice — once per writer role,
//! selected by an environment variable — from two threads, waits for both
//! children, then reopens the cache and verifies that all entries from both
//! processes survived without corruption. Each role's keys are chosen to
//! hammer **every** shard file, so the children race each other on all
//! [`DISK_SHARDS`] locks and lazy header initializations, not just one.

use std::process::Command;
use std::sync::Arc;

use cpu_model::{OperatingPoint, RunningMode};
use memtherm::sim::characterize::{CharPoint, CharStore, CharStoreKey, ModeKey};
use memtherm::sim::diskcache::{shard_index, shard_path, DISK_SHARDS};

const ROLE_ENV: &str = "MEMTHERM_XPROC_ROLE";
const PATH_ENV: &str = "MEMTHERM_XPROC_PATH";
const ENTRIES_PER_PROCESS: u64 = 60;

fn key_for(role: u64, i: u64) -> CharStoreKey {
    CharStoreKey {
        mix_id: format!("xproc-w{role}"),
        mode: ModeKey { active_cores: 4, freq_mhz: 3200, cap_mbps: u32::MAX },
        budget: 10_000 + role * 100_000 + i,
        channels: 2,
        dimms_per_channel: 4,
        hw_fingerprint: 0xfeed_beef,
    }
}

fn point_for(role: u64, i: u64) -> CharPoint {
    CharPoint {
        mode: RunningMode { active_cores: 4, op: OperatingPoint::new(3.2, 1.55), bandwidth_cap: None },
        instr_rate_total: 1e9 + (role * 1000 + i) as f64,
        core_share: vec![0.25; 4],
        read_gbps: role as f64 + 0.125,
        write_gbps: i as f64 * 0.5,
        dimm_traffic: Vec::new(),
        ipc_ref_sum: 3.5,
        l2_miss_rate: 0.25,
        l2_misses_per_instr: 0.01,
        bytes_per_instr: 1.5,
    }
}

/// Child role: open the shared cache and append this role's entries through
/// the normal `CharStore` miss path, yielding between appends so the two
/// processes interleave at the shard locks.
fn run_child(role: u64, path: &str) {
    let store = CharStore::with_disk_cache(path).expect("child opens the shared cache");
    for i in 0..ENTRIES_PER_PROCESS {
        let point = point_for(role, i);
        let got = store.get_or_compute(key_for(role, i), || point.clone());
        assert_eq!(*got, point);
        if i % 8 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        } else {
            std::thread::yield_now();
        }
    }
}

#[test]
fn two_processes_append_to_one_cache_without_corruption() {
    if let (Ok(role), Ok(path)) = (std::env::var(ROLE_ENV), std::env::var(PATH_ENV)) {
        run_child(role.parse().expect("numeric role"), &path);
        return;
    }

    let path = std::env::temp_dir().join(format!("memtherm_xproc_cache_{}.jsonl", std::process::id()));
    let cleanup = |base: &std::path::Path| {
        let _ = std::fs::remove_file(base);
        for shard in 0..DISK_SHARDS {
            let _ = std::fs::remove_file(shard_path(base, shard));
        }
    };
    cleanup(&path);

    // Each role's 60 budget-varied keys must exercise every shard file, so
    // the two processes contend on all four locks.
    for role in 0..2u64 {
        let covered: std::collections::HashSet<usize> =
            (0..ENTRIES_PER_PROCESS).map(|i| shard_index(&key_for(role, i))).collect();
        assert_eq!(covered.len(), DISK_SHARDS, "role {role}'s keys hammer every one of the {DISK_SHARDS} shards");
    }

    let exe = std::env::current_exe().expect("test binary path");
    let path_str = Arc::new(path.to_string_lossy().into_owned());

    // Two threads each spawn one writer process; no shard file or header
    // exists yet, so the children also race the lazy header initialization
    // on every shard.
    let children: Vec<_> = (0..2u64)
        .map(|role| {
            let exe = exe.clone();
            let path = Arc::clone(&path_str);
            std::thread::spawn(move || {
                Command::new(exe)
                    .args([
                        "--exact",
                        "two_processes_append_to_one_cache_without_corruption",
                        "--test-threads",
                        "1",
                        "--nocapture",
                    ])
                    .env(ROLE_ENV, role.to_string())
                    .env(PATH_ENV, path.as_str())
                    .status()
                    .expect("spawn child test process")
            })
        })
        .collect();
    for child in children {
        let status = child.join().expect("join spawner thread");
        assert!(status.success(), "child writer failed: {status}");
    }

    // Every entry from both processes must load back, and the values must
    // round-trip exactly (no torn or interleaved lines in any shard).
    let store = CharStore::with_disk_cache(path.as_path()).expect("reopen the shared cache");
    assert_eq!(
        store.len(),
        (2 * ENTRIES_PER_PROCESS) as usize,
        "all {} entries from both processes survive",
        2 * ENTRIES_PER_PROCESS
    );
    for role in 0..2u64 {
        for i in 0..ENTRIES_PER_PROCESS {
            let expected = point_for(role, i);
            let got = store.get_or_compute(key_for(role, i), || panic!("entry (role {role}, {i}) missing"));
            assert_eq!(*got, expected, "entry (role {role}, {i}) corrupted");
        }
    }
    // Every shard file exists, starts with a current header, ends on a
    // whole line, and its advisory lock did not outlive the writers.
    for shard in 0..DISK_SHARDS {
        let spath = shard_path(&path, shard);
        let body = std::fs::read_to_string(&spath).unwrap_or_else(|_| panic!("shard {shard} file exists"));
        let header = body.lines().next().expect("shard has a header line");
        assert!(
            header.contains("memtherm-char-cache") && header.contains("version"),
            "shard {shard} carries the versioned header"
        );
        assert!(body.ends_with('\n'), "shard {shard} has no torn tail");
        let lock = spath.with_file_name(format!("{}.lock", spath.file_name().unwrap().to_string_lossy()));
        assert!(!lock.exists(), "shard {shard}'s advisory lock is released");
    }
    cleanup(&path);
}
