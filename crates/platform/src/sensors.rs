//! Thermal sensor emulation.
//!
//! The AMB of every FBDIMM embeds a thermal sensor whose reading is reported
//! to the memory controller every 1344 bus cycles and read by the policy
//! daemon through the chipset's error-reporting registers (Section 5.2.1).
//! The SR1500AL additionally carries board-level sensors (front panel, CPU
//! inlet, CPU exhaust / memory inlet, memory exhaust) sampled by a daughter
//! card. Real sensors are noisy — the study explicitly discards the hottest
//! 0.5 % of samples as spikes — so the emulation adds Gaussian noise,
//! occasional spikes and quantization to the model temperature.

use workloads::rng::SmallRng;

/// Configuration of one emulated thermal sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// Standard deviation of the Gaussian reading noise, °C.
    pub noise_std_c: f64,
    /// Probability that a reading is a spurious spike.
    pub spike_probability: f64,
    /// Magnitude of a spike, °C.
    pub spike_magnitude_c: f64,
    /// Reading quantization step, °C (AMB sensors report in 0.5 °C steps).
    pub quantization_c: f64,
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec { noise_std_c: 0.25, spike_probability: 0.003, spike_magnitude_c: 4.0, quantization_c: 0.5 }
    }
}

/// One emulated thermal sensor.
#[derive(Debug, Clone)]
pub struct ThermalSensor {
    spec: SensorSpec,
    rng: SmallRng,
    last_reading_c: f64,
}

impl ThermalSensor {
    /// Creates a sensor with the given characteristics and deterministic
    /// seed.
    pub fn new(spec: SensorSpec, seed: u64) -> Self {
        ThermalSensor { spec, rng: SmallRng::seed_from_u64(seed ^ 0xfeed_5eed), last_reading_c: 0.0 }
    }

    /// Creates an AMB-style sensor with default characteristics.
    pub fn amb(seed: u64) -> Self {
        Self::new(SensorSpec::default(), seed)
    }

    /// Creates an ideal (noise-free, unquantized) sensor.
    pub fn ideal() -> Self {
        Self::new(
            SensorSpec { noise_std_c: 0.0, spike_probability: 0.0, spike_magnitude_c: 0.0, quantization_c: 0.0 },
            0,
        )
    }

    /// Samples the sensor given the true temperature, returning the reading.
    pub fn read(&mut self, true_temp_c: f64) -> f64 {
        let mut reading = true_temp_c;
        if self.spec.noise_std_c > 0.0 {
            // Box-Muller transform; SmallRng keeps this deterministic.
            let u1: f64 = self.rng.gen_range(1e-12..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            reading += gauss * self.spec.noise_std_c;
        }
        if self.spec.spike_probability > 0.0 && self.rng.gen_bool(self.spec.spike_probability) {
            reading += self.spec.spike_magnitude_c;
        }
        if self.spec.quantization_c > 0.0 {
            reading = (reading / self.spec.quantization_c).round() * self.spec.quantization_c;
        }
        self.last_reading_c = reading;
        reading
    }

    /// The most recent reading.
    pub fn last_reading_c(&self) -> f64 {
        self.last_reading_c
    }
}

/// The board-level sensor set of the instrumented SR1500AL (Figure 5.2).
#[derive(Debug, Clone)]
pub struct SensorArray {
    /// Front-panel (system ambient) sensor.
    pub front_panel: ThermalSensor,
    /// CPU inlet sensor.
    pub cpu_inlet: ThermalSensor,
    /// CPU exhaust = memory inlet sensor.
    pub memory_inlet: ThermalSensor,
    /// Hottest AMB sensor (the quantity the DTM policies read).
    pub amb: ThermalSensor,
}

impl SensorArray {
    /// Creates the array with deterministic seeds derived from `seed`.
    pub fn new(seed: u64) -> Self {
        SensorArray {
            front_panel: ThermalSensor::amb(seed),
            cpu_inlet: ThermalSensor::amb(seed.wrapping_add(1)),
            memory_inlet: ThermalSensor::amb(seed.wrapping_add(2)),
            amb: ThermalSensor::amb(seed.wrapping_add(3)),
        }
    }
}

/// Removes the hottest `fraction` of samples, mirroring the study's spike
/// filtering (Section 5.4.1 excludes the hottest 0.5 % of readings).
pub fn filter_spikes(mut samples: Vec<f64>, fraction: f64) -> Vec<f64> {
    if samples.is_empty() || fraction <= 0.0 {
        return samples;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let keep = ((samples.len() as f64) * (1.0 - fraction)).ceil() as usize;
    samples.truncate(keep.max(1));
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_reports_the_truth() {
        let mut s = ThermalSensor::ideal();
        assert_eq!(s.read(83.4), 83.4);
        assert_eq!(s.last_reading_c(), 83.4);
    }

    #[test]
    fn noisy_sensor_stays_close_to_the_truth_on_average() {
        let mut s = ThermalSensor::amb(7);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| s.read(90.0)).sum::<f64>() / n as f64;
        assert!((mean - 90.0).abs() < 0.2, "mean reading {mean}");
    }

    #[test]
    fn readings_are_quantized() {
        let mut s = ThermalSensor::amb(3);
        for _ in 0..100 {
            let r = s.read(85.3);
            let remainder = (r / 0.5).fract().abs();
            assert!(remainder < 1e-9 || (remainder - 1.0).abs() < 1e-9, "unquantized reading {r}");
        }
    }

    #[test]
    fn sensors_are_deterministic_per_seed() {
        let mut a = ThermalSensor::amb(11);
        let mut b = ThermalSensor::amb(11);
        for _ in 0..100 {
            assert_eq!(a.read(88.0), b.read(88.0));
        }
    }

    #[test]
    fn spike_filtering_drops_only_the_hottest_samples() {
        let mut samples: Vec<f64> = (0..1000).map(|i| 80.0 + (i % 10) as f64 * 0.1).collect();
        samples.push(140.0); // an obvious spike
        let filtered = filter_spikes(samples, 0.005);
        assert!(filtered.iter().all(|&t| t < 100.0));
        assert!(filtered.len() >= 995);
    }

    #[test]
    fn sensor_array_has_independent_noise() {
        let mut arr = SensorArray::new(5);
        let a = arr.front_panel.read(36.0);
        let b = arr.cpu_inlet.read(36.0);
        // Identical truth but independent seeds: identical readings for 100
        // consecutive samples would be suspicious.
        let mut same = (a - b).abs() < 1e-12;
        for _ in 0..100 {
            same &= (arr.front_panel.read(36.0) - arr.cpu_inlet.read(36.0)).abs() < 1e-12;
        }
        assert!(!same);
    }
}
