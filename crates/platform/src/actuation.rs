//! CPU hotplug and cpufreq actuation emulation (Section 5.2.1).
//!
//! The software DTM policies act on the machine through two Linux
//! mechanisms: *CPU hotplug* (writing 0/1 to
//! `/sys/devices/system/cpu/cpuN/online`) to gate cores and *cpufreq*
//! (writing a kHz value to `scaling_setspeed`) to scale frequency and
//! voltage. This module emulates both interfaces, including their
//! restrictions: the boot core (cpu0) cannot be unplugged, and only the
//! advertised frequency steps are accepted.

use cpu_model::{DvfsLadder, OperatingPoint};

/// Errors returned by the hotplug emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotplugError {
    /// The first core of the first processor cannot be taken offline.
    BootCore,
    /// The core index does not exist.
    NoSuchCore {
        /// The offending index.
        core: usize,
    },
}

impl std::fmt::Display for HotplugError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HotplugError::BootCore => write!(f, "cpu0 cannot be taken offline"),
            HotplugError::NoSuchCore { core } => write!(f, "no such core: cpu{core}"),
        }
    }
}

impl std::error::Error for HotplugError {}

/// CPU hotplug state: which cores are online.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuHotplug {
    online: Vec<bool>,
    transitions: u64,
}

impl CpuHotplug {
    /// Creates the emulation with all `cores` cores online.
    pub fn new(cores: usize) -> Self {
        CpuHotplug { online: vec![true; cores.max(1)], transitions: 0 }
    }

    /// Number of cores known to the emulation.
    pub fn cores(&self) -> usize {
        self.online.len()
    }

    /// Number of cores currently online.
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&o| o).count()
    }

    /// Whether `core` is online.
    pub fn is_online(&self, core: usize) -> bool {
        self.online.get(core).copied().unwrap_or(false)
    }

    /// Number of online/offline transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Emulates writing `1`/`0` to `/sys/devices/system/cpu/cpu{core}/online`.
    ///
    /// # Errors
    ///
    /// Returns [`HotplugError::BootCore`] when taking core 0 offline and
    /// [`HotplugError::NoSuchCore`] for out-of-range indices.
    pub fn set_online(&mut self, core: usize, online: bool) -> Result<(), HotplugError> {
        if core >= self.online.len() {
            return Err(HotplugError::NoSuchCore { core });
        }
        if core == 0 && !online {
            return Err(HotplugError::BootCore);
        }
        if self.online[core] != online {
            self.online[core] = online;
            self.transitions += 1;
        }
        Ok(())
    }

    /// Brings exactly `target` cores online (never fewer than one), gating
    /// from the highest core index down — the order the study's policy
    /// daemon uses. Returns the number of cores actually online afterwards.
    pub fn set_online_count(&mut self, target: usize) -> usize {
        let target = target.clamp(1, self.online.len());
        for core in (1..self.online.len()).rev() {
            let want_online = core < target;
            let _ = self.set_online(core, want_online);
        }
        self.online_count()
    }
}

/// cpufreq emulation: per-core frequency within a fixed ladder, with voltage
/// following frequency automatically (as on the Xeon 5160).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuFreqControl {
    ladder: DvfsLadder,
    current_index: usize,
    transitions: u64,
}

impl CpuFreqControl {
    /// Creates the control for a DVFS ladder, starting at the top point.
    pub fn new(ladder: DvfsLadder) -> Self {
        CpuFreqControl { ladder, current_index: 0, transitions: 0 }
    }

    /// The currently selected operating point.
    pub fn current(&self) -> OperatingPoint {
        self.ladder.point(self.current_index)
    }

    /// Number of frequency transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Emulates writing `khz` to `scaling_setspeed`; the value must match an
    /// advertised step (rounded to the nearest kHz).
    ///
    /// # Errors
    ///
    /// Returns the list of supported frequencies when the requested one is
    /// not available.
    pub fn set_khz(&mut self, khz: u64) -> Result<OperatingPoint, Vec<u64>> {
        let supported: Vec<u64> = self.ladder.points().iter().map(|p| (p.freq_ghz * 1e6).round() as u64).collect();
        match supported.iter().position(|&s| s == khz) {
            Some(idx) => {
                if idx != self.current_index {
                    self.current_index = idx;
                    self.transitions += 1;
                }
                Ok(self.current())
            }
            None => Err(supported),
        }
    }

    /// Selects a ladder index directly (0 = fastest), clamping to the ladder.
    pub fn set_index(&mut self, index: usize) -> OperatingPoint {
        let clamped = index.min(self.ladder.len() - 1);
        if clamped != self.current_index {
            self.current_index = clamped;
            self.transitions += 1;
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cores_start_online() {
        let hp = CpuHotplug::new(4);
        assert_eq!(hp.online_count(), 4);
        assert!(hp.is_online(3));
    }

    #[test]
    fn boot_core_cannot_be_unplugged() {
        let mut hp = CpuHotplug::new(4);
        assert_eq!(hp.set_online(0, false), Err(HotplugError::BootCore));
        assert!(hp.set_online(1, false).is_ok());
        assert_eq!(hp.online_count(), 3);
        assert!(hp.set_online(9, false).is_err());
        assert!(HotplugError::BootCore.to_string().contains("cpu0"));
    }

    #[test]
    fn online_count_targets_are_clamped_and_ordered() {
        let mut hp = CpuHotplug::new(4);
        assert_eq!(hp.set_online_count(2), 2);
        // Highest cores are gated first.
        assert!(hp.is_online(0) && hp.is_online(1));
        assert!(!hp.is_online(2) && !hp.is_online(3));
        assert_eq!(hp.set_online_count(0), 1, "at least one core always stays online");
        assert_eq!(hp.set_online_count(99), 4);
        assert!(hp.transitions() > 0);
    }

    #[test]
    fn cpufreq_accepts_only_advertised_steps() {
        let mut cf = CpuFreqControl::new(DvfsLadder::xeon_5160());
        assert!((cf.current().freq_ghz - 3.0).abs() < 1e-9);
        let ok = cf.set_khz(2_667_000).unwrap();
        assert!((ok.freq_ghz - 2.667).abs() < 1e-9);
        let err = cf.set_khz(1_234_567).unwrap_err();
        assert_eq!(err.len(), 4);
        assert_eq!(cf.transitions(), 1);
    }

    #[test]
    fn voltage_follows_frequency() {
        let mut cf = CpuFreqControl::new(DvfsLadder::xeon_5160());
        let slow = cf.set_index(3);
        assert!((slow.voltage - 1.0375).abs() < 1e-9);
        let fast = cf.set_index(0);
        assert!(fast.voltage > slow.voltage);
        // Out-of-range indices clamp to the slowest point.
        assert!((cf.set_index(99).freq_ghz - 2.0).abs() < 1e-9);
    }
}
