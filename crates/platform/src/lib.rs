//! # platform-emu
//!
//! Emulation of the two FBDIMM server platforms used by the Chapter 5
//! measurement study (the SIGMETRICS 2008 follow-on of the ISCA 2007
//! paper): a Dell PowerEdge 1950 and an instrumented Intel SR1500AL.
//!
//! The real study implements the DTM policies in software on Linux, reading
//! the AMB thermal sensors through the chipset, gating cores through CPU
//! hotplug and scaling frequency through cpufreq. This crate reproduces that
//! software stack against the simulated substrate instead of real hardware:
//!
//! * [`server`] — the two server specifications (DIMM count, cooling,
//!   ambient temperature, CPU→memory thermal interaction strength, thermal
//!   emergency table of Table 5.1);
//! * [`sensors`] — AMB / inlet thermal sensors with noise and quantization,
//!   sampled once per second like the measurement daemon;
//! * [`actuation`] — CPU hotplug and cpufreq actuation emulation with the
//!   sysfs-style interface and its restrictions (core 0 cannot be
//!   unplugged);
//! * [`policies`] — the software DTM policies DTM-BW, DTM-ACG, DTM-CDVFS
//!   and DTM-COMB with the per-server thermal running levels of Table 5.1;
//! * [`scheduler`] — the Linux time-slice sharing model used when two
//!   programs share a core under DTM-ACG (Figure 5.15);
//! * [`measurement`] — performance-counter and power-meter style summaries
//!   of a run (retired instructions, L2 misses, CPU power, energy);
//! * [`experiment`] — the experiment driver that runs a workload mix under a
//!   policy on a server and produces the Chapter 5 measurements.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actuation;
pub mod experiment;
pub mod measurement;
pub mod policies;
pub mod scheduler;
pub mod sensors;
pub mod server;

pub use actuation::{CpuFreqControl, CpuHotplug, HotplugError};
pub use experiment::{PlatformExperiment, PlatformRun};
pub use measurement::Measurement;
pub use policies::{PlatformPolicy, PolicyKind};
pub use scheduler::TimeSliceModel;
pub use sensors::{SensorArray, ThermalSensor};
pub use server::{Server, ServerKind};
