//! The two server platforms of the Chapter 5 study.

use cpu_model::CpuConfig;
use fbdimm_sim::FbdimmConfig;
use memtherm::prelude::{CoolingConfig, HeatSpreader, ThermalLimits};

/// Which of the two study machines is being emulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Dell PowerEdge 1950: stand-alone in an air-conditioned room (26 °C),
    /// strong fans, two 2 GB FBDIMMs, artificial AMB TDP of 90 °C.
    Pe1950,
    /// Intel SR1500AL: instrumented testbed in a hot box (36 °C system
    /// ambient), four 2 GB FBDIMMs, conservative AMB TDP of 100 °C, one
    /// processor directly upstream of the DIMMs (strong thermal
    /// interaction).
    Sr1500al,
}

impl std::fmt::Display for ServerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerKind::Pe1950 => write!(f, "PE1950"),
            ServerKind::Sr1500al => write!(f, "SR1500AL"),
        }
    }
}

/// Full specification of an emulated server.
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    /// Which machine this is.
    pub kind: ServerKind,
    /// Processor complex (two dual-core Xeon 5160).
    pub cpu: CpuConfig,
    /// FBDIMM memory subsystem.
    pub mem: FbdimmConfig,
    /// Effective DIMM cooling (heat-spreader model + air velocity chosen to
    /// match the observed idle and loaded AMB temperatures; see DESIGN.md).
    pub cooling: CoolingConfig,
    /// System ambient (front panel) temperature in °C.
    pub system_ambient_c: f64,
    /// CPU→memory thermal interaction degree (Ψ_CPU_MEM × ξ of Eq. 3.6).
    pub interaction_degree: f64,
    /// AMB thermal design point used by the study on this machine, °C.
    pub amb_tdp_c: f64,
    /// Boundaries of thermal emergency levels L2..L4 for the AMB (Table 5.1).
    pub emergency_bounds_c: [f64; 3],
    /// DTM-BW bandwidth limits for running levels L2..L4, GB/s (Table 5.1).
    pub bw_limits_gbps: [f64; 3],
    /// Fail-safe open-loop bandwidth cap enforced at the highest emergency
    /// level (2 GB/s on the PE1950, 3 GB/s on the SR1500AL).
    pub failsafe_cap_gbps: f64,
    /// DTM (policy trigger) interval in seconds — one second in the study.
    pub dtm_interval_s: f64,
}

impl Server {
    /// The Dell PowerEdge 1950 configuration (Section 5.3.1).
    pub fn pe1950() -> Self {
        Server {
            kind: ServerKind::Pe1950,
            cpu: CpuConfig::xeon_5160_dual_socket(),
            mem: FbdimmConfig::server(2),
            cooling: CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 3.0 },
            system_ambient_c: 26.0,
            interaction_degree: 2.0,
            amb_tdp_c: 90.0,
            emergency_bounds_c: [76.0, 80.0, 84.0],
            bw_limits_gbps: [4.0, 3.0, 2.0],
            failsafe_cap_gbps: 2.0,
            dtm_interval_s: 1.0,
        }
    }

    /// The Intel SR1500AL configuration (Section 5.3.1), at its default hot
    /// box ambient of 36 °C.
    pub fn sr1500al() -> Self {
        Server {
            kind: ServerKind::Sr1500al,
            cpu: CpuConfig::xeon_5160_dual_socket(),
            mem: FbdimmConfig::server(4),
            cooling: CoolingConfig { spreader: HeatSpreader::Aohs, air_velocity_mps: 2.2 },
            system_ambient_c: 36.0,
            interaction_degree: 3.0,
            amb_tdp_c: 100.0,
            emergency_bounds_c: [86.0, 90.0, 94.0],
            bw_limits_gbps: [5.0, 4.0, 3.0],
            failsafe_cap_gbps: 3.0,
            dtm_interval_s: 1.0,
        }
    }

    /// Returns a copy with a different system ambient temperature
    /// (Figure 5.12 reruns the SR1500AL at 26 °C with a 90 °C TDP).
    pub fn with_ambient_c(mut self, ambient_c: f64) -> Self {
        self.system_ambient_c = ambient_c;
        self
    }

    /// Returns a copy with a different AMB TDP, shifting the emergency-level
    /// boundaries so the level spacing of Table 5.1 is preserved
    /// (Figure 5.14 sweeps 88 / 90 / 92 °C on the PE1950).
    pub fn with_amb_tdp(mut self, tdp_c: f64) -> Self {
        let shift = tdp_c - self.amb_tdp_c;
        self.amb_tdp_c = tdp_c;
        for b in &mut self.emergency_bounds_c {
            *b += shift;
        }
        self
    }

    /// Thermal limits in the form the `memtherm` policies and simulator
    /// expect. The DRAM devices are never the hot spot on these machines
    /// (Section 5.3.1), so the DRAM limit is set far above any reachable
    /// temperature.
    pub fn thermal_limits(&self) -> ThermalLimits {
        ThermalLimits {
            amb_tdp_c: self.amb_tdp_c,
            dram_tdp_c: 1_000.0,
            amb_trp_c: self.amb_tdp_c - 2.0,
            dram_trp_c: 999.0,
        }
    }

    /// The memory-inlet temperature seen by the DIMMs when the processors
    /// are idle (the system ambient, before any CPU pre-heating).
    pub fn idle_memory_inlet_c(&self) -> f64 {
        self.system_ambient_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_two_servers_match_section_5_3() {
        let pe = Server::pe1950();
        assert_eq!(pe.kind.to_string(), "PE1950");
        assert_eq!(pe.mem.dimms_per_channel, 2);
        assert_eq!(pe.amb_tdp_c, 90.0);
        assert_eq!(pe.emergency_bounds_c, [76.0, 80.0, 84.0]);
        assert_eq!(pe.failsafe_cap_gbps, 2.0);

        let sr = Server::sr1500al();
        assert_eq!(sr.kind.to_string(), "SR1500AL");
        assert_eq!(sr.mem.dimms_per_channel, 4);
        assert_eq!(sr.amb_tdp_c, 100.0);
        assert_eq!(sr.emergency_bounds_c, [86.0, 90.0, 94.0]);
        assert_eq!(sr.bw_limits_gbps, [5.0, 4.0, 3.0]);
        assert_eq!(sr.dtm_interval_s, 1.0);
    }

    #[test]
    fn both_use_dual_socket_xeon_5160() {
        for s in [Server::pe1950(), Server::sr1500al()] {
            assert_eq!(s.cpu.cores, 4);
            assert_eq!(s.cpu.l2_count, 2);
            assert!((s.cpu.dvfs.top().freq_ghz - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sr1500al_has_stronger_thermal_interaction() {
        assert!(Server::sr1500al().interaction_degree > Server::pe1950().interaction_degree);
    }

    #[test]
    fn tdp_sweep_shifts_emergency_levels_together() {
        let s = Server::pe1950().with_amb_tdp(88.0);
        assert_eq!(s.amb_tdp_c, 88.0);
        assert_eq!(s.emergency_bounds_c, [74.0, 78.0, 82.0]);
        let limits = s.thermal_limits();
        assert_eq!(limits.amb_tdp_c, 88.0);
        assert!(limits.dram_tdp_c > 500.0, "DRAM is never the hot spot on the servers");
    }

    #[test]
    fn ambient_override_is_plumbed_through() {
        let s = Server::sr1500al().with_ambient_c(26.0);
        assert_eq!(s.system_ambient_c, 26.0);
        assert_eq!(s.idle_memory_inlet_c(), 26.0);
    }
}
