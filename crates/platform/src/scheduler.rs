//! Linux time-slice sharing model (Section 5.4.5, Figure 5.15).
//!
//! When DTM-ACG gates one core of a dual-core chip, the two programs that
//! were running on that chip share the remaining core, alternating every
//! scheduler time slice (100 ms by default). Each switch costs the incoming
//! program the part of its hot working set that the other program evicted
//! while it was descheduled, so shortening the time slice inflates the L2
//! miss count and, for memory-bound programs, the running time. The study
//! finds the penalty negligible above a 20 ms slice and growing quickly
//! below it.

use workloads::AppBehavior;

/// Model of the cost of time-slice sharing of one core by two programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSliceModel {
    /// Scheduler base time slice in seconds (Linux default: 100 ms).
    pub time_slice_s: f64,
    /// Capacity of the shared L2 available to the two programs, bytes.
    pub l2_bytes: u64,
    /// Core frequency while sharing, GHz.
    pub freq_ghz: f64,
}

impl TimeSliceModel {
    /// The default configuration of the study: 100 ms slice, 4 MB L2,
    /// 3.0 GHz.
    pub fn linux_default() -> Self {
        TimeSliceModel { time_slice_s: 0.100, l2_bytes: 4 * 1024 * 1024, freq_ghz: 3.0 }
    }

    /// Returns a copy with a different time slice.
    pub fn with_time_slice_s(mut self, slice_s: f64) -> Self {
        self.time_slice_s = slice_s;
        self
    }

    /// Extra L2 misses per slice for `app`: the part of its hot working set
    /// that must be refetched after the other program ran.
    pub fn refetch_misses_per_slice(&self, app: &AppBehavior) -> f64 {
        let resident = app.hot_bytes.min(self.l2_bytes / 2) as f64 / 64.0;
        // Only the fraction the program actually revisits within one slice
        // needs refetching.
        let hot_accesses_per_slice =
            app.l2_apki / 1000.0 * app.hot_fraction * app.base_ipc * self.freq_ghz * 1e9 * self.time_slice_s;
        resident.min(hot_accesses_per_slice)
    }

    /// Baseline (no-sharing) L2 misses per slice for `app`, assuming its hot
    /// region hits and its streaming region misses.
    pub fn baseline_misses_per_slice(&self, app: &AppBehavior) -> f64 {
        let accesses_per_slice = app.l2_apki / 1000.0 * app.base_ipc * self.freq_ghz * 1e9 * self.time_slice_s;
        accesses_per_slice * (1.0 - app.hot_fraction)
    }

    /// Multiplicative inflation of the L2 miss count caused by sharing.
    pub fn miss_inflation(&self, app: &AppBehavior) -> f64 {
        let base = self.baseline_misses_per_slice(app);
        if base <= 0.0 {
            return 1.0;
        }
        1.0 + self.refetch_misses_per_slice(app) / base
    }

    /// Multiplicative inflation of running time caused by sharing, for a
    /// memory-bound program whose progress is proportional to serviced
    /// misses. A context-switch overhead of 10 µs per switch is included.
    pub fn runtime_inflation(&self, app: &AppBehavior) -> f64 {
        let switch_overhead = 10e-6 / self.time_slice_s.max(1e-6);
        self.miss_inflation(app) + switch_overhead
    }

    /// Average miss inflation over a set of applications (one workload mix).
    pub fn mix_miss_inflation(&self, apps: &[AppBehavior]) -> f64 {
        if apps.is_empty() {
            return 1.0;
        }
        apps.iter().map(|a| self.miss_inflation(a)).sum::<f64>() / apps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{mixes, spec2000};

    #[test]
    fn default_slice_has_negligible_penalty() {
        let m = TimeSliceModel::linux_default();
        for app in spec2000::all() {
            let infl = m.miss_inflation(&app);
            assert!(infl < 1.10, "{}: inflation {infl} at 100 ms", app.name);
        }
    }

    #[test]
    fn shorter_slices_monotonically_increase_misses() {
        let app = spec2000::galgel();
        let mut prev = 0.0;
        for slice_ms in [100.0, 50.0, 20.0, 10.0, 5.0] {
            let m = TimeSliceModel::linux_default().with_time_slice_s(slice_ms / 1000.0);
            let infl = m.miss_inflation(&app);
            assert!(infl >= prev, "inflation must not decrease as the slice shrinks");
            prev = infl;
        }
        assert!(prev > 1.02, "a 5 ms slice must visibly inflate misses, got {prev}");
    }

    #[test]
    fn cache_friendly_apps_suffer_more_than_streaming_apps() {
        let m = TimeSliceModel::linux_default().with_time_slice_s(0.005);
        let friendly = m.miss_inflation(&spec2000::galgel());
        let streaming = m.miss_inflation(&spec2000::swim());
        assert!(friendly > streaming);
    }

    #[test]
    fn runtime_inflation_includes_switch_overhead() {
        let m = TimeSliceModel::linux_default().with_time_slice_s(0.005);
        let app = spec2000::vpr();
        assert!(m.runtime_inflation(&app) > m.miss_inflation(&app));
    }

    #[test]
    fn mix_average_is_between_member_extremes() {
        let m = TimeSliceModel::linux_default().with_time_slice_s(0.010);
        let apps = mixes::w8().apps;
        let avg = m.mix_miss_inflation(&apps);
        let lo = apps.iter().map(|a| m.miss_inflation(a)).fold(f64::INFINITY, f64::min);
        let hi = apps.iter().map(|a| m.miss_inflation(a)).fold(0.0, f64::max);
        assert!(avg >= lo && avg <= hi);
        assert_eq!(m.mix_miss_inflation(&[]), 1.0);
    }
}
