//! The Chapter 5 experiment driver.
//!
//! [`PlatformExperiment`] wires a [`Server`] specification into the
//! two-level simulator: the Xeon 5160 processor complex and the server's
//! FBDIMM subsystem form the level-1 substrate, the integrated thermal model
//! (with the server's ambient temperature and CPU→memory interaction
//! strength) forms the level-2 plant, and the software DTM policies of
//! Section 5.2.2 act on it once per second through noisy AMB sensors.

use memtherm::dtm::no_limit::NoLimit;
use memtherm::sim::memspot::{MemSpot, MemSpotConfig, MemSpotResult, TempSample};
use workloads::{AppBehavior, WorkloadMix};

use crate::measurement::Measurement;
use crate::policies::{PlatformPolicy, PolicyKind};
use crate::server::Server;

/// Result of one policy run on a server: the raw MEMSpot result plus the
/// condensed Chapter 5 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRun {
    /// Condensed measurement (counters, power, energy).
    pub measurement: Measurement,
    /// Full simulation result (traces, residency, totals).
    pub result: MemSpotResult,
}

/// Experiment driver for one server.
#[derive(Debug)]
pub struct PlatformExperiment {
    server: Server,
    spot: MemSpot,
    runs_per_app: usize,
}

impl PlatformExperiment {
    /// Creates the driver with the study's batch sizes (ten runs of every
    /// CPU2000 application, five of every CPU2006 application — approximated
    /// here by a configurable `runs_per_app`).
    pub fn new(server: Server) -> Self {
        Self::with_scale(server, 4, 0.2)
    }

    /// Creates the driver with an explicit batch size and instruction scale
    /// (tests use small values; normalized results are preserved).
    pub fn with_scale(server: Server, runs_per_app: usize, instruction_scale: f64) -> Self {
        let mut cfg = MemSpotConfig::paper(server.cooling).with_integrated(Some(server.interaction_degree));
        cfg.limits = server.thermal_limits();
        cfg.ambient_override_c = Some(server.system_ambient_c);
        cfg.dtm_interval_s = server.dtm_interval_s;
        cfg.copies_per_app = runs_per_app;
        cfg.instruction_scale = instruction_scale;
        cfg.characterization_budget = 40_000;
        cfg.record_temp_trace = true;
        cfg.max_sim_time_s = 40_000.0;
        let spot = MemSpot::with_hardware(server.cpu.clone(), server.mem, cfg);
        PlatformExperiment { server, spot, runs_per_app }
    }

    /// The server being emulated.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Number of copies of each application in the batch.
    pub fn runs_per_app(&self) -> usize {
        self.runs_per_app
    }

    /// Runs a workload mix under one software DTM policy.
    pub fn run_policy(&mut self, mix: &WorkloadMix, kind: PolicyKind) -> PlatformRun {
        let mut policy = PlatformPolicy::new(kind, self.server.clone());
        self.run_with(mix, &mut policy)
    }

    /// Runs a workload mix under an explicitly constructed policy (used for
    /// the fixed-frequency comparison of Figure 5.13).
    pub fn run_with(&mut self, mix: &WorkloadMix, policy: &mut PlatformPolicy) -> PlatformRun {
        let result = self.spot.run(mix, policy);
        PlatformRun { measurement: Measurement::from_result(&self.server, &result), result }
    }

    /// Runs a workload mix with no thermal management at all — the baseline
    /// the study's "no-limit" bars normalize against (obtained on the
    /// SR1500AL by lowering the ambient temperature so no emergency occurs).
    pub fn run_no_limit(&mut self, mix: &WorkloadMix) -> PlatformRun {
        let mut policy = NoLimit::new(&self.server.cpu);
        let result = self.spot.run(mix, &mut policy);
        PlatformRun { measurement: Measurement::from_result(&self.server, &result), result }
    }

    /// Runs four copies of one application with no DTM control and returns
    /// the AMB temperature trace of the first `duration_s` seconds — the
    /// experiment behind Figures 5.4 and 5.5.
    pub fn homogeneous_temperature_curve(&mut self, app: &AppBehavior, duration_s: f64) -> Vec<TempSample> {
        let mix = WorkloadMix::homogeneous(app.clone(), self.server.cpu.cores);
        let run = self.run_no_limit(&mix);
        run.result.temp_trace.into_iter().filter(|s| s.time_s <= duration_s).collect()
    }

    /// Average AMB temperature over a homogeneous run of one application
    /// (Figure 5.5), with the hottest 0.5 % of samples filtered as sensor
    /// spikes.
    pub fn homogeneous_average_amb(&mut self, app: &AppBehavior) -> f64 {
        let trace = self.homogeneous_temperature_curve(app, f64::INFINITY);
        let samples: Vec<f64> = trace.iter().map(|s| s.amb_c).collect();
        let filtered = crate::sensors::filter_spikes(samples, 0.005);
        if filtered.is_empty() {
            return 0.0;
        }
        filtered.iter().sum::<f64>() / filtered.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{mixes, spec2000};

    fn small(server: Server) -> PlatformExperiment {
        // One copy of each application at full length: batches of a few
        // hundred simulated seconds, enough for the servers to heat into
        // their emergency ranges.
        PlatformExperiment::with_scale(server, 1, 1.0)
    }

    #[test]
    fn memory_intensive_workload_triggers_emergencies_on_the_sr1500al() {
        let mut exp = small(Server::sr1500al());
        let run = exp.run_policy(&mixes::w1(), PolicyKind::Bw);
        assert!(run.result.completed);
        assert!(run.measurement.max_amb_c > exp.server().emergency_bounds_c[0], "never reached an emergency level");
        assert!(run.measurement.max_amb_c < exp.server().amb_tdp_c + 1.0);
        assert!(run.measurement.memory_inlet_c > exp.server().system_ambient_c + 2.0, "CPU pre-heating missing");
    }

    #[test]
    fn acg_and_cdvfs_beat_bw_on_the_sr1500al() {
        let mut exp = small(Server::sr1500al());
        let bw = exp.run_policy(&mixes::w1(), PolicyKind::Bw);
        let acg = exp.run_policy(&mixes::w1(), PolicyKind::Acg);
        let cdvfs = exp.run_policy(&mixes::w1(), PolicyKind::Cdvfs);
        assert!(acg.measurement.running_time_s < bw.measurement.running_time_s * 1.02);
        assert!(cdvfs.measurement.running_time_s < bw.measurement.running_time_s * 1.02);
        // CDVFS lowers CPU power relative to BW (Figure 5.10).
        assert!(cdvfs.measurement.cpu_power_w < bw.measurement.cpu_power_w);
    }

    #[test]
    fn pe1950_stand_alone_box_stays_cooler_than_the_hot_box() {
        let mut pe = small(Server::pe1950());
        let mut sr = small(Server::sr1500al());
        let a = pe.run_no_limit(&mixes::w5());
        let b = sr.run_no_limit(&mixes::w5());
        assert!(a.measurement.max_amb_c < b.measurement.max_amb_c);
    }

    #[test]
    fn homogeneous_swim_heats_up_within_the_first_minutes() {
        let mut exp = small(Server::sr1500al());
        let curve = exp.homogeneous_temperature_curve(&spec2000::swim(), 500.0);
        assert!(curve.len() > 50);
        let start = curve.first().unwrap().amb_c;
        let end = curve.last().unwrap().amb_c;
        assert!(end > start + 5.0, "AMB should heat from {start:.1} to well above, got {end:.1}");
    }

    #[test]
    fn memory_intensive_apps_average_hotter_than_moderate_ones() {
        let mut exp = small(Server::pe1950());
        let hot = exp.homogeneous_average_amb(&spec2000::swim());
        let cool = exp.homogeneous_average_amb(&spec2000::vpr());
        assert!(hot > cool, "swim {hot:.1} vs vpr {cool:.1}");
    }
}
