//! Software DTM policies for the server platforms (Section 5.2.2).
//!
//! The policies quantize the hottest AMB temperature into the four thermal
//! emergency levels of Table 5.1 and map each level to a thermal running
//! level: a bandwidth cap (DTM-BW), a number of online cores (DTM-ACG), a
//! cpufreq operating point (DTM-CDVFS) or both (DTM-COMB). At the highest
//! emergency level the chipset's open-loop bandwidth throttling is enabled
//! for every policy as a fail-safe. Temperatures are read through a noisy
//! AMB sensor, and actuation goes through the hotplug / cpufreq emulation.

use cpu_model::RunningMode;
use memtherm::dtm::plan::ActuationPlan;
use memtherm::dtm::policy::{DtmPolicy, DtmScheme};
use memtherm::thermal::scene::ThermalObservation;

use crate::actuation::{CpuFreqControl, CpuHotplug};
use crate::sensors::ThermalSensor;
use crate::server::Server;

/// Which software policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No thermal management (baseline, only safe at low ambient).
    NoLimit,
    /// Bandwidth throttling through the chipset (the reference policy).
    Bw,
    /// Adaptive core gating through CPU hotplug.
    Acg,
    /// Coordinated DVFS through cpufreq.
    Cdvfs,
    /// Combined gating + DVFS (the policy proposed in Chapter 5).
    Comb,
}

impl PolicyKind {
    /// All policies evaluated in the Chapter 5 study.
    pub const ALL: [PolicyKind; 4] = [PolicyKind::Bw, PolicyKind::Acg, PolicyKind::Cdvfs, PolicyKind::Comb];

    /// The scheme identifier used for reporting.
    pub fn scheme(self) -> DtmScheme {
        match self {
            PolicyKind::NoLimit => DtmScheme::NoLimit,
            PolicyKind::Bw => DtmScheme::Bw,
            PolicyKind::Acg => DtmScheme::Acg,
            PolicyKind::Cdvfs => DtmScheme::Cdvfs,
            PolicyKind::Comb => DtmScheme::Comb,
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.scheme())
    }
}

/// A software DTM policy bound to one server.
#[derive(Debug)]
pub struct PlatformPolicy {
    kind: PolicyKind,
    server: Server,
    sensor: ThermalSensor,
    hotplug: CpuHotplug,
    cpufreq: CpuFreqControl,
    last_level: usize,
    cpu_freq_override_index: Option<usize>,
}

impl PlatformPolicy {
    /// Creates a policy of the given kind for a server, with a noisy AMB
    /// sensor seeded deterministically.
    pub fn new(kind: PolicyKind, server: Server) -> Self {
        let cores = server.cpu.cores;
        let ladder = server.cpu.dvfs.clone();
        PlatformPolicy {
            kind,
            server,
            sensor: ThermalSensor::amb(0xA3B1),
            hotplug: CpuHotplug::new(cores),
            cpufreq: CpuFreqControl::new(ladder),
            last_level: 0,
            cpu_freq_override_index: None,
        }
    }

    /// Uses an ideal (noise-free) sensor — useful for deterministic tests.
    pub fn with_ideal_sensor(mut self) -> Self {
        self.sensor = ThermalSensor::ideal();
        self
    }

    /// Forces DTM-BW / DTM-ACG to run the processor at a fixed cpufreq index
    /// (Figure 5.13 compares them at 3.0 GHz and 2.0 GHz).
    pub fn with_fixed_frequency_index(mut self, index: usize) -> Self {
        self.cpu_freq_override_index = Some(index);
        self
    }

    /// The kind of policy.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The emergency level (0-based) selected at the last decision.
    pub fn last_level(&self) -> usize {
        self.last_level
    }

    /// Hotplug actuation state (for inspection).
    pub fn hotplug(&self) -> &CpuHotplug {
        &self.hotplug
    }

    /// cpufreq actuation state (for inspection).
    pub fn cpufreq(&self) -> &CpuFreqControl {
        &self.cpufreq
    }

    fn emergency_level(&self, sensed_amb_c: f64) -> usize {
        self.server.emergency_bounds_c.iter().filter(|&&b| sensed_amb_c >= b).count()
    }

    fn mode_for_level(&mut self, level: usize) -> RunningMode {
        let cpu = &self.server.cpu;
        let mut mode = RunningMode::full_speed(cpu);
        if let Some(idx) = self.cpu_freq_override_index {
            mode = mode.with_op(cpu.dvfs.point(idx));
        }
        let failsafe = level >= 3;
        match self.kind {
            PolicyKind::NoLimit => {}
            PolicyKind::Bw => {
                if level >= 1 {
                    mode = mode.with_bandwidth_cap_gbps(self.server.bw_limits_gbps[(level - 1).min(2)]);
                }
            }
            PolicyKind::Acg => {
                // 4 / 3 / 2 / 2 online cores; at least one core per socket
                // stays online to keep both L2 caches usable (Section 5.2.2).
                let target = match level {
                    0 => 4,
                    1 => 3,
                    _ => 2,
                };
                let online = self.hotplug.set_online_count(target);
                mode = mode.with_active_cores(online);
                if failsafe {
                    mode = mode.with_bandwidth_cap_gbps(self.server.failsafe_cap_gbps);
                }
            }
            PolicyKind::Cdvfs => {
                let op = self.cpufreq.set_index(level.min(3));
                mode = mode.with_op(op);
                if failsafe {
                    mode = mode.with_bandwidth_cap_gbps(self.server.failsafe_cap_gbps);
                }
            }
            PolicyKind::Comb => {
                let target = match level {
                    0 => 4,
                    1 => 3,
                    _ => 2,
                };
                let online = self.hotplug.set_online_count(target);
                let op = self.cpufreq.set_index(level.min(3));
                mode = mode.with_active_cores(online).with_op(op);
                if failsafe {
                    mode = mode.with_bandwidth_cap_gbps(self.server.failsafe_cap_gbps);
                }
            }
        }
        // DTM-BW's highest level already applies its own (equal) cap.
        if failsafe && self.kind == PolicyKind::Bw {
            mode = mode.with_bandwidth_cap_gbps(self.server.failsafe_cap_gbps);
        }
        mode
    }
}

impl DtmPolicy for PlatformPolicy {
    /// Reads the observation's hottest AMB through the noisy sensor — the
    /// software stack only has the chipset's worst-case AMB register, not
    /// the full temperature field — and always actuates globally (a scalar
    /// plan).
    fn decide(&mut self, observation: &ThermalObservation, _dt_s: f64) -> ActuationPlan {
        let sensed = self.sensor.read(observation.max_amb_c);
        let level = if self.kind == PolicyKind::NoLimit { 0 } else { self.emergency_level(sensed) };
        self.last_level = level;
        self.mode_for_level(level).into()
    }

    fn scheme(&self) -> DtmScheme {
        self.kind.scheme()
    }

    fn name(&self) -> String {
        format!("{} ({})", self.kind.scheme(), self.server.kind)
    }

    fn reset(&mut self) {
        self.last_level = 0;
        self.hotplug.set_online_count(self.server.cpu.cores);
        self.cpufreq.set_index(self.cpu_freq_override_index.unwrap_or(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    fn acg() -> PlatformPolicy {
        PlatformPolicy::new(PolicyKind::Acg, Server::sr1500al()).with_ideal_sensor()
    }

    #[test]
    fn emergency_levels_follow_table_5_1() {
        let mut p = PlatformPolicy::new(PolicyKind::Bw, Server::sr1500al()).with_ideal_sensor();
        p.decide_temps(80.0, 0.0, 1.0);
        assert_eq!(p.last_level(), 0);
        p.decide_temps(87.0, 0.0, 1.0);
        assert_eq!(p.last_level(), 1);
        p.decide_temps(91.0, 0.0, 1.0);
        assert_eq!(p.last_level(), 2);
        p.decide_temps(95.0, 0.0, 1.0);
        assert_eq!(p.last_level(), 3);
    }

    #[test]
    fn bw_limits_match_table_5_1() {
        let mut p = PlatformPolicy::new(PolicyKind::Bw, Server::sr1500al()).with_ideal_sensor();
        assert_eq!(p.decide_temps(80.0, 0.0, 1.0).bandwidth_cap, None);
        let caps: Vec<f64> =
            [87.0, 91.0, 95.0].iter().map(|&t| p.decide_temps(t, 0.0, 1.0).bandwidth_cap.unwrap() / 1e9).collect();
        assert_eq!(caps, vec![5.0, 4.0, 3.0]);
    }

    #[test]
    fn acg_keeps_one_core_per_socket_online() {
        let mut p = acg();
        let hot = p.decide_temps(95.0, 0.0, 1.0);
        assert_eq!(hot.active_cores, 2);
        // Cores 0 and 1 remain online (one per socket is the intent; the
        // emulation gates the highest-numbered cores first).
        assert!(p.hotplug().is_online(0) && p.hotplug().is_online(1));
        // Fail-safe cap applies at the highest level.
        assert!((hot.bandwidth_cap.unwrap() / 1e9 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cdvfs_walks_the_xeon_ladder() {
        let mut p = PlatformPolicy::new(PolicyKind::Cdvfs, Server::pe1950()).with_ideal_sensor();
        let freqs: Vec<f64> =
            [70.0, 77.0, 81.0, 85.0].iter().map(|&t| p.decide_temps(t, 0.0, 1.0).op.freq_ghz).collect();
        assert_eq!(freqs, vec![3.0, 2.667, 2.333, 2.0]);
        assert!(p.cpufreq().transitions() >= 3);
    }

    #[test]
    fn comb_combines_both_actuators() {
        let mut p = PlatformPolicy::new(PolicyKind::Comb, Server::pe1950()).with_ideal_sensor();
        let mode = p.decide_temps(81.0, 0.0, 1.0);
        assert_eq!(mode.active_cores, 2);
        assert!((mode.op.freq_ghz - 2.333).abs() < 1e-9);
    }

    #[test]
    fn fixed_frequency_override_pins_bw_and_acg() {
        let mut p =
            PlatformPolicy::new(PolicyKind::Acg, Server::sr1500al()).with_ideal_sensor().with_fixed_frequency_index(3);
        let cool = p.decide_temps(70.0, 0.0, 1.0);
        assert!((cool.op.freq_ghz - 2.0).abs() < 1e-9);
        assert_eq!(cool.active_cores, 4);
    }

    #[test]
    fn reset_restores_full_performance_actuation() {
        let mut p = acg();
        p.decide_temps(95.0, 0.0, 1.0);
        assert_eq!(p.hotplug().online_count(), 2);
        p.reset();
        assert_eq!(p.hotplug().online_count(), 4);
        assert_eq!(p.name(), "DTM-ACG (SR1500AL)");
    }

    #[test]
    fn no_limit_never_reacts() {
        let mut p = PlatformPolicy::new(PolicyKind::NoLimit, Server::sr1500al()).with_ideal_sensor();
        let mode = p.decide_temps(120.0, 0.0, 1.0);
        assert_eq!(mode.active_cores, 4);
        assert_eq!(mode.bandwidth_cap, None);
        assert_eq!(p.kind(), PolicyKind::NoLimit);
    }
}
