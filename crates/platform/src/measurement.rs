//! Measurement harness: performance counters and power/energy summaries.
//!
//! The study collects three hardware performance counters per benchmark
//! (retired instructions, last-level-cache references, last-level-cache
//! misses) with `pfmon`, and component-level power with the SR1500AL's
//! instrumented daughter card. This module condenses a simulation run into
//! the same quantities so the Chapter 5 figures can be regenerated.

use memtherm::sim::memspot::MemSpotResult;

use crate::server::Server;

/// Summary of one run in the quantities the Chapter 5 figures report.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Server the run executed on.
    pub server: String,
    /// Policy name.
    pub policy: String,
    /// Workload mix identifier.
    pub workload: String,
    /// Batch running time in seconds.
    pub running_time_s: f64,
    /// Retired instructions (the INSTRUCTIONS_RETIRED counter).
    pub retired_instructions: f64,
    /// Last-level-cache misses (the LAST_LEVEL_CACHE_MISSES counter).
    pub llc_misses: f64,
    /// Average CPU power in watts.
    pub cpu_power_w: f64,
    /// Average memory (FBDIMM) power in watts.
    pub memory_power_w: f64,
    /// CPU energy in joules.
    pub cpu_energy_j: f64,
    /// Memory energy in joules.
    pub memory_energy_j: f64,
    /// Average memory inlet (CPU exhaust) temperature, °C.
    pub memory_inlet_c: f64,
    /// Maximum AMB temperature observed, °C.
    pub max_amb_c: f64,
    /// Whether the batch finished before the safety stop.
    pub completed: bool,
}

impl Measurement {
    /// Builds a measurement from a MEMSpot result obtained on a server.
    pub fn from_result(server: &Server, result: &MemSpotResult) -> Self {
        Measurement {
            server: server.kind.to_string(),
            policy: result.policy.clone(),
            workload: result.workload.clone(),
            running_time_s: result.running_time_s,
            retired_instructions: result.total_instructions,
            llc_misses: result.total_l2_misses,
            cpu_power_w: result.avg_cpu_power_w,
            memory_power_w: result.avg_memory_power_w,
            cpu_energy_j: result.cpu_energy_j,
            memory_energy_j: result.memory_energy_j,
            memory_inlet_c: result.avg_ambient_c,
            max_amb_c: result.max_amb_c,
            completed: result.completed,
        }
    }

    /// Combined CPU + memory energy, joules (the quantity of Figure 5.11).
    pub fn total_energy_j(&self) -> f64 {
        self.cpu_energy_j + self.memory_energy_j
    }

    /// Running time normalized to a reference measurement.
    pub fn normalized_time(&self, reference: &Measurement) -> f64 {
        if reference.running_time_s <= 0.0 {
            f64::NAN
        } else {
            self.running_time_s / reference.running_time_s
        }
    }

    /// LLC misses normalized to a reference measurement.
    pub fn normalized_llc_misses(&self, reference: &Measurement) -> f64 {
        if reference.llc_misses <= 0.0 {
            f64::NAN
        } else {
            self.llc_misses / reference.llc_misses
        }
    }

    /// Total energy normalized to a reference measurement.
    pub fn normalized_energy(&self, reference: &Measurement) -> f64 {
        let denom = reference.total_energy_j();
        if denom <= 0.0 {
            f64::NAN
        } else {
            self.total_energy_j() / denom
        }
    }
}

/// Pearson correlation coefficient between two series — the statistic the
/// study uses to link performance improvement to L2-miss reduction
/// (Section 5.4.3 reports 0.956 on the PE1950 and 0.926 on the SR1500AL).
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(time: f64, misses: f64, cpu_j: f64, mem_j: f64) -> Measurement {
        Measurement {
            server: "SR1500AL".into(),
            policy: "DTM-BW".into(),
            workload: "W1".into(),
            running_time_s: time,
            retired_instructions: 1e12,
            llc_misses: misses,
            cpu_power_w: cpu_j / time,
            memory_power_w: mem_j / time,
            cpu_energy_j: cpu_j,
            memory_energy_j: mem_j,
            memory_inlet_c: 46.0,
            max_amb_c: 99.0,
            completed: true,
        }
    }

    #[test]
    fn normalization_is_relative_to_the_reference() {
        let reference = measurement(1_000.0, 1e9, 200_000.0, 80_000.0);
        let other = measurement(900.0, 0.7e9, 150_000.0, 76_000.0);
        assert!((other.normalized_time(&reference) - 0.9).abs() < 1e-12);
        assert!((other.normalized_llc_misses(&reference) - 0.7).abs() < 1e-12);
        assert!((other.normalized_energy(&reference) - 226_000.0 / 280_000.0).abs() < 1e-12);
        assert!((other.total_energy_j() - 226_000.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_references_yield_nan() {
        let reference = measurement(0.0, 0.0, 0.0, 0.0);
        let other = measurement(10.0, 10.0, 10.0, 10.0);
        assert!(other.normalized_time(&reference).is_nan());
        assert!(other.normalized_llc_misses(&reference).is_nan());
        assert!(other.normalized_energy(&reference).is_nan());
    }

    #[test]
    fn correlation_detects_perfect_linear_relationships() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_handles_bad_input() {
        assert!(correlation(&[1.0], &[1.0]).is_nan());
        assert!(correlation(&[1.0, 2.0], &[1.0]).is_nan());
        assert!(correlation(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
    }
}
