//! Closed-loop multicore + memory simulation (the first-level simulator).
//!
//! [`MulticoreSim::run`] executes one *characterization run*: a fixed budget
//! of demand L2 accesses from the applications of a workload mix, under a
//! given [`RunningMode`] (active cores, DVFS operating point, bandwidth
//! cap). Cores are advanced in global time order; their misses contend in
//! the shared L2 and the FBDIMM memory system, so achieved IPC and memory
//! throughput are outputs, not inputs. The result, [`RunMeasurement`],
//! carries exactly the per-design-point quantities the paper's second-level
//! thermal simulator consumes.
//!
//! # Warm-state reuse
//!
//! Every run starts from *warmed* shared caches: the active instances' hot
//! regions are prefilled round-robin so measured miss rates reflect
//! steady-state contention, not cold-start compulsory misses. That prefill
//! (`hot_bytes/64` lines per instance — tens of thousands of cache accesses)
//! depends only on the active instances' hot-region sizes in core order,
//! *not* on the running mode, so the simulator computes each warmed cache
//! image once and replays it for every subsequent run with the same key as
//! a flat-buffer clone (a `memcpy`). A characterization table sweeping many
//! modes of one mix therefore pays for each distinct prefill exactly once.
//!
//! The closed loop itself is allocation-free: the memory system runs in
//! stats-only mode (no retained completion records), queue back-pressure
//! lives in a fixed ring, and the next core to advance comes from a cached
//! min/runner-up schedule instead of a per-access scan.

use std::collections::HashMap;

use fbdimm_sim::{FbdimmConfig, MemRequest, MemorySystem, Picos, RequestKind, TrafficWindow, PS_PER_SEC};
use workloads::AppBehavior;

use crate::cache::SetAssocCache;
use crate::config::CpuConfig;
use crate::core::{CoreSim, CoreStats};
use crate::dvfs::OperatingPoint;

/// A running mode of the machine: the lever settings the DTM schemes
/// manipulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningMode {
    /// Number of cores that execute (the rest are clock gated).
    pub active_cores: usize,
    /// Operating point shared by all active cores.
    pub op: OperatingPoint,
    /// Memory bandwidth cap in bytes/s (`None` = unlimited). `Some(0.0)`
    /// means the memory subsystem is shut off.
    pub bandwidth_cap: Option<f64>,
}

impl RunningMode {
    /// Full-speed mode: every core active at the top operating point, no
    /// bandwidth limit.
    pub fn full_speed(cfg: &CpuConfig) -> Self {
        RunningMode { active_cores: cfg.cores, op: cfg.dvfs.top(), bandwidth_cap: None }
    }

    /// Returns a copy with a different number of active cores.
    pub fn with_active_cores(mut self, n: usize) -> Self {
        self.active_cores = n;
        self
    }

    /// Returns a copy with a different operating point.
    pub fn with_op(mut self, op: OperatingPoint) -> Self {
        self.op = op;
        self
    }

    /// Returns a copy with a memory bandwidth cap in GB/s.
    pub fn with_bandwidth_cap_gbps(mut self, cap_gbps: f64) -> Self {
        self.bandwidth_cap = Some(cap_gbps * 1e9);
        self
    }

    /// Whether this mode makes any forward progress at all.
    pub fn makes_progress(&self) -> bool {
        self.active_cores > 0 && self.bandwidth_cap.is_none_or(|c| c > 0.0)
    }
}

/// Result of one characterization run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeasurement {
    /// Mode the run was executed under.
    pub mode: RunningMode,
    /// Reference (maximum) core frequency in GHz.
    pub reference_freq_ghz: f64,
    /// Wall-clock length of the run in picoseconds.
    pub elapsed_ps: Picos,
    /// Per-core statistics (indexed by core; inactive cores have all-zero
    /// entries).
    pub cores: Vec<CoreStats>,
    /// Memory traffic over the run (subsystem totals and per-DIMM split).
    pub traffic: TrafficWindow,
}

impl RunMeasurement {
    /// A run in which nothing executes (memory off or no active cores).
    pub fn idle(mode: RunningMode, cfg: &CpuConfig, mem_cfg: &FbdimmConfig) -> Self {
        let traffic = TrafficWindow { dimms: mem_cfg.idle_dimm_traffic(), ..Default::default() };
        RunMeasurement {
            mode,
            reference_freq_ghz: cfg.reference_freq_ghz(),
            elapsed_ps: PS_PER_SEC / 1_000,
            cores: vec![CoreStats::default(); cfg.cores],
            traffic,
        }
    }

    /// Elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ps as f64 / PS_PER_SEC as f64
    }

    /// IPC of `core` measured in *reference* cycles (committed instructions
    /// divided by elapsed reference cycles), the definition Eq. 3.6 uses.
    pub fn ipc_ref(&self, core: usize) -> f64 {
        let cycles = self.elapsed_secs() * self.reference_freq_ghz * 1e9;
        if cycles <= 0.0 {
            0.0
        } else {
            self.cores[core].instructions as f64 / cycles
        }
    }

    /// Sum of the reference-cycle IPCs of all cores.
    pub fn total_ipc_ref(&self) -> f64 {
        (0..self.cores.len()).map(|c| self.ipc_ref(c)).sum()
    }

    /// Aggregate instruction throughput in instructions per second.
    pub fn instructions_per_sec(&self) -> f64 {
        let total: u64 = self.cores.iter().map(|c| c.instructions).sum();
        total as f64 / self.elapsed_secs().max(1e-12)
    }

    /// Total memory throughput (read + write) in GB/s.
    pub fn total_throughput_gbps(&self) -> f64 {
        self.traffic.total_gbps()
    }

    /// Shared-cache miss rate over all cores.
    pub fn l2_miss_rate(&self) -> f64 {
        let accesses: u64 = self.cores.iter().map(|c| c.l2_accesses).sum();
        let misses: u64 = self.cores.iter().map(|c| c.l2_misses).sum();
        if accesses == 0 {
            0.0
        } else {
            misses as f64 / accesses as f64
        }
    }

    /// Memory traffic per committed instruction, in bytes.
    pub fn bytes_per_instruction(&self) -> f64 {
        let instr: u64 = self.cores.iter().map(|c| c.instructions).sum();
        if instr == 0 {
            return 0.0;
        }
        let bytes = self.total_throughput_gbps() * 1e9 * self.elapsed_secs();
        bytes / instr as f64
    }
}

/// Retention state of one warm-start cache image.
///
/// Building a warm image from the closed form costs about as much as
/// cloning one, so cloning on first use would double the cost of one-shot
/// keys for nothing. A key is merely *marked* on first use; the image is
/// cloned and kept when the key comes back, and from then on every run
/// replays it with a flat `memcpy`.
#[derive(Debug, Clone)]
enum WarmImage {
    /// Key used once so far; not worth an image clone yet.
    SeenOnce,
    /// Key reused: the warmed caches, replayed on every further run.
    Stored(Vec<SetAssocCache>),
}

/// The first-level (architecture) simulator.
#[derive(Debug, Clone)]
pub struct MulticoreSim {
    cpu: CpuConfig,
    mem_cfg: FbdimmConfig,
    /// Warmed shared-cache images, keyed by the active instances' hot-region
    /// sizes in lines, in core order — the only inputs of the (mode
    /// independent) warm-start prefill besides the fixed cache geometry.
    /// Replaying an image into the scratch caches is a flat-buffer `memcpy`,
    /// so repeat runs skip the prefill entirely; the image itself is only
    /// retained from a key's second use onward (see [`WarmImage`]).
    warm_images: HashMap<Vec<u64>, WarmImage>,
    /// Persistent shared-cache instances the closed loop runs against. Kept
    /// across runs so a warm start is a copy into already-touched memory
    /// rather than a fresh multi-megabyte allocation per run.
    scratch_caches: Vec<SetAssocCache>,
}

impl MulticoreSim {
    /// Creates a simulator for the given processor and memory configuration.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn new(cpu: CpuConfig, mem_cfg: FbdimmConfig) -> Self {
        cpu.validate().expect("invalid CPU configuration");
        mem_cfg.validate().expect("invalid FBDIMM configuration");
        let scratch_caches = (0..cpu.l2_count).map(|_| SetAssocCache::new(cpu.l2)).collect();
        MulticoreSim { cpu, mem_cfg, warm_images: HashMap::new(), scratch_caches }
    }

    /// The processor configuration.
    pub fn cpu_config(&self) -> &CpuConfig {
        &self.cpu
    }

    /// The memory configuration.
    pub fn memory_config(&self) -> &FbdimmConfig {
        &self.mem_cfg
    }

    /// Runs one characterization: the first `mode.active_cores` applications
    /// of `apps` execute until `demand_access_budget` demand L2 accesses have
    /// been issued in total.
    ///
    /// Requests are delivered to the memory controller in globally
    /// non-decreasing time order (arrival times are clamped to the latest
    /// arrival seen, a sub-nanosecond approximation).
    pub fn run(&mut self, apps: &[AppBehavior], mode: &RunningMode, demand_access_budget: u64) -> RunMeasurement {
        let refs: Vec<&AppBehavior> = apps.iter().collect();
        self.run_order(&refs, mode, demand_access_budget)
    }

    /// [`Self::run`] over an explicit application order, borrowed rather
    /// than cloned — rotation-averaged characterizations re-run the same mix
    /// under every cyclic order without copying the behaviour models.
    pub fn run_order(
        &mut self,
        apps: &[&AppBehavior],
        mode: &RunningMode,
        demand_access_budget: u64,
    ) -> RunMeasurement {
        let active = mode.active_cores.min(apps.len()).min(self.cpu.cores);
        if active == 0 || !mode.makes_progress() {
            return RunMeasurement::idle(*mode, &self.cpu, &self.mem_cfg);
        }

        let mut memory = MemorySystem::new(self.mem_cfg);
        memory.set_bandwidth_cap(mode.bandwidth_cap);
        // Characterization consumes every completion inline; keep the
        // controller in stats-only mode so nothing accumulates per access.
        memory.set_record_completions(false);

        let mut cores: Vec<CoreSim> = (0..active)
            .map(|i| {
                // Give each instance a private 1 TB-aligned slice of the line
                // address space so footprints never alias.
                let base = (i as u64 + 1) << 34;
                CoreSim::new(apps[i], i, base, 0xD0A0 + i as u64)
            })
            .collect();

        // Warm start: begin from shared caches pre-filled with the active
        // instances' hot regions (interleaved round-robin) so that measured
        // miss rates reflect steady-state cache contention rather than
        // cold-start compulsory misses. The prefill is independent of the
        // running mode, so the warmed image is built (closed-form) once per
        // distinct hot-region key; a key seen repeatedly gets its image
        // retained so later runs replay it into the persistent scratch
        // caches with a flat `memcpy`. Storing is deferred to the second
        // use: one-shot keys (a rotation of a mix characterized once) never
        // pay the multi-megabyte image clone.
        let hot_lines: Vec<u64> = cores.iter().map(|c| (c.app().hot_bytes / 64).max(1)).collect();
        match self.warm_images.get(&hot_lines) {
            Some(WarmImage::Stored(images)) => {
                for (scratch, image) in self.scratch_caches.iter_mut().zip(images.iter()) {
                    scratch.copy_state_from(image);
                }
            }
            seen => {
                let store = matches!(seen, Some(WarmImage::SeenOnce));
                for (cache_idx, scratch) in self.scratch_caches.iter_mut().enumerate() {
                    // Entries of this shared cache, in core order — the
                    // round-robin interleave restricted to one cache visits
                    // its cores in ascending index order per offset.
                    let entries: Vec<(u64, u64)> = cores
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| self.cpu.l2_of_core(*i) == cache_idx)
                        .map(|(i, c)| (c.base_line, hot_lines[i]))
                        .collect();
                    scratch.warm_fill_round_robin(&entries);
                    scratch.reset_stats();
                }
                let image = if store { WarmImage::Stored(self.scratch_caches.clone()) } else { WarmImage::SeenOnce };
                self.warm_images.insert(hot_lines, image);
            }
        }
        let caches = &mut self.scratch_caches;

        let freq = mode.op.freq_ghz;
        let freq_ratio = freq / self.cpu.reference_freq_ghz();
        let spec_p: Vec<f64> = cores.iter().map(|c| c.speculative_probability(freq_ratio)).collect();
        let mut last_arrival: Picos = 0;
        let mut demand_issued = 0u64;

        // Core schedule: the run advances the core whose local clock is
        // furthest behind (first index among ties). Only that core's clock
        // moves, so the minimum is cached together with the runner-up over
        // the *other* cores; a full rescan happens only when the advanced
        // core overtakes the runner-up, and scans a compact times array
        // rather than the core structs. All clocks start at zero.
        let mut times: Vec<Picos> = vec![0; active];
        let mut min_idx = 0usize;
        let (mut runner_time, mut runner_idx) =
            if active > 1 { (0 as Picos, 1usize) } else { (Picos::MAX, usize::MAX) };

        while demand_issued < demand_access_budget {
            let idx = min_idx;
            let cache_idx = self.cpu.l2_of_core(idx);
            let core = &mut cores[idx];

            let access = core.next_demand(freq);
            demand_issued += 1;
            let line = core.absolute_line(access.line);

            let outcome = caches[cache_idx].access(line, access.is_write);
            match outcome {
                crate::cache::AccessOutcome::Hit => {}
                crate::cache::AccessOutcome::Miss { writeback } => {
                    core.stats_mut().l2_misses += 1;

                    if let Some(victim) = writeback {
                        last_arrival = last_arrival.max(core.time_ps);
                        if memory.enqueue(MemRequest::at(victim, RequestKind::Write, idx, last_arrival)).is_ok() {
                            core.stats_mut().mem_writes += 1;
                        }
                    }

                    core.reserve_miss_slot(self.cpu.max_mlp);
                    last_arrival = last_arrival.max(core.time_ps);
                    if let Ok(completion) =
                        memory.enqueue_returning(MemRequest::at(line, RequestKind::Read, idx, last_arrival))
                    {
                        core.stats_mut().mem_reads += 1;
                        if core.roll_dependent() {
                            core.stall_until(completion.finish_ps);
                        } else {
                            core.push_outstanding(completion.finish_ps);
                        }
                    }
                }
            }

            // Speculative / prefetch traffic: a next-line read that does not
            // block the core.
            if core.roll_speculative_p(spec_p[idx]) {
                let spec_line = core.absolute_line(access.line.wrapping_add(1));
                if !caches[cache_idx].access(spec_line, false).is_hit() {
                    last_arrival = last_arrival.max(core.time_ps);
                    if memory.enqueue(MemRequest::at(spec_line, RequestKind::Read, idx, last_arrival)).is_ok() {
                        core.stats_mut().mem_reads += 1;
                        core.stats_mut().spec_reads += 1;
                    }
                }
            }

            // Re-establish the schedule: `idx` stays the minimum while it
            // has not passed the cached runner-up (ties resolve to the lower
            // index, matching a first-minimum scan).
            let t_new = cores[idx].time_ps;
            times[idx] = t_new;
            if t_new > runner_time || (t_new == runner_time && runner_idx < idx) {
                let (mut best_t, mut best_i) = (Picos::MAX, 0usize);
                let (mut second_t, mut second_i) = (Picos::MAX, usize::MAX);
                for (i, &t) in times.iter().enumerate() {
                    if t < best_t {
                        second_t = best_t;
                        second_i = best_i;
                        best_t = t;
                        best_i = i;
                    } else if t < second_t {
                        second_t = t;
                        second_i = i;
                    }
                }
                min_idx = best_i;
                runner_time = second_t;
                runner_idx = second_i;
            }
        }

        let elapsed = cores.iter().map(|c| c.time_ps).max().unwrap_or(1).max(1);
        let traffic = memory.take_window(elapsed);

        let mut per_core = vec![CoreStats::default(); self.cpu.cores];
        for core in &cores {
            per_core[core.core_id] = core.stats();
        }

        RunMeasurement {
            mode: *mode,
            reference_freq_ghz: self.cpu.reference_freq_ghz(),
            elapsed_ps: elapsed,
            cores: per_core,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::mixes;

    const BUDGET: u64 = 30_000;

    fn sim() -> MulticoreSim {
        MulticoreSim::new(CpuConfig::paper_quad_core(), FbdimmConfig::ddr2_667_paper())
    }

    #[test]
    fn full_speed_w1_is_memory_intensive() {
        let mut s = sim();
        let mode = RunningMode::full_speed(s.cpu_config());
        let m = s.run(&mixes::w1().apps, &mode, BUDGET);
        // W1 contains four >10 GB/s applications; even a short run must show
        // substantial aggregate bandwidth.
        assert!(m.total_throughput_gbps() > 8.0, "throughput {}", m.total_throughput_gbps());
        assert!(m.l2_miss_rate() > 0.3, "miss rate {}", m.l2_miss_rate());
        assert!(m.total_ipc_ref() > 0.0);
    }

    #[test]
    fn fewer_active_cores_reduce_traffic_and_miss_rate() {
        let mut s = sim();
        let full = RunningMode::full_speed(s.cpu_config());
        let gated = full.with_active_cores(2);
        let m4 = s.run(&mixes::w1().apps, &full, BUDGET);
        let m2 = s.run(&mixes::w1().apps, &gated, BUDGET);
        assert!(m2.total_throughput_gbps() < m4.total_throughput_gbps());
        assert!(
            m2.l2_miss_rate() < m4.l2_miss_rate(),
            "2-core miss rate {} should undercut 4-core {}",
            m2.l2_miss_rate(),
            m4.l2_miss_rate()
        );
    }

    #[test]
    fn dvfs_reduces_traffic_but_keeps_all_cores_running() {
        let mut s = sim();
        let full = RunningMode::full_speed(s.cpu_config());
        let slowest = full.with_op(s.cpu_config().dvfs.bottom()); // 0.8 GHz
        let fast_m = s.run(&mixes::w1().apps, &full, BUDGET);
        let slow_m = s.run(&mixes::w1().apps, &slowest, BUDGET);
        // At the lowest operating point the demand rate drops well below the
        // memory system's capacity, so throughput must fall clearly.
        assert!(slow_m.total_throughput_gbps() < 0.8 * fast_m.total_throughput_gbps());
        // All four cores still commit instructions.
        assert!(slow_m.cores.iter().take(4).all(|c| c.instructions > 0));
    }

    #[test]
    fn bandwidth_cap_limits_achieved_throughput() {
        let mut s = sim();
        let full = RunningMode::full_speed(s.cpu_config());
        let capped = full.with_bandwidth_cap_gbps(6.4);
        let m = s.run(&mixes::w1().apps, &capped, BUDGET);
        assert!(m.total_throughput_gbps() < 7.5, "capped throughput {}", m.total_throughput_gbps());
    }

    #[test]
    fn idle_mode_produces_zero_work() {
        let mut s = sim();
        let mode = RunningMode::full_speed(s.cpu_config()).with_active_cores(0);
        let m = s.run(&mixes::w1().apps, &mode, BUDGET);
        assert_eq!(m.total_throughput_gbps(), 0.0);
        assert_eq!(m.total_ipc_ref(), 0.0);
        assert!(!m.traffic.dimms.is_empty(), "per-DIMM entries must still exist for the power model");
    }

    #[test]
    fn moderate_mix_uses_less_bandwidth_than_heavy_mix() {
        let mut s = sim();
        let mode = RunningMode::full_speed(s.cpu_config());
        let heavy = s.run(&mixes::w1().apps, &mode, BUDGET);
        let moderate = s.run(&mixes::w8().apps, &mode, BUDGET);
        assert!(moderate.total_throughput_gbps() < heavy.total_throughput_gbps());
    }

    #[test]
    fn runs_are_deterministic() {
        let mut s = sim();
        let mode = RunningMode::full_speed(s.cpu_config());
        let a = s.run(&mixes::w3().apps, &mode, 10_000);
        let b = s.run(&mixes::w3().apps, &mode, 10_000);
        assert_eq!(a.elapsed_ps, b.elapsed_ps);
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn measurement_helpers_are_consistent() {
        let mut s = sim();
        let mode = RunningMode::full_speed(s.cpu_config());
        let m = s.run(&mixes::w5().apps, &mode, 10_000);
        assert!(m.elapsed_secs() > 0.0);
        assert!(m.instructions_per_sec() > 0.0);
        assert!(m.bytes_per_instruction() > 0.0);
        let sum: f64 = (0..4).map(|c| m.ipc_ref(c)).sum();
        assert!((sum - m.total_ipc_ref()).abs() < 1e-12);
    }
}
