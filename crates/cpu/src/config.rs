//! Processor configuration.

use crate::cache::CacheConfig;
use crate::dvfs::DvfsLadder;

/// Configuration of the multicore processor model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Number of cores.
    pub cores: usize,
    /// DVFS ladder shared by all cores.
    pub dvfs: DvfsLadder,
    /// Shared last-level (L2) cache configuration.
    pub l2: CacheConfig,
    /// L2 hit latency in core cycles (Table 4.1: 15 cycles).
    pub l2_hit_cycles: u32,
    /// Maximum memory-level parallelism per core: how many outstanding L2
    /// misses a core can overlap before it stalls (bounded by the data MSHRs,
    /// 32 in Table 4.1, but effectively limited by the ROB/LSQ; the paper's
    /// 196-entry ROB supports roughly eight independent misses).
    pub max_mlp: usize,
    /// Number of shared L2 caches. The simulated four-core processor has a
    /// single shared L2 (Table 4.1); the Chapter 5 servers have two dual-core
    /// chips, each with its own shared L2. Cores are distributed over the
    /// caches round-robin by `core_index % l2_count`... see
    /// [`CpuConfig::l2_of_core`].
    pub l2_count: usize,
}

impl CpuConfig {
    /// The simulated four-core processor of Table 4.1: 4 cores, 4-issue,
    /// shared 4 MB 8-way L2 with 64-byte lines and 15-cycle hit latency.
    pub fn paper_quad_core() -> Self {
        CpuConfig {
            cores: 4,
            dvfs: DvfsLadder::paper_quad_core(),
            l2: CacheConfig { capacity_bytes: 4 * 1024 * 1024, associativity: 8, line_bytes: 64 },
            l2_hit_cycles: 15,
            max_mlp: 8,
            l2_count: 1,
        }
    }

    /// The Chapter 5 server processor complex: two dual-core Xeon 5160
    /// chips, each pair of cores sharing a 4 MB 16-way L2.
    pub fn xeon_5160_dual_socket() -> Self {
        CpuConfig {
            cores: 4,
            dvfs: DvfsLadder::xeon_5160(),
            l2: CacheConfig { capacity_bytes: 4 * 1024 * 1024, associativity: 16, line_bytes: 64 },
            l2_hit_cycles: 14,
            max_mlp: 8,
            l2_count: 2,
        }
    }

    /// Index of the shared L2 cache that `core` uses. Logical core numbers
    /// are interleaved across the chips (core 0 on chip 0, core 1 on chip 1,
    /// ...), matching the Linux numbering on the dual-socket servers; gating
    /// the highest-numbered cores therefore leaves one core per chip (and
    /// per shared L2) online, as the Chapter 5 DTM-ACG policy intends.
    pub fn l2_of_core(&self, core: usize) -> usize {
        core % self.l2_count.max(1)
    }

    /// Reference (maximum) core frequency in GHz, used for reference-cycle
    /// IPC as defined in Section 3.5.
    pub fn reference_freq_ghz(&self) -> f64 {
        self.dvfs.top().freq_ghz
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error message for structurally invalid configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("processor must have at least one core".into());
        }
        if self.max_mlp == 0 {
            return Err("max_mlp must be at least 1".into());
        }
        if self.l2_count == 0 || self.l2_count > self.cores {
            return Err("l2_count must be between 1 and the core count".into());
        }
        self.l2.validate()?;
        Ok(())
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_quad_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_4_1() {
        let cfg = CpuConfig::paper_quad_core();
        cfg.validate().unwrap();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.l2.capacity_bytes, 4 * 1024 * 1024);
        assert_eq!(cfg.l2.associativity, 8);
        assert_eq!(cfg.l2_hit_cycles, 15);
        assert!((cfg.reference_freq_ghz() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn xeon_config_has_two_shared_caches() {
        let cfg = CpuConfig::xeon_5160_dual_socket();
        cfg.validate().unwrap();
        assert_eq!(cfg.l2_count, 2);
        assert_eq!(cfg.l2_of_core(0), 0);
        assert_eq!(cfg.l2_of_core(1), 1);
        assert_eq!(cfg.l2_of_core(2), 0);
        assert_eq!(cfg.l2_of_core(3), 1);
    }

    #[test]
    fn single_cache_maps_all_cores_to_cache_zero() {
        let cfg = CpuConfig::paper_quad_core();
        for core in 0..cfg.cores {
            assert_eq!(cfg.l2_of_core(core), 0);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = CpuConfig::paper_quad_core();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = CpuConfig::paper_quad_core();
        cfg.l2_count = 9;
        assert!(cfg.validate().is_err());

        let mut cfg = CpuConfig::paper_quad_core();
        cfg.max_mlp = 0;
        assert!(cfg.validate().is_err());
    }
}
