//! DVFS operating points and frequency/voltage ladders.

/// One frequency / voltage operating point of a processor core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Core supply voltage in volts.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(freq_ghz: f64, voltage: f64) -> Self {
        OperatingPoint { freq_ghz, voltage }
    }

    /// Dynamic-power scaling factor of this point relative to `top`
    /// (proportional to `V^2 * f`).
    pub fn dynamic_factor(&self, top: &OperatingPoint) -> f64 {
        if top.voltage <= 0.0 || top.freq_ghz <= 0.0 {
            return 0.0;
        }
        (self.voltage / top.voltage).powi(2) * (self.freq_ghz / top.freq_ghz)
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} GHz @ {:.4} V", self.freq_ghz, self.voltage)
    }
}

/// An ordered ladder of operating points, highest performance first.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsLadder {
    points: Vec<OperatingPoint>,
}

impl DvfsLadder {
    /// Creates a ladder from points ordered highest-performance first.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not strictly decreasing in frequency.
    pub fn new(points: Vec<OperatingPoint>) -> Self {
        assert!(!points.is_empty(), "a DVFS ladder needs at least one point");
        for pair in points.windows(2) {
            assert!(
                pair[0].freq_ghz > pair[1].freq_ghz,
                "ladder points must be ordered by strictly decreasing frequency"
            );
        }
        DvfsLadder { points }
    }

    /// The DVFS ladder of the simulated four-core processor (Table 4.1 /
    /// Table 4.4): 3.2 GHz @ 1.55 V, 2.8 GHz @ 1.35 V, 1.6 GHz @ 1.15 V,
    /// 0.8 GHz @ 0.95 V. (Table 4.3 lists the second level as 2.4 GHz; the
    /// power numbers of Table 4.4 are only consistent with 2.8 GHz, so the
    /// Table 4.1 value is used.)
    pub fn paper_quad_core() -> Self {
        DvfsLadder::new(vec![
            OperatingPoint::new(3.2, 1.55),
            OperatingPoint::new(2.8, 1.35),
            OperatingPoint::new(1.6, 1.15),
            OperatingPoint::new(0.8, 0.95),
        ])
    }

    /// The Intel Xeon 5160 ladder used by the Chapter 5 servers:
    /// 3.000 / 2.667 / 2.333 / 2.000 GHz at 1.2125 / 1.1625 / 1.1000 /
    /// 1.0375 V (Section 5.2.1).
    pub fn xeon_5160() -> Self {
        DvfsLadder::new(vec![
            OperatingPoint::new(3.000, 1.2125),
            OperatingPoint::new(2.667, 1.1625),
            OperatingPoint::new(2.333, 1.1000),
            OperatingPoint::new(2.000, 1.0375),
        ])
    }

    /// Highest-performance operating point.
    pub fn top(&self) -> OperatingPoint {
        self.points[0]
    }

    /// Lowest-performance operating point.
    pub fn bottom(&self) -> OperatingPoint {
        *self.points.last().expect("ladder is non-empty")
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the ladder has no points (never the case for
    /// ladders built through [`DvfsLadder::new`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Operating point at `index` (0 = highest performance), clamped to the
    /// lowest point for out-of-range indices.
    pub fn point(&self, index: usize) -> OperatingPoint {
        self.points.get(index).copied().unwrap_or_else(|| self.bottom())
    }

    /// All operating points, highest performance first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_matches_the_simulated_processor() {
        let l = DvfsLadder::paper_quad_core();
        assert_eq!(l.len(), 4);
        assert_eq!(l.top(), OperatingPoint::new(3.2, 1.55));
        assert_eq!(l.point(1), OperatingPoint::new(2.8, 1.35));
        assert_eq!(l.point(2), OperatingPoint::new(1.6, 1.15));
        assert_eq!(l.bottom(), OperatingPoint::new(0.8, 0.95));
    }

    #[test]
    fn xeon_ladder_matches_section_5_2() {
        let l = DvfsLadder::xeon_5160();
        assert_eq!(l.len(), 4);
        assert!((l.top().freq_ghz - 3.0).abs() < 1e-9);
        assert!((l.bottom().voltage - 1.0375).abs() < 1e-9);
    }

    #[test]
    fn dynamic_factor_is_one_at_top_and_below_one_elsewhere() {
        let l = DvfsLadder::paper_quad_core();
        let top = l.top();
        assert!((top.dynamic_factor(&top) - 1.0).abs() < 1e-12);
        for i in 1..l.len() {
            let f = l.point(i).dynamic_factor(&top);
            assert!(f > 0.0 && f < 1.0, "factor {f} at index {i}");
        }
    }

    #[test]
    fn out_of_range_point_clamps_to_bottom() {
        let l = DvfsLadder::paper_quad_core();
        assert_eq!(l.point(99), l.bottom());
        assert!(!l.is_empty());
    }

    #[test]
    #[should_panic(expected = "decreasing frequency")]
    fn unordered_ladder_is_rejected() {
        let _ = DvfsLadder::new(vec![OperatingPoint::new(1.0, 1.0), OperatingPoint::new(2.0, 1.1)]);
    }

    #[test]
    fn display_formats_frequency_and_voltage() {
        let p = OperatingPoint::new(3.2, 1.55);
        let s = p.to_string();
        assert!(s.contains("3.200") && s.contains("1.55"));
    }
}
