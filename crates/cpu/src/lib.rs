//! # cpu-model
//!
//! Multicore processor model used as the first-level (architecture)
//! simulator of the two-level thermal simulation infrastructure.
//!
//! The model executes the synthetic per-application access streams from the
//! [`workloads`] crate through a shared set-associative L2 cache and the
//! FBDIMM memory simulator from [`fbdimm_sim`], under a *running mode*
//! (number of active cores, DVFS operating point, memory bandwidth cap).
//! The outputs are exactly the quantities the paper's trace format carries:
//! per-core IPC and memory read/write throughput (plus the per-DIMM
//! local/bypass split the AMB power model needs).
//!
//! The crate also provides the processor power models: the simulated
//! four-core processor of Table 4.4 and the Xeon 5160 based servers of the
//! Chapter 5 measurement study.
//!
//! ```
//! use cpu_model::{CpuConfig, RunningMode, MulticoreSim};
//! use workloads::mixes;
//!
//! let cfg = CpuConfig::paper_quad_core();
//! let mode = RunningMode::full_speed(&cfg);
//! let mut sim = MulticoreSim::new(cfg, fbdimm_sim::FbdimmConfig::ddr2_667_paper());
//! let m = sim.run(&mixes::w1().apps, &mode, 20_000);
//! assert!(m.total_throughput_gbps() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod core;
pub mod dvfs;
pub mod multicore;
pub mod power;

pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use config::CpuConfig;
pub use core::{CoreSim, CoreStats};
pub use dvfs::{DvfsLadder, OperatingPoint};
pub use multicore::{MulticoreSim, RunMeasurement, RunningMode};
pub use power::{PaperCpuPower, ProcessorPowerModel, Xeon5160Power};
