//! Processor power models.
//!
//! Two models are provided:
//!
//! * [`PaperCpuPower`] — the simulated four-core processor of the Chapter 4
//!   study. Its parameters are reverse-engineered from the Intel Xeon data
//!   sheet exactly as the paper does (Section 4.4.3): 65 W peak per core of
//!   which 15.5 W is standby power, giving the per-state numbers of
//!   Table 4.4.
//! * [`Xeon5160Power`] — the dual-socket Xeon 5160 complex of the Chapter 5
//!   servers, used by the platform emulation to reproduce the measured CPU
//!   power differences between DTM policies.

use crate::dvfs::{DvfsLadder, OperatingPoint};

/// A processor power model: maps a running state (active cores + operating
/// point) to package power in watts.
pub trait ProcessorPowerModel {
    /// Power when `active_cores` cores execute at `op` and the remaining
    /// cores are clock gated / halted.
    fn power_watts(&self, active_cores: usize, op: &OperatingPoint) -> f64;

    /// Power when every core is halted (e.g. while DTM-TS has the memory
    /// shut down and all cores are stalled).
    fn halted_watts(&self) -> f64;

    /// Total number of cores the model describes.
    fn cores(&self) -> usize;
}

/// Power model of the simulated four-core processor (Table 4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct PaperCpuPower {
    cores: usize,
    /// Standby (halted) power per core, watts.
    standby_per_core: f64,
    /// Dynamic power per active core at the top operating point, watts.
    dynamic_per_core: f64,
    ladder: DvfsLadder,
}

impl PaperCpuPower {
    /// The default model: 4 cores, 15.5 W standby and 49.5 W dynamic per
    /// core, reproducing Table 4.4 exactly.
    pub fn new() -> Self {
        PaperCpuPower {
            cores: 4,
            standby_per_core: 15.5,
            dynamic_per_core: 49.5,
            ladder: DvfsLadder::paper_quad_core(),
        }
    }
}

impl Default for PaperCpuPower {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessorPowerModel for PaperCpuPower {
    fn power_watts(&self, active_cores: usize, op: &OperatingPoint) -> f64 {
        let active = active_cores.min(self.cores) as f64;
        let factor = op.dynamic_factor(&self.ladder.top());
        self.cores as f64 * self.standby_per_core + active * self.dynamic_per_core * factor
    }

    fn halted_watts(&self) -> f64 {
        self.cores as f64 * self.standby_per_core
    }

    fn cores(&self) -> usize {
        self.cores
    }
}

/// Power model of the dual-socket Xeon 5160 complex of the Chapter 5
/// servers (two dual-core chips).
#[derive(Debug, Clone, PartialEq)]
pub struct Xeon5160Power {
    chips: usize,
    cores_per_chip: usize,
    /// Uncore + leakage power per chip, watts.
    uncore_per_chip: f64,
    /// Dynamic power per active core at the top operating point, watts.
    dynamic_per_core: f64,
    /// Residual per-core power when a core is halted (deep clock gating in
    /// the Core microarchitecture makes this small).
    halted_per_core: f64,
    ladder: DvfsLadder,
}

impl Xeon5160Power {
    /// Default model for two Xeon 5160 (dual-core, 80 W TDP) processors.
    pub fn new() -> Self {
        Xeon5160Power {
            chips: 2,
            cores_per_chip: 2,
            uncore_per_chip: 18.0,
            dynamic_per_core: 28.0,
            halted_per_core: 4.0,
            ladder: DvfsLadder::xeon_5160(),
        }
    }
}

impl Default for Xeon5160Power {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessorPowerModel for Xeon5160Power {
    fn power_watts(&self, active_cores: usize, op: &OperatingPoint) -> f64 {
        let total = self.cores();
        let active = active_cores.min(total);
        let halted = total - active;
        let factor = op.dynamic_factor(&self.ladder.top());
        self.chips as f64 * self.uncore_per_chip
            + active as f64 * self.dynamic_per_core * factor
            + halted as f64 * self.halted_per_core
    }

    fn halted_watts(&self) -> f64 {
        self.chips as f64 * self.uncore_per_chip + self.cores() as f64 * self.halted_per_core
    }

    fn cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_reproduces_table_4_4_acg_column() {
        let p = PaperCpuPower::new();
        let top = DvfsLadder::paper_quad_core().top();
        let expect = [62.0, 111.5, 161.0, 210.5, 260.0];
        for (n, e) in expect.iter().enumerate() {
            let got = p.power_watts(n, &top);
            assert!((got - e).abs() < 0.01, "{n} active cores: {got} != {e}");
        }
        assert!((p.halted_watts() - 62.0).abs() < 1e-9);
    }

    #[test]
    fn paper_model_reproduces_table_4_4_cdvfs_column() {
        let p = PaperCpuPower::new();
        let ladder = DvfsLadder::paper_quad_core();
        let expect = [(0usize, 260.0), (1, 193.4), (2, 116.5), (3, 80.6)];
        for (idx, e) in expect {
            let got = p.power_watts(4, &ladder.point(idx));
            assert!((got - e).abs() < 0.5, "level {idx}: {got} != {e}");
        }
    }

    #[test]
    fn more_active_cores_never_costs_less_power() {
        let p = PaperCpuPower::new();
        let top = DvfsLadder::paper_quad_core().top();
        let mut prev = 0.0;
        for n in 0..=4 {
            let w = p.power_watts(n, &top);
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn active_core_count_is_clamped_to_model_size() {
        let p = PaperCpuPower::new();
        let top = DvfsLadder::paper_quad_core().top();
        assert_eq!(p.power_watts(8, &top), p.power_watts(4, &top));
        assert_eq!(p.cores(), 4);
    }

    #[test]
    fn xeon_model_scales_down_with_dvfs() {
        let x = Xeon5160Power::new();
        let ladder = DvfsLadder::xeon_5160();
        let full = x.power_watts(4, &ladder.top());
        let slow = x.power_watts(4, &ladder.bottom());
        assert!(slow < full);
        // The paper measures ~15% average CPU power reduction under CDVFS
        // (which spends only part of the time at reduced levels); the static
        // bottom-vs-top gap must therefore be substantially larger than 15%.
        assert!((full - slow) / full > 0.2, "full {full}, slow {slow}");
        assert!(x.halted_watts() < full);
        assert_eq!(x.cores(), 4);
    }

    #[test]
    fn xeon_gating_saves_little_for_memory_bound_codes() {
        // Section 5.4.4: gating a core saves little power because stalled
        // cores are already extensively clock gated. Here, gating removes the
        // dynamic share of one core; the saving relative to the package must
        // be well under a half.
        let x = Xeon5160Power::new();
        let top = DvfsLadder::xeon_5160().top();
        let four = x.power_watts(4, &top);
        let two = x.power_watts(2, &top);
        assert!(two > 0.5 * four);
    }
}
