//! Per-core execution state for the closed-loop first-level simulation.
//!
//! A core alternates between executing instructions at its base IPC and
//! issuing last-level-cache accesses produced by its application's synthetic
//! stream. Misses go to the FBDIMM simulator; the core can overlap a bounded
//! number of outstanding misses (its memory-level parallelism) and stalls on
//! dependent misses, so its achieved IPC emerges from memory latency and
//! bandwidth rather than being assumed.

use workloads::rng::SmallRng;

use fbdimm_sim::Picos;
use workloads::{AccessStream, AppBehavior};

/// Statistics accumulated by one core over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Demand accesses presented to the shared L2.
    pub l2_accesses: u64,
    /// Demand L2 misses.
    pub l2_misses: u64,
    /// Read transactions sent to memory (demand fills + prefetches).
    pub mem_reads: u64,
    /// Speculative/prefetch reads included in `mem_reads`.
    pub spec_reads: u64,
    /// Write-back transactions sent to memory.
    pub mem_writes: u64,
    /// Time spent stalled on dependent misses or a full MSHR, in picoseconds.
    pub stall_ps: Picos,
}

impl CoreStats {
    /// L2 miss rate of this core in `[0, 1]`.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }
}

/// Execution state of one core running one application instance.
#[derive(Debug, Clone)]
pub struct CoreSim {
    /// Core index within the processor.
    pub core_id: usize,
    app: AppBehavior,
    stream: AccessStream,
    rng: SmallRng,
    /// Base line address offset isolating this instance's footprint.
    pub base_line: u64,
    /// Local time cursor of the core.
    pub time_ps: Picos,
    /// Completion times of outstanding (overlapped) misses.
    outstanding: Vec<Picos>,
    stats: CoreStats,
}

impl CoreSim {
    /// Creates a core running one instance of `app`, with its footprint
    /// placed at `base_line` and all randomness derived from `seed`.
    pub fn new(app: &AppBehavior, core_id: usize, base_line: u64, seed: u64) -> Self {
        CoreSim {
            core_id,
            app: app.clone(),
            stream: AccessStream::new(app, seed),
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ core_id as u64),
            base_line,
            time_ps: 0,
            outstanding: Vec::new(),
            stats: CoreStats::default(),
        }
    }

    /// The application behaviour model this core is executing.
    pub fn app(&self) -> &AppBehavior {
        &self.app
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Mutable access to the statistics (used by the multicore driver).
    pub fn stats_mut(&mut self) -> &mut CoreStats {
        &mut self.stats
    }

    /// Produces the next demand access of the application and advances the
    /// core's time by the compute phase preceding it (`gap / (IPC * f)`).
    pub fn next_demand(&mut self, freq_ghz: f64) -> workloads::StreamAccess {
        let access = self.stream.next_access();
        let exec_ns = access.gap_instructions as f64 / (self.app.base_ipc * freq_ghz).max(1e-6);
        self.time_ps += (exec_ns * 1000.0).round() as Picos;
        self.stats.instructions += access.gap_instructions;
        self.stats.l2_accesses += 1;
        access
    }

    /// Decides whether the miss that just occurred is a dependent
    /// (non-overlappable) miss.
    pub fn roll_dependent(&mut self) -> bool {
        self.rng.gen_bool(self.app.dependent_fraction.clamp(0.0, 1.0))
    }

    /// Decides whether a speculative/prefetch read accompanies this access,
    /// given the current-to-reference frequency ratio (prefetchers issue
    /// fewer useless requests when the core runs slower).
    pub fn roll_speculative(&mut self, freq_ratio: f64) -> bool {
        let p = self.speculative_probability(freq_ratio);
        self.roll_speculative_p(p)
    }

    /// The per-access speculative-read probability at a frequency ratio —
    /// constant over a run, so drivers precompute it once and use
    /// [`Self::roll_speculative_p`] in the loop.
    pub fn speculative_probability(&self, freq_ratio: f64) -> f64 {
        let p = (self.app.speculative_apki / self.app.l2_apki.max(1e-9)) * freq_ratio.clamp(0.0, 1.0);
        p.clamp(0.0, 1.0)
    }

    /// [`Self::roll_speculative`] with the probability precomputed via
    /// [`Self::speculative_probability`].
    pub fn roll_speculative_p(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Ensures a miss slot is available, stalling the core until the oldest
    /// outstanding miss completes if its memory-level parallelism is
    /// exhausted.
    pub fn reserve_miss_slot(&mut self, max_mlp: usize) {
        while self.outstanding.len() >= max_mlp.max(1) {
            let (idx, &earliest) =
                self.outstanding.iter().enumerate().min_by_key(|(_, &t)| t).expect("outstanding set is non-empty");
            self.outstanding.swap_remove(idx);
            if earliest > self.time_ps {
                self.stats.stall_ps += earliest - self.time_ps;
                self.time_ps = earliest;
            }
        }
    }

    /// Records an overlapped (non-blocking) miss completing at `completion`.
    pub fn push_outstanding(&mut self, completion: Picos) {
        self.outstanding.push(completion);
    }

    /// Stalls the core until `completion` (dependent miss).
    pub fn stall_until(&mut self, completion: Picos) {
        if completion > self.time_ps {
            self.stats.stall_ps += completion - self.time_ps;
            self.time_ps = completion;
        }
    }

    /// Number of misses currently outstanding.
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding.len()
    }

    /// Translates an application-relative line address into this instance's
    /// private region of the physical address space.
    pub fn absolute_line(&self, line: u64) -> u64 {
        self.base_line + line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2000;

    fn core() -> CoreSim {
        CoreSim::new(&spec2000::swim(), 0, 1 << 32, 7)
    }

    #[test]
    fn demand_access_advances_time_and_instruction_count() {
        let mut c = core();
        let before = c.time_ps;
        let a = c.next_demand(3.2);
        assert!(c.time_ps > before);
        assert_eq!(c.stats().instructions, a.gap_instructions);
        assert_eq!(c.stats().l2_accesses, 1);
    }

    #[test]
    fn lower_frequency_means_slower_execution() {
        let mut fast = CoreSim::new(&spec2000::swim(), 0, 0, 5);
        let mut slow = CoreSim::new(&spec2000::swim(), 0, 0, 5);
        for _ in 0..100 {
            fast.next_demand(3.2);
            slow.next_demand(0.8);
        }
        assert!(slow.time_ps > fast.time_ps);
        assert_eq!(slow.stats().instructions, fast.stats().instructions);
    }

    #[test]
    fn mlp_limit_forces_stall() {
        let mut c = core();
        for i in 0..8 {
            c.push_outstanding(1_000_000 + i);
        }
        assert_eq!(c.outstanding_misses(), 8);
        c.reserve_miss_slot(8);
        assert_eq!(c.outstanding_misses(), 7);
        assert!(c.time_ps >= 1_000_000);
        assert!(c.stats().stall_ps > 0);
    }

    #[test]
    fn dependent_stall_moves_time_forward_only() {
        let mut c = core();
        c.stall_until(500);
        assert_eq!(c.time_ps, 500);
        c.stall_until(100);
        assert_eq!(c.time_ps, 500, "stall never rewinds time");
    }

    #[test]
    fn absolute_line_is_offset_by_base() {
        let c = core();
        assert_eq!(c.absolute_line(10), (1 << 32) + 10);
    }

    #[test]
    fn speculative_probability_scales_with_frequency() {
        let mut c1 = CoreSim::new(&spec2000::swim(), 0, 0, 11);
        let mut c2 = CoreSim::new(&spec2000::swim(), 0, 0, 11);
        let n = 20_000;
        let fast = (0..n).filter(|_| c1.roll_speculative(1.0)).count();
        let slow = (0..n).filter(|_| c2.roll_speculative(0.25)).count();
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn miss_rate_helper_handles_zero_accesses() {
        assert_eq!(CoreStats::default().l2_miss_rate(), 0.0);
    }
}
