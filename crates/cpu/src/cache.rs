//! Set-associative cache model with true LRU replacement.
//!
//! The shared L2 cache is the piece of the processor that matters most to
//! the thermal study: its miss rate under different numbers of co-running
//! programs determines the memory traffic, which determines DRAM/AMB heat
//! generation. The model is a straightforward tag-only set-associative cache
//! with per-set LRU, dirty bits for write-back traffic, and hit/miss/
//! write-back statistics.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes / self.associativity as u64).max(1) as usize
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error message if any dimension is zero or the capacity is
    /// not an exact multiple of `associativity * line_bytes`.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.line_bytes == 0 || self.associativity == 0 {
            return Err("cache dimensions must be positive".into());
        }
        if !self.capacity_bytes.is_multiple_of(self.line_bytes * self.associativity as u64) {
            return Err("capacity must be a multiple of associativity x line size".into());
        }
        Ok(())
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; if a dirty victim was evicted its line address is
    /// carried here so the caller can issue the write-back.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// Returns `true` for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// Dirty evictions (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last use (larger = more recent).
    lru: u64,
}

impl Way {
    fn empty() -> Self {
        Way { tag: 0, valid: false, dirty: false, lru: 0 }
    }
}

/// A set-associative, write-back, allocate-on-miss cache with LRU
/// replacement, addressed by 64-byte line address.
#[derive(Debug, Clone, PartialEq)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    clock: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let sets = vec![vec![Way::empty(); cfg.associativity]; cfg.sets()];
        SetAssocCache { cfg, sets, stats: CacheStats::default(), clock: 0 }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index_and_tag(&self, line: u64) -> (usize, u64) {
        let sets = self.sets.len() as u64;
        ((line % sets) as usize, line / sets)
    }

    /// Accesses `line`; `is_write` marks the line dirty on hit or fill.
    /// Returns whether the access hit and, on a miss, any dirty victim whose
    /// write-back the caller must issue.
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.index_and_tag(line);
        let sets = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.clock;
            way.dirty |= is_write;
            return AccessOutcome::Hit;
        }

        // Miss: fill into an invalid way or evict the LRU way.
        self.stats.misses += 1;
        let victim_idx = set.iter().enumerate().find(|(_, w)| !w.valid).map(|(i, _)| i).unwrap_or_else(|| {
            set.iter().enumerate().min_by_key(|(_, w)| w.lru).map(|(i, _)| i).expect("non-empty set")
        });
        let victim = set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(victim.tag * sets + set_idx as u64)
        } else {
            None
        };
        set[victim_idx] = Way { tag, valid: true, dirty: is_write, lru: self.clock };
        AccessOutcome::Miss { writeback }
    }

    /// Invalidates the whole cache, discarding dirty data (used when a
    /// program's copy finishes and its footprint is recycled).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set {
                *way = Way::empty();
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 64 lines, 4-way, 16 sets.
        SetAssocCache::new(CacheConfig { capacity_bytes: 64 * 64, associativity: 4, line_bytes: 64 })
    }

    #[test]
    fn config_geometry_is_consistent() {
        let cfg = CacheConfig { capacity_bytes: 4 * 1024 * 1024, associativity: 8, line_bytes: 64 };
        cfg.validate().unwrap();
        assert_eq!(cfg.sets(), 8192);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(CacheConfig { capacity_bytes: 0, associativity: 8, line_bytes: 64 }.validate().is_err());
        assert!(CacheConfig { capacity_bytes: 1000, associativity: 8, line_bytes: 64 }.validate().is_err());
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(42, false).is_hit());
        assert!(c.access(42, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_always_misses_on_second_pass_with_lru() {
        let mut c = small_cache(); // 64 lines capacity
                                   // Stream 128 distinct lines twice; LRU means nothing survives.
        for _pass in 0..2 {
            for line in 0..128u64 {
                c.access(line, false);
            }
        }
        assert_eq!(c.stats().misses, 256);
    }

    #[test]
    fn working_set_smaller_than_cache_hits_on_second_pass() {
        let mut c = small_cache();
        for line in 0..32u64 {
            c.access(line, false);
        }
        let misses_after_first = c.stats().misses;
        for line in 0..32u64 {
            assert!(c.access(line, false).is_hit());
        }
        assert_eq!(c.stats().misses, misses_after_first);
    }

    #[test]
    fn dirty_eviction_produces_writeback_of_correct_line() {
        // Direct-mapped single-set cache of 1 way to force eviction.
        let mut c = SetAssocCache::new(CacheConfig { capacity_bytes: 64, associativity: 1, line_bytes: 64 });
        c.access(5, true);
        match c.access(6, false) {
            AccessOutcome::Miss { writeback: Some(line) } => assert_eq!(line, 5),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = SetAssocCache::new(CacheConfig { capacity_bytes: 64, associativity: 1, line_bytes: 64 });
        c.access(5, false);
        match c.access(6, false) {
            AccessOutcome::Miss { writeback } => assert!(writeback.is_none()),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        // 2-way, 1 set.
        let mut c = SetAssocCache::new(CacheConfig { capacity_bytes: 128, associativity: 2, line_bytes: 64 });
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 0 is now MRU
        c.access(2, false); // evicts 1
        assert!(c.access(0, false).is_hit(), "MRU line must survive");
        assert!(!c.access(1, false).is_hit(), "LRU line must have been evicted");
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = small_cache();
        for line in 0..32u64 {
            c.access(line, true);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0, false).is_hit());
    }

    #[test]
    fn miss_rate_is_fraction_of_accesses() {
        let mut c = small_cache();
        c.access(1, false);
        c.access(1, false);
        c.access(2, false);
        c.access(2, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }
}
