//! Set-associative cache model with true LRU replacement.
//!
//! The shared L2 cache is the piece of the processor that matters most to
//! the thermal study: its miss rate under different numbers of co-running
//! programs determines the memory traffic, which determines DRAM/AMB heat
//! generation. The model is a tag-only set-associative cache with per-set
//! LRU, dirty bits for write-back traffic, and hit/miss/write-back
//! statistics.
//!
//! The cache is touched on every demand access of the closed-loop level-1
//! simulation *and* on every warm-start prefill line, so its storage is a
//! single contiguous `sets × ways` buffer: one allocation, set lookup by
//! power-of-two masking (with a division fallback for odd set counts), and a
//! layout that clones with a straight `memcpy` — which is what makes the
//! warm-state images of [`crate::multicore::MulticoreSim`] cheap to reuse.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes / self.associativity as u64).max(1) as usize
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error message if any dimension is zero or the capacity is
    /// not an exact multiple of `associativity * line_bytes`.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.line_bytes == 0 || self.associativity == 0 {
            return Err("cache dimensions must be positive".into());
        }
        if !self.capacity_bytes.is_multiple_of(self.line_bytes * self.associativity as u64) {
            return Err("capacity must be a multiple of associativity x line size".into());
        }
        Ok(())
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; if a dirty victim was evicted its line address is
    /// carried here so the caller can issue the write-back.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// Returns `true` for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// Dirty evictions (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Valid bit of a way's metadata byte.
const META_VALID: u8 = 0b01;
/// Dirty bit of a way's metadata byte.
const META_DIRTY: u8 = 0b10;

/// A set-associative, write-back, allocate-on-miss cache with LRU
/// replacement, addressed by 64-byte line address.
///
/// Storage is three contiguous `sets × ways` arrays in structure-of-arrays
/// layout (set `s` occupies index range `s*assoc .. (s+1)*assoc` of each):
/// the hit scan walks one cache-line-sized run of tags, the LRU scan one run
/// of timestamps, and the valid/dirty bits live in a byte array an order of
/// magnitude smaller than either. A power-of-two set count resolves the set
/// index with a mask instead of a division.
#[derive(Debug, Clone, PartialEq)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Flat `sets × associativity` tag array.
    tags: Vec<u64>,
    /// Monotonic last-use timestamps (larger = more recent), same layout.
    lru: Vec<u64>,
    /// Per-way `META_VALID` / `META_DIRTY` bits, same layout.
    meta: Vec<u8>,
    /// Number of sets (`tags.len() / cfg.associativity`).
    sets: usize,
    /// `sets - 1` when the set count is a power of two, else 0.
    set_mask: u64,
    /// `log2(sets)` when the set count is a power of two, else 0.
    set_shift: u32,
    stats: CacheStats,
    clock: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let sets = cfg.sets();
        let entries = sets * cfg.associativity;
        let (set_mask, set_shift) =
            if sets.is_power_of_two() { ((sets - 1) as u64, sets.trailing_zeros()) } else { (0, 0) };
        SetAssocCache {
            cfg,
            tags: vec![0; entries],
            lru: vec![0; entries],
            meta: vec![0; entries],
            sets,
            set_mask,
            set_shift,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index_and_tag(&self, line: u64) -> (usize, u64) {
        if self.set_mask != 0 {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            let sets = self.sets as u64;
            ((line % sets) as usize, line / sets)
        }
    }

    /// Accesses `line`; `is_write` marks the line dirty on hit or fill.
    /// Returns whether the access hit and, on a miss, any dirty victim whose
    /// write-back the caller must issue.
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.index_and_tag(line);
        let sets = self.sets as u64;
        let assoc = self.cfg.associativity;
        let base = set_idx * assoc;
        let set_tags = &self.tags[base..base + assoc];
        let set_meta = &self.meta[base..base + assoc];

        // Hit path: one scan over the (cache-line-sized) tag run.
        for w in 0..assoc {
            if set_meta[w] & META_VALID != 0 && set_tags[w] == tag {
                self.lru[base + w] = self.clock;
                if is_write {
                    self.meta[base + w] |= META_DIRTY;
                }
                return AccessOutcome::Hit;
            }
        }

        // Miss: fill into the first invalid way or evict the LRU way.
        self.stats.misses += 1;
        let victim = match set_meta.iter().position(|&m| m & META_VALID == 0) {
            Some(w) => w,
            None => {
                let set_lru = &self.lru[base..base + assoc];
                let mut best = 0;
                for w in 1..assoc {
                    if set_lru[w] < set_lru[best] {
                        best = w;
                    }
                }
                best
            }
        };
        let victim_meta = self.meta[base + victim];
        let writeback = if victim_meta & (META_VALID | META_DIRTY) == META_VALID | META_DIRTY {
            self.stats.writebacks += 1;
            Some(self.tags[base + victim] * sets + set_idx as u64)
        } else {
            None
        };
        self.tags[base + victim] = tag;
        self.lru[base + victim] = self.clock;
        self.meta[base + victim] = META_VALID | if is_write { META_DIRTY } else { 0 };
        AccessOutcome::Miss { writeback }
    }

    /// Invalidates the whole cache, discarding dirty data (used when a
    /// program's copy finishes and its footprint is recycled).
    pub fn flush(&mut self) {
        self.tags.fill(0);
        self.lru.fill(0);
        self.meta.fill(0);
    }

    /// Resets the cache to its just-constructed state: empty contents, zero
    /// statistics, zero clock.
    pub fn reset(&mut self) {
        self.flush();
        self.stats = CacheStats::default();
        self.clock = 0;
    }

    /// Overwrites this cache's complete state (contents, LRU clock and
    /// statistics) with `other`'s — three flat `copy_from_slice`s, with no
    /// allocation. This is how warmed cache images are replayed into a
    /// persistent scratch cache: copying into already-touched pages is much
    /// cheaper than cloning a fresh multi-megabyte buffer every run.
    ///
    /// # Panics
    ///
    /// Panics if the two caches have different geometries.
    pub fn copy_state_from(&mut self, other: &SetAssocCache) {
        assert_eq!(self.cfg, other.cfg, "cache geometry mismatch");
        self.tags.copy_from_slice(&other.tags);
        self.lru.copy_from_slice(&other.lru);
        self.meta.copy_from_slice(&other.meta);
        self.stats = other.stats;
        self.clock = other.clock;
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Fills this (empty, just-reset) cache with the round-robin warm-start
    /// prefill the level-1 simulator uses, producing *exactly* the state of
    /// the equivalent access loop
    ///
    /// ```text
    /// for offset in 0..max_hot {
    ///     for (base, hot) in entries {
    ///         if offset < hot { self.access(base + offset, false); }
    ///     }
    /// }
    /// ```
    ///
    /// but constructed directly: since every prefilled line is distinct,
    /// each access is a miss that fills ways round-robin per set, so the
    /// final contents of a set are simply its last `associativity` arrivals
    /// — which can be written once each, with their exact LRU timestamps,
    /// without simulating the tens of thousands of earlier accesses that
    /// would be overwritten anyway. The whole cache state (contents, LRU
    /// clock, statistics) is defined by this call, so no prior reset is
    /// needed — unfilled ways are written back to their empty state. Falls
    /// back to reset plus the literal loop for geometries the closed form
    /// does not cover (non-power-of-two set counts, bases that are not
    /// set-aligned, or overlapping ranges).
    pub fn warm_fill_round_robin(&mut self, entries: &[(u64, u64)]) {
        let sets = self.sets as u64;
        let assoc = self.cfg.associativity;

        let closed_form_applies = self.set_mask != 0
            && entries.iter().all(|&(base, _)| base % sets == 0)
            && entries.iter().enumerate().all(|(i, &(base, hot))| {
                entries.iter().skip(i + 1).all(|&(b2, h2)| base + hot <= b2 || b2 + h2 <= base)
            });
        if !closed_form_applies {
            self.reset();
            for offset in 0..entries.iter().map(|&(_, hot)| hot).max().unwrap_or(0) {
                for &(base, hot) in entries {
                    if offset < hot {
                        self.access(base + offset, false);
                    }
                }
            }
            return;
        }

        let total: u64 = entries.iter().map(|&(_, hot)| hot).sum();
        for s in 0..sets {
            // Arrivals to set `s` are offsets o ≡ s (mod sets), entry-major
            // within one offset. Count them, then materialize only the last
            // `assoc` (the survivors), walking offsets downward.
            let mut n_s: u64 = 0;
            let mut o_max: u64 = 0;
            for &(_, hot) in entries {
                if hot > s {
                    let k = (hot - 1 - s) / sets + 1;
                    n_s += k;
                    o_max = o_max.max(s + (k - 1) * sets);
                }
            }
            let survivors = (n_s).min(assoc as u64);
            // Ways beyond the arrival count stay (or return to) empty.
            for w in (n_s.min(assoc as u64) as usize)..assoc {
                let idx = (s as usize) * assoc + w;
                self.tags[idx] = 0;
                self.lru[idx] = 0;
                self.meta[idx] = 0;
            }
            let mut m = n_s; // arrival ordinal within the set, walked downward
            let mut o = o_max;
            let mut placed = 0;
            while placed < survivors {
                for (i, &(base, hot)) in entries.iter().enumerate().rev() {
                    if hot > o {
                        if placed < survivors {
                            // Way filled by arrival m (1-indexed): ways cycle
                            // round-robin, so the m-th arrival lands in way
                            // (m-1) % assoc; walking the top `assoc` ordinals
                            // touches each way exactly once.
                            let way = ((m - 1) % assoc as u64) as usize;
                            // Exact clock of this access: all accesses at
                            // earlier offsets, plus earlier entries at this
                            // offset, plus one.
                            let mut clock = 1;
                            for (j, &(_, hot_j)) in entries.iter().enumerate() {
                                clock += hot_j.min(o) + u64::from(j < i && hot_j > o);
                            }
                            let idx = (s as usize) * assoc + way;
                            self.tags[idx] = (base + o) >> self.set_shift;
                            self.lru[idx] = clock;
                            self.meta[idx] = META_VALID;
                            placed += 1;
                        }
                        m -= 1;
                    }
                }
                if o < sets {
                    break;
                }
                o -= sets;
            }
        }
        self.clock = total;
        self.stats = CacheStats { accesses: total, misses: total, writebacks: 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 64 lines, 4-way, 16 sets.
        SetAssocCache::new(CacheConfig { capacity_bytes: 64 * 64, associativity: 4, line_bytes: 64 })
    }

    #[test]
    fn config_geometry_is_consistent() {
        let cfg = CacheConfig { capacity_bytes: 4 * 1024 * 1024, associativity: 8, line_bytes: 64 };
        cfg.validate().unwrap();
        assert_eq!(cfg.sets(), 8192);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(CacheConfig { capacity_bytes: 0, associativity: 8, line_bytes: 64 }.validate().is_err());
        assert!(CacheConfig { capacity_bytes: 1000, associativity: 8, line_bytes: 64 }.validate().is_err());
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(42, false).is_hit());
        assert!(c.access(42, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_always_misses_on_second_pass_with_lru() {
        let mut c = small_cache(); // 64 lines capacity
                                   // Stream 128 distinct lines twice; LRU means nothing survives.
        for _pass in 0..2 {
            for line in 0..128u64 {
                c.access(line, false);
            }
        }
        assert_eq!(c.stats().misses, 256);
    }

    #[test]
    fn working_set_smaller_than_cache_hits_on_second_pass() {
        let mut c = small_cache();
        for line in 0..32u64 {
            c.access(line, false);
        }
        let misses_after_first = c.stats().misses;
        for line in 0..32u64 {
            assert!(c.access(line, false).is_hit());
        }
        assert_eq!(c.stats().misses, misses_after_first);
    }

    #[test]
    fn dirty_eviction_produces_writeback_of_correct_line() {
        // Direct-mapped single-set cache of 1 way to force eviction.
        let mut c = SetAssocCache::new(CacheConfig { capacity_bytes: 64, associativity: 1, line_bytes: 64 });
        c.access(5, true);
        match c.access(6, false) {
            AccessOutcome::Miss { writeback: Some(line) } => assert_eq!(line, 5),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = SetAssocCache::new(CacheConfig { capacity_bytes: 64, associativity: 1, line_bytes: 64 });
        c.access(5, false);
        match c.access(6, false) {
            AccessOutcome::Miss { writeback } => assert!(writeback.is_none()),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        // 2-way, 1 set.
        let mut c = SetAssocCache::new(CacheConfig { capacity_bytes: 128, associativity: 2, line_bytes: 64 });
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 0 is now MRU
        c.access(2, false); // evicts 1
        assert!(c.access(0, false).is_hit(), "MRU line must survive");
        assert!(!c.access(1, false).is_hit(), "LRU line must have been evicted");
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = small_cache();
        for line in 0..32u64 {
            c.access(line, true);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0, false).is_hit());
    }

    /// Literal prefill loop the closed form must reproduce exactly.
    fn loop_warm_fill(cache: &mut SetAssocCache, entries: &[(u64, u64)]) {
        for offset in 0..entries.iter().map(|&(_, hot)| hot).max().unwrap_or(0) {
            for &(base, hot) in entries {
                if offset < hot {
                    cache.access(base + offset, false);
                }
            }
        }
    }

    #[test]
    fn closed_form_warm_fill_matches_access_loop_exactly() {
        // Sweep geometries around the interesting boundaries: fewer arrivals
        // than ways, exactly full sets, and many-times-overwritten sets, with
        // unequal per-entry hot sizes (the rotation-averaged case).
        let geometries = [
            (64 * 64u64, 4usize), // 16 sets, 4-way
            (64 * 64, 8),         // 8 sets, 8-way
            (4 * 1024 * 1024, 8), // the paper L2
        ];
        let hot_sets: &[&[u64]] = &[
            &[3],
            &[1, 1, 1, 1],
            &[40, 17],
            &[8192, 16384, 12800, 40960], // W1 hot regions
            &[5, 100, 33, 7],
        ];
        for &(capacity, assoc) in &geometries {
            let cfg = CacheConfig { capacity_bytes: capacity, associativity: assoc, line_bytes: 64 };
            for hots in hot_sets {
                let entries: Vec<(u64, u64)> =
                    hots.iter().enumerate().map(|(i, &h)| (((i as u64) + 1) << 34, h)).collect();
                let mut direct = SetAssocCache::new(cfg);
                direct.warm_fill_round_robin(&entries);
                let mut looped = SetAssocCache::new(cfg);
                loop_warm_fill(&mut looped, &entries);
                assert_eq!(direct, looped, "cfg {cfg:?} hots {hots:?}");
            }
        }
    }

    #[test]
    fn warm_fill_fully_overwrites_a_dirty_cache() {
        // The fill defines the complete state, so filling a cache full of
        // unrelated dirty lines must equal filling a fresh one.
        let cfg = CacheConfig { capacity_bytes: 64 * 64, associativity: 4, line_bytes: 64 };
        let entries = [((1u64) << 34, 40u64), ((2u64) << 34, 7)];
        let mut fresh = SetAssocCache::new(cfg);
        fresh.warm_fill_round_robin(&entries);
        let mut dirty = SetAssocCache::new(cfg);
        for line in 0..500u64 {
            dirty.access(line * 3, true);
        }
        dirty.warm_fill_round_robin(&entries);
        assert_eq!(fresh, dirty);
        // Same contract on the fallback (unaligned) path.
        let unaligned = [(3u64, 40u64), (1 << 20, 17)];
        let mut fresh = SetAssocCache::new(cfg);
        fresh.warm_fill_round_robin(&unaligned);
        let mut dirty = SetAssocCache::new(cfg);
        for line in 0..500u64 {
            dirty.access(line * 3, true);
        }
        dirty.warm_fill_round_robin(&unaligned);
        assert_eq!(fresh, dirty);
    }

    #[test]
    fn warm_fill_falls_back_for_unaligned_bases() {
        // A base that is not a multiple of the set count forces the literal
        // loop; the result must still match it (trivially, by being it).
        let cfg = CacheConfig { capacity_bytes: 64 * 64, associativity: 4, line_bytes: 64 };
        let entries = [(3u64, 40u64), (1 << 20, 17)];
        let mut direct = SetAssocCache::new(cfg);
        direct.warm_fill_round_robin(&entries);
        let mut looped = SetAssocCache::new(cfg);
        loop_warm_fill(&mut looped, &entries);
        assert_eq!(direct, looped);
    }

    #[test]
    fn miss_rate_is_fraction_of_accesses() {
        let mut c = small_cache();
        c.access(1, false);
        c.access(1, false);
        c.access(2, false);
        c.access(2, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }
}
