//! Golden regression pins for [`MulticoreSim::run`].
//!
//! The exact measurements below (elapsed time, per-core statistics, traffic
//! window including the per-DIMM split, with floats pinned by bit pattern)
//! were captured from the pre-refactor closed loop. The flat-cache,
//! ring-queue, cached-min-schedule and warm-state-reuse rewrites of the
//! level-1 simulator must all be *behavior-preserving*: any drift in these
//! values is a correctness bug, not a tolerance issue.

use cpu_model::{CpuConfig, MulticoreSim, RunningMode};
use fbdimm_sim::FbdimmConfig;
use workloads::mixes;

struct Golden {
    label: &'static str,
    elapsed_ps: u64,
    /// (instructions, l2_accesses, l2_misses, mem_reads, spec_reads, mem_writes, stall_ps) per core.
    cores: [[u64; 7]; 4],
    /// (reads, writes, activations) of the traffic window.
    counts: [u64; 3],
    /// Bit patterns of (read_gbps, write_gbps, mean_read_latency_ns).
    rates_bits: [u64; 3],
    /// Bit patterns of (local_gbps, bypass_gbps, read_fraction) per DIMM
    /// position, in (channel-major, dimm) order.
    dimms_bits: [[u64; 3]; 8],
}

const GOLDENS: [Golden; 6] = [
    Golden {
        label: "W1/full",
        elapsed_ps: 99050534,
        cores: [
            [180504, 5456, 4804, 5502, 698, 0, 67501273],
            [235434, 5708, 4014, 4575, 561, 0, 60205883],
            [237728, 6266, 4011, 4608, 597, 0, 57563439],
            [417067, 7570, 2551, 2862, 311, 0, 39808287],
        ],
        counts: [17547, 0, 17547],
        rates_bits: [0x4026aceaaae4741f, 0x0, 0x405c25e420947164],
        dimms_bits: [
            [0x3fe6e0db06c9c1ae, 0x4000da9162e765a4, 0x3ff0000000000000],
            [0x3fe6c663cfcf3510, 0x3ff651f0dde730c0, 0x3ff0000000000000],
            [0x3fe68984d15bbe72, 0x3fe61a5cea72a30f, 0x3ff0000000000000],
            [0x3fe61a5cea72a30f, 0x0, 0x3ff0000000000000],
            [0x3fe7088dd941949c, 0x400104e9badead07, 0x3ff0000000000000],
            [0x3fe6ce54604d9274, 0x3ff6a2a9459690d5, 0x3ff0000000000000],
            [0x3fe6d8ea764b644c, 0x3fe66c6814e1bd5e, 0x3ff0000000000000],
            [0x3fe66c6814e1bd5e, 0x0, 0x3ff0000000000000],
        ],
    },
    Golden {
        label: "W1/gated2",
        elapsed_ps: 130235737,
        cores: [
            [428337, 12996, 8454, 9765, 1311, 0, 55872275],
            [494961, 12004, 6286, 7208, 922, 0, 48721682],
            [0, 0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 0, 0],
        ],
        counts: [16973, 0, 16973],
        rates_bits: [0x4020ae7f1d1f8c5a, 0x0, 0x4054ef8879d1d2a4],
        dimms_bits: [
            [0x3fe0b74d7f443fd6, 0x3ff900d6a834797e, 0x3ff0000000000000],
            [0x3fe0bb5412883a1e, 0x3ff0a32c9ef05c70, 0x3ff0000000000000],
            [0x3fe0ab39c57850ff, 0x3fe09b1f786867e0, 0x3ff0000000000000],
            [0x3fe09b1f786867e0, 0x0, 0x3ff0000000000000],
            [0x3fe0bb5412883a1e, 0x3ff8ffd503637aec, 0x3ff0000000000000],
            [0x3fe0bb5412883a1e, 0x3ff0a22afa1f5ddd, 0x3ff0000000000000],
            [0x3fe0a9367bd653db, 0x3fe09b1f786867e0, 0x3ff0000000000000],
            [0x3fe09b1f786867e0, 0x0, 0x3ff0000000000000],
        ],
    },
    Golden {
        label: "W1/cap6.4",
        elapsed_ps: 172473062,
        cores: [
            [178822, 5406, 4758, 5450, 692, 0, 141427811],
            [232933, 5649, 3968, 4524, 556, 0, 134138717],
            [239203, 6307, 4031, 4642, 611, 0, 130900461],
            [420843, 7638, 2577, 2878, 301, 0, 112655019],
        ],
        counts: [17494, 0, 17494],
        rates_bits: [0x4019f75698437c45, 0x0, 0x406b2695dfaaffae],
        dimms_bits: [
            [0x3fda3af970c043d2, 0x3ff34bb76114cb54, 0x3ff0000000000000],
            [0x3fd9eefa8ec3e22c, 0x3fe99ff17ac7a592, 0x3ff0000000000000],
            [0x3fd9d39eccc52fa7, 0x3fd96c4428ca1b7d, 0x3ff0000000000000],
            [0x3fd96c4428ca1b7d, 0x0, 0x3ff0000000000000],
            [0x3fda65882cbe3d11, 0x3ff37ad568128cfe, 0x3ff0000000000000],
            [0x3fd9f81924c37302, 0x3fe9f99e3dc3607a, 0x3ff0000000000000],
            [0x3fda2ed0a8c0d809, 0x3fd9c46bd2c5e8ed, 0x3ff0000000000000],
            [0x3fd9c46bd2c5e8ed, 0x0, 0x3ff0000000000000],
        ],
    },
    Golden {
        label: "W6/full",
        elapsed_ps: 141873338,
        cores: [
            [351208, 8477, 7027, 7972, 945, 0, 84108926],
            [246307, 6746, 5333, 5954, 621, 0, 93725221],
            [78303, 3048, 1900, 1969, 69, 0, 114621830],
            [561244, 6729, 3223, 3653, 430, 0, 49482659],
        ],
        counts: [19548, 0, 19548],
        rates_bits: [0x4021a2ef4bda343e, 0x0, 0x40576e7b7e5752d1],
        dimms_bits: [
            [0x3fe1d20d4b8b3bdc, 0x3ffa67ee0ffa53e1, 0x3ff0000000000000],
            [0x3fe1e2ae789c89d7, 0x3ff17696d3ac0ef4, 0x3ff0000000000000],
            [0x3fe175aa512b18d8, 0x3fe17783562d0511, 0x3ff0000000000000],
            [0x3fe17783562d0511, 0x0, 0x3ff0000000000000],
            [0x3fe1d3e6508d2814, 0x3ffa50d551624b1f, 0x3ff0000000000000],
            [0x3fe1e4877d9e7610, 0x3ff15e9192931018, 0x3ff0000000000000],
            [0x3fe15bcc0b102dc3, 0x3fe161571a15f26c, 0x3ff0000000000000],
            [0x3fe161571a15f26c, 0x0, 0x3ff0000000000000],
        ],
    },
    Golden {
        label: "W6/gated2",
        elapsed_ps: 147667414,
        cores: [
            [570634, 13804, 7238, 8292, 1054, 0, 53813273],
            [409363, 11196, 5564, 6226, 662, 0, 67709888],
            [0, 0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 0, 0],
        ],
        counts: [14518, 0, 14518],
        rates_bits: [0x40192b34dff84401, 0x0, 0x40543b694f441738],
        dimms_bits: [
            [0x3fd944f289c19252, 0x3ff2d9f83d87df6c, 0x3ff0000000000000],
            [0x3fd936bedca1f45a, 0x3fe918910cbec4ac, 0x3ff0000000000000],
            [0x3fd91de46daa9fe8, 0x3fd9133dabd2e96f, 0x3ff0000000000000],
            [0x3fd9133dabd2e96f, 0x0, 0x3ff0000000000000],
            [0x3fd94c0c6051614e, 0x3ff2d831c7e3ebad, 0x3ff0000000000000],
            [0x3fd93331f15a0cdc, 0x3fe916ca971ad0ed, 0x3ff0000000000000],
            [0x3fd91a578262b86b, 0x3fd9133dabd2e96f, 0x3ff0000000000000],
            [0x3fd9133dabd2e96f, 0x0, 0x3ff0000000000000],
        ],
    },
    Golden {
        label: "W6/cap6.4",
        elapsed_ps: 193260720,
        cores: [
            [347293, 8382, 6954, 7883, 929, 0, 136135687],
            [247692, 6781, 5359, 5990, 631, 0, 144883509],
            [77493, 3016, 1876, 1945, 69, 0, 166345927],
            [568679, 6821, 3251, 3679, 428, 0, 99726648],
        ],
        counts: [19497, 0, 19497],
        rates_bits: [0x4019d39015569a02, 0x0, 0x4060dbb15d30dd87],
        dimms_bits: [
            [0x3fda0ee80ff66ce2, 0x3ff35dbd54d7ac89, 0x3ff0000000000000],
            [0x3fda4a96da482b05, 0x3fe9962f3c8b438f, 0x3ff0000000000000],
            [0x3fd9aa87ea3e6749, 0x3fd981d68ed81fd5, 0x3ff0000000000000],
            [0x3fd981d68ed81fd5, 0x0, 0x3ff0000000000000],
            [0x3fda0ee80ff66ce2, 0x3ff341eecdda510a, 0x3ff0000000000000],
            [0x3fda4a96da482b05, 0x3fe95e922e908c91, 0x3ff0000000000000],
            [0x3fd95bdbb1013278, 0x3fd96148ac1fe6aa, 0x3ff0000000000000],
            [0x3fd96148ac1fe6aa, 0x0, 0x3ff0000000000000],
        ],
    },
];

const BUDGET: u64 = 25_000;

fn mode_for(label: &str, cpu: &CpuConfig) -> RunningMode {
    let full = RunningMode::full_speed(cpu);
    match label.split('/').nth(1).unwrap() {
        "full" => full,
        "gated2" => full.with_active_cores(2),
        "cap6.4" => full.with_bandwidth_cap_gbps(6.4),
        other => panic!("unknown mode label {other}"),
    }
}

#[test]
fn multicore_run_measurements_match_pre_refactor_goldens() {
    let cpu = CpuConfig::paper_quad_core();
    let mut sim = MulticoreSim::new(cpu.clone(), FbdimmConfig::ddr2_667_paper());
    for g in &GOLDENS {
        let mix = if g.label.starts_with("W1") { mixes::w1() } else { mixes::w6() };
        let m = sim.run(&mix.apps, &mode_for(g.label, &cpu), BUDGET);
        assert_eq!(m.elapsed_ps, g.elapsed_ps, "{}: elapsed_ps", g.label);
        assert_eq!(m.cores.len(), 4, "{}", g.label);
        for (i, (c, want)) in m.cores.iter().zip(g.cores.iter()).enumerate() {
            let got = [c.instructions, c.l2_accesses, c.l2_misses, c.mem_reads, c.spec_reads, c.mem_writes, c.stall_ps];
            assert_eq!(got, *want, "{}: core {i} stats", g.label);
        }
        let t = &m.traffic;
        assert_eq!([t.reads, t.writes, t.activations], g.counts, "{}: traffic counts", g.label);
        let rates = [t.read_gbps.to_bits(), t.write_gbps.to_bits(), t.mean_read_latency_ns.to_bits()];
        assert_eq!(rates, g.rates_bits, "{}: traffic rates", g.label);
        assert_eq!(t.dimms.len(), 8, "{}: dimm positions", g.label);
        for (d, want) in t.dimms.iter().zip(g.dimms_bits.iter()) {
            let got = [d.local_gbps.to_bits(), d.bypass_gbps.to_bits(), d.read_fraction.to_bits()];
            assert_eq!(got, *want, "{}: dimm ({}, {})", g.label, d.channel, d.dimm);
        }
    }
}

#[test]
fn repeated_runs_reuse_warm_state_without_drift() {
    // Back-to-back runs of the same (mix, mode) — the second run reuses the
    // cached warm cache image — must be bit-identical to the first.
    let cpu = CpuConfig::paper_quad_core();
    let mut sim = MulticoreSim::new(cpu.clone(), FbdimmConfig::ddr2_667_paper());
    let mode = RunningMode::full_speed(&cpu);
    let a = sim.run(&mixes::w1().apps, &mode, BUDGET);
    let b = sim.run(&mixes::w1().apps, &mode, BUDGET);
    assert_eq!(a, b);
}
