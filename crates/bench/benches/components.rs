//! Microbenchmarks of the individual substrates: the FBDIMM memory
//! simulator, the shared-cache model, the thermal RC models and the PID
//! controller.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cpu_model::{CacheConfig, SetAssocCache};
use fbdimm_sim::{FbdimmConfig, MemRequest, MemorySystem, RequestKind};
use memtherm::prelude::*;

fn bench_fbdimm_throughput(c: &mut Criterion) {
    c.bench_function("fbdimm/enqueue_10k_reads", |b| {
        b.iter_batched(
            || MemorySystem::new(FbdimmConfig::ddr2_667_paper()),
            |mut mem| {
                for line in 0..10_000u64 {
                    mem.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
                }
                mem.horizon_ps()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/4mb_8way_100k_accesses", |b| {
        b.iter_batched(
            || {
                SetAssocCache::new(CacheConfig {
                    capacity_bytes: 4 * 1024 * 1024,
                    associativity: 8,
                    line_bytes: 64,
                })
            },
            |mut cache| {
                let mut hits = 0u64;
                for i in 0..100_000u64 {
                    // Mix of a hot region and a streaming region.
                    let line = if i % 3 == 0 { i % 8_192 } else { 1_000_000 + i };
                    if cache.access(line, i % 4 == 0).is_hit() {
                        hits += 1;
                    }
                }
                hits
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_thermal_models(c: &mut Criterion) {
    c.bench_function("thermal/isolated_100k_steps", |b| {
        b.iter(|| {
            let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
            for _ in 0..100_000 {
                m.step(6.5, 2.0, 0.01);
            }
            m.amb_temp_c()
        })
    });
    c.bench_function("thermal/integrated_100k_steps", |b| {
        b.iter(|| {
            let mut m = IntegratedThermalModel::new(CoolingConfig::fdhs_1_0(), ThermalLimits::paper_fbdimm());
            for _ in 0..100_000 {
                m.step(6.5, 2.0, 5.0, 0.01);
            }
            m.amb_temp_c()
        })
    });
}

fn bench_pid(c: &mut Criterion) {
    c.bench_function("pid/100k_updates", |b| {
        b.iter(|| {
            let mut pid = PidController::paper_amb();
            let mut level = 0usize;
            for i in 0..100_000u64 {
                let temp = 108.0 + ((i % 200) as f64) / 100.0;
                level = pid.decide_level(temp, 0.01, 5);
            }
            level
        })
    });
}

fn bench_characterization(c: &mut Criterion) {
    c.bench_function("characterize/w1_full_speed_20k_accesses", |b| {
        b.iter_batched(
            || {
                CharacterizationTable::new(
                    CpuConfig::paper_quad_core(),
                    FbdimmConfig::ddr2_667_paper(),
                    mixes::w1().apps,
                    20_000,
                )
            },
            |mut table| table.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core())).total_gbps(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(3));
    targets = bench_fbdimm_throughput, bench_cache, bench_thermal_models, bench_pid, bench_characterization
}
criterion_main!(components);
