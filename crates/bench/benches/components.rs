//! Microbenchmarks of the individual substrates: the FBDIMM memory
//! simulator, the shared-cache model, the thermal RC models, the per-DIMM
//! thermal scene and the PID controller.
//!
//! Run with: `cargo bench -p experiments --bench components`

use cpu_model::{CacheConfig, SetAssocCache};
use experiments::harness::bench_case;
use fbdimm_sim::{FbdimmConfig, MemRequest, MemorySystem, RequestKind};
use memtherm::prelude::*;
use memtherm::thermal::scene::DimmThermalScene;

fn main() {
    bench_case("fbdimm/enqueue_10k_reads", 10, || {
        let mut mem = MemorySystem::new(FbdimmConfig::ddr2_667_paper());
        for line in 0..10_000u64 {
            mem.enqueue(MemRequest::new(line, RequestKind::Read, 0)).unwrap();
        }
        mem.horizon_ps()
    });

    bench_case("cache/4mb_8way_100k_accesses", 10, || {
        let mut cache =
            SetAssocCache::new(CacheConfig { capacity_bytes: 4 * 1024 * 1024, associativity: 8, line_bytes: 64 });
        let mut hits = 0u64;
        for i in 0..100_000u64 {
            // Mix of a hot region and a streaming region.
            let line = if i % 3 == 0 { i % 8_192 } else { 1_000_000 + i };
            if cache.access(line, i % 4 == 0).is_hit() {
                hits += 1;
            }
        }
        hits
    });

    bench_case("thermal/isolated_100k_steps", 10, || {
        let mut m = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        for _ in 0..100_000 {
            m.step(6.5, 2.0, 0.01);
        }
        m.amb_temp_c()
    });

    bench_case("thermal/integrated_100k_steps", 10, || {
        let mut m = IntegratedThermalModel::new(CoolingConfig::fdhs_1_0(), ThermalLimits::paper_fbdimm());
        for _ in 0..100_000 {
            m.step(6.5, 2.0, 5.0, 0.01);
        }
        m.amb_temp_c()
    });

    bench_case("thermal/scene_8_positions_100k_steps", 10, || {
        let mem = FbdimmConfig::ddr2_667_paper();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let powers: Vec<FbdimmPowerBreakdown> = (0..scene.len())
            .map(|i| FbdimmPowerBreakdown { amb_watts: 5.0 + 0.2 * i as f64, dram_watts: 1.5 })
            .collect();
        for _ in 0..100_000 {
            scene.step(&powers, 0.0, 0.01);
        }
        scene.observe().max_amb_c
    });

    bench_case("pid/100k_updates", 10, || {
        let mut pid = PidController::paper_amb();
        let mut level = 0usize;
        for i in 0..100_000u64 {
            let temp = 108.0 + ((i % 200) as f64) / 100.0;
            level = pid.decide_level(temp, 0.01, 5);
        }
        level
    });

    bench_case("characterize/w1_full_speed_20k_accesses", 5, || {
        let mut table = CharacterizationTable::new(
            CpuConfig::paper_quad_core(),
            FbdimmConfig::ddr2_667_paper(),
            mixes::w1().apps,
            20_000,
        );
        table.point(&RunningMode::full_speed(&CpuConfig::paper_quad_core())).total_gbps()
    });
}
