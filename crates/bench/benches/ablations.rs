//! Ablation benches for the design choices called out in DESIGN.md:
//! PID gains, thermal time constants, the core model's memory-level
//! parallelism and the DTM interval.
//!
//! Run with: `cargo bench -p experiments --bench ablations`

use experiments::harness::bench_case;
use memtherm::dtm::selector::LevelSelector;
use memtherm::prelude::*;
use memtherm::thermal::scene::ThermalObservation;

fn main() {
    for kc in [5.0, 10.4, 20.0] {
        bench_case(&format!("ablation_pid_gains/kc_{kc}"), 5, || {
            let amb = PidController::new(kc, 180.24, 0.001, 109.8, 109.0);
            let dram = PidController::paper_dram();
            let mut selector = LevelSelector::pid_with(ThermalLimits::paper_fbdimm(), amb, dram);
            // Closed loop against a first-order plant.
            let mut temp: f64 = 100.0;
            let stable = [116.0, 112.0, 109.5, 106.0, 101.0];
            for _ in 0..50_000 {
                let level = selector.select(temp, 70.0, 0.01);
                temp += (stable[level.index()] - temp) * (1.0 - (-0.01f64 / 50.0).exp());
            }
            temp
        });
    }

    for tau in [25.0, 50.0, 100.0] {
        bench_case(&format!("ablation_tau/tau_{tau}"), 5, || {
            let mut node = ThermalNode::new(50.0, tau);
            let mut over = 0u32;
            for i in 0..100_000 {
                let power_on = (i / 5_000) % 2 == 0;
                let stable = if power_on { 115.0 } else { 100.0 };
                if node.step(stable, 0.01) > 110.0 {
                    over += 1;
                }
            }
            over
        });
    }

    for mlp in [2usize, 8, 16] {
        bench_case(&format!("ablation_mlp/mlp_{mlp}"), 3, || {
            let mut cpu = CpuConfig::paper_quad_core();
            cpu.max_mlp = mlp;
            let mut table =
                CharacterizationTable::new(cpu.clone(), FbdimmConfig::ddr2_667_paper(), mixes::w1().apps, 10_000);
            table.point(&RunningMode::full_speed(&cpu)).total_gbps()
        });
    }

    for interval_ms in [1.0, 10.0, 100.0] {
        bench_case(&format!("ablation_dtm_interval/{interval_ms}ms"), 3, || {
            let mut cfg = MemSpotConfig {
                copies_per_app: 1,
                instruction_scale: 0.2,
                characterization_budget: 8_000,
                ..MemSpotConfig::paper(CoolingConfig::aohs_1_5())
            };
            cfg.dtm_interval_s = interval_ms / 1000.0;
            let mut spot = MemSpot::new(cfg);
            let mut policy = DtmAcg::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
            spot.run(&mixes::w1(), &mut policy).running_time_s
        });
    }

    // Raw policy decision rate on a fixed observation (the hot path of the
    // engine's DTM interval handling).
    bench_case("ablation_policy_decide/acg_1m_decisions", 5, || {
        let mut policy = DtmAcg::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
        let obs = ThermalObservation::from_hottest(109.2, 80.0);
        let mut cores = 0usize;
        for _ in 0..1_000_000 {
            cores = memtherm::dtm::policy::DtmPolicy::decide(&mut policy, &obs, 0.01).mode.active_cores;
        }
        cores
    });
}
