//! Ablation benches for the design choices called out in DESIGN.md:
//! PID gains, thermal time constants, the core model's memory-level
//! parallelism and the DTM interval.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use memtherm::dtm::selector::LevelSelector;
use memtherm::prelude::*;

fn bench_pid_gain_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pid_gains");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for kc in [5.0, 10.4, 20.0] {
        group.bench_with_input(BenchmarkId::from_parameter(kc), &kc, |b, &kc| {
            b.iter(|| {
                let amb = PidController::new(kc, 180.24, 0.001, 109.8, 109.0);
                let dram = PidController::paper_dram();
                let mut selector = LevelSelector::pid_with(ThermalLimits::paper_fbdimm(), amb, dram);
                // Closed loop against a first-order plant.
                let mut temp: f64 = 100.0;
                let stable = [116.0, 112.0, 109.5, 106.0, 101.0];
                for _ in 0..50_000 {
                    let level = selector.select(temp, 70.0, 0.01);
                    temp += (stable[level.index()] - temp) * (1.0 - (-0.01f64 / 50.0).exp());
                }
                temp
            })
        });
    }
    group.finish();
}

fn bench_tau_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tau");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for tau in [25.0, 50.0, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| {
                let mut node = ThermalNode::new(50.0, tau);
                let mut over = 0u32;
                for i in 0..100_000 {
                    let power_on = (i / 5_000) % 2 == 0;
                    let stable = if power_on { 115.0 } else { 100.0 };
                    if node.step(stable, 0.01) > 110.0 {
                        over += 1;
                    }
                }
                over
            })
        });
    }
    group.finish();
}

fn bench_mlp_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mlp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for mlp in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(mlp), &mlp, |b, &mlp| {
            b.iter(|| {
                let mut cpu = CpuConfig::paper_quad_core();
                cpu.max_mlp = mlp;
                let mut table = CharacterizationTable::new(
                    cpu.clone(),
                    FbdimmConfig::ddr2_667_paper(),
                    mixes::w1().apps,
                    10_000,
                );
                table.point(&RunningMode::full_speed(&cpu)).total_gbps()
            })
        });
    }
    group.finish();
}

fn bench_dtm_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dtm_interval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for interval_ms in [1.0, 10.0, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(interval_ms), &interval_ms, |b, &interval_ms| {
            b.iter(|| {
                let mut cfg = MemSpotConfig {
                    copies_per_app: 1,
                    instruction_scale: 0.2,
                    characterization_budget: 8_000,
                    ..MemSpotConfig::paper(CoolingConfig::aohs_1_5())
                };
                cfg.dtm_interval_s = interval_ms / 1000.0;
                let mut spot = MemSpot::new(cfg);
                let mut policy = DtmAcg::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
                spot.run(&mixes::w1(), &mut policy).running_time_s
            })
        });
    }
    group.finish();
}

criterion_group!(ablations, bench_pid_gain_sweep, bench_tau_sensitivity, bench_mlp_sweep, bench_dtm_interval);
criterion_main!(ablations);
