//! End-to-end benchmarks of the second-level (MEMSpot) simulator: one full
//! batch simulation per DTM scheme at smoke scale.
//!
//! Run with: `cargo bench -p experiments --bench memspot`

use experiments::harness::bench_case;
use memtherm::prelude::*;

fn config() -> MemSpotConfig {
    MemSpotConfig {
        copies_per_app: 1,
        instruction_scale: 0.3,
        characterization_budget: 10_000,
        ..MemSpotConfig::paper(CoolingConfig::aohs_1_5())
    }
}

fn main() {
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();

    let mut spot = MemSpot::new(config());
    bench_case("memspot_w1/no_limit", 5, || {
        let mut p = memtherm::dtm::NoLimit::new(&cpu);
        spot.run(&mixes::w1(), &mut p).running_time_s
    });

    let mut spot = MemSpot::new(config());
    bench_case("memspot_w1/dtm_ts", 5, || {
        let mut p = DtmTs::new(cpu.clone(), limits);
        spot.run(&mixes::w1(), &mut p).running_time_s
    });

    let mut spot = MemSpot::new(config());
    bench_case("memspot_w1/dtm_acg_pid", 5, || {
        let mut p = DtmAcg::with_pid(cpu.clone(), limits);
        spot.run(&mixes::w1(), &mut p).running_time_s
    });

    let mut spot = MemSpot::new(config().with_integrated(None));
    bench_case("memspot_w1/dtm_cdvfs_integrated", 5, || {
        let mut p = DtmCdvfs::new(cpu.clone(), limits);
        spot.run(&mixes::w1(), &mut p).running_time_s
    });
}
