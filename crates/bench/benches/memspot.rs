//! End-to-end benchmarks of the second-level (MEMSpot) simulator: one full
//! batch simulation per DTM scheme at smoke scale.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};

use memtherm::prelude::*;

fn config() -> MemSpotConfig {
    MemSpotConfig {
        copies_per_app: 1,
        instruction_scale: 0.3,
        characterization_budget: 10_000,
        ..MemSpotConfig::paper(CoolingConfig::aohs_1_5())
    }
}

fn bench_memspot_schemes(c: &mut Criterion) {
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mut group = c.benchmark_group("memspot_w1");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("no_limit", |b| {
        let mut spot = MemSpot::new(config());
        b.iter(|| {
            let mut p = memtherm::dtm::NoLimit::new(&cpu);
            spot.run(&mixes::w1(), &mut p).running_time_s
        })
    });
    group.bench_function("dtm_ts", |b| {
        let mut spot = MemSpot::new(config());
        b.iter(|| {
            let mut p = DtmTs::new(cpu.clone(), limits);
            spot.run(&mixes::w1(), &mut p).running_time_s
        })
    });
    group.bench_function("dtm_acg_pid", |b| {
        let mut spot = MemSpot::new(config());
        b.iter(|| {
            let mut p = DtmAcg::with_pid(cpu.clone(), limits);
            spot.run(&mixes::w1(), &mut p).running_time_s
        })
    });
    group.bench_function("dtm_cdvfs_integrated", |b| {
        let mut spot = MemSpot::new(config().with_integrated(None));
        b.iter(|| {
            let mut p = DtmCdvfs::new(cpu.clone(), limits);
            spot.run(&mixes::w1(), &mut p).running_time_s
        })
    });
    group.finish();
}

criterion_group!(memspot, bench_memspot_schemes);
criterion_main!(memspot);
