//! End-to-end benchmarks of the second-level (MEMSpot) simulator: one full
//! batch simulation per DTM scheme at smoke scale. Results are also written
//! to `BENCH_memspot.json` (same schema as `BENCH_sweep.json`, its own file
//! so `cargo bench -p experiments` running both targets never clobbers the
//! sweep dataset) so perf can be tracked across PRs.
//!
//! Run with: `cargo bench -p experiments --bench memspot`

use experiments::harness::{bench_case, bench_output_path, write_bench_json};
use memtherm::prelude::*;

fn config() -> MemSpotConfig {
    MemSpotConfig {
        copies_per_app: 1,
        instruction_scale: 0.3,
        characterization_budget: 10_000,
        ..MemSpotConfig::paper(CoolingConfig::aohs_1_5())
    }
}

fn main() {
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mut stats = Vec::new();

    let mut spot = MemSpot::new(config());
    stats.push(bench_case("memspot_w1/no_limit", 5, || {
        let mut p = memtherm::dtm::NoLimit::new(&cpu);
        spot.run(&mixes::w1(), &mut p).running_time_s
    }));

    let mut spot = MemSpot::new(config());
    stats.push(bench_case("memspot_w1/dtm_ts", 5, || {
        let mut p = DtmTs::new(cpu.clone(), limits);
        spot.run(&mixes::w1(), &mut p).running_time_s
    }));

    let mut spot = MemSpot::new(config());
    stats.push(bench_case("memspot_w1/dtm_acg_pid", 5, || {
        let mut p = DtmAcg::with_pid(cpu.clone(), limits);
        spot.run(&mixes::w1(), &mut p).running_time_s
    }));

    let mut spot = MemSpot::new(config().with_integrated(None));
    stats.push(bench_case("memspot_w1/dtm_cdvfs_integrated", 5, || {
        let mut p = DtmCdvfs::new(cpu.clone(), limits);
        spot.run(&mixes::w1(), &mut p).running_time_s
    }));

    let path = bench_output_path("BENCH_memspot.json");
    write_bench_json(&path, &stats, &[]).expect("write BENCH_memspot.json");
    println!("wrote {}", path.display());
}
