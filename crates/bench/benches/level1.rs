//! Level-1 characterization benchmark: the CI perf gate of the closed-loop
//! simulator and its caches.
//!
//! Measures characterization throughput (design points per second) for the
//! workload the pre-PR baseline was recorded on — the W1 mix at a 40 000
//! demand-access budget, across the full-speed, core-gated (2 active) and
//! bandwidth-capped (6.4 GB/s) design points — in three configurations:
//!
//! * **cold / batch** — a fresh in-memory `CharStore` and table per pass,
//!   resolved through [`CharacterizationTable::points`] (the production
//!   path: independent design points fan out across cores, rotations of a
//!   gated point across threads, warm cache images replayed as flat
//!   `memcpy`s);
//! * **cold / sequential** — the same work resolved one `point()` at a time
//!   on a single thread, isolating the single-thread engine improvements;
//! * **disk-warm** — a `CharStore::with_disk_cache` store whose file was
//!   populated by an earlier pass: every lookup is served from disk and the
//!   closed loop never runs.
//!
//! Results go to `BENCH_level1.json` (uploaded by CI). The bench exits
//! non-zero on a 2+-core host if the cold batch path drops below the gate
//! multiple (default 1.2x, `LEVEL1_GATE_MIN_SPEEDUP` to override) of the
//! recorded pre-PR baseline, or if the disk-warm path fails to beat cold by
//! a wide margin (which would mean the cache is not actually skipping
//! level-1 work). On the 2-core reference container, interleaved
//! matched-window A/B runs of the pre- and post-PR binaries measure
//! 1.8-2.1x cold-batch speedup (median ~1.9x, best 0.0225 s vs 0.0111 s
//! for the three points) over the 133 points/s pre-PR baseline.
//!
//! Run with: `cargo bench -p experiments --bench level1`

use std::sync::Arc;
use std::time::Instant;

use experiments::harness::{bench_output_path, write_bench_json, BenchStats};
use memtherm::prelude::*;

/// Cold points/sec of the pre-refactor level-1 engine (sequential
/// `point()` calls, full prefill every run), best-of-12 on the 2-core
/// reference container immediately before this overhaul.
const PRE_PR_COLD_PPS_2CORE_REF: f64 = 133.0;

const BUDGET: u64 = 40_000;
const PASSES: usize = 24;

fn modes(cpu: &CpuConfig) -> [RunningMode; 3] {
    let full = RunningMode::full_speed(cpu);
    [full, full.with_active_cores(2), full.with_bandwidth_cap_gbps(6.4)]
}

fn fresh_table(store: Arc<CharStore>) -> CharacterizationTable {
    CharacterizationTable::with_store(
        CpuConfig::paper_quad_core(),
        FbdimmConfig::ddr2_667_paper(),
        "W1",
        workloads::mixes::w1().apps,
        BUDGET,
        store,
    )
}

fn main() {
    let cpu = CpuConfig::paper_quad_core();
    let modes = modes(&cpu);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Cold, batch (production) path: fresh store and table per pass.
    let mut cold_batch_s = Vec::with_capacity(PASSES);
    let mut reference = None;
    for _ in 0..PASSES {
        let mut table = fresh_table(Arc::new(CharStore::new()));
        let start = Instant::now();
        let points = table.points(&modes);
        cold_batch_s.push(start.elapsed().as_secs_f64());
        reference = Some(points);
    }
    let reference = reference.expect("at least one pass");

    // Cold, sequential path (single-thread engine, one point at a time).
    let mut cold_seq_s = Vec::with_capacity(PASSES);
    for _ in 0..PASSES {
        let mut table = fresh_table(Arc::new(CharStore::new())).with_rotation_threads(1);
        let start = Instant::now();
        for mode in &modes {
            std::hint::black_box(table.point(mode));
        }
        cold_seq_s.push(start.elapsed().as_secs_f64());
    }

    // Disk-warm path: populate a cache file once, then measure lookups that
    // never run the closed loop. Also proves bit-identity across the disk
    // round trip.
    let cache_path = std::env::temp_dir().join(format!("bench_level1_char_cache_{}.jsonl", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    fresh_table(Arc::new(CharStore::with_disk_cache(&cache_path).expect("open disk cache"))).points(&modes);
    let mut warm_s = Vec::with_capacity(PASSES);
    let mut warm_misses = 0u64;
    for _ in 0..PASSES {
        let store = Arc::new(CharStore::with_disk_cache(&cache_path).expect("open disk cache"));
        let mut table = fresh_table(Arc::clone(&store));
        let start = Instant::now();
        let points = table.points(&modes);
        warm_s.push(start.elapsed().as_secs_f64());
        warm_misses += store.misses();
        for (a, b) in reference.iter().zip(points.iter()) {
            assert_eq!(**a, **b, "disk-cached points must be bit-identical to computed ones");
        }
    }
    std::fs::remove_file(&cache_path).ok();

    let min = |xs: &[f64]| xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let pps = |best_s: f64| modes.len() as f64 / best_s.max(1e-12);

    let cold_batch_pps = pps(min(&cold_batch_s));
    let cold_seq_pps = pps(min(&cold_seq_s));
    let warm_pps = pps(min(&warm_s));
    let speedup_vs_pre_pr = cold_batch_pps / PRE_PR_COLD_PPS_2CORE_REF;

    println!("level1 characterization: {} passes x {} points, budget {BUDGET}", PASSES, modes.len());
    println!(
        "level1/cold_batch       {:>10.1} points/s (best) — {:.2}x vs pre-PR ref",
        cold_batch_pps, speedup_vs_pre_pr
    );
    println!(
        "level1/cold_sequential  {:>10.1} points/s (best) — {:.2}x vs pre-PR ref",
        cold_seq_pps,
        cold_seq_pps / PRE_PR_COLD_PPS_2CORE_REF
    );
    println!(
        "level1/disk_warm        {:>10.1} points/s (best), {} misses over {} passes",
        warm_pps, warm_misses, PASSES
    );

    let to_stats = |label: &str, samples: &[f64]| BenchStats {
        label: label.to_string(),
        mean_ms: mean(samples) * 1e3,
        min_ms: min(samples) * 1e3,
        iters: PASSES,
    };
    let stats = [
        to_stats("level1/cold_batch", &cold_batch_s),
        to_stats("level1/cold_sequential", &cold_seq_s),
        to_stats("level1/disk_warm", &warm_s),
    ];
    let metrics = [
        ("points", modes.len() as f64),
        ("budget", BUDGET as f64),
        ("threads", threads as f64),
        ("cold_batch_points_per_sec", cold_batch_pps),
        ("cold_sequential_points_per_sec", cold_seq_pps),
        ("disk_warm_points_per_sec", warm_pps),
        ("disk_warm_misses", warm_misses as f64),
        ("pre_pr_cold_pps_2core_ref", PRE_PR_COLD_PPS_2CORE_REF),
        ("cold_speedup_vs_pre_pr", speedup_vs_pre_pr),
    ];
    let path = bench_output_path("BENCH_level1.json");
    write_bench_json(&path, &stats, &metrics).expect("write BENCH_level1.json");
    println!("wrote {}", path.display());

    if warm_misses > 0 {
        eprintln!("FAIL: disk-warm passes performed {warm_misses} level-1 computations; the cache must serve all");
        std::process::exit(1);
    }
    // The warm path skips the closed loop entirely; if it is not decisively
    // faster than cold, the disk cache is not actually doing its job.
    if warm_pps < 5.0 * cold_batch_pps {
        eprintln!("FAIL: disk-warm {warm_pps:.0} points/s is not clearly faster than cold {cold_batch_pps:.0}");
        std::process::exit(1);
    }
    // The default gate is a conservative regression floor rather than the
    // full same-host speedup (~2x on the reference container with matched
    // measurement windows): shared CI runners and this container both see
    // multiplicative host noise of tens of percent, and a flaky gate is
    // worse than a loose one.
    let gate: f64 = std::env::var("LEVEL1_GATE_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok()).unwrap_or(1.2);
    if threads >= 2 && speedup_vs_pre_pr < gate {
        eprintln!(
            "FAIL: cold batch speedup {speedup_vs_pre_pr:.2}x vs the recorded pre-PR baseline is below the {gate:.2}x gate"
        );
        std::process::exit(1);
    }
}
