//! Smoke-scale regeneration of the Chapter 5 figures (the server-platform
//! case study).
//!
//! Run with: `cargo bench -p experiments --bench figures_ch5`

use experiments::ch5;
use experiments::harness::{bench_case, Scale};

fn main() {
    bench_case("figures_ch5/fig5_4_homogeneous_curves", 2, || ch5::fig5_4(Scale::Smoke).rows.len());
    bench_case("figures_ch5/fig5_5_homogeneous_averages", 2, || ch5::fig5_5(Scale::Smoke).rows.len());
    bench_case("figures_ch5/fig5_6_policy_comparison", 2, || ch5::fig5_6(Scale::Smoke).rows.len());
    bench_case("figures_ch5/fig5_8_l2_misses", 2, || ch5::fig5_8(Scale::Smoke).rows.len());
    bench_case("figures_ch5/fig5_13_fixed_frequency", 2, || ch5::fig5_13(Scale::Smoke).rows.len());
    bench_case("figures_ch5/fig5_15_time_slice_model", 2, || ch5::fig5_15(Scale::Smoke).rows.len());
}
