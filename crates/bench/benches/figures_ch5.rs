//! Smoke-scale regeneration of the Chapter 5 figures (the server-platform
//! case study).

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};

use experiments::ch5;
use experiments::harness::Scale;

fn bench_ch5_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_ch5");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("fig5_4_homogeneous_curves", |b| b.iter(|| ch5::fig5_4(Scale::Smoke).rows.len()));
    group.bench_function("fig5_5_homogeneous_averages", |b| b.iter(|| ch5::fig5_5(Scale::Smoke).rows.len()));
    group.bench_function("fig5_6_policy_comparison", |b| b.iter(|| ch5::fig5_6(Scale::Smoke).rows.len()));
    group.bench_function("fig5_8_l2_misses", |b| b.iter(|| ch5::fig5_8(Scale::Smoke).rows.len()));
    group.bench_function("fig5_13_fixed_frequency", |b| b.iter(|| ch5::fig5_13(Scale::Smoke).rows.len()));
    group.bench_function("fig5_15_time_slice_model", |b| b.iter(|| ch5::fig5_15(Scale::Smoke).rows.len()));
    group.finish();
}

criterion_group!(figures_ch5, bench_ch5_figures);
criterion_main!(figures_ch5);
