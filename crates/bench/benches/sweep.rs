//! Smoke-scale sweep benchmark: the CI perf gate of the sweep engine.
//!
//! Runs a 16-cell grid — {AOHS_1.5, FDHS_1.0} × {W1, W6} × {No-limit,
//! DTM-TS, DTM-ACG, DTM-CDVFS} — three times sequentially and three times
//! across all cores (every pass with its own fresh `CharStore`, so the
//! comparison is fair), writes the machine-readable `BENCH_sweep.json`
//! artifact and exits non-zero if the best-of-3 parallel speedup on a
//! 2+-core host drops below 1.2x. Gating on minimum times filters the
//! scheduler/noisy-neighbor interference that single-shot wall clocks pick
//! up on small shared CI runners.
//!
//! A `batched` case then reruns the same grid on ONE worker against a
//! pre-warmed shared `CharStore`, per-cell engine vs the batched lockstep
//! engine with steady-state fast-forward, and gates the batched engine's
//! best-of-3 speedup at 1.2x (`batched_vs_sequential_speedup`).
//!
//! A `lane_parallel` case reruns the warm grid as ONE batch whose lockstep
//! lanes fan across all cores (`SweepExecution::lane_parallel`), gating the
//! best-of-3 speedup over the single-thread batched run at 1.2x on 2+-core
//! hosts. A `stacked_window_cost` case then measures the literal per-window
//! cost of a 4-high 3D stack against the FBDIMM identity-split path through
//! direct `BatchedSimEngine` runs and gates the ratio at 2x — the cached
//! Ψ-superposition matrices are what keep deep stacks affordable.
//!
//! A `store_contention` case measures the sharded `CharStore`'s hit path
//! under read contention: 16 threads hammer 4 hot pre-inserted keys, once
//! through `CharStore::get_or_compute` (per-shard mutexes + atomic stats)
//! and once through a single `Mutex<HashMap>` baseline — the pre-sharding
//! layout — recording ns/op for both plus the host core count
//! (`store_contention_cores`). No gate, and on a sub-2-core runner the
//! speedup metric is suppressed entirely (raw ns/op only): timesliced
//! threads measure scheduler behavior, not lock contention, and a
//! meaningless ratio in the artifact invites false trend alarms.
//!
//! A `stacked` case then runs 4-high 3D-stack cells through the same
//! runner so `BENCH_sweep.json` tracks the stacked-scenario axis, and
//! gates that the per-layer thermal field is actually resolved: the peak
//! of the inner die (next to the hot base die) must exceed the peak of
//! the spreader-side outer die by a nonzero margin under load.
//!
//! A `spatial` case follows: DTM-BW (global throttling) vs DTM-MIG
//! (migration-aware steering) on the same 4-high stack. Migration must
//! *flatten* the thermal field — the hottest-vs-coldest position peak
//! spread under DTM-MIG has to come in strictly below DTM-BW's — and the
//! reduction in °C is recorded and gated > 0.
//!
//! The default grid also carries one relay-cadence cell (DTM-ACG at
//! dt = 5 s), where threshold decisions settle into an exactly periodic
//! relay orbit: it keeps the verified limit-cycle tier exercised, and the
//! grid-level `periodic_cycles` counter is gated > 0. A second cadence
//! cell (DTM-BW at 10 ms under FDHS) slides along its throttle threshold
//! so only the envelope tier's exact decision replay can fast-forward it:
//! the default-options grid runs are gated `grid_envelope_cycles` > 0.
//!
//! A `paper_cadence` case runs the paper's own operating point: a 16-cell
//! pure-policy grid (all four policies, both coolings, six mixes) at
//! Lin et al.'s 10 ms DTM cadence, once with
//! the envelope tier enabled and once forced literal. It gates the
//! envelope speedup at 20x, the analytic replay phase at 25 ms summed
//! over the grid, `envelope_cycles` > 0, every reported quantity within
//! the contraction-certified 1e-9 bound, and exact window-count
//! conservation — and records the per-phase wall-clock split (detector /
//! verify / replay / literal stepping) so FF regressions are attributable
//! from the JSON artifact alone.
//!
//! The batch size is a few times the `Smoke` scale: large enough that the
//! parallelizable window loops dominate the (partly serialized, shared)
//! level-1 characterizations, which keeps the speedup measurement stable on
//! small CI runners while still finishing in a few seconds.
//!
//! Run with: `cargo bench -p experiments --bench sweep`

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cpu_model::{OperatingPoint, RunningMode};
use experiments::ch4::PolicySpec;
use experiments::harness::{bench_output_path, write_bench_json, BenchStats};
use experiments::sweep::{SweepExecution, SweepRunner, SweepScenario};
use memtherm::dtm::no_limit::NoLimit;
use memtherm::prelude::*;
use memtherm::sim::characterize::{CharPoint, CharStoreKey, ModeKey};

fn grid() -> Vec<SweepScenario> {
    let specs =
        vec![PolicySpec::NoLimit, PolicySpec::Ts, PolicySpec::Acg { pid: false }, PolicySpec::Cdvfs { pid: false }];
    let mut scenarios = Vec::new();
    for cooling in [CoolingConfig::aohs_1_5(), CoolingConfig::fdhs_1_0()] {
        for mix in [workloads::mixes::w1(), workloads::mixes::w6()] {
            scenarios.push(SweepScenario::isolated(cooling, mix, specs.clone()));
        }
    }
    // Relay-cadence cell: DTM-ACG driven at a 5 s decision interval under
    // the weaker cooling behaves as a relay oscillator whose limit cycle
    // the periodic fast-forward must capture (gated below:
    // periodic_cycles > 0; the better-cooled scenarios never cross the
    // thresholds at this cadence and settle steady instead).
    scenarios.push(
        SweepScenario::isolated(
            CoolingConfig::aohs_1_5(),
            workloads::mixes::w1(),
            vec![PolicySpec::Acg { pid: false }],
        )
        .with_cadence(5.0),
    );
    // Envelope-cadence cell: DTM-BW at the paper's native 10 ms interval
    // under the stronger cooling slides along its throttle threshold — the
    // plan flips every couple of windows, so neither the steady nor the
    // periodic tier can engage and only the envelope tier's exact decision
    // replay carries it analytically (gated below on the default-options
    // grid: grid_envelope_cycles > 0).
    scenarios.push(
        SweepScenario::isolated(CoolingConfig::fdhs_1_0(), workloads::mixes::w5(), vec![PolicySpec::Bw { pid: false }])
            .with_cadence(0.010),
    );
    scenarios
}

fn main() {
    let scenarios = grid();
    let cells: usize = scenarios.iter().map(SweepScenario::cells).sum();
    let make = |cooling: CoolingConfig| MemSpotConfig {
        copies_per_app: 24,
        instruction_scale: 1.0,
        characterization_budget: 15_000,
        ..MemSpotConfig::paper(cooling)
    };

    const PASSES: usize = 3;
    let mut seq_ms = Vec::with_capacity(PASSES);
    let mut par_ms = Vec::with_capacity(PASSES);
    let mut last_parallel = None;
    for _ in 0..PASSES {
        seq_ms.push(SweepRunner::with_threads(1).run(&scenarios, make).wall_clock_s * 1e3);
        let parallel = SweepRunner::new().run(&scenarios, make);
        par_ms.push(parallel.wall_clock_s * 1e3);
        last_parallel = Some(parallel);
    }
    let parallel = last_parallel.expect("at least one parallel pass");
    let min = |xs: &[f64]| xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let speedup = min(&seq_ms) / min(&par_ms).max(1e-9);

    println!("sweep grid: {} cells, {PASSES} passes per variant", cells);
    println!(
        "sweep/sequential_1_worker                    {:>10.3} ms/pass (min {:.3} ms)",
        mean(&seq_ms),
        min(&seq_ms)
    );
    println!(
        "sweep/parallel_{}_workers                     {:>10.3} ms/pass (min {:.3} ms, {speedup:.2}x best-of-{PASSES} speedup)",
        parallel.threads,
        mean(&par_ms),
        min(&par_ms)
    );
    println!(
        "char store: {} hits / {} misses (last parallel pass)",
        parallel.char_store_hits, parallel.char_store_misses
    );

    // Batched-engine case: the tier-3 lockstep engine + steady-state
    // fast-forward against the per-cell engine, both on ONE worker and both
    // against the same pre-warmed shared `CharStore`, so the comparison
    // isolates exactly the window-loop work the batched engine restructures
    // (level-1 characterization is identical either way and excluded).
    // The exact-tier cases (batched, lane-parallel) run with the envelope
    // tier off: they measure and gate the bit-identical / 1e-9 ladder — in
    // particular the relay cell's verified limit cycles, which an envelope
    // burst would otherwise absorb. The `paper_cadence` case below owns the
    // envelope tier.
    let exact_ff = BatchOptions { envelope_tolerance: 0.0, ..BatchOptions::default() };
    let warm_store = Arc::new(CharStore::new());
    SweepRunner::with_threads(1)
        .with_char_store(Arc::clone(&warm_store))
        .with_execution(SweepExecution::PerCell)
        .run(&scenarios, make);
    let mut percell_ms = Vec::with_capacity(PASSES);
    let mut batched_ms = Vec::with_capacity(PASSES);
    let mut last_batched = None;
    for _ in 0..PASSES {
        percell_ms.push(
            SweepRunner::with_threads(1)
                .with_char_store(Arc::clone(&warm_store))
                .with_execution(SweepExecution::PerCell)
                .run(&scenarios, make)
                .wall_clock_s
                * 1e3,
        );
        let batched = SweepRunner::with_threads(1)
            .with_char_store(Arc::clone(&warm_store))
            .with_batch_options(exact_ff)
            .run(&scenarios, make);
        batched_ms.push(batched.wall_clock_s * 1e3);
        last_batched = Some(batched);
    }
    let batched = last_batched.expect("at least one batched pass");
    let batched_vs_sequential_speedup = min(&percell_ms) / min(&batched_ms).max(1e-9);
    println!(
        "sweep/warm_percell_1_worker                  {:>10.3} ms/pass (min {:.3} ms)",
        mean(&percell_ms),
        min(&percell_ms)
    );
    println!(
        "sweep/warm_batched_1_worker                  {:>10.3} ms/pass (min {:.3} ms, \
         {batched_vs_sequential_speedup:.2}x best-of-{PASSES} speedup, {} windows fast-forwarded across {} cells)",
        mean(&batched_ms),
        min(&batched_ms),
        batched.fast_forwarded_windows,
        batched.fast_forwarded_cells
    );

    // Lane-parallel case: the same warm grid, still one runner chunk (so
    // the whole grid is one batch), but the batch's lockstep lanes fanned
    // across all available cores. Bit-identical to the single-thread
    // batched run by construction; the gate only fires on multi-core hosts
    // (a 1-core container runs the worker pool degenerately).
    let lane_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut lane_ms = Vec::with_capacity(PASSES);
    for _ in 0..PASSES {
        lane_ms.push(
            SweepRunner::with_threads(1)
                .with_char_store(Arc::clone(&warm_store))
                .with_batch_options(exact_ff)
                .with_execution(SweepExecution::lane_parallel(lane_workers))
                .run(&scenarios, make)
                .wall_clock_s
                * 1e3,
        );
    }
    let lane_parallel_speedup = min(&batched_ms) / min(&lane_ms).max(1e-9);
    println!(
        "sweep/warm_lane_parallel_{lane_workers}_workers            {:>10.3} ms/pass (min {:.3} ms, \
         {lane_parallel_speedup:.2}x best-of-{PASSES} vs single-thread batched)",
        mean(&lane_ms),
        min(&lane_ms)
    );

    // Store-contention case: the sharded store's hit path vs the
    // pre-sharding single-lock layout, 16 threads over 4 hot keys. Every
    // lookup is a hit (asserted below), so no characterization work is
    // timed — only lock traffic plus the per-op fixed costs (the
    // miss-capable `get_or_compute` API takes an owned key, so the
    // sharded side pays a key clone per lookup that the bare-map
    // baseline does not; on a 1-core host that fixed cost dominates and
    // the ratio dips below 1x, while real contention only exists on
    // multi-core hosts).
    const CONTENTION_THREADS: usize = 16;
    const CONTENTION_OPS: usize = 5_000;
    let contention_point = |i: u64| CharPoint {
        mode: RunningMode { active_cores: 4, op: OperatingPoint::new(3.2, 1.55), bandwidth_cap: None },
        instr_rate_total: 1e9 + i as f64,
        core_share: vec![0.25; 4],
        read_gbps: 4.0,
        write_gbps: 2.0,
        dimm_traffic: Vec::new(),
        ipc_ref_sum: 3.5,
        l2_miss_rate: 0.25,
        l2_misses_per_instr: 0.01,
        bytes_per_instr: 1.5,
    };
    let hot_keys: Vec<CharStoreKey> = (0..4u64)
        .map(|i| CharStoreKey {
            mix_id: "bench-contention".to_string(),
            mode: ModeKey { active_cores: 4, freq_mhz: 3200, cap_mbps: u32::MAX },
            budget: 10_000 + i,
            channels: 2,
            dimms_per_channel: 4,
            hw_fingerprint: 0xbeef_cafe,
        })
        .collect();
    let hot = &hot_keys;
    let run_contention = |lookup: &(dyn Fn(&CharStoreKey) -> Arc<CharPoint> + Sync)| -> Vec<f64> {
        (0..PASSES)
            .map(|_| {
                let start = std::time::Instant::now();
                std::thread::scope(|scope| {
                    for t in 0..CONTENTION_THREADS {
                        scope.spawn(move || {
                            for op in 0..CONTENTION_OPS {
                                std::hint::black_box(lookup(&hot[(op + t) % hot.len()]));
                            }
                        });
                    }
                });
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect()
    };
    let contention_store = Arc::new(CharStore::new());
    for (i, key) in hot_keys.iter().enumerate() {
        contention_store.get_or_compute(key.clone(), || contention_point(i as u64));
    }
    let contention_sharded_ms = run_contention(&|key| {
        contention_store.get_or_compute(key.clone(), || unreachable!("hot keys are pre-inserted"))
    });
    assert_eq!(contention_store.misses(), hot_keys.len() as u64, "contention case must never characterize");
    let single_lock: Mutex<HashMap<CharStoreKey, Arc<CharPoint>>> = Mutex::new(
        hot_keys.iter().enumerate().map(|(i, key)| (key.clone(), Arc::new(contention_point(i as u64)))).collect(),
    );
    let contention_single_lock_ms = run_contention(&|key| {
        single_lock.lock().expect("baseline map lock").get(key).cloned().expect("hot keys are pre-inserted")
    });
    let contention_ops = (CONTENTION_THREADS * CONTENTION_OPS) as f64;
    let sharded_ns_per_op = min(&contention_sharded_ms) * 1e6 / contention_ops;
    let single_lock_ns_per_op = min(&contention_single_lock_ms) * 1e6 / contention_ops;
    // On a sub-2-core host the 16 threads timeslice and the ratio measures
    // the scheduler, not lock contention: record the raw ns/op and the core
    // count, but suppress the speedup metric so the artifact never carries
    // a number that cannot mean what its name says.
    let store_contention_cores = lane_workers;
    let store_contention_speedup =
        (store_contention_cores >= 2).then(|| single_lock_ns_per_op / sharded_ns_per_op.max(1e-9));
    let contention_ratio = match store_contention_speedup {
        Some(s) => format!("{s:.2}x, "),
        None => format!("speedup suppressed on {store_contention_cores} core, "),
    };
    println!(
        "sweep/store_contention                       {:>10.1} ns/op sharded vs {:.1} ns/op single-lock \
         ({contention_ratio}{CONTENTION_THREADS} threads x {} hot keys, best-of-{PASSES})",
        sharded_ns_per_op,
        single_lock_ns_per_op,
        hot_keys.len()
    );

    // Stacked window-cost case: the cached Ψ-superposition path must keep a
    // 4-high stack's literal per-window cost within 2x of the FBDIMM
    // identity-split path, despite stepping 2.5x the RC rows per position.
    // Direct BatchedSimEngine runs expose the stepped-window counts the
    // normalization needs; literal options keep the fast-forward out of the
    // denominator.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let fb_power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let window_engine = BatchedSimEngine::new(&cpu, &mem, &fb_power, &cpu_power);
    let window_store = Arc::new(CharStore::new());
    let window_cells = |stack: StackKind| -> Vec<BatchCell> {
        let cfg = make(CoolingConfig::aohs_1_5()).with_stack(stack);
        [Box::new(NoLimit::new(&cpu)) as Box<dyn DtmPolicy>, Box::new(DtmTs::new(cpu.clone(), cfg.limits))]
            .into_iter()
            .map(|policy| {
                BatchCell::new(&cpu, &mem, cfg, workloads::mixes::w1(), policy, Arc::clone(&window_store))
                    .with_rotation_threads(1)
            })
            .collect()
    };
    let window_cost_us = |stack: StackKind| -> f64 {
        let _ = window_engine.run(window_cells(stack), &BatchOptions::literal()); // warm the store
        (0..PASSES)
            .map(|_| {
                let start = std::time::Instant::now();
                let out = window_engine.run(window_cells(stack), &BatchOptions::literal());
                let windows: u64 = out.iter().map(|(_, s)| s.stepped_windows).sum();
                start.elapsed().as_secs_f64() * 1e6 / windows.max(1) as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    let fbdimm_window_us = window_cost_us(StackKind::Fbdimm);
    let stacked_window_us = window_cost_us(StackKind::stacked4());
    let stacked_window_cost_ratio = stacked_window_us / fbdimm_window_us.max(1e-9);
    println!(
        "sweep/stacked_window_cost                    {:>10.3} us/window vs {:.3} us/window FBDIMM \
         ({stacked_window_cost_ratio:.2}x, best-of-{PASSES})",
        stacked_window_us, fbdimm_window_us
    );

    // Stacked-scenario case: 4-high 3D stacks through the same machinery.
    let stacked_scenarios = vec![
        SweepScenario::stacked(
            CoolingConfig::aohs_1_5(),
            StackKind::stacked4(),
            workloads::mixes::w1(),
            vec![PolicySpec::NoLimit, PolicySpec::Ts],
        ),
        SweepScenario::stacked(
            CoolingConfig::fdhs_1_0(),
            StackKind::stacked4(),
            workloads::mixes::w6(),
            vec![PolicySpec::NoLimit],
        ),
    ];
    let stacked_start = std::time::Instant::now();
    let stacked = SweepRunner::new().run(&stacked_scenarios, make);
    let stacked_ms = stacked_start.elapsed().as_secs_f64() * 1e3;
    // Per-layer peak spread of the thermally unconstrained W1 run: inner
    // die (layer 1, next to the base) vs spreader-side outer die (layer 4).
    let no_limit = stacked.runs.iter().find(|r| r.policy == "No-limit").expect("stacked baseline");
    let hot = no_limit.result.hottest_position().expect("stacked peaks");
    let layer_spread_c = hot.layers_c[1] - hot.layers_c[hot.layers_c.len() - 1];
    println!(
        "sweep/stacked_3d_4h                          {:>10.3} ms ({} cells, inner-outer die spread {:.2} degC)",
        stacked_ms,
        stacked.runs.len(),
        layer_spread_c
    );

    // Spatial-DTM case: global DTM-BW vs migration-aware DTM-MIG on the
    // 4-high stack grid. DTM-MIG steers traffic off the hottest position,
    // so its hottest-vs-coldest position peak spread must come in strictly
    // below DTM-BW's.
    let spatial_scenarios = vec![SweepScenario::stacked(
        CoolingConfig::aohs_1_5(),
        StackKind::stacked4(),
        workloads::mixes::w1(),
        vec![PolicySpec::Bw { pid: false }, PolicySpec::Mig],
    )];
    let spatial_start = std::time::Instant::now();
    let spatial = SweepRunner::new().run(&spatial_scenarios, make);
    let spatial_ms = spatial_start.elapsed().as_secs_f64() * 1e3;
    let bw_run = spatial.runs.iter().find(|r| r.policy == "DTM-BW").expect("spatial DTM-BW cell");
    let mig_run = spatial.runs.iter().find(|r| r.policy == "DTM-MIG").expect("spatial DTM-MIG cell");
    let bw_spread_c = bw_run.result.position_peak_spread_c();
    let mig_spread_c = mig_run.result.position_peak_spread_c();
    let mig_spread_reduction_c = bw_spread_c - mig_spread_c;
    println!(
        "sweep/spatial_dtm_4h                         {:>10.3} ms (spread {:.2} degC BW vs {:.2} degC MIG, \
         reduction {:.2} degC, {:.2} GB migrated)",
        spatial_ms,
        bw_spread_c,
        mig_spread_c,
        mig_spread_reduction_c,
        mig_run.result.migrated_traffic_bytes / 1e9
    );

    // Paper-cadence case: the tentpole gate of the envelope fast-forward.
    // 16 pure-policy cells at the paper's native 10 ms DTM cadence spanning
    // all four policies, both coolings, and six workload mixes, envelope
    // execution (all analytic tiers on) vs forced-literal stepping, both
    // single-threaded against the same warm store. Most cells here settle
    // into a frozen throttle plan whose two-exponential relaxation the
    // envelope tier certifies and jumps in closed form; DTM-BW is
    // threshold-pinned sliding mode on every mix (the plan flips every few
    // windows), and those cells are carried by the exact decision replay:
    // the binding rows and ambient are iterated bitwise-literally, every
    // window's decision is re-evaluated against the policy's decision
    // regions, and the dominated rows are closed per plan-run from the
    // run-length-encoded log — two BW cells stay in the grid as exactly
    // that worst case. Gates: best-of-3 speedup >= 20x, summed analytic
    // replay <= 25 ms, envelope_cycles > 0, every reported scalar within
    // relative 1e-9 of literal, and the simulated window count conserved
    // exactly. The per-phase wall-clock breakdown (detector / verification
    // / analytic replay / literal stepping) is recorded from the envelope
    // run's cell counters.
    let nl = PolicySpec::NoLimit;
    let bw = PolicySpec::Bw { pid: false };
    let acg = PolicySpec::Acg { pid: false };
    let cdvfs = PolicySpec::Cdvfs { pid: false };
    let aohs = CoolingConfig::aohs_1_5;
    let fdhs = CoolingConfig::fdhs_1_0;
    let paper_scenarios: Vec<SweepScenario> = vec![
        SweepScenario::isolated(aohs(), workloads::mixes::w2(), vec![nl, acg, cdvfs]),
        SweepScenario::isolated(aohs(), workloads::mixes::w4(), vec![cdvfs]),
        SweepScenario::isolated(aohs(), workloads::mixes::w5(), vec![nl, acg]),
        SweepScenario::isolated(aohs(), workloads::mixes::w7(), vec![acg]),
        SweepScenario::isolated(fdhs(), workloads::mixes::w2(), vec![nl, acg, cdvfs]),
        SweepScenario::isolated(fdhs(), workloads::mixes::w5(), vec![acg, bw]),
        SweepScenario::isolated(fdhs(), workloads::mixes::w6(), vec![nl, acg]),
        SweepScenario::isolated(fdhs(), workloads::mixes::w7(), vec![acg]),
        SweepScenario::isolated(fdhs(), workloads::mixes::w8(), vec![bw]),
    ]
    .into_iter()
    .map(|s| s.with_cadence(0.010))
    .collect();
    let paper_cells: usize = paper_scenarios.iter().map(SweepScenario::cells).sum();
    let paper_store = Arc::new(CharStore::new());
    SweepRunner::with_threads(1).with_char_store(Arc::clone(&paper_store)).run(&paper_scenarios, make); // warm
    let mut paper_env_ms = Vec::with_capacity(PASSES);
    let mut paper_lit_ms = Vec::with_capacity(PASSES);
    // Keep the counters of the *fastest* pass: the wall-clock gates are
    // best-of-3 to filter scheduler noise, so the per-phase split and the
    // replay gate must describe the same pass the speedup is measured on.
    let mut best_env = None;
    let mut last_lit = None;
    for _ in 0..PASSES {
        let env = SweepRunner::with_threads(1).with_char_store(Arc::clone(&paper_store)).run(&paper_scenarios, make);
        paper_env_ms.push(env.wall_clock_s * 1e3);
        if best_env.as_ref().is_none_or(|b: &experiments::sweep::SweepOutcome| env.wall_clock_s < b.wall_clock_s) {
            best_env = Some(env);
        }
        let lit = SweepRunner::with_threads(1)
            .with_char_store(Arc::clone(&paper_store))
            .with_batch_options(BatchOptions::literal())
            .run(&paper_scenarios, make);
        paper_lit_ms.push(lit.wall_clock_s * 1e3);
        last_lit = Some(lit);
    }
    let env = best_env.expect("at least one envelope pass");
    let lit = last_lit.expect("at least one literal pass");
    let paper_cadence_speedup = min(&paper_lit_ms) / min(&paper_env_ms).max(1e-9);
    // Relative agreement: every reported scalar of every cell, including the
    // per-position peaks and the mode-residency fractions.
    let rel_err = |a: f64, b: f64| -> f64 {
        if a == b || (a.is_nan() && b.is_nan()) {
            0.0
        } else {
            (a - b).abs() / b.abs().max(1e-12)
        }
    };
    let mut envelope_max_rel_err = 0.0f64;
    for (e, l) in env.runs.iter().zip(lit.runs.iter()) {
        assert_eq!(e.result.completed, l.result.completed, "{}/{}/{}", e.cooling, e.workload, e.policy);
        let pairs = [
            (e.result.running_time_s, l.result.running_time_s),
            (e.result.total_instructions, l.result.total_instructions),
            (e.result.total_memory_bytes, l.result.total_memory_bytes),
            (e.result.total_l2_misses, l.result.total_l2_misses),
            (e.result.memory_energy_j, l.result.memory_energy_j),
            (e.result.cpu_energy_j, l.result.cpu_energy_j),
            (e.result.avg_memory_power_w, l.result.avg_memory_power_w),
            (e.result.avg_cpu_power_w, l.result.avg_cpu_power_w),
            (e.result.avg_ambient_c, l.result.avg_ambient_c),
            (e.result.max_amb_c, l.result.max_amb_c),
            (e.result.max_dram_c, l.result.max_dram_c),
            (e.result.migrated_traffic_bytes, l.result.migrated_traffic_bytes),
        ];
        for (a, b) in pairs {
            envelope_max_rel_err = envelope_max_rel_err.max(rel_err(a, b));
        }
        for (ep, lp) in e.result.position_peaks.iter().zip(l.result.position_peaks.iter()) {
            for (a, b) in ep.layers_c.iter().zip(lp.layers_c.iter()) {
                envelope_max_rel_err = envelope_max_rel_err.max(rel_err(*a, *b));
            }
        }
        for (key, a) in &e.result.mode_residency {
            let b = l.result.mode_residency.get(key).copied().unwrap_or(0.0);
            envelope_max_rel_err = envelope_max_rel_err.max((a - b).abs());
        }
    }
    // Exact window conservation: literal runs everything literally, so its
    // stepped count is the true window count of the grid.
    let env_windows = env.stepped_windows + env.fast_forwarded_windows;
    let lit_windows = lit.stepped_windows + lit.fast_forwarded_windows;
    let detector_ms = env.detector_ns as f64 / 1e6;
    let verify_ms = env.verify_ns as f64 / 1e6;
    let replay_ms = env.replay_ns as f64 / 1e6;
    let literal_ms = (min(&paper_env_ms) - detector_ms - verify_ms - replay_ms).max(0.0);
    println!(
        "sweep/paper_cadence_literal                  {:>10.3} ms/pass (min {:.3} ms, {paper_cells} cells at 10 ms)",
        mean(&paper_lit_ms),
        min(&paper_lit_ms)
    );
    println!(
        "sweep/paper_cadence_envelope                 {:>10.3} ms/pass (min {:.3} ms, \
         {paper_cadence_speedup:.2}x best-of-{PASSES} vs literal, {} envelope pseudo-cycles, \
         max rel err {envelope_max_rel_err:.2e})",
        mean(&paper_env_ms),
        min(&paper_env_ms),
        env.envelope_cycles
    );
    println!(
        "  phase breakdown: detector {detector_ms:.3} ms, verify {verify_ms:.3} ms, \
         replay {replay_ms:.3} ms, literal stepping {literal_ms:.3} ms"
    );

    let stats = [
        BenchStats {
            label: "sweep/sequential_1_worker".to_string(),
            mean_ms: mean(&seq_ms),
            min_ms: min(&seq_ms),
            iters: PASSES,
        },
        BenchStats {
            label: format!("sweep/parallel_{}_workers", parallel.threads),
            mean_ms: mean(&par_ms),
            min_ms: min(&par_ms),
            iters: PASSES,
        },
        BenchStats {
            label: "sweep/warm_percell_1_worker".to_string(),
            mean_ms: mean(&percell_ms),
            min_ms: min(&percell_ms),
            iters: PASSES,
        },
        BenchStats {
            label: "sweep/warm_batched_1_worker".to_string(),
            mean_ms: mean(&batched_ms),
            min_ms: min(&batched_ms),
            iters: PASSES,
        },
        BenchStats {
            label: format!("sweep/warm_lane_parallel_{lane_workers}_workers"),
            mean_ms: mean(&lane_ms),
            min_ms: min(&lane_ms),
            iters: PASSES,
        },
        BenchStats {
            label: "sweep/store_contention_sharded".to_string(),
            mean_ms: mean(&contention_sharded_ms),
            min_ms: min(&contention_sharded_ms),
            iters: PASSES,
        },
        BenchStats {
            label: "sweep/store_contention_single_lock".to_string(),
            mean_ms: mean(&contention_single_lock_ms),
            min_ms: min(&contention_single_lock_ms),
            iters: PASSES,
        },
        BenchStats { label: "sweep/stacked_3d_4h".to_string(), mean_ms: stacked_ms, min_ms: stacked_ms, iters: 1 },
        BenchStats { label: "sweep/spatial_dtm_4h".to_string(), mean_ms: spatial_ms, min_ms: spatial_ms, iters: 1 },
        BenchStats {
            label: "sweep/paper_cadence_literal".to_string(),
            mean_ms: mean(&paper_lit_ms),
            min_ms: min(&paper_lit_ms),
            iters: PASSES,
        },
        BenchStats {
            label: "sweep/paper_cadence_envelope".to_string(),
            mean_ms: mean(&paper_env_ms),
            min_ms: min(&paper_env_ms),
            iters: PASSES,
        },
    ];
    let mut metrics = vec![
        ("cells", cells as f64),
        ("threads", parallel.threads as f64),
        ("speedup", speedup),
        ("char_store_hits", parallel.char_store_hits as f64),
        ("char_store_misses", parallel.char_store_misses as f64),
        ("batched_vs_sequential_speedup", batched_vs_sequential_speedup),
        ("fast_forwarded_windows", batched.fast_forwarded_windows as f64),
        ("fast_forwarded_cells", batched.fast_forwarded_cells as f64),
        ("periodic_cycles", batched.periodic_cycles as f64),
        ("envelope_cycles", batched.envelope_cycles as f64),
        ("grid_envelope_cycles", parallel.envelope_cycles as f64),
        // Per-phase split of the default grid, both flavors: the warm
        // batched run times the exact tiers (steady + periodic; envelope
        // off), the default-options run times all tiers including the
        // envelope cell, so a regression in either tier is attributable
        // from the artifact alone.
        ("batched_detector_ms", batched.detector_ns as f64 / 1e6),
        ("batched_verify_ms", batched.verify_ns as f64 / 1e6),
        ("batched_replay_ms", batched.replay_ns as f64 / 1e6),
        ("grid_detector_ms", parallel.detector_ns as f64 / 1e6),
        ("grid_verify_ms", parallel.verify_ns as f64 / 1e6),
        ("grid_replay_ms", parallel.replay_ns as f64 / 1e6),
        ("lane_workers", lane_workers as f64),
        ("lane_parallel_speedup", lane_parallel_speedup),
        ("store_contention_threads", CONTENTION_THREADS as f64),
        ("store_contention_hot_keys", hot_keys.len() as f64),
        ("store_contention_cores", store_contention_cores as f64),
        ("store_contention_sharded_ns_per_op", sharded_ns_per_op),
        ("store_contention_single_lock_ns_per_op", single_lock_ns_per_op),
        ("stacked_window_cost_ratio", stacked_window_cost_ratio),
        ("fbdimm_window_us", fbdimm_window_us),
        ("stacked_window_us", stacked_window_us),
        ("stacked_cells", stacked.runs.len() as f64),
        ("stacked_layer_spread_c", layer_spread_c),
        ("bw_position_spread_c", bw_spread_c),
        ("mig_position_spread_c", mig_spread_c),
        ("mig_spread_reduction_c", mig_spread_reduction_c),
        ("mig_migrated_gb", mig_run.result.migrated_traffic_bytes / 1e9),
        ("paper_cadence_cells", paper_cells as f64),
        ("paper_cadence_speedup", paper_cadence_speedup),
        ("paper_cadence_envelope_cycles", env.envelope_cycles as f64),
        ("paper_cadence_max_rel_err", envelope_max_rel_err),
        ("paper_cadence_windows", lit_windows as f64),
        ("paper_cadence_detector_ms", detector_ms),
        ("paper_cadence_verify_ms", verify_ms),
        ("paper_cadence_replay_ms", replay_ms),
        ("paper_cadence_literal_step_ms", literal_ms),
    ];
    if let Some(s) = store_contention_speedup {
        metrics.push(("store_contention_speedup", s));
    }
    let path = bench_output_path("BENCH_sweep.json");
    write_bench_json(&path, &stats, &metrics).expect("write BENCH_sweep.json");
    println!("wrote {}", path.display());

    if batched_vs_sequential_speedup < 1.2 {
        eprintln!(
            "FAIL: batched engine's best-of-{PASSES} speedup over the per-cell engine is \
             {batched_vs_sequential_speedup:.2}x, below the 1.2x gate (both single-threaded, warm store)"
        );
        std::process::exit(1);
    }
    if parallel.threads >= 2 && speedup < 1.2 {
        eprintln!(
            "FAIL: best-of-{PASSES} parallel speedup {speedup:.2}x on {} workers is below the 1.2x gate",
            parallel.threads
        );
        std::process::exit(1);
    }
    if lane_workers >= 2 && lane_parallel_speedup < 1.2 {
        eprintln!(
            "FAIL: best-of-{PASSES} lane-parallel speedup {lane_parallel_speedup:.2}x on \
             {lane_workers} workers is below the 1.2x gate (vs single-thread batched, warm store)"
        );
        std::process::exit(1);
    }
    if stacked_window_cost_ratio > 2.0 {
        eprintln!(
            "FAIL: a 4-high stack's literal per-window cost is {stacked_window_cost_ratio:.2}x \
             FBDIMM's, above the 2x gate (cached Ψ-superposition path regressed)"
        );
        std::process::exit(1);
    }
    let spread_resolved = layer_spread_c.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
    if !spread_resolved {
        eprintln!(
            "FAIL: stacked sweep must resolve a nonzero per-layer peak spread \
             (inner die hotter than the outer die under load), got {layer_spread_c:.3} degC"
        );
        std::process::exit(1);
    }
    let migration_flattens = mig_spread_reduction_c.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
    if !migration_flattens {
        eprintln!(
            "FAIL: DTM-MIG must reduce the hottest-vs-coldest position spread vs DTM-BW \
             on the 4-high stack, got {mig_spread_reduction_c:.3} degC"
        );
        std::process::exit(1);
    }
    if batched.periodic_cycles == 0 {
        eprintln!(
            "FAIL: the relay-cadence cell (DTM-ACG at a 5 s interval) must engage the periodic \
             fast-forward, got 0 replayed limit cycles"
        );
        std::process::exit(1);
    }
    if parallel.envelope_cycles == 0 {
        eprintln!(
            "FAIL: the envelope-cadence cell (DTM-BW at a 10 ms interval) must engage the \
             envelope fast-forward on the default-options grid, got 0 pseudo-cycles"
        );
        std::process::exit(1);
    }
    if paper_cadence_speedup < 20.0 {
        eprintln!(
            "FAIL: envelope execution's best-of-{PASSES} speedup over literal stepping at the \
             paper's 10 ms cadence is {paper_cadence_speedup:.2}x, below the 20x gate"
        );
        std::process::exit(1);
    }
    if replay_ms > 25.0 {
        eprintln!(
            "FAIL: the envelope tier's analytic replay took {replay_ms:.1} ms summed over the \
             paper-cadence grid, above the 25 ms gate (plan-run-length accounting regressed)"
        );
        std::process::exit(1);
    }
    if env.envelope_cycles == 0 {
        eprintln!("FAIL: the paper-cadence grid must engage the envelope fast-forward, got 0 pseudo-cycles");
        std::process::exit(1);
    }
    let within_bound = envelope_max_rel_err.partial_cmp(&1e-9) != Some(std::cmp::Ordering::Greater);
    if !within_bound {
        eprintln!(
            "FAIL: envelope execution diverged from literal stepping by a max relative error of \
             {envelope_max_rel_err:.3e}, above the certified 1e-9 bound"
        );
        std::process::exit(1);
    }
    if env_windows != lit_windows {
        eprintln!(
            "FAIL: envelope execution must conserve the simulated window count exactly: \
             {env_windows} (stepped + fast-forwarded) vs {lit_windows} literal"
        );
        std::process::exit(1);
    }
}
