//! Smoke-scale regeneration of the Chapter 4 figures (the simulation study).
//! Each bench runs the same code path as the `paper` binary, at the smallest
//! scale, so `cargo bench` exercises every figure end to end.
//!
//! Run with: `cargo bench -p experiments --bench figures_ch4`

use experiments::ch4;
use experiments::harness::{bench_case, Scale};

fn main() {
    bench_case("figures_ch4/fig4_2_trp_sweep", 2, || ch4::fig4_2(Scale::Smoke).rows.len());
    bench_case("figures_ch4/fig4_3_normalized_time", 2, || ch4::fig4_3(Scale::Smoke).rows.len());
    bench_case("figures_ch4/fig4_4_normalized_traffic", 2, || ch4::fig4_4(Scale::Smoke).rows.len());
    bench_case("figures_ch4/fig4_5_8_temperature_traces", 2, || ch4::fig4_5_8(Scale::Smoke).rows.len());
    bench_case("figures_ch4/fig4_9_memory_energy", 2, || ch4::fig4_9(Scale::Smoke).rows.len());
    bench_case("figures_ch4/fig4_12_integrated_model", 2, || ch4::fig4_12(Scale::Smoke).rows.len());
    bench_case("figures_ch4/fig4_13_interaction_degrees", 2, || ch4::fig4_13(Scale::Smoke).rows.len());
}
